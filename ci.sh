#!/usr/bin/env bash
# Full local CI gate for the dsv workspace. Runs everything the tier-1
# verify runs, plus formatting, the full workspace test matrix, bench/
# example compilation, and rustdoc. Fails fast on the first broken step.
set -euo pipefail
cd "$(dirname "$0")"

step() { printf '\n=== %s ===\n' "$*"; }

step "cargo fmt --check"
cargo fmt --all --check

step "cargo build --release"
cargo build --release

step "cargo test --workspace -q (superset of the tier-1 'cargo test -q')"
cargo test --workspace -q

step "cargo build --release --examples"
cargo build --release --examples

step "run all 5 examples (API regressions in non-test binaries fail here)"
for ex in quickstart compare_trackers network_monitor history_audit inventory_audit; do
    printf -- '-- example %s\n' "$ex"
    cargo run -q --release --example "$ex" > /dev/null
done

step "cargo bench --no-run --workspace (compile all 17 bench targets)"
cargo bench --no-run --workspace

step "1s smoke run of one e* bench binary"
# The e* binaries are full experiments; a 1-second slice is enough to
# catch panics on their startup path. timeout exit 124 (alarm fired
# while the bench was still happily running) counts as success.
bench_bin=$(ls -t target/release/deps/e11_single_site-* 2>/dev/null | grep -v '\.d$' | head -1)
[ -n "$bench_bin" ] || { echo "e11 bench binary not found"; exit 1; }
rc=0
timeout 1s "$bench_bin" > /dev/null 2>&1 || rc=$?
if [ "$rc" -ne 0 ] && [ "$rc" -ne 124 ]; then
    echo "bench smoke run failed with exit code $rc"
    exit 1
fi

step "cargo doc --no-deps --workspace (warning-free)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

printf '\nCI green.\n'
