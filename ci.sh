#!/usr/bin/env bash
# Full local CI gate for the dsv workspace. Runs everything the tier-1
# verify runs, plus formatting, the full workspace test matrix, bench/
# example compilation, and rustdoc. Fails fast on the first broken step.
set -euo pipefail
cd "$(dirname "$0")"

step() { printf '\n=== %s ===\n' "$*"; }

step "cargo fmt --check"
cargo fmt --all --check

step "cargo build --release"
cargo build --release

step "cargo test --workspace -q (superset of the tier-1 'cargo test -q')"
cargo test --workspace -q

step "cargo build --examples"
cargo build --examples

step "cargo bench --no-run --workspace (compile all 17 bench targets)"
cargo bench --no-run --workspace

step "cargo doc --no-deps --workspace (warning-free)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

printf '\nCI green.\n'
