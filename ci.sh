#!/usr/bin/env bash
# Full local CI gate for the dsv workspace. Runs everything the tier-1
# verify runs, plus formatting, lints, the full workspace test matrix,
# bench/example compilation, bench smoke runs with a JSON schema gate,
# and rustdoc. Fails fast on the first broken step.
#
# This script is the single source of truth for the gate; the GitHub
# workflow (.github/workflows/ci.yml) just checks out, installs a
# toolchain, and runs it.
set -euo pipefail
cd "$(dirname "$0")"

step() { printf '\n=== %s ===\n' "$*"; }

# Resolve a dsv-bench bench binary through cargo itself (stale-proof:
# `ls -t target/.../name-*` picks outdated hashes after renames or
# toolchain bumps; the JSON compiler messages name the fresh artifact).
# Never fails (so `set -e` can't kill the script before the caller's
# not-found diagnostic): a broken target yields an empty string and the
# compile error is replayed on stderr.
bench_bin() {
    if ! out=$(cargo bench --no-run --message-format=json -p dsv-bench --bench "$1" 2>/tmp/bench_bin.err); then
        cat /tmp/bench_bin.err >&2
        return 0
    fi
    printf '%s' "$out" \
        | grep "\"name\":\"$1\"" \
        | sed -n 's/.*"executable":"\([^"]*\)".*/\1/p' \
        | tail -1 \
        || true
}

step "cargo fmt --check"
cargo fmt --all --check

step "cargo build --release"
cargo build --release

step "cargo clippy --workspace --all-targets (-D warnings)"
cargo clippy --workspace --all-targets -- -D warnings

step "cargo test --workspace -q (superset of the tier-1 'cargo test -q')"
cargo test --workspace -q

step "cargo build --release --examples"
cargo build --release --examples

step "run 6 of the 7 examples (API regressions in non-test binaries fail here)"
# checkpoint_restore, the 7th example, runs in its own gate step below.
for ex in quickstart compare_trackers network_monitor history_audit inventory_audit sharded_monitor; do
    printf -- '-- example %s\n' "$ex"
    cargo run -q --release --example "$ex" > /dev/null
done

step "checkpoint/resume smoke gate (example checkpoint_restore)"
# Runs half the stream, checkpoints at a batch boundary, drops the
# engine, resumes from the serialized bytes onto a different worker
# count, and asserts the final estimates and CommStats ledgers are
# bit-identical to the straight-through run. Its asserts make it a gate
# (enforced like the e16 throughput gate); the full per-kind matrix
# lives in tests/engine_checkpoint.rs.
cargo run -q --release --example checkpoint_restore

step "cargo bench --no-run --workspace (compile all 18 bench targets)"
cargo bench --no-run --workspace

step "1s smoke run of one e* bench binary"
# The e* binaries are full experiments; a 1-second slice is enough to
# catch panics on their startup path. timeout exit 124 (alarm fired
# while the bench was still happily running) counts as success.
e11_bin=$(bench_bin e11_single_site)
[ -n "$e11_bin" ] || { echo "e11 bench binary not found"; exit 1; }
rc=0
timeout 1s "$e11_bin" > /dev/null 2>&1 || rc=$?
if [ "$rc" -ne 0 ] && [ "$rc" -ne 124 ]; then
    echo "bench smoke run failed with exit code $rc"
    exit 1
fi

step "e16 throughput smoke + BENCH json schema gate"
# Full e16 sweep in --smoke mode (400k updates) writing machine-readable
# results, then the schema gate: non-empty stream/row tables, finite
# positive throughput numbers. The committed BENCH_e16.json (full 10M
# run) is validated too, so the tracked perf trajectory stays parseable.
e16_bin=$(bench_bin e16_throughput)
[ -n "$e16_bin" ] || { echo "e16 bench binary not found"; exit 1; }
mkdir -p target/ci
"$e16_bin" --smoke --out target/ci/BENCH_e16.json > /dev/null
cargo run -q --release -p dsv-bench --bin bench_schema -- target/ci/BENCH_e16.json
if [ -f BENCH_e16.json ]; then
    cargo run -q --release -p dsv-bench --bin bench_schema -- BENCH_e16.json
fi

step "cargo doc --no-deps --workspace (warning-free)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

printf '\nCI green.\n'
