#!/usr/bin/env bash
# Full local CI gate for the dsv workspace. Runs everything the tier-1
# verify runs, plus formatting, lints, the full workspace test matrix,
# bench/example compilation, bench smoke runs with JSON schema gates
# (including the e17 overlap-speedup gate, the e18 fleet keys x
# throughput gate, the e19 quiet-stream delta-shrink gate, and — in
# remote-feature jobs — the e20 pipelined-remote speedup gate), and
# rustdoc. Fails fast on
# the first broken step, and prints a per-step wall-clock summary at the
# end (also emitted to $GITHUB_STEP_SUMMARY under Actions) so gate-time
# regressions are visible in PRs.
#
# This script is the single source of truth for the gate; the GitHub
# workflow (.github/workflows/ci.yml) just checks out, installs a
# toolchain, and runs it — once per feature-matrix job:
#
#   ./ci.sh                            # default features
#   DSV_FEATURES=async-ingest ./ci.sh  # the async-ingest feature seam
#   DSV_FEATURES=remote ./ci.sh        # distributed shards + failover
#   DSV_FEATURES=async-ingest,remote ./ci.sh  # both seams combined
#
# DSV_STEP_BUDGET_SECS=<n> (default off) fails an otherwise-green run if
# any single step took longer than n seconds — the per-step wall clocks
# are also written to target/ci/ci_times.json for machine consumption.
set -euo pipefail
cd "$(dirname "$0")"

# Cargo feature flags for this run (the workflow matrix sets
# DSV_FEATURES; empty means default features, commas combine seams). The
# dsv facade forwards each feature to the member crates that implement it.
# Possibly-empty arrays are expanded with the ${arr[@]+"${arr[@]}"}
# idiom throughout: plain "${arr[@]}" on an empty array trips set -u on
# bash < 4.4 (e.g. the stock macOS /bin/bash 3.2). The %N in the timing
# code is GNU date; BSD date degrades it to whole seconds, gracefully.
FEATURE_FLAGS=()
# dsv-bench mirrors the facade's feature names (each forwarding to its
# dsv-engine/<feature> seam), so `-p dsv-bench` commands take
# DSV_FEATURES verbatim — feature resolution stays identical to the
# workspace-wide steps (no mid-gate feature flip, no redundant rebuild,
# and the bench/schema gates actually exercise the matrix job's
# configuration), while feature-gated bench targets (e20's
# required-features = ["remote"]) appear exactly when their seam is on.
BENCH_FEATURE_FLAGS=()
if [ -n "${DSV_FEATURES:-}" ]; then
    FEATURE_FLAGS=(--features "$DSV_FEATURES")
    BENCH_FEATURE_FLAGS=(--features "$DSV_FEATURES")
fi

# ---------------------------------------------------------------------------
# Per-step wall-clock timing. `step` closes the previous step; the EXIT
# trap closes the last one and prints the summary table (markdown to
# $GITHUB_STEP_SUMMARY when set), including on failure so a hung or slow
# step is visible in the log that killed the run.
# ---------------------------------------------------------------------------
STEP_NAMES=()
STEP_SECS=()
CUR_STEP=""
CUR_START=0
SCRIPT_START=$(date +%s.%N)

finish_step() {
    if [ -n "$CUR_STEP" ]; then
        STEP_NAMES+=("$CUR_STEP")
        STEP_SECS+=("$(echo "$(date +%s.%N) $CUR_START" | awk '{printf "%.1f", $1 - $2}')")
        CUR_STEP=""
    fi
}

step() {
    finish_step
    CUR_STEP="$*"
    CUR_START=$(date +%s.%N)
    printf '\n=== %s ===\n' "$*"
}

print_timings() {
    rc=$?
    finish_step
    total=$(echo "$(date +%s.%N) $SCRIPT_START" | awk '{printf "%.1f", $1 - $2}')
    printf '\n=== step timings (features: %s) ===\n' "${DSV_FEATURES:-default}"
    for i in ${STEP_NAMES[@]+"${!STEP_NAMES[@]}"}; do
        printf '%8ss  %s\n' "${STEP_SECS[$i]}" "${STEP_NAMES[$i]}"
    done
    printf '%8ss  TOTAL%s\n' "$total" "$([ "$rc" -ne 0 ] && echo ' (FAILED)')"
    if [ -n "${GITHUB_STEP_SUMMARY:-}" ]; then
        {
            printf '### ci.sh step timings (features: %s)\n\n' "${DSV_FEATURES:-default}"
            printf '| step | seconds |\n|---|---:|\n'
            for i in ${STEP_NAMES[@]+"${!STEP_NAMES[@]}"}; do
                printf '| %s | %s |\n' "${STEP_NAMES[$i]}" "${STEP_SECS[$i]}"
            done
            printf '| **TOTAL%s** | **%s** |\n' "$([ "$rc" -ne 0 ] && echo ' (failed)')" "$total"
        } >> "$GITHUB_STEP_SUMMARY"
    fi
    # Machine-readable mirror of the table (step names are fixed strings
    # with no JSON-special characters). Written even on failure, so a
    # timing regression that kills the run still leaves its evidence.
    mkdir -p target/ci
    {
        printf '{"features": "%s", "failed": %s, "total_secs": %s, "steps": [' \
            "${DSV_FEATURES:-default}" "$([ "$rc" -ne 0 ] && echo true || echo false)" "$total"
        sep=""
        for i in ${STEP_NAMES[@]+"${!STEP_NAMES[@]}"}; do
            printf '%s{"name": "%s", "secs": %s}' "$sep" "${STEP_NAMES[$i]}" "${STEP_SECS[$i]}"
            sep=", "
        done
        printf ']}\n'
    } > target/ci/ci_times.json
    # Optional per-step wall-clock budget: an otherwise-green run fails
    # if any single step exceeded DSV_STEP_BUDGET_SECS (default off), so
    # gate-time regressions break the build instead of creeping.
    if [ "$rc" -eq 0 ] && [ -n "${DSV_STEP_BUDGET_SECS:-}" ]; then
        for i in ${STEP_NAMES[@]+"${!STEP_NAMES[@]}"}; do
            if awk -v s="${STEP_SECS[$i]}" -v b="$DSV_STEP_BUDGET_SECS" \
                'BEGIN { exit !(s > b) }'; then
                printf 'ci.sh: STEP BUDGET EXCEEDED — "%s" took %ss (budget %ss)\n' \
                    "${STEP_NAMES[$i]}" "${STEP_SECS[$i]}" "$DSV_STEP_BUDGET_SECS" >&2
                exit 1
            fi
        done
    fi
}
trap print_timings EXIT

# Resolve a dsv-bench bench binary through cargo itself (stale-proof:
# `ls -t target/.../name-*` picks outdated hashes after renames or
# toolchain bumps; the JSON compiler messages name the fresh artifact).
# The match is anchored to the exact target name — compiler-artifact
# lines only, `"name":"<target>",` with its closing delimiter — so a
# future bench named e.g. `e17_pipeline_ext` can never shadow
# `e17_pipeline` however the message fields are ordered.
# Never fails (so `set -e` can't kill the script before the caller's
# not-found diagnostic): a broken target yields an empty string and the
# compile error is replayed on stderr.
bench_bin() {
    if ! out=$(cargo bench --no-run --message-format=json -p dsv-bench ${BENCH_FEATURE_FLAGS[@]+"${BENCH_FEATURE_FLAGS[@]}"} --bench "$1" 2>/tmp/bench_bin.err); then
        cat /tmp/bench_bin.err >&2
        return 0
    fi
    printf '%s' "$out" \
        | grep '"reason":"compiler-artifact"' \
        | grep "\"name\":\"$1\"[,}]" \
        | sed -n 's/.*"executable":"\([^"]*\)".*/\1/p' \
        | tail -1 \
        || true
}

step "cargo fmt --check"
cargo fmt --all --check

step "cargo build --release"
cargo build --release ${FEATURE_FLAGS[@]+"${FEATURE_FLAGS[@]}"}

step "cargo build --no-default-features (feature-seam floor)"
# The workspace has no default features today; this keeps it that way —
# a dependency accidentally made non-optional or a cfg leak outside its
# feature gate fails here instead of rotting until someone flips flags.
cargo build --no-default-features

step "cargo clippy --workspace --all-targets (-D warnings)"
cargo clippy --workspace --all-targets ${FEATURE_FLAGS[@]+"${FEATURE_FLAGS[@]}"} -- -D warnings

step "cargo test --workspace -q (superset of the tier-1 'cargo test -q')"
cargo test --workspace -q ${FEATURE_FLAGS[@]+"${FEATURE_FLAGS[@]}"}

step "cargo build --release --examples"
cargo build --release --examples ${FEATURE_FLAGS[@]+"${FEATURE_FLAGS[@]}"}

step "run 9 of the 11 examples (API regressions in non-test binaries fail here)"
# checkpoint_restore runs in its own gate step below; remote_failover is
# gated on the remote feature. pipelined_monitor asserts run_pipelined's
# bit-identity to run_parted and that fast feeds finish in a laggy
# feed's shadow, fleet_monitor asserts per-key fleet estimates are
# bit-identical to standalone trackers, and delta_checkpoint asserts the
# quiet-stream >= 10x shrink plus bit-identical mid-chain resume, so all
# three are gates in their own right.
for ex in quickstart compare_trackers network_monitor history_audit inventory_audit sharded_monitor pipelined_monitor fleet_monitor delta_checkpoint; do
    printf -- '-- example %s\n' "$ex"
    cargo run -q --release ${FEATURE_FLAGS[@]+"${FEATURE_FLAGS[@]}"} --example "$ex" > /dev/null
done

step "checkpoint/resume smoke gate (example checkpoint_restore)"
# Runs half the stream, checkpoints at a batch boundary, drops the
# engine, resumes from the serialized bytes onto a different worker
# count, and asserts the final estimates and CommStats ledgers are
# bit-identical to the straight-through run. Its asserts make it a gate
# (enforced like the e16 throughput gate); the full per-kind matrix
# lives in tests/engine_checkpoint.rs.
cargo run -q --release ${FEATURE_FLAGS[@]+"${FEATURE_FLAGS[@]}"} --example checkpoint_restore

case " ${DSV_FEATURES:-} " in *remote*)
    step "remote failover smoke gate (example remote_failover, 10th example)"
    # Spawns two dsv-shard-server worker processes behind a Unix-domain
    # socket (TCP loopback off unix), SIGKILLs one mid-stream, and asserts
    # the coordinator respawns the slot, restores from the last
    # auto-checkpoint, replays the gap, and ends bit-identical to the
    # in-process engine. The example's asserts make it a gate; the full
    # kind × transport × fault matrix lives in tests/remote_equivalence.rs
    # and tests/failover_injection.rs (run in the workspace-test step of
    # this matrix job via required-features).
    cargo run -q --release ${FEATURE_FLAGS[@]+"${FEATURE_FLAGS[@]}"} --example remote_failover > /dev/null
    ;;
esac

step "cargo bench --no-run (compile all 22 bench targets)"
# Workspace-wide compile of every bench target, plus an explicit
# `-p dsv-bench` pass so feature-gated targets (e20_remote, behind
# dsv-bench's `remote` mirror feature) compile in the matrix jobs whose
# seam they need — the facade-level --features flag doesn't reach
# dsv-bench's own feature list.
cargo bench --no-run --workspace ${FEATURE_FLAGS[@]+"${FEATURE_FLAGS[@]}"}
cargo bench --no-run -p dsv-bench ${BENCH_FEATURE_FLAGS[@]+"${BENCH_FEATURE_FLAGS[@]}"}

step "1s smoke run of one e* bench binary"
# The e* binaries are full experiments; a 1-second slice is enough to
# catch panics on their startup path. timeout exit 124 (alarm fired
# while the bench was still happily running) counts as success.
e11_bin=$(bench_bin e11_single_site)
[ -n "$e11_bin" ] || { echo "e11 bench binary not found"; exit 1; }
rc=0
timeout 1s "$e11_bin" > /dev/null 2>&1 || rc=$?
if [ "$rc" -ne 0 ] && [ "$rc" -ne 124 ]; then
    echo "bench smoke run failed with exit code $rc"
    exit 1
fi

step "e16 throughput smoke + consolidation gate + BENCH json schema gate"
# Full e16 sweep in --smoke mode (400k updates) writing machine-readable
# results, then the schema gate: non-empty stream/row tables, finite
# positive throughput numbers. The binary itself enforces the
# consolidation gate (S=8 monotone consolidated/parted >= 1.3x) on full
# runs before writing any JSON; bench_schema re-enforces the recorded
# gate on the committed BENCH_e16.json (full 10M run), so the artifact
# can neither regress below the floor nor weaken it.
e16_bin=$(bench_bin e16_throughput)
[ -n "$e16_bin" ] || { echo "e16 bench binary not found"; exit 1; }
mkdir -p target/ci
"$e16_bin" --smoke --out target/ci/BENCH_e16.json > /dev/null
cargo run -q --release -p dsv-bench ${BENCH_FEATURE_FLAGS[@]+"${BENCH_FEATURE_FLAGS[@]}"} --bin bench_schema -- target/ci/BENCH_e16.json
if [ -f BENCH_e16.json ]; then
    cargo run -q --release -p dsv-bench ${BENCH_FEATURE_FLAGS[@]+"${BENCH_FEATURE_FLAGS[@]}"} --bin bench_schema -- BENCH_e16.json
fi

step "e17 pipeline smoke + overlap gate + BENCH json schema gate"
# The pipelined-ingestion experiment in --smoke mode. The binary itself
# enforces the overlap gate (slow-feed speedup >= 1.25x, smoke runs
# included — the overlap is production concurrency, which needs no
# second core) and asserts pipelined/sync bit-identity before any
# timing; bench_schema then re-enforces the recorded gate on both the
# fresh artifact and the committed full run, so a regression can't hide
# in either.
e17_bin=$(bench_bin e17_pipeline)
[ -n "$e17_bin" ] || { echo "e17 bench binary not found"; exit 1; }
"$e17_bin" --smoke --out target/ci/BENCH_e17.json > /dev/null
cargo run -q --release -p dsv-bench ${BENCH_FEATURE_FLAGS[@]+"${BENCH_FEATURE_FLAGS[@]}"} --bin bench_schema -- target/ci/BENCH_e17.json
if [ -f BENCH_e17.json ]; then
    cargo run -q --release -p dsv-bench ${BENCH_FEATURE_FLAGS[@]+"${BENCH_FEATURE_FLAGS[@]}"} --bin bench_schema -- BENCH_e17.json
fi

step "e18 fleet smoke + BENCH json schema + keys x throughput gate"
# The keyed-fleet scale experiment in --smoke mode (64k keys): exercises
# the cold-insert and steady phases, the per-key epsilon audits, and the
# standalone-twin bit-identity asserts. The scale gate itself (>= 1M
# live keys at >= 1e7 updates/sec) binds on full runs; bench_schema
# re-enforces it on the committed BENCH_e18.json, so the tracked
# artifact can neither regress nor weaken its own gates.
e18_bin=$(bench_bin e18_fleet)
[ -n "$e18_bin" ] || { echo "e18 bench binary not found"; exit 1; }
"$e18_bin" --smoke --out target/ci/BENCH_e18.json > /dev/null
cargo run -q --release -p dsv-bench ${BENCH_FEATURE_FLAGS[@]+"${BENCH_FEATURE_FLAGS[@]}"} --bin bench_schema -- target/ci/BENCH_e18.json
if [ -f BENCH_e18.json ]; then
    cargo run -q --release -p dsv-bench ${BENCH_FEATURE_FLAGS[@]+"${BENCH_FEATURE_FLAGS[@]}"} --bin bench_schema -- BENCH_e18.json
fi

step "e19 incremental-checkpoint smoke + BENCH json schema + shrink gate"
# The delta-encoded checkpoint store experiment in --smoke mode (24
# boundaries per scenario): materializes every retained boundary and
# asserts bit-identity before any byte count is believed. The >= 10x
# quiet-stream shrink gate is structural (an encoding property, not a
# machine-speed one), so the binary enforces it on smoke runs too — no
# JSON is written on failure — and bench_schema re-enforces it on both
# the fresh artifact and the committed BENCH_e19.json.
e19_bin=$(bench_bin e19_checkpoint)
[ -n "$e19_bin" ] || { echo "e19 bench binary not found"; exit 1; }
"$e19_bin" --smoke --out target/ci/BENCH_e19.json > /dev/null
cargo run -q --release -p dsv-bench ${BENCH_FEATURE_FLAGS[@]+"${BENCH_FEATURE_FLAGS[@]}"} --bin bench_schema -- target/ci/BENCH_e19.json
if [ -f BENCH_e19.json ]; then
    cargo run -q --release -p dsv-bench ${BENCH_FEATURE_FLAGS[@]+"${BENCH_FEATURE_FLAGS[@]}"} --bin bench_schema -- BENCH_e19.json
fi

case " ${DSV_FEATURES:-} " in *remote*)
    step "e20 remote-ingestion smoke + BENCH json schema + pipelining gate"
    # The socket-tax experiment in --smoke mode: RemoteEngine throughput
    # across rounds_per_frame {1,4,16} x {uds,tcp} x {threads,processes},
    # every run audited bit-identical to the in-process engine before its
    # timing is believed. The binary enforces the >= 1.3x pipelined-over-
    # sync gate on the TCP/processes combo (round-trip elimination is
    # protocol-structural, so it binds on smoke too) before writing any
    # JSON; bench_schema re-enforces it — plus the frames-fall-as-rpf-
    # rises amortization signature — on the fresh artifact and on the
    # committed BENCH_e20.json. DSV_SHARD_SERVER_BIN pins the worker
    # binary to the artifact this very gate just built.
    e20_bin=$(bench_bin e20_remote)
    [ -n "$e20_bin" ] || { echo "e20 bench binary not found"; exit 1; }
    DSV_SHARD_SERVER_BIN=target/release/dsv-shard-server \
        "$e20_bin" --smoke --out target/ci/BENCH_e20.json > /dev/null
    cargo run -q --release -p dsv-bench ${BENCH_FEATURE_FLAGS[@]+"${BENCH_FEATURE_FLAGS[@]}"} --bin bench_schema -- target/ci/BENCH_e20.json
    if [ -f BENCH_e20.json ]; then
        cargo run -q --release -p dsv-bench ${BENCH_FEATURE_FLAGS[@]+"${BENCH_FEATURE_FLAGS[@]}"} --bin bench_schema -- BENCH_e20.json
    fi
    ;;
esac

step "bench_schema --all (every committed BENCH_*.json)"
# Safety net over the per-experiment steps above: glob-validate every
# committed artifact at the repo root in one pass, so a newly added
# BENCH_*.json is schema- and gate-checked from the moment it lands even
# if its dedicated ci.sh step is forgotten.
cargo run -q --release -p dsv-bench ${BENCH_FEATURE_FLAGS[@]+"${BENCH_FEATURE_FLAGS[@]}"} --bin bench_schema -- --all

step "cargo doc --no-deps --workspace (warning-free)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace ${FEATURE_FLAGS[@]+"${FEATURE_FLAGS[@]}"}

printf '\nCI green.\n'
