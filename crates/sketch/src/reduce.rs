//! Counter reductions for distributed frequency tracking — Appendix H.
//!
//! The distributed frequency tracker does not ship whole sketches around;
//! instead, Appendix H says: *"we can first reduce our set of items ℓ to a
//! small number of counters c, and instead of tracking f_iℓ we track f_ic
//! for each counter c"*. A [`CounterMap`] is exactly that reduction: a
//! fixed mapping from items to the (one or more) counters they touch, plus
//! the rule for re-assembling an item estimate from estimated counters.
//!
//! Three reductions cover the paper's three variants:
//!
//! * [`IdentityMap`] — one counter per item (the exact algorithm of
//!   H.0.1; space `O(|U|)`);
//! * [`CountMinMap`] — Count-Min rows with pairwise-independent hashing;
//!   item estimate = min over rows (randomized, `≥ 8/9` per-item);
//! * [`CrPrecisMap`] — CR-precis prime-modulus rows; item estimate =
//!   average over rows (deterministic, linear).

use crate::hash::HashFamily;
use crate::primes::primes_from;

/// A static item→counters reduction with an estimate-assembly rule.
pub trait CounterMap {
    /// Total number of counters `C`.
    fn counters(&self) -> usize;

    /// Append the counter indices touched by `item` to `out` (one per
    /// row; [`IdentityMap`] appends exactly one).
    fn map(&self, item: u64, out: &mut Vec<u32>);

    /// Assemble an item-frequency estimate from the full estimated counter
    /// vector.
    fn assemble(&self, item: u64, counters: &[i64]) -> i64;

    /// Words of static description that must be shared between sites and
    /// coordinator (hash coefficients / moduli) — the `O(k·log|U|)` setup
    /// cost Appendix H mentions.
    fn setup_words(&self) -> usize;

    /// Number of counters each update touches (= rows).
    fn rows(&self) -> usize;
}

/// One counter per item: the exact per-item algorithm of H.0.1.
#[derive(Debug, Clone)]
pub struct IdentityMap {
    universe: usize,
}

impl IdentityMap {
    /// Over a universe of `universe` items.
    ///
    /// Panics on an empty universe; use [`IdentityMap::try_new`] for a
    /// typed error instead.
    pub fn new(universe: usize) -> Self {
        Self::try_new(universe).expect("universe must be non-empty")
    }

    /// Checked constructor: the universe must contain at least one item.
    pub fn try_new(universe: usize) -> Result<Self, crate::SketchError> {
        if universe == 0 {
            return Err(crate::SketchError::EmptyUniverse);
        }
        Ok(IdentityMap { universe })
    }
}

impl CounterMap for IdentityMap {
    fn counters(&self) -> usize {
        self.universe
    }
    fn map(&self, item: u64, out: &mut Vec<u32>) {
        assert!((item as usize) < self.universe, "item out of universe");
        out.push(item as u32);
    }
    fn assemble(&self, item: u64, counters: &[i64]) -> i64 {
        counters[item as usize]
    }
    fn setup_words(&self) -> usize {
        1 // just |U|
    }
    fn rows(&self) -> usize {
        1
    }
}

/// Count-Min-shaped reduction: `rows × width` counters, min-assembly.
#[derive(Debug, Clone)]
pub struct CountMinMap {
    hashes: HashFamily,
    rows: usize,
    width: u64,
}

impl CountMinMap {
    /// `rows` rows of `width` counters, hashes derived from `seed`.
    pub fn new(rows: usize, width: u64, seed: u64) -> Self {
        assert!(rows >= 1 && width >= 1);
        CountMinMap {
            hashes: HashFamily::new(rows, width, seed),
            rows,
            width,
        }
    }

    /// The Appendix H shape: 3 rows of `27/ε` counters (per-item error
    /// ≤ ε·F1/3 w.p. ≥ 8/9).
    pub fn appendix_h(eps: f64, seed: u64) -> Self {
        assert!(eps > 0.0 && eps < 1.0);
        Self::new(3, (27.0 / eps).ceil() as u64, seed)
    }
}

impl CounterMap for CountMinMap {
    fn counters(&self) -> usize {
        self.rows * self.width as usize
    }
    fn map(&self, item: u64, out: &mut Vec<u32>) {
        for r in 0..self.rows {
            out.push((r as u64 * self.width + self.hashes.hash(r, item)) as u32);
        }
    }
    fn assemble(&self, item: u64, counters: &[i64]) -> i64 {
        (0..self.rows)
            .map(|r| counters[(r as u64 * self.width + self.hashes.hash(r, item)) as usize])
            .min()
            .expect("rows >= 1")
    }
    fn setup_words(&self) -> usize {
        2 * self.rows + 2 // (a, b) per row + shape
    }
    fn rows(&self) -> usize {
        self.rows
    }
}

/// CR-precis-shaped reduction: prime-modulus rows, average-assembly
/// (deterministic; the paper's linear variant).
#[derive(Debug, Clone)]
pub struct CrPrecisMap {
    moduli: Vec<u64>,
    offsets: Vec<u32>,
    total: usize,
}

impl CrPrecisMap {
    /// `rows` rows with prime moduli starting at the first prime ≥
    /// `min_width`.
    pub fn new(rows: usize, min_width: u64) -> Self {
        assert!(rows >= 1 && min_width >= 2);
        let moduli = primes_from(min_width, rows);
        let mut offsets = Vec::with_capacity(rows);
        let mut total = 0usize;
        for &p in &moduli {
            offsets.push(total as u32);
            total += p as usize;
        }
        CrPrecisMap {
            moduli,
            offsets,
            total,
        }
    }

    /// Shape guaranteeing deterministic per-item error ≤ `eps_frac·F1`
    /// (see `CrPrecis::for_guarantee` for the derivation).
    pub fn for_guarantee(eps_frac: f64, universe: u64) -> Self {
        assert!(eps_frac > 0.0 && eps_frac < 1.0);
        let min_width = (1.0 / eps_frac).ceil().max(2.0) as u64;
        let collide = ((universe as f64).ln() / (min_width as f64).ln()).max(1.0);
        let rows = (collide / eps_frac).ceil() as usize;
        Self::new(rows, min_width)
    }

    /// Deterministic per-item assembly error bound for first moment `f1`
    /// over a universe of `universe` items.
    pub fn error_bound(&self, f1: i64, universe: u64) -> f64 {
        let p1 = self.moduli[0] as f64;
        let collide = ((universe as f64).ln() / p1.ln()).max(0.0);
        f1.max(0) as f64 * collide / self.moduli.len() as f64
    }
}

impl CounterMap for CrPrecisMap {
    fn counters(&self) -> usize {
        self.total
    }
    fn map(&self, item: u64, out: &mut Vec<u32>) {
        for (i, &p) in self.moduli.iter().enumerate() {
            out.push(self.offsets[i] + (item % p) as u32);
        }
    }
    fn assemble(&self, item: u64, counters: &[i64]) -> i64 {
        let t = self.moduli.len() as i64;
        let sum: i64 = self
            .moduli
            .iter()
            .enumerate()
            .map(|(i, &p)| counters[(self.offsets[i] + (item % p) as u32) as usize])
            .sum();
        if sum >= 0 {
            (sum + t / 2) / t
        } else {
            -((-sum + t / 2) / t)
        }
    }
    fn setup_words(&self) -> usize {
        self.moduli.len() + 1
    }
    fn rows(&self) -> usize {
        self.moduli.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use std::collections::HashMap;

    fn apply_stream<M: CounterMap>(map: &M, stream: &[(u64, i64)]) -> Vec<i64> {
        let mut counters = vec![0i64; map.counters()];
        let mut idx = Vec::new();
        for &(item, delta) in stream {
            idx.clear();
            map.map(item, &mut idx);
            for &c in &idx {
                counters[c as usize] += delta;
            }
        }
        counters
    }

    fn random_stream(n: usize, universe: u64, seed: u64) -> (Vec<(u64, i64)>, HashMap<u64, i64>) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut live: Vec<u64> = Vec::new();
        let mut truth: HashMap<u64, i64> = HashMap::new();
        let mut stream = Vec::with_capacity(n);
        for _ in 0..n {
            if !live.is_empty() && rng.gen_bool(0.3) {
                let pos = rng.gen_range(0..live.len());
                let item = live.swap_remove(pos);
                stream.push((item, -1));
                *truth.get_mut(&item).unwrap() -= 1;
            } else {
                let r: f64 = rng.gen();
                let item = ((r * r) * universe as f64) as u64;
                live.push(item);
                stream.push((item, 1));
                *truth.entry(item).or_insert(0) += 1;
            }
        }
        (stream, truth)
    }

    #[test]
    fn identity_map_is_exact() {
        let map = IdentityMap::new(1000);
        let (stream, truth) = random_stream(10_000, 1000, 1);
        let counters = apply_stream(&map, &stream);
        for item in 0..1000u64 {
            assert_eq!(
                map.assemble(item, &counters),
                truth.get(&item).copied().unwrap_or(0)
            );
        }
        assert_eq!(map.rows(), 1);
    }

    #[test]
    fn countmin_map_matches_countmin_sketch() {
        use crate::{CountMin, FreqSketch};
        let (stream, _) = random_stream(5_000, 2_000, 5);
        let map = CountMinMap::new(3, 64, 42);
        let mut cm = CountMin::new(3, 64, 42);
        let counters = apply_stream(&map, &stream);
        for &(item, delta) in &stream {
            cm.update(item, delta);
        }
        for item in 0..2_000u64 {
            assert_eq!(map.assemble(item, &counters), cm.estimate(item));
        }
    }

    #[test]
    fn crprecis_map_matches_crprecis_sketch() {
        use crate::{CrPrecis, FreqSketch};
        let (stream, _) = random_stream(5_000, 2_000, 9);
        let map = CrPrecisMap::new(4, 30);
        let mut cr = CrPrecis::new(4, 30);
        let counters = apply_stream(&map, &stream);
        for &(item, delta) in &stream {
            cr.update(item, delta);
        }
        for item in 0..2_000u64 {
            assert_eq!(map.assemble(item, &counters), cr.estimate(item));
        }
    }

    #[test]
    fn countmin_never_underestimates_nonnegative_truth() {
        let map = CountMinMap::appendix_h(0.1, 7);
        let (stream, truth) = random_stream(20_000, 5_000, 11);
        let counters = apply_stream(&map, &stream);
        for (&item, &t) in &truth {
            assert!(t >= 0);
            assert!(map.assemble(item, &counters) >= t);
        }
    }

    #[test]
    fn crprecis_guarantee_shape_bound() {
        let universe = 5_000u64;
        let map = CrPrecisMap::for_guarantee(0.25, universe);
        let (stream, truth) = random_stream(20_000, universe, 13);
        let counters = apply_stream(&map, &stream);
        let f1: i64 = truth.values().sum();
        let bound = map.error_bound(f1, universe);
        for item in 0..universe {
            let t = truth.get(&item).copied().unwrap_or(0);
            let err = (map.assemble(item, &counters) - t).abs() as f64;
            assert!(err <= bound + 0.5, "item {item}: {err} > {bound}");
        }
    }

    #[test]
    fn map_emits_rows_indices_in_range() {
        let maps: Vec<Box<dyn CounterMap>> = vec![
            Box::new(IdentityMap::new(100)),
            Box::new(CountMinMap::new(4, 32, 3)),
            Box::new(CrPrecisMap::new(3, 11)),
        ];
        for map in &maps {
            let mut out = Vec::new();
            for item in 0..100u64 {
                out.clear();
                map.map(item, &mut out);
                assert_eq!(out.len(), map.rows());
                assert!(out.iter().all(|&c| (c as usize) < map.counters()));
            }
        }
    }
}
