//! The Count-Min sketch (Cormode & Muthukrishnan, reference [3]).
//!
//! A `d × w` array of counters with one pairwise-independent hash per row.
//! On strict-turnstile streams (all true frequencies non-negative) the
//! min-over-rows point query never under-estimates and over-estimates by
//! more than `e·F1/w` with probability at least `1 − e^{−d}` per query.
//!
//! Appendix H uses a Count-Min with `27/ε` counters per row so each
//! `f_ℓ(n)` is within `ε·F1(n)/3` with probability ≥ 8/9; the sketch is
//! linear, so each site can run one and the coordinator combines them.

use crate::hash::HashFamily;
use crate::{FreqSketch, SketchError};

/// Count-Min sketch with `i64` counters (supports deletions).
#[derive(Debug, Clone)]
pub struct CountMin {
    hashes: HashFamily,
    rows: usize,
    width: u64,
    table: Vec<i64>, // rows × width, row-major
}

impl CountMin {
    /// Create a `rows × width` sketch seeded deterministically.
    ///
    /// Panics on a degenerate shape; use [`CountMin::try_new`] for a typed
    /// error instead.
    pub fn new(rows: usize, width: u64, seed: u64) -> Self {
        Self::try_new(rows, width, seed).expect("rows and width must be >= 1")
    }

    /// Checked constructor: requires `rows ≥ 1` and `width ≥ 1`.
    pub fn try_new(rows: usize, width: u64, seed: u64) -> Result<Self, SketchError> {
        if rows == 0 {
            return Err(SketchError::ZeroRows);
        }
        if width == 0 {
            return Err(SketchError::ZeroWidth);
        }
        Ok(CountMin {
            hashes: HashFamily::new(rows, width, seed),
            rows,
            width,
            table: vec![0i64; rows * width as usize],
        })
    }

    /// Shape for guarantee "error ≤ eps_frac·F1 w.p. ≥ 1 − delta":
    /// `width = ⌈e/eps_frac⌉`, `rows = ⌈ln(1/delta)⌉`.
    ///
    /// Panics on out-of-range parameters; use
    /// [`CountMin::try_for_guarantee`] for a typed error instead.
    pub fn for_guarantee(eps_frac: f64, delta: f64, seed: u64) -> Self {
        Self::try_for_guarantee(eps_frac, delta, seed).expect("eps_frac and delta must be in (0,1)")
    }

    /// Checked [`CountMin::for_guarantee`]: `eps_frac` and `delta` must lie
    /// strictly inside `(0, 1)`.
    pub fn try_for_guarantee(eps_frac: f64, delta: f64, seed: u64) -> Result<Self, SketchError> {
        if !(eps_frac > 0.0 && eps_frac < 1.0) {
            return Err(SketchError::EpsOutOfRange { eps: eps_frac });
        }
        if !(delta > 0.0 && delta < 1.0) {
            return Err(SketchError::DeltaOutOfRange { delta });
        }
        let width = (std::f64::consts::E / eps_frac).ceil() as u64;
        let rows = (1.0 / delta).ln().ceil().max(1.0) as usize;
        Self::try_new(rows, width, seed)
    }

    /// The Appendix H shape: `27/ε` counters per row so that the per-item
    /// error is at most `ε·F1/3` with probability ≥ 8/9 (one row has
    /// failure probability `e·(ε/27)/(ε/3) = e/9 ≈ 0.30`; three rows give
    /// ≤ 1/9 by the min bound). We use 3 rows.
    pub fn appendix_h(eps: f64, seed: u64) -> Self {
        assert!(eps > 0.0 && eps < 1.0);
        Self::new(3, (27.0 / eps).ceil() as u64, seed)
    }

    /// Number of rows `d`.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Row width `w`.
    pub fn width(&self) -> u64 {
        self.width
    }

    #[inline]
    fn idx(&self, row: usize, col: u64) -> usize {
        row * self.width as usize + col as usize
    }

    /// Two sketches are mergeable iff same shape and same hash functions.
    pub fn same_shape(&self, other: &Self) -> bool {
        self.rows == other.rows
            && self.width == other.width
            && self.hashes.functions() == other.hashes.functions()
    }

    /// Direct access to a row's counters (diagnostics / tests).
    pub fn row(&self, row: usize) -> &[i64] {
        &self.table[row * self.width as usize..(row + 1) * self.width as usize]
    }
}

impl FreqSketch for CountMin {
    fn update(&mut self, item: u64, delta: i64) {
        for r in 0..self.rows {
            let c = self.hashes.hash(r, item);
            let i = self.idx(r, c);
            self.table[i] += delta;
        }
    }

    /// Min over rows — on strict-turnstile streams this never
    /// under-estimates.
    fn estimate(&self, item: u64) -> i64 {
        (0..self.rows)
            .map(|r| self.table[self.idx(r, self.hashes.hash(r, item))])
            .min()
            .expect("rows >= 1")
    }

    fn merge(&mut self, other: &Self) {
        assert!(self.same_shape(other), "incompatible Count-Min shapes");
        for (a, b) in self.table.iter_mut().zip(other.table.iter()) {
            *a += b;
        }
    }

    fn space_words(&self) -> usize {
        // Counters plus 2 words per hash function (a, b).
        self.table.len() + 2 * self.rows
    }

    fn clear(&mut self) {
        self.table.fill(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use std::collections::HashMap;

    fn zipfish_workload(n: usize, universe: u64, seed: u64) -> Vec<(u64, i64)> {
        // Skewed inserts with occasional deletes of previously-inserted items.
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut live: Vec<u64> = Vec::new();
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            if !live.is_empty() && rng.gen_bool(0.25) {
                let pos = rng.gen_range(0..live.len());
                let item = live.swap_remove(pos);
                out.push((item, -1));
            } else {
                // Quadratically skewed item choice.
                let r: f64 = rng.gen();
                let item = ((r * r) * universe as f64) as u64;
                live.push(item);
                out.push((item, 1));
            }
        }
        out
    }

    #[test]
    fn never_underestimates_on_strict_turnstile() {
        let mut cm = CountMin::new(4, 128, 9);
        let mut truth: HashMap<u64, i64> = HashMap::new();
        let mut f1 = 0i64;
        for (item, delta) in zipfish_workload(20_000, 5_000, 3) {
            cm.update(item, delta);
            *truth.entry(item).or_insert(0) += delta;
            f1 += delta;
        }
        assert!(f1 > 0);
        for (&item, &t) in &truth {
            assert!(t >= 0, "strict turnstile violated by workload");
            assert!(cm.estimate(item) >= t, "under-estimate for {item}");
        }
    }

    #[test]
    fn error_bounded_by_e_f1_over_w() {
        let width = 256u64;
        let mut cm = CountMin::new(5, width, 1);
        let mut truth: HashMap<u64, i64> = HashMap::new();
        let mut f1 = 0i64;
        for (item, delta) in zipfish_workload(30_000, 10_000, 7) {
            cm.update(item, delta);
            *truth.entry(item).or_insert(0) += delta;
            f1 += delta;
        }
        let bound = (std::f64::consts::E * f1 as f64 / width as f64).ceil() as i64;
        let mut failures = 0usize;
        for (&item, &t) in &truth {
            if cm.estimate(item) - t > bound {
                failures += 1;
            }
        }
        // Per-query failure probability ≤ e^-5 < 0.7%; allow 2% slack.
        assert!(
            failures <= truth.len() / 50,
            "{failures}/{} beyond bound",
            truth.len()
        );
    }

    #[test]
    fn merge_equals_union_stream() {
        let mut a = CountMin::new(3, 64, 5);
        let mut b = CountMin::new(3, 64, 5);
        let mut whole = CountMin::new(3, 64, 5);
        for (i, (item, delta)) in zipfish_workload(5_000, 1000, 11).into_iter().enumerate() {
            if i % 2 == 0 {
                a.update(item, delta);
            } else {
                b.update(item, delta);
            }
            whole.update(item, delta);
        }
        a.merge(&b);
        for item in 0..1000u64 {
            assert_eq!(a.estimate(item), whole.estimate(item));
        }
    }

    #[test]
    #[should_panic(expected = "incompatible")]
    fn merge_rejects_different_seeds() {
        let mut a = CountMin::new(3, 64, 1);
        let b = CountMin::new(3, 64, 2);
        a.merge(&b);
    }

    #[test]
    fn clear_resets_counts() {
        let mut cm = CountMin::new(2, 16, 0);
        cm.update(3, 10);
        cm.clear();
        assert_eq!(cm.estimate(3), 0);
    }

    #[test]
    fn guarantee_constructor_shapes() {
        let cm = CountMin::for_guarantee(0.01, 0.01, 0);
        assert!(cm.width() >= 272); // e/0.01 ≈ 271.8
        assert!(cm.rows() >= 5); // ln 100 ≈ 4.6
        let ah = CountMin::appendix_h(0.1, 0);
        assert_eq!(ah.width(), 270);
        assert_eq!(ah.rows(), 3);
    }

    #[test]
    fn space_words_counts_table_and_hashes() {
        let cm = CountMin::new(3, 64, 0);
        assert_eq!(cm.space_words(), 3 * 64 + 6);
    }

    #[test]
    fn deletions_cancel_insertions_exactly() {
        let mut cm = CountMin::new(4, 32, 13);
        for item in 0..100u64 {
            cm.update(item, 5);
        }
        for item in 0..100u64 {
            cm.update(item, -5);
        }
        // Sketch is linear: all counters return to zero.
        for r in 0..cm.rows() {
            assert!(cm.row(r).iter().all(|&c| c == 0));
        }
    }
}
