//! Exact frequency map — ground truth and the "per-item counters" variant
//! of Appendix H (space `O(|U|)` per site, which the sketches replace).

use crate::FreqSketch;
use std::collections::HashMap;

/// Exact per-item counts with `F1` maintenance.
#[derive(Debug, Clone, Default)]
pub struct ExactCounts {
    counts: HashMap<u64, i64>,
    f1: i64,
}

impl ExactCounts {
    /// Empty dataset.
    pub fn new() -> Self {
        Self::default()
    }

    /// The first frequency moment `F1 = Σ_ℓ f_ℓ` (= `|D|` for item
    /// streams).
    pub fn f1(&self) -> i64 {
        self.f1
    }

    /// Number of items with non-zero frequency.
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    /// Iterate over `(item, frequency)` pairs with non-zero frequency.
    pub fn iter(&self) -> impl Iterator<Item = (u64, i64)> + '_ {
        self.counts.iter().map(|(&k, &v)| (k, v))
    }

    /// Items whose frequency is at least `threshold`.
    pub fn heavy_hitters(&self, threshold: i64) -> Vec<(u64, i64)> {
        let mut out: Vec<(u64, i64)> = self
            .counts
            .iter()
            .filter(|&(_, &v)| v >= threshold)
            .map(|(&k, &v)| (k, v))
            .collect();
        out.sort_unstable();
        out
    }
}

impl FreqSketch for ExactCounts {
    fn update(&mut self, item: u64, delta: i64) {
        self.f1 += delta;
        let e = self.counts.entry(item).or_insert(0);
        *e += delta;
        if *e == 0 {
            self.counts.remove(&item);
        }
    }

    fn estimate(&self, item: u64) -> i64 {
        self.counts.get(&item).copied().unwrap_or(0)
    }

    fn merge(&mut self, other: &Self) {
        for (&item, &v) in &other.counts {
            self.update(item, v);
        }
    }

    fn space_words(&self) -> usize {
        // Two words (key, count) per stored item.
        2 * self.counts.len()
    }

    fn clear(&mut self) {
        self.counts.clear();
        self.f1 = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracks_counts_and_f1() {
        let mut ex = ExactCounts::new();
        ex.update(1, 3);
        ex.update(2, 2);
        ex.update(1, -1);
        assert_eq!(ex.estimate(1), 2);
        assert_eq!(ex.estimate(2), 2);
        assert_eq!(ex.estimate(99), 0);
        assert_eq!(ex.f1(), 4);
        assert_eq!(ex.distinct(), 2);
    }

    #[test]
    fn zero_counts_are_evicted() {
        let mut ex = ExactCounts::new();
        ex.update(7, 5);
        ex.update(7, -5);
        assert_eq!(ex.distinct(), 0);
        assert_eq!(ex.space_words(), 0);
        assert_eq!(ex.f1(), 0);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = ExactCounts::new();
        let mut b = ExactCounts::new();
        a.update(1, 2);
        b.update(1, 3);
        b.update(2, 1);
        a.merge(&b);
        assert_eq!(a.estimate(1), 5);
        assert_eq!(a.estimate(2), 1);
        assert_eq!(a.f1(), 6);
    }

    #[test]
    fn heavy_hitters_sorted_and_filtered() {
        let mut ex = ExactCounts::new();
        for (item, c) in [(5u64, 10i64), (1, 3), (9, 10), (2, 1)] {
            ex.update(item, c);
        }
        assert_eq!(ex.heavy_hitters(4), vec![(5, 10), (9, 10)]);
        assert_eq!(ex.heavy_hitters(1).len(), 4);
    }
}
