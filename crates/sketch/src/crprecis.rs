//! The CR-precis deterministic frequency summary (Ganguly & Majumder,
//! references [6][7] of the paper).
//!
//! Rows of counters indexed by residues modulo *distinct primes*
//! `p_1 < p_2 < ... < p_t`: row `r` has `p_r` counters and item `ℓ` maps to
//! counter `ℓ mod p_r`. Two distinct items `ℓ ≠ ℓ'` (both `< U`) collide in
//! row `r` only if `p_r | ℓ − ℓ'`, and since `|ℓ − ℓ'| < U` at most
//! `log_{p_1} U` of the (distinct, ≥ p_1) primes can divide it. Hence with
//! `t` rows the *average-over-rows* estimator errs by at most
//!
//! ```text
//! |f̂_ℓ − f_ℓ| ≤ F1 · log_{p_1}(U) / t        (deterministically)
//! ```
//!
//! The paper's Appendix H notes that taking the **average** instead of
//! Ganguly–Majumder's minimum "works too and yields a linear sketch", which
//! is what the distributed tracker needs; we implement both estimators.

use crate::primes::primes_from;
use crate::{FreqSketch, SketchError};

/// CR-precis sketch with `i64` counters (linear; supports deletions).
#[derive(Debug, Clone)]
pub struct CrPrecis {
    /// Row moduli (distinct primes).
    moduli: Vec<u64>,
    /// Start offset of each row in `table`.
    offsets: Vec<usize>,
    table: Vec<i64>,
}

impl CrPrecis {
    /// `rows` rows with prime moduli starting at the first prime ≥
    /// `min_width`.
    ///
    /// Panics on a degenerate shape; use [`CrPrecis::try_new`] for a typed
    /// error instead.
    pub fn new(rows: usize, min_width: u64) -> Self {
        Self::try_new(rows, min_width).expect("need rows >= 1 and min_width >= 2")
    }

    /// Checked constructor: requires `rows ≥ 1` and `min_width ≥ 2` (there
    /// is no prime below 2 to index a row with).
    pub fn try_new(rows: usize, min_width: u64) -> Result<Self, SketchError> {
        if rows == 0 {
            return Err(SketchError::ZeroRows);
        }
        if min_width < 2 {
            return Err(SketchError::ZeroWidth);
        }
        let moduli = primes_from(min_width, rows);
        let mut offsets = Vec::with_capacity(rows);
        let mut total = 0usize;
        for &p in &moduli {
            offsets.push(total);
            total += p as usize;
        }
        Ok(CrPrecis {
            moduli,
            offsets,
            table: vec![0i64; total],
        })
    }

    /// Shape guaranteeing `|f̂_ℓ − f_ℓ| ≤ eps_frac · F1` deterministically
    /// for a universe of size `universe`, via the average estimator:
    /// chooses `p_1` ≈ the first prime ≥ 1/eps_frac (so rows aren't too
    /// narrow) and `t = ⌈log_{p_1}(U) / eps_frac⌉` rows.
    pub fn for_guarantee(eps_frac: f64, universe: u64) -> Self {
        assert!(eps_frac > 0.0 && eps_frac < 1.0);
        assert!(universe >= 2);
        let min_width = (1.0 / eps_frac).ceil().max(2.0) as u64;
        let collide = ((universe as f64).ln() / (min_width as f64).ln()).max(1.0);
        let rows = (collide / eps_frac).ceil() as usize;
        Self::new(rows, min_width)
    }

    /// Number of rows `t`.
    pub fn rows(&self) -> usize {
        self.moduli.len()
    }

    /// The prime moduli of the rows.
    pub fn moduli(&self) -> &[u64] {
        &self.moduli
    }

    /// Deterministic worst-case error of [`estimate`](FreqSketch::estimate)
    /// on a stream with first moment `f1`, for items below `universe`:
    /// `f1 · log_{p_1}(U) / t`.
    pub fn error_bound(&self, f1: i64, universe: u64) -> f64 {
        let p1 = self.moduli[0] as f64;
        let collide = ((universe as f64).ln() / p1.ln()).max(0.0);
        f1.max(0) as f64 * collide / self.rows() as f64
    }

    #[inline]
    fn cell(&self, row: usize, item: u64) -> usize {
        self.offsets[row] + (item % self.moduli[row]) as usize
    }

    /// Min-over-rows estimator (the original Ganguly–Majumder choice).
    /// Never under-estimates on strict-turnstile streams, but is not
    /// linear in the sketch contents.
    pub fn estimate_min(&self, item: u64) -> i64 {
        (0..self.rows())
            .map(|r| self.table[self.cell(r, item)])
            .min()
            .expect("rows >= 1")
    }

    /// Two sketches are mergeable iff they use the same moduli.
    pub fn same_shape(&self, other: &Self) -> bool {
        self.moduli == other.moduli
    }
}

impl FreqSketch for CrPrecis {
    fn update(&mut self, item: u64, delta: i64) {
        for r in 0..self.rows() {
            let c = self.cell(r, item);
            self.table[c] += delta;
        }
    }

    /// Average-over-rows estimator (the paper's linear variant), rounded to
    /// the nearest integer.
    fn estimate(&self, item: u64) -> i64 {
        let sum: i64 = (0..self.rows())
            .map(|r| self.table[self.cell(r, item)])
            .sum();
        let t = self.rows() as i64;
        // Round-half-up division, handling negatives (merged deltas).
        if sum >= 0 {
            (sum + t / 2) / t
        } else {
            -((-sum + t / 2) / t)
        }
    }

    fn merge(&mut self, other: &Self) {
        assert!(self.same_shape(other), "incompatible CR-precis shapes");
        for (a, b) in self.table.iter_mut().zip(other.table.iter()) {
            *a += b;
        }
    }

    fn space_words(&self) -> usize {
        // Counters plus one word per row modulus.
        self.table.len() + self.moduli.len()
    }

    fn clear(&mut self) {
        self.table.fill(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use std::collections::HashMap;

    #[test]
    fn rows_use_distinct_primes() {
        let cr = CrPrecis::new(5, 10);
        assert_eq!(cr.moduli(), &[11, 13, 17, 19, 23]);
        assert_eq!(cr.space_words(), (11 + 13 + 17 + 19 + 23) + 5);
    }

    #[test]
    fn exact_on_sparse_input() {
        let mut cr = CrPrecis::new(4, 50);
        cr.update(3, 7);
        cr.update(1000, -2);
        assert_eq!(cr.estimate(3), 7);
        assert_eq!(cr.estimate(1000), -2);
        assert_eq!(cr.estimate(42), 0);
    }

    #[test]
    fn deterministic_error_bound_holds() {
        let universe = 10_000u64;
        let eps = 0.2;
        let mut cr = CrPrecis::for_guarantee(eps, universe);
        let mut truth: HashMap<u64, i64> = HashMap::new();
        let mut rng = SmallRng::seed_from_u64(31);
        let mut f1 = 0i64;
        for _ in 0..30_000 {
            let item = rng.gen_range(0..universe);
            cr.update(item, 1);
            *truth.entry(item).or_insert(0) += 1;
            f1 += 1;
        }
        let bound = cr.error_bound(f1, universe);
        assert!(bound <= eps * f1 as f64 + 1.0, "shape bound miscomputed");
        for item in 0..universe {
            let t = truth.get(&item).copied().unwrap_or(0);
            let err = (cr.estimate(item) - t).abs() as f64;
            assert!(
                err <= bound + 0.5, // rounding slack
                "item {item}: err {err} > bound {bound}"
            );
        }
    }

    #[test]
    fn min_estimator_never_underestimates_inserts() {
        let mut cr = CrPrecis::new(3, 20);
        let mut truth: HashMap<u64, i64> = HashMap::new();
        let mut rng = SmallRng::seed_from_u64(8);
        for _ in 0..5_000 {
            let item = rng.gen_range(0..500u64);
            cr.update(item, 1);
            *truth.entry(item).or_insert(0) += 1;
        }
        for (&item, &t) in &truth {
            assert!(cr.estimate_min(item) >= t);
        }
    }

    #[test]
    fn merge_equals_union_stream() {
        let mut a = CrPrecis::new(4, 30);
        let mut b = CrPrecis::new(4, 30);
        let mut whole = CrPrecis::new(4, 30);
        let mut rng = SmallRng::seed_from_u64(21);
        for i in 0..4_000 {
            let item = rng.gen_range(0..800u64);
            let delta = if rng.gen_bool(0.3) { -1 } else { 1 };
            if i % 2 == 0 {
                a.update(item, delta);
            } else {
                b.update(item, delta);
            }
            whole.update(item, delta);
        }
        a.merge(&b);
        for item in 0..800u64 {
            assert_eq!(a.estimate(item), whole.estimate(item));
            assert_eq!(a.estimate_min(item), whole.estimate_min(item));
        }
    }

    #[test]
    fn linearity_deletions_cancel() {
        let mut cr = CrPrecis::new(3, 11);
        for item in 0..200u64 {
            cr.update(item, 3);
            cr.update(item, -3);
        }
        assert!(cr.table.iter().all(|&c| c == 0));
    }

    #[test]
    #[should_panic(expected = "incompatible")]
    fn merge_rejects_shape_mismatch() {
        let mut a = CrPrecis::new(3, 11);
        let b = CrPrecis::new(3, 13);
        a.merge(&b);
    }
}
