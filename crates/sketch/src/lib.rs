//! # dsv-sketch — sketching substrate
//!
//! The small-space frequency summaries that Appendix H of *"Variability in
//! Data Streams"* plugs into its distributed frequency tracker:
//!
//! * [`PairwiseHash`] — Carter–Wegman pairwise-independent hashing over the
//!   Mersenne prime `2^61 − 1`, the randomness source for Count-Min.
//! * [`CountMin`] — the Count-Min sketch of Cormode & Muthukrishnan
//!   (reference \[3\] of the paper): point queries within `ε'·F1` with
//!   probability `1 − δ`, never under-estimating on strict-turnstile
//!   streams.
//! * [`CrPrecis`] — the deterministic CR-precis structure of Ganguly &
//!   Majumder (references \[6\]\[7\]): rows of counters indexed by residues
//!   modulo distinct primes; the paper uses the *average-over-rows*
//!   estimator, which makes it a linear sketch.
//! * [`ExactCounts`] — exact frequency map, used as ground truth and as the
//!   "per-item counters" variant of Appendix H.
//!
//! All sketches are **linear**: they support `merge` (add) and so can be
//! maintained per-site and combined at the coordinator, which is exactly
//! how Appendix H uses them ("the coordinator can then linearly combine its
//! estimates").

#![warn(missing_docs)]

mod countmin;
mod crprecis;
mod exact;
mod hash;
mod primes;
mod reduce;

pub use countmin::CountMin;
pub use crprecis::CrPrecis;
pub use exact::ExactCounts;
pub use hash::{HashFamily, PairwiseHash};
pub use primes::{is_prime, primes_from};
pub use reduce::{CountMinMap, CounterMap, CrPrecisMap, IdentityMap};

/// A sketch shape or guarantee parameter that cannot be built.
///
/// Returned by the `try_*` constructors ([`CountMin::try_new`],
/// [`CrPrecis::try_new`], …) instead of panicking, so configuration
/// assembled from user input surfaces as a typed, displayable error.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SketchError {
    /// A sketch needs at least one row.
    ZeroRows,
    /// Row width (or the minimum prime modulus) is too small to index.
    ZeroWidth,
    /// An error fraction outside `(0, 1)`.
    EpsOutOfRange {
        /// The rejected value.
        eps: f64,
    },
    /// A failure probability outside `(0, 1)`.
    DeltaOutOfRange {
        /// The rejected value.
        delta: f64,
    },
    /// The item universe must contain at least one item.
    EmptyUniverse,
}

impl std::fmt::Display for SketchError {
    fn fmt(&self, fm: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SketchError::ZeroRows => write!(fm, "sketch needs at least one row"),
            SketchError::ZeroWidth => write!(fm, "sketch row width is too small"),
            SketchError::EpsOutOfRange { eps } => {
                write!(fm, "error fraction must be in (0, 1), got {eps}")
            }
            SketchError::DeltaOutOfRange { delta } => {
                write!(fm, "failure probability must be in (0, 1), got {delta}")
            }
            SketchError::EmptyUniverse => write!(fm, "item universe must be non-empty"),
        }
    }
}

impl std::error::Error for SketchError {}

/// Common interface of the frequency summaries used by Appendix H.
pub trait FreqSketch {
    /// Apply `delta` copies of `item` (negative = deletions).
    fn update(&mut self, item: u64, delta: i64);

    /// Point-query estimate of `f_item`.
    fn estimate(&self, item: u64) -> i64;

    /// Add another sketch of identical shape into this one.
    fn merge(&mut self, other: &Self);

    /// Number of 64-bit words of state (the "space" axis of Appendix H).
    fn space_words(&self) -> usize;

    /// Reset all counters to zero, keeping the hash functions / shape.
    fn clear(&mut self);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The three sketches agree exactly on a collision-free workload.
    #[test]
    fn sketches_agree_on_tiny_universe() {
        let mut cm = CountMin::new(4, 64, 42);
        let mut cr = CrPrecis::new(4, 64);
        let mut ex = ExactCounts::new();
        for item in 0..8u64 {
            for _ in 0..(item + 1) {
                cm.update(item, 1);
                cr.update(item, 1);
                ex.update(item, 1);
            }
        }
        for item in 0..8u64 {
            let truth = (item + 1) as i64;
            assert_eq!(ex.estimate(item), truth);
            // CM/CR may over-estimate, never under-estimate here (inserts only).
            assert!(cm.estimate(item) >= truth);
            assert!(cr.estimate_min(item) >= truth);
        }
    }
}
