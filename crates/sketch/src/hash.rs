//! Pairwise-independent hashing.
//!
//! Appendix H reduces the item universe `U` to a small number of counters
//! "using a pairwise-independent hash function h". We implement the classic
//! Carter–Wegman construction `h(x) = ((a·x + b) mod p) mod w` over the
//! Mersenne prime `p = 2^61 − 1`, with fast modular reduction.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The Mersenne prime `2^61 − 1` used as the hash field.
pub const MERSENNE61: u64 = (1u64 << 61) - 1;

/// Reduce a 128-bit value modulo `2^61 − 1` using the Mersenne identity
/// `2^61 ≡ 1 (mod p)`.
#[inline]
fn mod_mersenne61(x: u128) -> u64 {
    let p = MERSENNE61 as u128;
    // Fold twice in 128 bits: x = hi·2^61 + lo ≡ hi + lo (mod p). After the
    // first fold the value is < 2^68; after the second it is < p + 128, so
    // one conditional subtraction finishes the reduction.
    let x = (x >> 61) + (x & p);
    let x = (x >> 61) + (x & p);
    let mut s = x as u64;
    if s >= MERSENNE61 {
        s -= MERSENNE61;
    }
    s
}

/// A single pairwise-independent hash function into `0..w`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PairwiseHash {
    a: u64,
    b: u64,
    w: u64,
}

impl PairwiseHash {
    /// Draw a random function into `0..w` (w ≥ 1) from the family.
    pub fn random<R: Rng>(w: u64, rng: &mut R) -> Self {
        assert!(w >= 1);
        PairwiseHash {
            a: rng.gen_range(1..MERSENNE61),
            b: rng.gen_range(0..MERSENNE61),
            w,
        }
    }

    /// Construct with explicit coefficients (for tests / reproducibility).
    pub fn with_coefficients(a: u64, b: u64, w: u64) -> Self {
        assert!((1..MERSENNE61).contains(&a) && b < MERSENNE61 && w >= 1);
        PairwiseHash { a, b, w }
    }

    /// Range size `w`.
    pub fn range(&self) -> u64 {
        self.w
    }

    /// Evaluate the hash.
    #[inline]
    pub fn hash(&self, x: u64) -> u64 {
        // Inputs ≥ p are first reduced; this keeps pairwise independence on
        // the sub-universe [0, p) which covers all practical item ids.
        let x = x % MERSENNE61;
        let v = mod_mersenne61(self.a as u128 * x as u128 + self.b as u128);
        v % self.w
    }
}

/// An indexed family of independent pairwise hash functions, one per sketch
/// row, all derived deterministically from one seed.
#[derive(Debug, Clone)]
pub struct HashFamily {
    fns: Vec<PairwiseHash>,
}

impl HashFamily {
    /// `rows` independent functions into `0..w`, derived from `seed`.
    pub fn new(rows: usize, w: u64, seed: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        HashFamily {
            fns: (0..rows)
                .map(|_| PairwiseHash::random(w, &mut rng))
                .collect(),
        }
    }

    /// Number of functions.
    pub fn rows(&self) -> usize {
        self.fns.len()
    }

    /// Evaluate function `row` on `x`.
    #[inline]
    pub fn hash(&self, row: usize, x: u64) -> u64 {
        self.fns[row].hash(x)
    }

    /// Access the underlying functions.
    pub fn functions(&self) -> &[PairwiseHash] {
        &self.fns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mersenne_reduction_matches_naive() {
        let cases: Vec<u128> = vec![
            0,
            1,
            MERSENNE61 as u128 - 1,
            MERSENNE61 as u128,
            MERSENNE61 as u128 + 1,
            u64::MAX as u128,
            u128::from(u64::MAX) * u128::from(u64::MAX),
            (MERSENNE61 as u128) * (MERSENNE61 as u128),
        ];
        for x in cases {
            assert_eq!(mod_mersenne61(x) as u128, x % MERSENNE61 as u128, "x = {x}");
        }
    }

    #[test]
    fn hash_is_deterministic_and_in_range() {
        let h = PairwiseHash::with_coefficients(12345, 6789, 97);
        for x in 0..10_000u64 {
            let v = h.hash(x);
            assert!(v < 97);
            assert_eq!(v, h.hash(x));
        }
    }

    #[test]
    fn identity_like_function_behaves() {
        // a = 1, b = 0, w = p: h(x) = x for x < p.
        let h = PairwiseHash::with_coefficients(1, 0, MERSENNE61);
        for x in [0u64, 1, 17, 1 << 40, MERSENNE61 - 1] {
            assert_eq!(h.hash(x), x);
        }
    }

    /// Empirical pairwise-collision check: for random functions into w
    /// buckets, P(h(x) = h(y)) ≈ 1/w for x ≠ y.
    #[test]
    fn collision_probability_close_to_uniform() {
        let w = 64u64;
        let trials = 4000usize;
        let mut rng = SmallRng::seed_from_u64(2024);
        let mut collisions = 0usize;
        for _ in 0..trials {
            let h = PairwiseHash::random(w, &mut rng);
            if h.hash(101) == h.hash(9_999_999) {
                collisions += 1;
            }
        }
        let p = collisions as f64 / trials as f64;
        let expect = 1.0 / w as f64;
        assert!(
            (p - expect).abs() < 4.0 * (expect / trials as f64).sqrt() + 0.01,
            "collision rate {p} vs expected {expect}"
        );
    }

    /// Buckets should be close to uniformly loaded for sequential keys.
    #[test]
    fn sequential_keys_spread_evenly() {
        let mut rng = SmallRng::seed_from_u64(5);
        let w = 16u64;
        let h = PairwiseHash::random(w, &mut rng);
        let n = 16_000u64;
        let mut counts = vec![0u64; w as usize];
        for x in 0..n {
            counts[h.hash(x) as usize] += 1;
        }
        let expect = n / w;
        for (b, &c) in counts.iter().enumerate() {
            assert!(
                c > expect / 2 && c < expect * 2,
                "bucket {b} has {c}, expected ≈ {expect}"
            );
        }
    }

    #[test]
    fn family_functions_differ() {
        let fam = HashFamily::new(8, 1024, 7);
        assert_eq!(fam.rows(), 8);
        // Distinct rows disagree somewhere on a small probe set.
        for i in 0..8 {
            for j in (i + 1)..8 {
                let differs = (0..64u64).any(|x| fam.hash(i, x) != fam.hash(j, x));
                assert!(differs, "rows {i} and {j} identical");
            }
        }
    }

    #[test]
    fn family_is_seed_deterministic() {
        let a = HashFamily::new(4, 100, 99);
        let b = HashFamily::new(4, 100, 99);
        for row in 0..4 {
            for x in 0..1000u64 {
                assert_eq!(a.hash(row, x), b.hash(row, x));
            }
        }
    }
}
