//! Small prime utilities for CR-precis row moduli.

/// Deterministic Miller–Rabin primality test, exact for all `u64` using the
/// standard 12-witness base set.
pub fn is_prime(n: u64) -> bool {
    if n < 2 {
        return false;
    }
    for p in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        if n == p {
            return true;
        }
        if n.is_multiple_of(p) {
            return false;
        }
    }
    // n-1 = d * 2^s with d odd.
    let mut d = n - 1;
    let mut s = 0u32;
    while d.is_multiple_of(2) {
        d /= 2;
        s += 1;
    }
    'witness: for a in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        let mut x = pow_mod(a, d, n);
        if x == 1 || x == n - 1 {
            continue;
        }
        for _ in 0..s - 1 {
            x = mul_mod(x, x, n);
            if x == n - 1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

fn mul_mod(a: u64, b: u64, m: u64) -> u64 {
    ((a as u128 * b as u128) % m as u128) as u64
}

fn pow_mod(mut base: u64, mut exp: u64, m: u64) -> u64 {
    let mut acc = 1u64 % m;
    base %= m;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = mul_mod(acc, base, m);
        }
        base = mul_mod(base, base, m);
        exp >>= 1;
    }
    acc
}

/// The first `count` primes that are ≥ `start`.
pub fn primes_from(start: u64, count: usize) -> Vec<u64> {
    let mut out = Vec::with_capacity(count);
    let mut n = start.max(2);
    while out.len() < count {
        if is_prime(n) {
            out.push(n);
        }
        n += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_primes_classified() {
        let primes: Vec<u64> = (0..60).filter(|&n| is_prime(n)).collect();
        assert_eq!(
            primes,
            vec![2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59]
        );
    }

    #[test]
    fn known_large_primes_and_composites() {
        assert!(is_prime((1u64 << 61) - 1)); // Mersenne prime M61
        assert!(is_prime(4_294_967_311)); // first prime > 2^32
        assert!(!is_prime(4_294_967_297)); // F5 = 641 × 6700417
        assert!(!is_prime(u64::MAX)); // 3 · 5 · 17 · ...
        assert!(is_prime(18_446_744_073_709_551_557)); // largest u64 prime
    }

    #[test]
    fn primes_from_is_sorted_distinct_and_geq_start() {
        let ps = primes_from(100, 20);
        assert_eq!(ps.len(), 20);
        assert!(ps[0] >= 100);
        assert!(ps.windows(2).all(|w| w[0] < w[1]));
        assert!(ps.iter().all(|&p| is_prime(p)));
        assert_eq!(ps[0], 101);
    }

    #[test]
    fn carmichael_numbers_rejected() {
        for c in [561u64, 1105, 1729, 2465, 2821, 6601, 8911, 41041, 825265] {
            assert!(!is_prime(c), "{c} is Carmichael, not prime");
        }
    }
}
