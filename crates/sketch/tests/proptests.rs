//! Property-based tests for the sketching substrate.

use dsv_sketch::{
    is_prime, primes_from, CountMin, CountMinMap, CounterMap, CrPrecis, CrPrecisMap, ExactCounts,
    FreqSketch, IdentityMap, PairwiseHash,
};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::collections::HashMap;

fn apply<S: FreqSketch>(sketch: &mut S, stream: &[(u64, i64)]) {
    for &(item, delta) in stream {
        sketch.update(item, delta);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Linearity: sketch(A) + sketch(B) == sketch(A ++ B), for both
    /// sketches, on arbitrary signed streams.
    #[test]
    fn sketches_are_linear(
        a in prop::collection::vec((0u64..500, -3i64..4), 0..200),
        b in prop::collection::vec((0u64..500, -3i64..4), 0..200),
        seed in 0u64..1000,
    ) {
        let mut cm_a = CountMin::new(3, 64, seed);
        let mut cm_b = CountMin::new(3, 64, seed);
        let mut cm_ab = CountMin::new(3, 64, seed);
        apply(&mut cm_a, &a);
        apply(&mut cm_b, &b);
        apply(&mut cm_ab, &a);
        apply(&mut cm_ab, &b);
        cm_a.merge(&cm_b);
        for item in (0..500u64).step_by(17) {
            prop_assert_eq!(cm_a.estimate(item), cm_ab.estimate(item));
        }

        let mut cr_a = CrPrecis::new(3, 13);
        let mut cr_b = CrPrecis::new(3, 13);
        let mut cr_ab = CrPrecis::new(3, 13);
        apply(&mut cr_a, &a);
        apply(&mut cr_b, &b);
        apply(&mut cr_ab, &a);
        apply(&mut cr_ab, &b);
        cr_a.merge(&cr_b);
        for item in (0..500u64).step_by(17) {
            prop_assert_eq!(cr_a.estimate(item), cr_ab.estimate(item));
        }
    }

    /// Count-Min never under-estimates when all true counts are ≥ 0.
    #[test]
    fn countmin_one_sided(
        inserts in prop::collection::vec((0u64..300, 1i64..5), 1..300),
        seed in 0u64..1000,
    ) {
        let mut cm = CountMin::new(4, 32, seed);
        let mut truth: HashMap<u64, i64> = HashMap::new();
        for &(item, c) in &inserts {
            cm.update(item, c);
            *truth.entry(item).or_insert(0) += c;
        }
        for (&item, &t) in &truth {
            prop_assert!(cm.estimate(item) >= t);
        }
    }

    /// ExactCounts is an exact multiset under arbitrary updates.
    #[test]
    fn exact_counts_is_exact(
        stream in prop::collection::vec((0u64..100, -5i64..6), 0..300),
    ) {
        let mut ex = ExactCounts::new();
        let mut truth: HashMap<u64, i64> = HashMap::new();
        let mut f1 = 0i64;
        for &(item, d) in &stream {
            ex.update(item, d);
            *truth.entry(item).or_insert(0) += d;
            f1 += d;
        }
        prop_assert_eq!(ex.f1(), f1);
        for (&item, &t) in &truth {
            prop_assert_eq!(ex.estimate(item), t);
        }
        prop_assert_eq!(ex.distinct(), truth.values().filter(|&&v| v != 0).count());
    }

    /// Pairwise hash: in range, deterministic, and uniform-ish over a
    /// random probe pair.
    #[test]
    fn pairwise_hash_range(a in 1u64..1000, b in 0u64..1000, w in 1u64..1_000, x in 0u64..u64::MAX) {
        let h = PairwiseHash::with_coefficients(a, b, w);
        prop_assert!(h.hash(x) < w);
        prop_assert_eq!(h.hash(x), h.hash(x));
        prop_assert_eq!(h.range(), w);
    }

    /// primes_from yields sorted, distinct primes ≥ start.
    #[test]
    fn primes_from_properties(start in 2u64..10_000, count in 1usize..30) {
        let ps = primes_from(start, count);
        prop_assert_eq!(ps.len(), count);
        prop_assert!(ps[0] >= start);
        prop_assert!(ps.windows(2).all(|w| w[0] < w[1]));
        prop_assert!(ps.iter().all(|&p| is_prime(p)));
    }

    /// CounterMap reductions agree with their standalone sketches and the
    /// identity map is exact.
    #[test]
    fn counter_maps_match_sketches(
        stream in prop::collection::vec((0u64..400, -2i64..3), 0..250),
        seed in 0u64..500,
    ) {
        let maps_and_counters = {
            let map = CountMinMap::new(3, 64, seed);
            let mut counters = vec![0i64; map.counters()];
            let mut idx = Vec::new();
            let mut cm = CountMin::new(3, 64, seed);
            for &(item, d) in &stream {
                idx.clear();
                map.map(item, &mut idx);
                for &c in &idx {
                    counters[c as usize] += d;
                }
                cm.update(item, d);
            }
            (map, counters, cm)
        };
        let (map, counters, cm) = maps_and_counters;
        for item in (0..400u64).step_by(13) {
            prop_assert_eq!(map.assemble(item, &counters), cm.estimate(item));
        }

        let idmap = IdentityMap::new(400);
        let mut id_counters = vec![0i64; idmap.counters()];
        let mut truth: HashMap<u64, i64> = HashMap::new();
        let mut idx = Vec::new();
        for &(item, d) in &stream {
            idx.clear();
            idmap.map(item, &mut idx);
            id_counters[idx[0] as usize] += d;
            *truth.entry(item).or_insert(0) += d;
        }
        for item in 0..400u64 {
            prop_assert_eq!(
                idmap.assemble(item, &id_counters),
                truth.get(&item).copied().unwrap_or(0)
            );
        }
    }

    /// CR-precis deterministic error bound holds on arbitrary insert
    /// streams (the Appendix H guarantee).
    #[test]
    fn crprecis_bound_always_holds(
        inserts in prop::collection::vec(0u64..2_000, 1..400),
        _seed in 0u64..10,
    ) {
        let universe = 2_000u64;
        let map = CrPrecisMap::for_guarantee(0.25, universe);
        let mut counters = vec![0i64; map.counters()];
        let mut truth: HashMap<u64, i64> = HashMap::new();
        let mut idx = Vec::new();
        for &item in &inserts {
            idx.clear();
            map.map(item, &mut idx);
            for &c in &idx {
                counters[c as usize] += 1;
            }
            *truth.entry(item).or_insert(0) += 1;
        }
        let f1 = inserts.len() as i64;
        let bound = map.error_bound(f1, universe);
        for (&item, &t) in &truth {
            let err = (map.assemble(item, &counters) - t).abs() as f64;
            prop_assert!(err <= bound + 0.5, "item {}: {} > {}", item, err, bound);
        }
    }
}

/// Smoke test that SmallRng-based construction differs across seeds (kept
/// outside proptest: a single fixed check).
#[test]
fn different_seeds_give_different_hashes() {
    let mut r1 = SmallRng::seed_from_u64(1);
    let mut r2 = SmallRng::seed_from_u64(2);
    let h1 = PairwiseHash::random(1 << 20, &mut r1);
    let h2 = PairwiseHash::random(1 << 20, &mut r2);
    let differs = (0..100u64).any(|x| h1.hash(x) != h2.hash(x));
    assert!(differs);
}
