//! Offline, API-compatible subset of the `proptest` crate.
//!
//! This workspace builds hermetically with no network access, so the real
//! `proptest` cannot be fetched from a registry. This crate implements the
//! surface the workspace's property tests use — the [`proptest!`] macro
//! (with `#![proptest_config(..)]`), [`strategy::Strategy`] implementations
//! for ranges / tuples / [`strategy::Just`] / [`prop_oneof!`] /
//! `prop::collection::vec`,
//! [`prelude::any`], and the `prop_assert*` macros — with compatible
//! signatures, so switching the workspace dependency back to the registry
//! `proptest = "1"` is a one-line change in the root `Cargo.toml`.
//!
//! Differences from the real crate, by design:
//!
//! * **No shrinking.** A failing case reports its inputs (via the
//!   `prop_assert*` message and the per-case seed) but is not minimized.
//! * **Fixed derivation of cases.** Each test derives its RNG from a hash
//!   of the test name and the case index, so runs are fully deterministic;
//!   there is no persistence file.

#![warn(missing_docs)]

/// Namespaced strategy constructors (`prop::collection::vec`, ...), mirror
/// of `proptest::prop`.
pub mod prop {
    /// Strategies for collections.
    pub mod collection {
        pub use crate::strategy::vec;
    }
}

/// Everything a property test needs, mirror of `proptest::prelude`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::test_runner::{TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Strategies: typed recipes for generating arbitrary values.
pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// A recipe for generating values of type [`Strategy::Value`].
    ///
    /// Mirror of `proptest::strategy::Strategy`, reduced to generation
    /// (no shrink tree).
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Erase the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// A type-erased strategy, mirror of `proptest::strategy::BoxedStrategy`.
    pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate(rng)
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, i8, u16, i16, u32, i32, u64, i64, usize, isize, f64);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);

    /// Types with a canonical "any value" strategy, mirror of
    /// `proptest::arbitrary::Arbitrary`.
    pub trait Arbitrary: Sized {
        /// Generate one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.gen::<bool>()
        }
    }

    impl Arbitrary for u64 {
        fn arbitrary(rng: &mut TestRng) -> u64 {
            rng.gen::<u64>()
        }
    }

    impl Arbitrary for u32 {
        fn arbitrary(rng: &mut TestRng) -> u32 {
            rng.gen::<u32>()
        }
    }

    impl Arbitrary for i64 {
        fn arbitrary(rng: &mut TestRng) -> i64 {
            rng.gen::<u64>() as i64
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            rng.gen::<f64>()
        }
    }

    /// The strategy returned by [`any`].
    pub struct AnyStrategy<T>(core::marker::PhantomData<fn() -> T>);

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// `any::<T>()` — the canonical strategy for all values of `T`.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(core::marker::PhantomData)
    }

    /// The strategy returned by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: core::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            assert!(
                self.size.start < self.size.end,
                "prop::collection::vec: empty length range {:?}",
                self.size
            );
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `prop::collection::vec(element, len_range)` — vectors whose length is
    /// drawn from `len_range` and whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// A uniform choice among type-erased strategies; the expansion target
    /// of [`prop_oneof!`](crate::prop_oneof).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Choose uniformly among `options`. Panics if `options` is empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let ix = rng.gen_range(0..self.options.len());
            self.options[ix].generate(rng)
        }
    }
}

/// The per-test driver: configuration, RNG, and failure type.
pub mod test_runner {
    pub use rand::rngs::SmallRng as TestRng;

    /// Mirror of `proptest::test_runner::Config`, reduced to the number of
    /// cases to run.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }

    /// Why a single generated case failed.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// A `prop_assert*` was violated.
        Fail(String),
    }

    impl TestCaseError {
        /// Construct a failure with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }
    }

    impl core::fmt::Display for TestCaseError {
        fn fmt(&self, fmt: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
            match self {
                TestCaseError::Fail(msg) => write!(fmt, "{msg}"),
            }
        }
    }

    /// FNV-1a, used to derive a per-test RNG seed from its name so every
    /// property explores a distinct but deterministic stream of cases.
    pub fn seed_for(test_name: &str, case: u64) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15)
    }

    /// Construct the per-case RNG (kept here so the [`crate::proptest!`]
    /// expansion does not need `rand` in the caller's namespace).
    pub fn rng_for(seed: u64) -> TestRng {
        <TestRng as rand::SeedableRng>::seed_from_u64(seed)
    }
}

/// Assert a condition inside a [`proptest!`] property, failing the current
/// case (not panicking directly) if it is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// `assert_eq!` for [`proptest!`] properties.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)*);
    }};
}

/// `assert_ne!` for [`proptest!`] properties.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Uniform choice among strategies: `prop_oneof![s1, s2, ...]`.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Define property tests.
///
/// Mirror of `proptest::proptest!`: an optional
/// `#![proptest_config(expr)]` inner attribute followed by any number of
/// `#[test] fn name(pat in strategy, ...) { body }` items. Each property
/// becomes a `#[test]` that generates `cases` inputs and runs the body on
/// each; `prop_assert*` failures report the case number and per-case seed.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            config = (<$crate::test_runner::Config as ::core::default::Default>::default());
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`]: munches one `fn` item at a time.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = ($config:expr);) => {};
    (config = ($config:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $config;
            for case in 0..config.cases as u64 {
                let seed = $crate::test_runner::seed_for(stringify!($name), case);
                let mut rng = $crate::test_runner::rng_for(seed);
                let result: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $(let $arg = $crate::strategy::Strategy::generate(
                            &($strategy), &mut rng);)+
                        $body
                        ::core::result::Result::Ok(())
                    })();
                if let ::core::result::Result::Err(err) = result {
                    panic!(
                        "proptest '{}' failed at case {case} (seed {seed:#x}): {err}",
                        stringify!($name),
                    );
                }
            }
        }
        $crate::__proptest_items! { config = ($config); $($rest)* }
    };
}
