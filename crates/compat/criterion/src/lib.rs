//! Offline, API-compatible subset of the `criterion` crate.
//!
//! This workspace builds hermetically with no network access, so the real
//! `criterion` cannot be fetched from a registry. This crate implements the
//! surface the workspace's micro-benchmarks use — [`Criterion`],
//! [`BenchmarkGroup`], [`Bencher::iter`] / [`Bencher::iter_batched`],
//! [`Throughput`], [`BatchSize`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros — with compatible signatures, so switching
//! the workspace dependency back to the registry `criterion = "0.5"` is a
//! one-line change in the root `Cargo.toml`.
//!
//! Unlike the real crate there is no statistical analysis: each benchmark
//! is calibrated to a short wall-clock window and the mean time per
//! iteration is printed, with element throughput when declared. That is
//! enough to compare hot paths between commits; for publication-grade
//! numbers, swap in the real criterion.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], mirroring `criterion::black_box`.
pub use std::hint::black_box;

/// Target measurement window per benchmark. Kept short: these are smoke
/// numbers, not publication statistics.
const MEASURE_WINDOW: Duration = Duration::from_millis(200);

/// Declared per-iteration workload, used to derive throughput lines.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Each iteration processes this many logical elements.
    Elements(u64),
    /// Each iteration processes this many bytes.
    Bytes(u64),
}

/// How batches are sized for [`Bencher::iter_batched`]. The stub runs one
/// setup per measured routine call regardless, so the variants only exist
/// for signature compatibility.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs (setup dominates; batch of one).
    LargeInput,
    /// One routine call per batch.
    PerIteration,
}

/// The benchmark driver handed to every registered function.
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    /// Build a driver, honouring a substring filter passed on the command
    /// line (`cargo bench --bench micro_sketch -- <filter>`).
    fn default() -> Self {
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion { filter }
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    fn matches(&self, id: &str) -> bool {
        match &self.filter {
            Some(f) => id.contains(f.as_str()),
            None => true,
        }
    }
}

/// A named group of benchmarks sharing a throughput declaration.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declare the per-iteration workload for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Measure one benchmark function.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into());
        if !self.criterion.matches(&id) {
            return self;
        }
        let mut bencher = Bencher {
            measurement: Duration::ZERO,
            iters: 0,
        };
        f(&mut bencher);
        report(&id, self.throughput, bencher.measurement, bencher.iters);
        self
    }

    /// Close the group (printing is incremental, so this is a no-op).
    pub fn finish(&mut self) {}
}

/// Runs and times the measured routine.
pub struct Bencher {
    measurement: Duration,
    iters: u64,
}

impl Bencher {
    /// Measure `routine`, called back-to-back in a calibrated loop.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: grow the batch until it fills ~1/10 of the window.
        let mut batch: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let once = start.elapsed();
            if once >= MEASURE_WINDOW / 10 || batch >= 1 << 40 {
                break;
            }
            batch = batch.saturating_mul(2);
        }
        // Measure.
        let start = Instant::now();
        let mut iters = 0u64;
        while start.elapsed() < MEASURE_WINDOW {
            for _ in 0..batch {
                black_box(routine());
            }
            iters += batch;
        }
        self.measurement = start.elapsed();
        self.iters = iters;
    }

    /// Measure `routine` on fresh inputs built by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        while total < MEASURE_WINDOW {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
            iters += 1;
        }
        self.measurement = total;
        self.iters = iters;
    }
}

fn report(id: &str, throughput: Option<Throughput>, total: Duration, iters: u64) {
    if iters == 0 {
        println!("{id:<40} (not measured)");
        return;
    }
    let per_iter = total.as_nanos() as f64 / iters as f64;
    let mut line = format!("{id:<40} {:>12}/iter   ({iters} iters)", fmt_ns(per_iter));
    match throughput {
        Some(Throughput::Elements(n)) if n > 0 => {
            let per_elem = per_iter / n as f64;
            let rate = 1e9 / per_elem;
            line.push_str(&format!("   {:>10.1} Melem/s", rate / 1e6));
        }
        Some(Throughput::Bytes(n)) if n > 0 => {
            let per_byte = per_iter / n as f64;
            let rate = 1e9 / per_byte;
            line.push_str(&format!("   {:>10.1} MiB/s", rate / (1024.0 * 1024.0)));
        }
        _ => {}
    }
    println!("{line}");
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} us", ns / 1_000.0)
    } else {
        format!("{:.2} ms", ns / 1_000_000.0)
    }
}

/// Group benchmark functions under one name, mirror of
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = <$crate::Criterion as ::core::default::Default>::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `fn main` running benchmark groups, mirror of
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_and_reports() {
        let mut c = Criterion { filter: None };
        let mut g = c.benchmark_group("smoke");
        g.throughput(Throughput::Elements(1));
        let mut x = 0u64;
        g.bench_function("add", |b| b.iter(|| x = x.wrapping_add(1)));
        g.finish();
        assert!(x > 0);
    }

    #[test]
    fn iter_batched_runs_setup_per_call() {
        let mut b = Bencher {
            measurement: Duration::ZERO,
            iters: 0,
        };
        b.iter_batched(
            || vec![1u64; 8],
            |v| v.iter().sum::<u64>(),
            BatchSize::LargeInput,
        );
        assert!(b.iters > 0);
        assert!(b.measurement >= MEASURE_WINDOW);
    }
}
