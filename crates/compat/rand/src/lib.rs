//! Offline, API-compatible subset of the `rand` crate.
//!
//! This workspace builds hermetically with no network access, so the real
//! `rand` cannot be fetched from a registry. This crate implements exactly
//! the surface the workspace uses — [`SeedableRng::seed_from_u64`],
//! [`rngs::SmallRng`], and the [`Rng`] methods `gen`, `gen_bool`,
//! `gen_range` — with the same signatures, so switching the workspace
//! dependency back to the registry `rand = "0.8"` is a one-line change in
//! the root `Cargo.toml`.
//!
//! The generator behind [`rngs::SmallRng`] is xoshiro256++ seeded through
//! SplitMix64 (the same construction the real `SmallRng` uses on 64-bit
//! platforms). Streams are deterministic given the seed, which is all the
//! reproduction relies on; no cryptographic claims are made.

#![warn(missing_docs)]

/// A source of uniformly distributed random 64-bit words.
///
/// Mirror of `rand::RngCore`, reduced to the one method everything here
/// derives from.
pub trait RngCore {
    /// Return the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Return the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A random number generator that can be explicitly seeded.
///
/// Mirror of `rand::SeedableRng`, reduced to [`seed_from_u64`], the only
/// constructor the workspace uses (every experiment is reproducible from a
/// `u64` seed).
///
/// [`seed_from_u64`]: SeedableRng::seed_from_u64
pub trait SeedableRng: Sized {
    /// Create a generator whose stream is a deterministic function of
    /// `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing convenience methods over any [`RngCore`].
///
/// Mirror of `rand::Rng`, reduced to the methods the workspace calls.
pub trait Rng: RngCore {
    /// Sample a value uniformly from the type's full sample space.
    ///
    /// Supported standard-distribution types are defined by the
    /// [`Standard`] impls: `f64` in `[0, 1)`, `bool`, and the integer
    /// widths used in the workspace.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Return `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} not in [0, 1]");
        f64::sample(self) < p
    }

    /// Sample uniformly from `range` (half-open `a..b` or inclusive
    /// `a..=b`).
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore> Rng for R {}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types sampleable from their "standard" distribution via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one value from the standard distribution for `Self`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Sample one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Rejection-free-enough uniform integer in `[0, n)` via Lemire's
/// multiply-shift with a rejection loop for exactness.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    // Zone rejection: accept while the 128-bit product's low half is not in
    // the biased tail.
    let zone = n.wrapping_neg() % n; // 2^64 mod n
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (n as u128);
        if (m as u64) >= zone {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_below(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_int_range!(
    u64 => u64,
    i64 => u64,
    u32 => u32,
    i32 => u32,
    u16 => u16,
    i16 => u16,
    u8 => u8,
    i8 => u8,
    usize => usize,
    isize => usize,
);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        lo + f64::sample(rng) * (hi - lo)
    }
}

/// Small, fast generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++, seeded through SplitMix64 — the same construction the
    /// real `rand::rngs::SmallRng` uses on 64-bit platforms. Fast,
    /// deterministic, and statistically solid for simulation workloads.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(mut state: u64) -> Self {
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            SmallRng { s }
        }
    }

    impl SmallRng {
        /// The generator's full internal state, for snapshot/restore.
        ///
        /// **Offline-compat extension**: the registry `rand` does not
        /// expose generator state without its `serde1` feature, so code
        /// using this method (the `dsv-core` state seam) must be adapted
        /// if the workspace is switched back to registry crates — see
        /// `MIGRATION.md`.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuild a generator from a [`state`](Self::state) snapshot,
        /// continuing the stream exactly where the snapshot was taken.
        /// Offline-compat extension; see [`state`](Self::state).
        pub fn from_state(s: [u64; 4]) -> Self {
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let a: Vec<u64> = {
            let mut r = SmallRng::seed_from_u64(7);
            (0..16).map(|_| r.gen_range(0..1000u64)).collect()
        };
        let b: Vec<u64> = {
            let mut r = SmallRng::seed_from_u64(7);
            (0..16).map(|_| r.gen_range(0..1000u64)).collect()
        };
        assert_eq!(a, b);
        let c: Vec<u64> = {
            let mut r = SmallRng::seed_from_u64(8);
            (0..16).map(|_| r.gen_range(0..1000u64)).collect()
        };
        assert_ne!(a, c);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = r.gen_range(10..20u64);
            assert!((10..20).contains(&x));
            let y = r.gen_range(-5..=5i64);
            assert!((-5..=5).contains(&y));
            let z = r.gen_range(0..7usize);
            assert!(z < 7);
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn state_snapshot_resumes_the_stream_exactly() {
        let mut r = SmallRng::seed_from_u64(5);
        for _ in 0..7 {
            r.next_u64();
        }
        let snap = r.state();
        let tail: Vec<u64> = (0..32).map(|_| r.next_u64()).collect();
        let mut resumed = SmallRng::from_state(snap);
        let resumed_tail: Vec<u64> = (0..32).map(|_| resumed.next_u64()).collect();
        assert_eq!(tail, resumed_tail);
        assert_eq!(resumed.state(), r.state());
    }

    #[test]
    fn gen_bool_respects_extremes() {
        let mut r = SmallRng::seed_from_u64(2);
        assert!((0..100).all(|_| !r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
        // p = 0.5 should not be constant over 1000 draws.
        let heads = (0..1000).filter(|_| r.gen_bool(0.5)).count();
        assert!(heads > 300 && heads < 700, "heads = {heads}");
    }
}
