//! Distributed shard processes over sockets with fault-injected
//! checkpoint failover.
//!
//! [`RemoteEngine`] serves the `S` logical shards of a
//! [`crate::ShardedEngine`] from separate shard workers — OS processes
//! running the `dsv-shard-server` binary, or in-process threads — behind
//! the `dsv-net` length-prefixed transport (version-tagged handshake,
//! per-connection timeouts, bounded retry-with-backoff connects). The
//! coordinator drives workers exactly like `run_parted` drives feeds:
//! rounds of `batch` inputs per feed, ground truth folded and shard
//! estimates absorbed at every round boundary, the same ε-audit at the
//! same cut.
//!
//! **Equivalence.** A remote run is *bit-identical* to the in-process
//! [`crate::ShardedEngine::run_parted`] over the same feeds: same
//! estimates, same per-shard replica states, same tracker and merge
//! [`CommStats`] ledgers. The transport's own costs live on separate
//! ledgers ([`RemoteEngine::wire_stats`], `checkpoint_stats`), so moving
//! shards off-process never perturbs the guarantee the facade's
//! `tests/remote_equivalence.rs` holds the engine to.
//!
//! **Pipelining.** With [`EngineConfig::rounds_per_frame`]` > 1` the
//! coordinator stops ping-ponging one round per frame: round commands
//! are staged into a bounded per-worker send queue (the same SPSC ring
//! and [`crate::Backpressure`] policies that drive
//! [`crate::ShardedEngine::run_pipelined`]), and a writer thread per
//! connection drains them into DSVR v3 `Rounds` envelopes of up to
//! `rounds_per_frame` rounds per frame while the coordinator absorbs
//! earlier rounds' reports. Frame cuts are deterministic (fixed blocks,
//! never across a checkpoint boundary), workers still answer one report
//! per round, and reports are absorbed in round order — so everything
//! the equivalence contract covers is bit-identical at every
//! `rounds_per_frame`, and only the wire ledger (fewer, fatter frames)
//! moves. See DESIGN.md §12.
//!
//! **Failover.** [`EngineConfig::checkpoint_every`] turns on the
//! durability sink: every `N` boundaries the coordinator pulls each
//! *dirty* shard's [`TrackerState`] over the wire and commits a
//! consistent cut. When a worker dies — detected as a read/write timeout
//! or EOF on its connection — the coordinator respawns the slot (or
//! reattaches its shards to a live worker, [`Recovery`]), restores the
//! lost shards from the last committed cut, and **replays** the rounds
//! since that cut from the feeds it still holds: round chunks are a pure
//! function of `(feeds, batch, round)`, so no replay buffer exists.
//! Replayed reports are discarded — those rounds were already absorbed —
//! which is what keeps the merge ledger, and therefore the whole run,
//! bit-identical to an undisturbed one.
//!
//! **Fault injection.** [`FaultPlan`] makes the failure paths a
//! first-class test API: delay, sever, or kill a specific worker at a
//! chosen round, boundary, or checkpoint write. Faults fire once;
//! `tests/failover_injection.rs` sweeps the matrix.

pub mod wire;
pub mod worker;

use crate::checkpoint::EngineCheckpoint;
use crate::config::{EngineConfig, EngineError};
use crate::ingest::{Backpressure, Ring};
use crate::merge::MergeCoordinator;
use crate::partition::InputDelta;
use crate::report::EngineReport;
use crate::sharded::RunAudit;
use dsv_core::api::{Problem, RunError, TrackerKind, TrackerSpec};
use dsv_core::codec::{CodecError, Enc, TrackerState};
use dsv_net::transport::{
    parse_hello, Conn, Endpoint, Listener, Role, TransportError, WireStats, DEFAULT_MAX_FRAME,
};
use dsv_net::{CommStats, IngestStats, MsgKind, SiteId, StateFrame, Time, WireSize};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::marker::PhantomData;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::{JoinHandle, Scope, ScopedJoinHandle};
use std::time::{Duration, Instant};
use wire::{Chunk, Inputs, RoundWork, ShardInit, StateEntry, StatePull, ToCoord, ToWorker};

/// How the coordinator rendezvouses with its shard workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RemoteTransport {
    /// TCP on loopback (`127.0.0.1`, OS-assigned port).
    Tcp,
    /// A Unix-domain socket under the system temp directory.
    #[cfg(unix)]
    Uds,
}

static UDS_SEQ: AtomicU64 = AtomicU64::new(0);

impl RemoteTransport {
    fn endpoint(self) -> Endpoint {
        match self {
            RemoteTransport::Tcp => Endpoint::Tcp("127.0.0.1:0".to_string()),
            #[cfg(unix)]
            RemoteTransport::Uds => Endpoint::Unix(std::env::temp_dir().join(format!(
                "dsv-remote-{}-{}.sock",
                std::process::id(),
                UDS_SEQ.fetch_add(1, Ordering::Relaxed),
            ))),
        }
    }
}

/// How shard workers are spawned.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpawnMode {
    /// In-process threads running the same serve loop over real sockets
    /// (fast, deterministic teardown; `Kill` faults degrade to severs).
    Threads,
    /// Separate OS processes running the given `dsv-shard-server` binary.
    Processes {
        /// Path to the shard-server binary.
        bin: PathBuf,
    },
}

/// What to do with a dead worker's shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Recovery {
    /// Spawn a replacement into the same worker slot (generation + 1).
    Respawn,
    /// Migrate the shards onto the next live worker; falls back to
    /// respawning when no other worker is alive.
    Reattach,
}

/// Configuration of the remote deployment (transport, spawning, timeouts,
/// recovery policy). [`EngineConfig`] keeps owning everything logical —
/// shards, batch, ε, the checkpoint period.
#[derive(Debug, Clone, PartialEq)]
pub struct RemoteConfig {
    /// Socket family for the coordinator ↔ worker links.
    pub transport: RemoteTransport,
    /// Worker deployment shape.
    pub spawn: SpawnMode,
    /// Coordinator-side read/write timeout per worker connection — the
    /// failure detector. A worker that does not answer within this window
    /// is declared dead and failed over.
    pub io_timeout: Duration,
    /// Worker-side read timeout. Generous by design: it only reaps
    /// workers orphaned by a dead coordinator, and must comfortably
    /// exceed any coordinator think-time between messages.
    pub worker_idle_timeout: Duration,
    /// How long the coordinator waits for a spawned worker to connect
    /// and complete the handshake.
    pub spawn_timeout: Duration,
    /// Connect retries a worker makes before giving up (linear backoff).
    pub connect_retries: u32,
    /// Base backoff between a worker's connect attempts.
    pub connect_backoff: Duration,
    /// Per-connection incoming-frame cap, in bytes.
    pub max_frame: usize,
    /// What to do with a dead worker's shards.
    pub recovery: Recovery,
    /// Failovers tolerated over the engine's lifetime before the run is
    /// abandoned with [`RemoteError::FailoverExhausted`].
    pub max_failovers: u32,
}

impl Default for RemoteConfig {
    fn default() -> Self {
        RemoteConfig {
            transport: RemoteTransport::Tcp,
            spawn: SpawnMode::Threads,
            io_timeout: Duration::from_secs(2),
            worker_idle_timeout: Duration::from_secs(30),
            spawn_timeout: Duration::from_secs(10),
            connect_retries: 20,
            connect_backoff: Duration::from_millis(10),
            max_frame: DEFAULT_MAX_FRAME,
            recovery: Recovery::Respawn,
            max_failovers: 8,
        }
    }
}

/// Where in the run an injected fault fires (rounds are 0-based within
/// one `run_parted` call).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultPoint {
    /// After the coordinator sends round `r`'s chunks, before it reads
    /// the report.
    MidRound(u64),
    /// After round `r` is absorbed and audited (before any auto
    /// checkpoint at that boundary, so the sink can be what detects the
    /// death).
    AtBoundary(u64),
    /// After the checkpoint request at the auto-checkpoint of boundary
    /// `r` is sent, before its reply is read.
    DuringCheckpoint(u64),
}

/// What the injected fault does to the worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// SIGKILL the worker process (thread workers are severed instead —
    /// a thread cannot be killed).
    Kill,
    /// Shut the coordinator-side connection down in both directions.
    Sever,
    /// Make the worker sleep `ms` before processing, so the
    /// coordinator's [`RemoteConfig::io_timeout`] fires against a
    /// live-but-stalled worker. Only meaningful at
    /// [`FaultPoint::MidRound`]; elsewhere it degrades to a sever.
    Delay {
        /// Milliseconds to stall.
        ms: u64,
    },
}

/// A test-facing plan of faults to inject into a run. Each entry names a
/// point, a worker, and a kind; each fires exactly once.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    faults: Vec<(FaultPoint, usize, FaultKind)>,
}

impl FaultPlan {
    /// An empty plan (no faults).
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a fault: do `kind` to `worker` at `point`.
    pub fn inject(mut self, point: FaultPoint, worker: usize, kind: FaultKind) -> Self {
        self.faults.push((point, worker, kind));
        self
    }

    /// Faults not yet fired.
    pub fn pending(&self) -> usize {
        self.faults.len()
    }

    fn take(&mut self, point: FaultPoint, worker: usize) -> Option<FaultKind> {
        let at = self
            .faults
            .iter()
            .position(|&(p, w, _)| p == point && w == worker)?;
        Some(self.faults.remove(at).2)
    }
}

/// One recovered worker failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FailoverEvent {
    /// The worker slot that died.
    pub worker: usize,
    /// Rounds fully absorbed when the death was detected.
    pub round: u64,
    /// Spawn generation of the recovered owner after recovery.
    pub generation: u64,
    /// The worker slot owning the shards after recovery (== `worker`
    /// for a respawn).
    pub recovered_to: usize,
    /// Rounds replayed from the last committed checkpoint.
    pub replayed_rounds: u64,
}

/// A remote engine that cannot be built or driven, as a typed error.
#[derive(Debug, Clone, PartialEq)]
pub enum RemoteError {
    /// A logical (in-process) engine error: bad config, rejected stream,
    /// codec failure.
    Engine(EngineError),
    /// Binding the coordinator's listener failed.
    Bind(TransportError),
    /// A worker process could not be spawned.
    Spawn {
        /// The worker slot.
        worker: usize,
        /// The OS error category.
        kind: std::io::ErrorKind,
    },
    /// A worker connection failed (timeout, EOF, I/O). Recovered by
    /// failover where possible; surfaced when recovery is off the table.
    Transport {
        /// The worker slot.
        worker: usize,
        /// The transport failure.
        err: TransportError,
    },
    /// A worker frame failed to decode.
    Decode {
        /// The worker slot.
        worker: usize,
        /// The codec failure.
        err: CodecError,
    },
    /// A worker answered with something the protocol forbids here.
    Protocol {
        /// The worker slot.
        worker: usize,
        /// What was violated.
        what: &'static str,
    },
    /// A worker refused an assignment (build/restore failed on its side).
    WorkerRejected {
        /// The worker slot.
        worker: usize,
        /// The worker's error message.
        msg: String,
    },
    /// More workers died than [`RemoteConfig::max_failovers`] tolerates.
    FailoverExhausted {
        /// The last worker slot that died.
        worker: usize,
    },
}

impl std::fmt::Display for RemoteError {
    fn fmt(&self, fm: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RemoteError::Engine(e) => write!(fm, "{e}"),
            RemoteError::Bind(e) => write!(fm, "binding the coordinator listener failed: {e}"),
            RemoteError::Spawn { worker, kind } => {
                write!(fm, "spawning worker {worker} failed ({kind:?})")
            }
            RemoteError::Transport { worker, err } => {
                write!(fm, "worker {worker} connection failed: {err}")
            }
            RemoteError::Decode { worker, err } => {
                write!(fm, "worker {worker} sent an undecodable frame: {err}")
            }
            RemoteError::Protocol { worker, what } => {
                write!(fm, "worker {worker} broke protocol: {what}")
            }
            RemoteError::WorkerRejected { worker, msg } => {
                write!(fm, "worker {worker} rejected its assignment: {msg}")
            }
            RemoteError::FailoverExhausted { worker } => {
                write!(
                    fm,
                    "failover budget exhausted (last death: worker {worker})"
                )
            }
        }
    }
}

impl std::error::Error for RemoteError {}

impl From<EngineError> for RemoteError {
    fn from(e: EngineError) -> Self {
        RemoteError::Engine(e)
    }
}

impl From<RunError> for RemoteError {
    fn from(e: RunError) -> Self {
        RemoteError::Engine(EngineError::Run(e))
    }
}

/// Inputs a remote engine can ship over the wire: the two `run_parted`
/// input families.
pub trait RemoteInput: InputDelta + Send + Sync {
    /// Package a chunk as the per-problem wire payload.
    fn wrap(chunk: &[Self]) -> Inputs;
}

impl RemoteInput for i64 {
    fn wrap(chunk: &[Self]) -> Inputs {
        Inputs::Counts(chunk.to_vec())
    }
}

impl RemoteInput for (u64, i64) {
    fn wrap(chunk: &[Self]) -> Inputs {
        Inputs::Items(chunk.to_vec())
    }
}

/// One worker slot: its live connection (None once dead), the OS child
/// or thread backing it, and its spawn generation.
struct Slot {
    conn: Option<Conn>,
    child: Option<Child>,
    thread: Option<JoinHandle<()>>,
    generation: u64,
}

/// The distributed coordinator: `run_parted` semantics over shard
/// workers living behind sockets.
///
/// Build with [`counters`](Self::counters) or [`items`](Self::items);
/// drive with [`run_parted`](Self::run_parted) (repeatedly — the engine
/// is incremental, like its in-process counterpart). A mandatory
/// checkpoint is committed at the end of every run, so between calls the
/// coordinator holds a complete consistent image of every shard — which
/// is what [`checkpoint`](Self::checkpoint) assembles, what failover in a
/// later call restores from, and what the report's tracker ledger is
/// computed from (by resuming the states locally).
pub struct RemoteEngine<In: RemoteInput> {
    spec: TrackerSpec,
    kind: TrackerKind,
    k: usize,
    cfg: EngineConfig,
    rcfg: RemoteConfig,
    listener: Listener,
    workers: Vec<Slot>,
    /// sid → owning worker slot (starts `sid % W`; reattach rewrites it).
    owner: Vec<usize>,
    coord: MergeCoordinator,
    ckpt_stats: CommStats,
    wire: WireStats,
    time: Time,
    f: i64,
    /// Per-shard state at the last committed checkpoint cut.
    ckpt_states: Vec<Option<TrackerState>>,
    /// Per-shard delta base: the last snapshot each worker shipped (or
    /// was restored from), advanced on receipt — deliberately separate
    /// from the committed `ckpt_states`, because a worker advances its
    /// own base the moment it replies, whether or not the surrounding
    /// checkpoint round commits.
    wire_base: Vec<Option<TrackerState>>,
    /// Delta links received per shard since its last full pull — the
    /// rebase counter driving [`EngineConfig::delta_rebase`] over the
    /// wire (the coordinator requests a full state every K-th pull).
    links_since_base: Vec<u64>,
    /// Inputs absorbed per shard since that cut (the dirty-shard skip,
    /// and exactly what a failover replay re-applies).
    dirty: Vec<u64>,
    faults: FaultPlan,
    events: Vec<FailoverEvent>,
    failovers: u32,
    graveyard: Vec<JoinHandle<()>>,
    _in: PhantomData<fn(In) -> In>,
}

impl RemoteEngine<i64> {
    /// Build a counting engine: spawn `W` workers, handshake each, and
    /// assign the shard replicas (`spec.shard(sid)` on the worker side).
    pub fn counters(
        spec: TrackerSpec,
        cfg: EngineConfig,
        rcfg: RemoteConfig,
    ) -> Result<Self, RemoteError> {
        let probe = spec
            .shard(0)
            .build()
            .map_err(|e| RemoteError::Engine(EngineError::Build(e)))?;
        Self::new(spec, cfg, rcfg, probe.kind(), probe.k())
    }
}

impl RemoteEngine<(u64, i64)> {
    /// Build an item-frequency engine; see
    /// [`counters`](RemoteEngine::counters).
    pub fn items(
        spec: TrackerSpec,
        cfg: EngineConfig,
        rcfg: RemoteConfig,
    ) -> Result<Self, RemoteError> {
        use dsv_core::api::Tracker;
        let probe = spec
            .shard(0)
            .build_item()
            .map_err(|e| RemoteError::Engine(EngineError::Build(e)))?;
        Self::new(spec, cfg, rcfg, probe.kind(), probe.k())
    }
}

impl<In: RemoteInput> RemoteEngine<In> {
    fn new(
        spec: TrackerSpec,
        cfg: EngineConfig,
        rcfg: RemoteConfig,
        kind: TrackerKind,
        k: usize,
    ) -> Result<Self, RemoteError> {
        cfg.validate().map_err(RemoteError::Engine)?;
        let s_count = cfg.shards_count();
        let w_count = cfg.workers_count();
        let listener = Listener::bind(&rcfg.transport.endpoint()).map_err(RemoteError::Bind)?;
        let mut engine = RemoteEngine {
            spec,
            kind,
            k,
            cfg,
            rcfg,
            listener,
            workers: Vec::new(),
            owner: (0..s_count).map(|sid| sid % w_count).collect(),
            coord: MergeCoordinator::new(s_count),
            ckpt_stats: CommStats::new(),
            wire: WireStats::new(),
            time: 0,
            f: 0,
            ckpt_states: vec![None; s_count],
            wire_base: vec![None; s_count],
            links_since_base: vec![0; s_count],
            dirty: vec![0; s_count],
            faults: FaultPlan::new(),
            events: Vec::new(),
            failovers: 0,
            graveyard: Vec::new(),
            _in: PhantomData,
        };
        for w in 0..w_count {
            engine.workers.push(Slot {
                conn: None,
                child: None,
                thread: None,
                generation: 0,
            });
            engine.spawn_worker(w, 0)?;
            let shards = (0..s_count)
                .filter(|&sid| engine.owner[sid] == w)
                .map(|sid| ShardInit { sid, state: None })
                .collect();
            engine.install(
                w,
                ToWorker::Assign {
                    spec: engine.spec,
                    s_count,
                    shards,
                },
            )?;
        }
        Ok(engine)
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// The replica kind.
    pub fn kind(&self) -> TrackerKind {
        self.kind
    }

    /// Updates consumed so far (across all runs).
    pub fn time(&self) -> Time {
        self.time
    }

    /// The coordinator-side global estimate `f̂ = Σ_s f̂_s`.
    pub fn estimate(&self) -> i64 {
        self.coord.estimate()
    }

    /// Engine-level shard → coordinator reconciliation traffic —
    /// bit-identical to the in-process engine's over the same feeds.
    pub fn merge_stats(&self) -> &CommStats {
        self.coord.stats()
    }

    /// Snapshot traffic pulled over the wire by checkpoint commits, one
    /// [`StateFrame`] per dirty shard — the same ledger rule as
    /// [`crate::ShardedEngine::checkpoint`].
    pub fn checkpoint_stats(&self) -> &CommStats {
        &self.ckpt_stats
    }

    /// Measured socket traffic (frames and bytes both ways), summed over
    /// live and dead connections.
    pub fn wire_stats(&self) -> WireStats {
        let mut total = self.wire;
        for slot in &self.workers {
            if let Some(conn) = &slot.conn {
                total.merge(conn.stats());
            }
        }
        total
    }

    /// The coordinator's rendezvous endpoint (diagnostics).
    pub fn endpoint(&self) -> &Endpoint {
        self.listener.endpoint()
    }

    /// Recovered worker failures, in order.
    pub fn events(&self) -> &[FailoverEvent] {
        &self.events
    }

    /// Arm a fault plan for the next run (replaces any previous plan).
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.faults = plan;
    }

    /// Per-shard local estimates, resumed locally from the last committed
    /// cut (exact between runs, because every run ends with a commit).
    pub fn shard_estimates(&self) -> Result<Vec<i64>, RemoteError> {
        Ok(self.resume_final()?.0)
    }

    /// In-protocol traffic summed across shard replicas, resumed locally
    /// from the last committed cut.
    pub fn tracker_stats(&self) -> Result<CommStats, RemoteError> {
        Ok(self.resume_final()?.1)
    }

    /// Assemble the engine's state as a restorable [`EngineCheckpoint`] —
    /// interchangeable with one taken by the in-process engine at the
    /// same boundary (that is the failover-equivalence contract).
    pub fn checkpoint(&mut self) -> Result<EngineCheckpoint, RemoteError> {
        // Between runs nothing is dirty (every run ends with a commit),
        // so this only reaches for the wire on a never-run engine.
        let mut ckpt_rounds = 0;
        self.sync_checkpoint(&[], None, &mut ckpt_rounds, 0)?;
        let states = self
            .ckpt_states
            .iter()
            .map(|s| s.clone().expect("checkpoint commit fills every shard"))
            .collect();
        let mut merge = Enc::new();
        self.coord.save_state(&mut merge);
        Ok(EngineCheckpoint::new(
            self.kind,
            self.k,
            self.time,
            self.f,
            merge.into_bytes(),
            states,
        ))
    }

    /// Ingest pre-parted per-site feeds through the shard workers —
    /// the remote counterpart of [`crate::ShardedEngine::run_parted`],
    /// with the same validation, the same boundary cut, and bit-identical
    /// estimates and ledgers. Worker deaths are recovered transparently
    /// (respawn/reattach + replay from the last committed checkpoint);
    /// every recovery is recorded in [`events`](Self::events).
    pub fn run_parted(&mut self, feeds: &[(SiteId, &[In])]) -> Result<EngineReport, RemoteError> {
        let started = Instant::now();
        let batch = self.cfg.batch_size();
        let deletions_ok = self.kind.supports_deletions();

        for &(site, inputs) in feeds {
            if site >= self.k {
                return Err(RunError::SiteOutOfRange {
                    site,
                    k: self.k,
                    time: self.time,
                }
                .into());
            }
            if !deletions_ok {
                if let Some(pos) = inputs.iter().position(|&x| x.delta_of() < 0) {
                    return Err(RunError::DeletionUnsupported {
                        kind: self.kind,
                        time: self.time + pos as Time + 1,
                    }
                    .into());
                }
            }
        }

        let total: usize = feeds.iter().map(|(_, inputs)| inputs.len()).sum();
        let rounds = feeds
            .iter()
            .map(|(_, inputs)| inputs.len().div_ceil(batch))
            .max()
            .unwrap_or(0);
        let mut audit = RunAudit::new(self.cfg.eps_value(), self.cfg.probe_period());
        let period = self.cfg.checkpoint_period();
        // Rounds fully absorbed this call, and how many of those the last
        // committed checkpoint covers — the replay window on failover.
        let mut rounds_done: u64 = 0;
        let mut ckpt_rounds: u64 = 0;

        if self.cfg.rounds_per_frame_value() > 1 && rounds > 0 {
            // Pipelined ingestion: stage rounds into per-worker send
            // queues and absorb reports as they stream back. Reattach
            // recovery degrades to respawn for the duration — writer
            // threads hold a static snapshot of the owner map.
            let saved = self.rcfg.recovery;
            self.rcfg.recovery = Recovery::Respawn;
            let drove = self.pipelined_rounds(
                feeds,
                rounds,
                &mut audit,
                &mut rounds_done,
                &mut ckpt_rounds,
            );
            self.rcfg.recovery = saved;
            drove?;
        } else {
            for round in 0..rounds {
                let entries = self.exchange_round(feeds, round, ckpt_rounds, rounds_done)?;
                // Same per-boundary order as the in-process path: fold
                // ground truth, absorb end-of-round estimates ascending
                // sid, audit.
                for (&sid, &(_, sum, len)) in &entries {
                    self.f += sum;
                    self.time += len as Time;
                    self.dirty[sid] += len;
                }
                for (&sid, &(est, _, _)) in &entries {
                    self.coord.absorb(sid, est);
                }
                audit.boundary(self.time, self.f, self.coord.estimate());
                rounds_done += 1;
                for w in 0..self.workers.len() {
                    if let Some(kind) = self.faults.take(FaultPoint::AtBoundary(rounds_done - 1), w)
                    {
                        self.disrupt(w, kind);
                    }
                }
                if period > 0 && rounds_done.is_multiple_of(period) {
                    self.sync_checkpoint(
                        feeds,
                        Some(rounds_done - 1),
                        &mut ckpt_rounds,
                        rounds_done,
                    )?;
                }
            }
        }
        // Mandatory end-of-run commit: later calls (and their failovers)
        // never need this call's feeds again, and the report's tracker
        // ledger comes from these states.
        self.sync_checkpoint(feeds, None, &mut ckpt_rounds, rounds_done)?;

        let (_, tracker_stats) = self.resume_final()?;
        Ok(EngineReport {
            n: total as u64,
            batches: audit.batches,
            shards: self.cfg.shards_count(),
            workers: self.workers.len(),
            batch_size: batch,
            final_f: self.f,
            final_estimate: self.coord.estimate(),
            boundary_violations: audit.violations,
            max_boundary_rel_err: audit.max_err,
            tracker_stats,
            merge_stats: self.coord.stats().clone(),
            ingest_stats: IngestStats::new(),
            probes: audit.probes,
            elapsed: started.elapsed(),
        })
    }

    /// Drive one round to completion: send each worker its feed-order
    /// chunks, collect the per-shard `(estimate, Σδ, len)` entries, and
    /// fail over + re-send whatever a dead worker left unreported.
    fn exchange_round(
        &mut self,
        feeds: &[(SiteId, &[In])],
        round: usize,
        ckpt_rounds: u64,
        rounds_done: u64,
    ) -> Result<BTreeMap<usize, (i64, i64, u64)>, RemoteError> {
        let s_count = self.cfg.shards_count();
        let batch = self.cfg.batch_size();
        let mut remaining: BTreeSet<usize> = feeds
            .iter()
            .filter(|(_, inputs)| chunk_bounds(inputs.len(), batch, round).is_some())
            .map(|&(site, _)| site % s_count)
            .collect();
        let mut entries: BTreeMap<usize, (i64, i64, u64)> = BTreeMap::new();

        while !remaining.is_empty() {
            let mut per_worker: BTreeMap<usize, Vec<Chunk>> = BTreeMap::new();
            for &(site, inputs) in feeds {
                let Some((lo, hi)) = chunk_bounds(inputs.len(), batch, round) else {
                    continue;
                };
                let sid = site % s_count;
                if !remaining.contains(&sid) {
                    continue;
                }
                per_worker.entry(self.owner[sid]).or_default().push(Chunk {
                    sid,
                    site,
                    inputs: In::wrap(&inputs[lo..hi]),
                });
            }
            let mut failed: BTreeSet<usize> = BTreeSet::new();
            let mut sent: Vec<(usize, Vec<usize>)> = Vec::new();
            for (w, chunks) in per_worker {
                let fault = self.faults.take(FaultPoint::MidRound(rounds_done), w);
                let delay_ms = match fault {
                    Some(FaultKind::Delay { ms }) => ms,
                    _ => 0,
                };
                let sids: Vec<usize> = chunks.iter().map(|c| c.sid).collect();
                let msg = ToWorker::Round {
                    round: rounds_done,
                    delay_ms,
                    chunks,
                };
                match self.send_to(w, &msg.to_bytes()) {
                    Ok(()) => sent.push((w, sids)),
                    Err(_) => {
                        failed.insert(w);
                    }
                }
                if matches!(fault, Some(FaultKind::Kill) | Some(FaultKind::Sever)) {
                    self.disrupt(w, fault.unwrap());
                }
            }
            for (w, sids) in sent {
                match self.recv_coord(w) {
                    Ok(ToCoord::RoundReport { round: r, reports }) if r == rounds_done => {
                        for e in reports {
                            entries.insert(e.sid, (e.estimate, e.sum, e.len));
                            remaining.remove(&e.sid);
                        }
                        // A live worker must report every shard it was
                        // sent — resending to it would double-apply.
                        if let Some(&sid) = sids.iter().find(|sid| remaining.contains(sid)) {
                            let _ = sid;
                            return Err(RemoteError::Protocol {
                                worker: w,
                                what: "round report missing a dispatched shard",
                            });
                        }
                    }
                    Ok(_) => {
                        return Err(RemoteError::Protocol {
                            worker: w,
                            what: "unexpected reply to a round",
                        })
                    }
                    Err(RemoteError::Transport { .. }) => {
                        failed.insert(w);
                    }
                    Err(e) => return Err(e),
                }
            }
            for w in failed {
                self.failover(w, feeds, ckpt_rounds, rounds_done)?;
            }
        }
        Ok(entries)
    }

    /// Drive the whole run's rounds through per-worker bounded send
    /// queues and writer threads (`rounds_per_frame > 1`): the pipelined
    /// counterpart of the synchronous per-round loop in
    /// [`run_parted`](Self::run_parted), producing bit-identical
    /// estimates, audits, ledgers, and checkpoint images.
    ///
    /// Frame cuts are *deterministic*: rounds are staged in fixed blocks
    /// of `rounds_per_frame`, blocks never straddle a checkpoint
    /// boundary, and every block ends with an explicit flush — so the
    /// frames a run produces are a pure function of `(feeds, batch,
    /// rounds_per_frame, checkpoint_every)`, never of queue timing. At
    /// most two blocks are in flight (stage block `k+1`, then absorb
    /// block `k`), which is what sizes the queues so staging never
    /// waits. Checkpoints reuse the synchronous commit at a full barrier
    /// — everything staged is absorbed, queues drained, writers parked —
    /// so `committed..absorbed` accounting and failover replay are
    /// exactly the synchronous engine's.
    fn pipelined_rounds(
        &mut self,
        feeds: &[(SiteId, &[In])],
        rounds: usize,
        audit: &mut RunAudit,
        rounds_done: &mut u64,
        ckpt_rounds: &mut u64,
    ) -> Result<(), RemoteError> {
        let s_count = self.cfg.shards_count();
        let batch = self.cfg.batch_size();
        let rpf = self.cfg.rounds_per_frame_value();
        let policy = self.cfg.backpressure_policy();
        let period = self.cfg.checkpoint_period();
        let w_count = self.workers.len();
        // Two blocks in flight plus their flush cuts always fit.
        let cap = 2 * rpf + 2;

        std::thread::scope(|scope| {
            let mut rings: Vec<Arc<Ring<Cmd>>> = Vec::with_capacity(w_count);
            let mut lanes: Vec<Option<ScopedJoinHandle<'_, Conn>>> = Vec::with_capacity(w_count);
            let mut drive = || -> Result<(), RemoteError> {
                for w in 0..w_count {
                    if self.workers[w].conn.is_none() {
                        self.failover(w, feeds, *ckpt_rounds, *rounds_done)?;
                    }
                    let conn = self.worker_conn_clone(w)?;
                    let ring = Arc::new(Ring::new(cap));
                    lanes.push(Some(spawn_writer(
                        scope,
                        Arc::clone(&ring),
                        conn,
                        feeds,
                        self.owner.clone(),
                        w,
                        s_count,
                        batch,
                        rpf,
                    )));
                    rings.push(ring);
                }
                // Per-worker expectation FIFO (rounds staged, report not
                // yet received) and per-round report entries received
                // but not yet absorbed.
                let mut outstanding: Vec<VecDeque<u64>> = vec![VecDeque::new(); w_count];
                let mut pending: BTreeMap<u64, BTreeMap<usize, (i64, i64, u64)>> = BTreeMap::new();
                let mut staged: u64 = 0;

                while (*rounds_done as usize) < rounds {
                    let window_end = match (*rounds_done).checked_div(period) {
                        Some(q) => (q + 1) * period,
                        None => rounds as u64,
                    }
                    .min(rounds as u64);
                    while *rounds_done < window_end {
                        let absorb_to = staged;
                        if staged < window_end {
                            let block_start = staged;
                            let block_end = (staged + rpf as u64).min(window_end);
                            for rr in block_start..block_end {
                                for w in 0..w_count {
                                    let participates = feeds.iter().any(|&(site, inputs)| {
                                        self.owner[site % s_count] == w
                                            && chunk_bounds(inputs.len(), batch, rr as usize)
                                                .is_some()
                                    });
                                    if !participates {
                                        continue;
                                    }
                                    let fault = self.faults.take(FaultPoint::MidRound(rr), w);
                                    let delay_ms = match fault {
                                        Some(FaultKind::Delay { ms }) => ms,
                                        _ => 0,
                                    };
                                    while !stage_push(
                                        &rings[w],
                                        policy,
                                        Cmd::Round {
                                            round: rr,
                                            delay_ms,
                                        },
                                    ) {
                                        // The writer observed a dead
                                        // socket and closed its queue:
                                        // fail over, then restage onto
                                        // the replacement's fresh lane.
                                        self.pipelined_failover(
                                            w,
                                            feeds,
                                            *ckpt_rounds,
                                            *rounds_done,
                                            rr,
                                            &mut outstanding,
                                            &mut pending,
                                        )?;
                                        let conn = self.worker_conn_clone(w)?;
                                        rebuild_lane(
                                            scope,
                                            &mut rings,
                                            &mut lanes,
                                            &mut self.wire,
                                            conn,
                                            feeds,
                                            self.owner.clone(),
                                            w,
                                            s_count,
                                            batch,
                                            rpf,
                                            cap,
                                        );
                                    }
                                    outstanding[w].push_back(rr);
                                    if matches!(
                                        fault,
                                        Some(FaultKind::Kill) | Some(FaultKind::Sever)
                                    ) {
                                        self.disrupt(w, fault.unwrap());
                                    }
                                }
                            }
                            // Deterministic frame cut: every
                            // participant's partial frame ships now.
                            for w in 0..w_count {
                                let in_block =
                                    outstanding[w].back().is_some_and(|&r| r >= block_start);
                                if in_block && !stage_push(&rings[w], policy, Cmd::Flush) {
                                    self.pipelined_failover(
                                        w,
                                        feeds,
                                        *ckpt_rounds,
                                        *rounds_done,
                                        block_end,
                                        &mut outstanding,
                                        &mut pending,
                                    )?;
                                    let conn = self.worker_conn_clone(w)?;
                                    rebuild_lane(
                                        scope,
                                        &mut rings,
                                        &mut lanes,
                                        &mut self.wire,
                                        conn,
                                        feeds,
                                        self.owner.clone(),
                                        w,
                                        s_count,
                                        batch,
                                        rpf,
                                        cap,
                                    );
                                }
                            }
                            staged = block_end;
                        }
                        while *rounds_done < absorb_to {
                            let r = *rounds_done;
                            while let Some(w) =
                                (0..w_count).find(|&w| outstanding[w].front() == Some(&r))
                            {
                                match self.recv_coord(w) {
                                    Ok(ToCoord::RoundReport { round, reports }) => {
                                        if round != r {
                                            return Err(RemoteError::Protocol {
                                                worker: w,
                                                what: "pipelined round report out of order",
                                            });
                                        }
                                        outstanding[w].pop_front();
                                        let slot = pending.entry(round).or_default();
                                        for e in reports {
                                            slot.insert(e.sid, (e.estimate, e.sum, e.len));
                                        }
                                    }
                                    Ok(_) => {
                                        return Err(RemoteError::Protocol {
                                            worker: w,
                                            what: "unexpected reply in a pipelined run",
                                        })
                                    }
                                    Err(RemoteError::Transport { .. }) => {
                                        self.pipelined_failover(
                                            w,
                                            feeds,
                                            *ckpt_rounds,
                                            r,
                                            staged,
                                            &mut outstanding,
                                            &mut pending,
                                        )?;
                                        let conn = self.worker_conn_clone(w)?;
                                        rebuild_lane(
                                            scope,
                                            &mut rings,
                                            &mut lanes,
                                            &mut self.wire,
                                            conn,
                                            feeds,
                                            self.owner.clone(),
                                            w,
                                            s_count,
                                            batch,
                                            rpf,
                                            cap,
                                        );
                                    }
                                    Err(e) => return Err(e),
                                }
                            }
                            let entries = pending.remove(&r).unwrap_or_default();
                            for &(site, inputs) in feeds {
                                if chunk_bounds(inputs.len(), batch, r as usize).is_some()
                                    && !entries.contains_key(&(site % s_count))
                                {
                                    return Err(RemoteError::Protocol {
                                        worker: self.owner[site % s_count],
                                        what: "round report missing a dispatched shard",
                                    });
                                }
                            }
                            // Same per-boundary order as the synchronous
                            // path: fold ground truth, absorb ascending
                            // sid, audit.
                            for (&sid, &(_, sum, len)) in &entries {
                                self.f += sum;
                                self.time += len as Time;
                                self.dirty[sid] += len;
                            }
                            for (&sid, &(est, _, _)) in &entries {
                                self.coord.absorb(sid, est);
                            }
                            audit.boundary(self.time, self.f, self.coord.estimate());
                            *rounds_done += 1;
                            for w in 0..w_count {
                                if let Some(kind) = self
                                    .faults
                                    .take(FaultPoint::AtBoundary(*rounds_done - 1), w)
                                {
                                    self.disrupt(w, kind);
                                }
                            }
                        }
                    }
                    // Checkpoint barrier: staged == absorbed ==
                    // window_end, queues drained, writers parked — the
                    // synchronous commit applies verbatim. Rebuild the
                    // lane of any slot a checkpoint-time failover
                    // respawned (its writer holds the dead connection).
                    if period > 0 && (*rounds_done).is_multiple_of(period) {
                        let gens: Vec<u64> = self.workers.iter().map(|s| s.generation).collect();
                        self.sync_checkpoint(
                            feeds,
                            Some(*rounds_done - 1),
                            ckpt_rounds,
                            *rounds_done,
                        )?;
                        for (w, &gen) in gens.iter().enumerate().take(w_count) {
                            if self.workers[w].generation != gen {
                                let conn = self.worker_conn_clone(w)?;
                                rebuild_lane(
                                    scope,
                                    &mut rings,
                                    &mut lanes,
                                    &mut self.wire,
                                    conn,
                                    feeds,
                                    self.owner.clone(),
                                    w,
                                    s_count,
                                    batch,
                                    rpf,
                                    cap,
                                );
                            }
                        }
                    }
                }
                Ok(())
            };
            let result = drive();
            // Always torn down before the scope exits — an error must not
            // leave a writer parked on an open queue.
            for ring in &rings {
                ring.close();
            }
            for lane in lanes.iter_mut() {
                if let Some(handle) = lane.take() {
                    match handle.join() {
                        Ok(conn) => self.wire.merge(conn.stats()),
                        Err(panic) => std::panic::resume_unwind(panic),
                    }
                }
            }
            result
        })
    }

    /// Pipelined-mode failover: recover `dead` exactly like the
    /// synchronous [`failover`](Self::failover) (restore the committed
    /// cut, replay `committed..absorbed`, discard those reports), then
    /// *catch up* the replacement through the staging `frontier`: rounds
    /// the coordinator already staged but has not absorbed are
    /// re-exchanged one frame per round and their reports are **kept** —
    /// they are the very reports the absorber is still owed. The
    /// expectation queue for `dead` is cleared first (its in-flight
    /// reports died with the socket); catch-up refills `pending` for the
    /// dead worker's shards, overwriting any entries that did arrive
    /// before the death with bit-identical values (a worker's report is
    /// a pure function of the round prefix it absorbed).
    #[allow(clippy::too_many_arguments)]
    fn pipelined_failover(
        &mut self,
        dead: usize,
        feeds: &[(SiteId, &[In])],
        ckpt_rounds: u64,
        rounds_done: u64,
        frontier: u64,
        outstanding: &mut [VecDeque<u64>],
        pending: &mut BTreeMap<u64, BTreeMap<usize, (i64, i64, u64)>>,
    ) -> Result<(), RemoteError> {
        let s_count = self.cfg.shards_count();
        let batch = self.cfg.batch_size();
        'catchup: loop {
            outstanding[dead].clear();
            self.failover(dead, feeds, ckpt_rounds, rounds_done)?;
            for rr in rounds_done..frontier {
                let mut chunks = Vec::new();
                for &(site, inputs) in feeds {
                    let Some((lo, hi)) = chunk_bounds(inputs.len(), batch, rr as usize) else {
                        continue;
                    };
                    let sid = site % s_count;
                    if self.owner[sid] != dead {
                        continue;
                    }
                    chunks.push(Chunk {
                        sid,
                        site,
                        inputs: In::wrap(&inputs[lo..hi]),
                    });
                }
                if chunks.is_empty() {
                    continue;
                }
                let msg = ToWorker::Round {
                    round: rr,
                    delay_ms: 0,
                    chunks,
                };
                match self.exchange(dead, &msg) {
                    Ok(ToCoord::RoundReport { round, reports }) if round == rr => {
                        let slot = pending.entry(rr).or_default();
                        for e in reports {
                            slot.insert(e.sid, (e.estimate, e.sum, e.len));
                        }
                    }
                    Ok(_) => {
                        return Err(RemoteError::Protocol {
                            worker: dead,
                            what: "unexpected reply to a catch-up round",
                        })
                    }
                    Err(RemoteError::Transport { .. }) => continue 'catchup,
                    Err(e) => return Err(e),
                }
            }
            return Ok(());
        }
    }

    /// A fresh handle on worker `w`'s live connection for a writer
    /// thread ([`Conn::try_clone`] — shared socket, private ledger).
    fn worker_conn_clone(&self, w: usize) -> Result<Conn, RemoteError> {
        match self.workers[w].conn.as_ref() {
            Some(conn) => conn
                .try_clone()
                .map_err(|err| RemoteError::Transport { worker: w, err }),
            None => Err(RemoteError::Transport {
                worker: w,
                err: TransportError::Closed { op: "clone" },
            }),
        }
    }

    /// Commit a checkpoint cut at the current boundary: pull the state of
    /// every dirty (or never-captured) shard, and only when **all** of
    /// them arrived commit states + ledger charge atomically. Worker
    /// deaths restart the request loop after failover — snapshots are
    /// read-only, so re-requesting is always safe.
    fn sync_checkpoint(
        &mut self,
        feeds: &[(SiteId, &[In])],
        fault_boundary: Option<u64>,
        ckpt_rounds: &mut u64,
        rounds_done: u64,
    ) -> Result<(), RemoteError> {
        let need: Vec<usize> = (0..self.cfg.shards_count())
            .filter(|&sid| self.dirty[sid] > 0 || self.ckpt_states[sid].is_none())
            .collect();
        if need.is_empty() {
            *ckpt_rounds = rounds_done;
            return Ok(());
        }
        loop {
            let mut per_worker: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
            for &sid in &need {
                per_worker.entry(self.owner[sid]).or_default().push(sid);
            }
            let mut staged: BTreeMap<usize, (TrackerState, usize)> = BTreeMap::new();
            let mut failed: BTreeSet<usize> = BTreeSet::new();
            let mut sent: Vec<usize> = Vec::new();
            let rebase = self.cfg.delta_rebase_period();
            for (w, sids) in per_worker {
                // Delta pulls are strictly opt-in (`delta_rebase(K)` with
                // K > 0) and only when both sides hold the same base;
                // every K-th pull goes back to a full state.
                let pulls: Vec<StatePull> = sids
                    .iter()
                    .map(|&sid| StatePull {
                        sid,
                        want_delta: rebase > 0
                            && self.wire_base[sid].is_some()
                            && self.links_since_base[sid] < rebase,
                    })
                    .collect();
                match self.send_to(w, &ToWorker::Checkpoint { shards: pulls }.to_bytes()) {
                    Ok(()) => sent.push(w),
                    Err(_) => {
                        failed.insert(w);
                    }
                }
                if let Some(boundary) = fault_boundary {
                    if let Some(kind) = self.faults.take(FaultPoint::DuringCheckpoint(boundary), w)
                    {
                        self.disrupt(w, kind);
                    }
                }
            }
            for w in sent {
                match self.recv_coord(w) {
                    Ok(ToCoord::CheckpointReport { states }) => {
                        for (sid, entry) in states {
                            if sid >= self.wire_base.len() {
                                return Err(RemoteError::Protocol {
                                    worker: w,
                                    what: "checkpoint entry for an unknown shard",
                                });
                            }
                            // Resolve to a full state and advance the
                            // delta base *on receipt*: the worker already
                            // advanced its own base when it replied, so
                            // the two must move together even if this
                            // round's commit is aborted by another
                            // worker's death.
                            let (state, wire_len) = match entry {
                                StateEntry::Full(state) => {
                                    if state.kind() != self.kind || state.k() != self.k {
                                        return Err(RemoteError::Protocol {
                                            worker: w,
                                            what: "checkpoint state contradicts the engine spec",
                                        });
                                    }
                                    self.links_since_base[sid] = 0;
                                    let len = state.payload().len();
                                    (state, len)
                                }
                                StateEntry::Delta(delta) => {
                                    let Some(base) = self.wire_base[sid].as_ref() else {
                                        return Err(RemoteError::Protocol {
                                            worker: w,
                                            what: "delta checkpoint entry without a shared base",
                                        });
                                    };
                                    let len = delta.encoded_len();
                                    let payload = delta
                                        .apply(base.payload())
                                        .map_err(|err| RemoteError::Decode { worker: w, err })?;
                                    self.links_since_base[sid] += 1;
                                    (TrackerState::new(self.kind, base.k(), payload), len)
                                }
                            };
                            self.wire_base[sid] = Some(state.clone());
                            staged.insert(sid, (state, wire_len));
                        }
                    }
                    Ok(_) => {
                        return Err(RemoteError::Protocol {
                            worker: w,
                            what: "unexpected reply to a checkpoint request",
                        })
                    }
                    Err(RemoteError::Transport { .. }) => {
                        failed.insert(w);
                    }
                    Err(e) => return Err(e),
                }
            }
            if failed.is_empty() {
                for &sid in &need {
                    let Some((state, wire_len)) = staged.remove(&sid) else {
                        return Err(RemoteError::Protocol {
                            worker: self.owner[sid],
                            what: "checkpoint reply missing a requested shard",
                        });
                    };
                    // Charge what was actually shipped: the full payload
                    // for a full pull, the encoded delta for a delta pull
                    // — one ledger message per shard either way, so the
                    // message counts stay comparable across modes (and
                    // agree with the wire's frame counts; see
                    // tests/delta_checkpoint.rs).
                    let frame = StateFrame::for_payload(sid, wire_len);
                    self.ckpt_stats.charge(MsgKind::Up, frame.words());
                    self.ckpt_states[sid] = Some(state);
                    self.dirty[sid] = 0;
                }
                *ckpt_rounds = rounds_done;
                return Ok(());
            }
            for w in failed {
                self.failover(w, feeds, *ckpt_rounds, rounds_done)?;
            }
        }
    }

    /// Recover from the death of worker `dead`: tear the slot down,
    /// restore its shards from the last committed checkpoint cut
    /// (respawn into the slot, or reattach onto a live worker), and
    /// replay rounds `ckpt_rounds..rounds_done` from the feeds —
    /// discarding the reports, since those rounds are already absorbed.
    /// The in-flight round (if any) is *not* replayed here; the caller
    /// re-sends it and uses the report.
    fn failover(
        &mut self,
        dead: usize,
        feeds: &[(SiteId, &[In])],
        ckpt_rounds: u64,
        rounds_done: u64,
    ) -> Result<(), RemoteError> {
        let s_count = self.cfg.shards_count();
        let batch = self.cfg.batch_size();
        let mut dead = dead;
        'recover: loop {
            self.failovers += 1;
            if self.failovers > self.rcfg.max_failovers {
                return Err(RemoteError::FailoverExhausted { worker: dead });
            }
            if let Some(conn) = self.workers[dead].conn.take() {
                self.wire.merge(conn.stats());
                conn.shutdown();
            }
            if let Some(mut child) = self.workers[dead].child.take() {
                let _ = child.kill();
                let _ = child.wait();
            }
            if let Some(handle) = self.workers[dead].thread.take() {
                self.graveyard.push(handle);
            }
            let owned: BTreeSet<usize> = (0..s_count)
                .filter(|&sid| self.owner[sid] == dead)
                .collect();
            let inits: Vec<ShardInit> = owned
                .iter()
                .map(|&sid| ShardInit {
                    sid,
                    state: self.ckpt_states[sid].clone(),
                })
                .collect();
            // The replacement restores from the committed cut, which
            // resets its delta bases to those states — mirror that here,
            // symmetrically, before any further checkpoint pull.
            for &sid in &owned {
                self.wire_base[sid] = self.ckpt_states[sid].clone();
                self.links_since_base[sid] = 0;
            }
            let reattach_to = match self.rcfg.recovery {
                Recovery::Respawn => None,
                Recovery::Reattach => {
                    (0..self.workers.len()).find(|&w| w != dead && self.workers[w].conn.is_some())
                }
            };
            let dest = match reattach_to {
                Some(dest) => match self.install(dest, ToWorker::Attach { shards: inits }) {
                    Ok(()) => {
                        for &sid in &owned {
                            self.owner[sid] = dest;
                        }
                        dest
                    }
                    Err(RemoteError::Transport { .. }) => {
                        // The reattach target died too; recover it (the
                        // original shards stay mapped to the dead slot and
                        // surface again at the caller's next send).
                        dead = dest;
                        continue 'recover;
                    }
                    Err(e) => return Err(e),
                },
                None => {
                    let generation = self.workers[dead].generation + 1;
                    self.spawn_worker(dead, generation)?;
                    self.install(
                        dead,
                        ToWorker::Assign {
                            spec: self.spec,
                            s_count,
                            shards: inits,
                        },
                    )?;
                    dead
                }
            };
            // Replay the window since the committed cut, restricted to
            // the recovered shards (a reattach target's own shards are
            // live and must not see the rounds twice).
            let mut replayed = 0u64;
            for replay_round in ckpt_rounds..rounds_done {
                let mut chunks = Vec::new();
                for &(site, inputs) in feeds {
                    let Some((lo, hi)) = chunk_bounds(inputs.len(), batch, replay_round as usize)
                    else {
                        continue;
                    };
                    let sid = site % s_count;
                    if !owned.contains(&sid) {
                        continue;
                    }
                    chunks.push(Chunk {
                        sid,
                        site,
                        inputs: In::wrap(&inputs[lo..hi]),
                    });
                }
                if chunks.is_empty() {
                    continue;
                }
                let msg = ToWorker::Round {
                    round: replay_round,
                    delay_ms: 0,
                    chunks,
                };
                match self.exchange(dest, &msg) {
                    // Already absorbed at the original boundary: discard,
                    // so the merge ledger never sees the replay.
                    Ok(ToCoord::RoundReport { .. }) => replayed += 1,
                    Ok(_) => {
                        return Err(RemoteError::Protocol {
                            worker: dest,
                            what: "unexpected reply to a replayed round",
                        })
                    }
                    Err(RemoteError::Transport { .. }) => {
                        dead = dest;
                        continue 'recover;
                    }
                    Err(e) => return Err(e),
                }
            }
            self.events.push(FailoverEvent {
                worker: dead,
                round: rounds_done,
                generation: self.workers[dest].generation,
                recovered_to: dest,
                replayed_rounds: replayed,
            });
            return Ok(());
        }
    }

    /// Spawn a worker into slot `w` (thread or process per the config),
    /// accept its connection, and verify the handshake identity.
    fn spawn_worker(&mut self, w: usize, generation: u64) -> Result<(), RemoteError> {
        let idle = self.rcfg.worker_idle_timeout;
        let retries = self.rcfg.connect_retries;
        let backoff = self.rcfg.connect_backoff;
        match self.rcfg.spawn.clone() {
            SpawnMode::Threads => {
                let ep = self.listener.endpoint().clone();
                let handle = std::thread::spawn(move || {
                    let _ = worker::serve(&ep, w as u64, generation, idle, retries, backoff);
                });
                self.workers[w].thread = Some(handle);
            }
            SpawnMode::Processes { bin } => {
                let child = Command::new(&bin)
                    .arg(self.listener.endpoint().to_string())
                    .args(["--worker", &w.to_string()])
                    .args(["--gen", &generation.to_string()])
                    .args(["--timeout-ms", &idle.as_millis().to_string()])
                    .args(["--retries", &retries.to_string()])
                    .args(["--backoff-ms", &backoff.as_millis().to_string()])
                    .stdin(Stdio::null())
                    .spawn()
                    .map_err(|e| RemoteError::Spawn {
                        worker: w,
                        kind: e.kind(),
                    })?;
                self.workers[w].child = Some(child);
            }
        }
        let map_err = |err| RemoteError::Transport { worker: w, err };
        let mut conn = self
            .listener
            .accept(Some(self.rcfg.spawn_timeout))
            .map_err(map_err)?;
        conn.set_max_frame(self.rcfg.max_frame);
        conn.set_io_timeout(Some(self.rcfg.io_timeout))
            .map_err(map_err)?;
        let hello = parse_hello(&conn.recv().map_err(map_err)?).map_err(map_err)?;
        if hello.role != Role::Worker || hello.worker != w as u64 || hello.generation != generation
        {
            return Err(RemoteError::Protocol {
                worker: w,
                what: "handshake identity mismatch",
            });
        }
        self.workers[w].conn = Some(conn);
        self.workers[w].generation = generation;
        Ok(())
    }

    /// Send an assignment and require a clean ack.
    fn install(&mut self, w: usize, msg: ToWorker) -> Result<(), RemoteError> {
        match self.exchange(w, &msg)? {
            ToCoord::AssignAck { error } if error.is_empty() => Ok(()),
            ToCoord::AssignAck { error } => Err(RemoteError::WorkerRejected {
                worker: w,
                msg: error,
            }),
            _ => Err(RemoteError::Protocol {
                worker: w,
                what: "unexpected reply to an assignment",
            }),
        }
    }

    fn exchange(&mut self, w: usize, msg: &ToWorker) -> Result<ToCoord, RemoteError> {
        self.send_to(w, &msg.to_bytes())
            .map_err(|err| RemoteError::Transport { worker: w, err })?;
        self.recv_coord(w)
    }

    fn send_to(&mut self, w: usize, bytes: &[u8]) -> Result<(), TransportError> {
        match &mut self.workers[w].conn {
            Some(conn) => conn.send(bytes),
            None => Err(TransportError::Closed { op: "send" }),
        }
    }

    fn recv_coord(&mut self, w: usize) -> Result<ToCoord, RemoteError> {
        let conn = self.workers[w]
            .conn
            .as_mut()
            .ok_or(RemoteError::Transport {
                worker: w,
                err: TransportError::Closed { op: "recv" },
            })?;
        let frame = conn
            .recv()
            .map_err(|err| RemoteError::Transport { worker: w, err })?;
        ToCoord::from_bytes(&frame).map_err(|err| RemoteError::Decode { worker: w, err })
    }

    /// Apply an injected disruption to worker `w` (see [`FaultKind`]).
    fn disrupt(&mut self, w: usize, kind: FaultKind) {
        match kind {
            FaultKind::Kill => {
                if let Some(child) = &mut self.workers[w].child {
                    let _ = child.kill();
                } else if let Some(conn) = &self.workers[w].conn {
                    conn.shutdown();
                }
            }
            FaultKind::Sever | FaultKind::Delay { .. } => {
                if let Some(conn) = &self.workers[w].conn {
                    conn.shutdown();
                }
            }
        }
    }

    /// Resume every shard's last committed state locally, yielding the
    /// per-shard estimates and the summed in-protocol tracker ledger —
    /// the state the in-process engine reads off its replicas directly.
    fn resume_final(&self) -> Result<(Vec<i64>, CommStats), RemoteError> {
        use dsv_core::api::Tracker;
        let mut estimates = Vec::with_capacity(self.ckpt_states.len());
        let mut stats = CommStats::new();
        for (sid, state) in self.ckpt_states.iter().enumerate() {
            let state = state.as_ref().ok_or(RemoteError::Protocol {
                worker: self.owner[sid],
                what: "no committed state for a shard",
            })?;
            let map_build = |e| RemoteError::Engine(EngineError::Build(e));
            let map_codec = |e| RemoteError::Engine(EngineError::Codec(e));
            match self.kind.problem() {
                Problem::Counting => {
                    let mut t = self.spec.shard(sid).build().map_err(map_build)?;
                    t.restore(state).map_err(map_codec)?;
                    estimates.push(t.estimate());
                    stats.merge(t.stats());
                }
                Problem::Frequencies => {
                    let mut t = self.spec.shard(sid).build_item().map_err(map_build)?;
                    t.restore(state).map_err(map_codec)?;
                    estimates.push(t.estimate());
                    stats.merge(t.stats());
                }
            }
        }
        Ok((estimates, stats))
    }
}

impl<In: RemoteInput> Drop for RemoteEngine<In> {
    fn drop(&mut self) {
        let finish = ToWorker::Finish.to_bytes();
        for slot in &mut self.workers {
            if let Some(conn) = &mut slot.conn {
                let _ = conn.send(&finish);
            }
            // Closing the socket reaps even a worker that never decodes
            // the Finish (its next read observes the close).
            if let Some(conn) = slot.conn.take() {
                conn.shutdown();
            }
            if let Some(mut child) = slot.child.take() {
                let _ = child.wait();
            }
            if let Some(handle) = slot.thread.take() {
                let _ = handle.join();
            }
        }
        for handle in self.graveyard.drain(..) {
            let _ = handle.join();
        }
    }
}

/// A staged command for one worker's writer thread, carried over the
/// same SPSC ring the pipelined local engine feeds shards with. `Copy`
/// because the ring memcpys its slots; the chunk payloads are *not*
/// staged — the writer re-derives them from the shared feeds, so a
/// command is two words however fat the round.
#[derive(Clone, Copy)]
enum Cmd {
    /// Stage round `round` (with an injected worker-side stall of
    /// `delay_ms`, normally 0) into the writer's pending frame; the
    /// frame ships once it holds `rounds_per_frame` rounds.
    Round { round: u64, delay_ms: u64 },
    /// Ship the pending frame now even if short (block and barrier
    /// cuts); a no-op when nothing is pending.
    Flush,
}

/// Blocking producer push honoring the engine's [`Backpressure`] policy.
/// Returns `false` — with the command not enqueued — only when the queue
/// is closed, which is how a writer thread reports a dead socket. The
/// `Error` policy cannot shed a round command (dropping one would desync
/// the absorber), so it parks like `Block`; the two-block staging
/// discipline keeps the queue from ever filling in the first place.
fn stage_push(ring: &Ring<Cmd>, policy: Backpressure, cmd: Cmd) -> bool {
    loop {
        if ring.is_closed() {
            return false;
        }
        if ring.push_some(std::slice::from_ref(&cmd)) == 1 {
            return true;
        }
        match policy {
            Backpressure::Yield => std::thread::yield_now(),
            Backpressure::Block | Backpressure::Error => ring.wait_not_full(),
        }
    }
}

/// One worker's writer thread: drain round commands from the queue,
/// build their chunks from the shared feeds (owner snapshot — static,
/// because pipelined failover always respawns), and ship `Rounds`
/// envelopes of up to `rpf` rounds per frame. On a send failure the
/// writer closes its own queue — that is its death notice to the
/// staging side — and returns; on close-and-drained it flushes any
/// pending partial frame and returns. Either way the connection handle
/// comes back so the coordinator can fold its wire ledger.
#[allow(clippy::too_many_arguments)]
fn writer_drain<In: RemoteInput>(
    ring: &Ring<Cmd>,
    mut conn: Conn,
    feeds: &[(SiteId, &[In])],
    owner: &[usize],
    w: usize,
    s_count: usize,
    batch: usize,
    rpf: usize,
) -> Conn {
    let mut cmds: Vec<Cmd> = Vec::with_capacity(1);
    let mut frame: Vec<RoundWork> = Vec::new();
    loop {
        cmds.clear();
        ring.pop_round(&mut cmds, 1);
        let Some(&cmd) = cmds.first() else {
            // Closed and drained: ship the partial frame (a no-op
            // teardown when the run absorbed everything) and exit.
            if !frame.is_empty() {
                let _ = ship_frame(&mut conn, &mut frame);
            }
            return conn;
        };
        match cmd {
            Cmd::Round { round, delay_ms } => {
                let mut chunks = Vec::new();
                for &(site, inputs) in feeds {
                    let Some((lo, hi)) = chunk_bounds(inputs.len(), batch, round as usize) else {
                        continue;
                    };
                    let sid = site % s_count;
                    if owner[sid] != w {
                        continue;
                    }
                    chunks.push(Chunk {
                        sid,
                        site,
                        inputs: In::wrap(&inputs[lo..hi]),
                    });
                }
                frame.push(RoundWork {
                    round,
                    delay_ms,
                    chunks,
                });
                if frame.len() >= rpf && ship_frame(&mut conn, &mut frame).is_err() {
                    ring.close();
                    return conn;
                }
            }
            Cmd::Flush => {
                if !frame.is_empty() && ship_frame(&mut conn, &mut frame).is_err() {
                    ring.close();
                    return conn;
                }
            }
        }
    }
}

/// Send the writer's pending rounds as one `Rounds` envelope.
fn ship_frame(conn: &mut Conn, frame: &mut Vec<RoundWork>) -> Result<(), TransportError> {
    let msg = ToWorker::Rounds {
        rounds: std::mem::take(frame),
    };
    conn.send(&msg.to_bytes())
}

/// Spawn a writer thread for worker `w` inside the run's scope.
#[allow(clippy::too_many_arguments)]
fn spawn_writer<'scope, 'env, In: RemoteInput>(
    scope: &'scope Scope<'scope, 'env>,
    ring: Arc<Ring<Cmd>>,
    conn: Conn,
    feeds: &'env [(SiteId, &'env [In])],
    owner: Vec<usize>,
    w: usize,
    s_count: usize,
    batch: usize,
    rpf: usize,
) -> ScopedJoinHandle<'scope, Conn> {
    scope.spawn(move || writer_drain(&ring, conn, feeds, &owner, w, s_count, batch, rpf))
}

/// Tear down worker `w`'s send lane (close the queue, join the writer,
/// fold its wire ledger) and start a fresh one over `conn` — the
/// recovery step after any failover replaces the slot's connection.
#[allow(clippy::too_many_arguments)]
fn rebuild_lane<'scope, 'env, In: RemoteInput>(
    scope: &'scope Scope<'scope, 'env>,
    rings: &mut [Arc<Ring<Cmd>>],
    lanes: &mut [Option<ScopedJoinHandle<'scope, Conn>>],
    wire: &mut WireStats,
    conn: Conn,
    feeds: &'env [(SiteId, &'env [In])],
    owner: Vec<usize>,
    w: usize,
    s_count: usize,
    batch: usize,
    rpf: usize,
    cap: usize,
) {
    rings[w].close();
    if let Some(handle) = lanes[w].take() {
        match handle.join() {
            Ok(old) => wire.merge(old.stats()),
            Err(panic) => std::panic::resume_unwind(panic),
        }
    }
    let ring = Arc::new(Ring::new(cap));
    lanes[w] = Some(spawn_writer(
        scope,
        Arc::clone(&ring),
        conn,
        feeds,
        owner,
        w,
        s_count,
        batch,
        rpf,
    ));
    rings[w] = ring;
}

/// The `run_parted` chunking rule: round `round`'s slice of a feed of
/// `len` inputs, or `None` when the feed is exhausted.
fn chunk_bounds(len: usize, batch: usize, round: usize) -> Option<(usize, usize)> {
    let lo = (round * batch).min(len);
    let hi = ((round + 1) * batch).min(len);
    if lo == hi {
        None
    } else {
        Some((lo, hi))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ShardedEngine;
    use dsv_gen::{DeltaGen, RoundRobin, WalkGen};

    fn det_spec(k: usize) -> TrackerSpec {
        TrackerSpec::new(TrackerKind::Deterministic)
            .k(k)
            .eps(0.1)
            .deletions(true)
    }

    fn walk_feeds(k: usize, n: usize) -> Vec<(usize, Vec<i64>)> {
        let updates = WalkGen::fair(3).updates(n as u64, RoundRobin::new(k));
        let mut feeds: Vec<(usize, Vec<i64>)> = (0..k).map(|s| (s, Vec::new())).collect();
        for u in &updates {
            feeds[u.site].1.push(u.delta);
        }
        feeds
    }

    fn slices(feeds: &[(usize, Vec<i64>)]) -> Vec<(usize, &[i64])> {
        feeds.iter().map(|(s, v)| (*s, v.as_slice())).collect()
    }

    fn fast_rcfg() -> RemoteConfig {
        RemoteConfig {
            io_timeout: Duration::from_millis(500),
            ..RemoteConfig::default()
        }
    }

    #[test]
    fn remote_threads_over_tcp_match_the_in_process_engine() {
        let feeds = walk_feeds(4, 16_000);
        let cfg = EngineConfig::new(4, 500);

        let mut local = ShardedEngine::counters(det_spec(4), cfg).unwrap();
        let local_report = local.run_parted(&slices(&feeds)).unwrap();
        let local_ckpt = local.checkpoint().unwrap();

        let mut remote = RemoteEngine::counters(det_spec(4), cfg, fast_rcfg()).unwrap();
        let report = remote.run_parted(&slices(&feeds)).unwrap();

        assert_eq!(report.n, local_report.n);
        assert_eq!(report.batches, local_report.batches);
        assert_eq!(report.final_f, local_report.final_f);
        assert_eq!(report.final_estimate, local_report.final_estimate);
        assert_eq!(report.tracker_stats, local_report.tracker_stats);
        assert_eq!(report.merge_stats, local_report.merge_stats);
        assert_eq!(remote.merge_stats(), local.merge_stats());
        assert_eq!(remote.shard_estimates().unwrap(), local.shard_estimates());
        // The mandatory end-of-run commit charges exactly what the
        // explicit in-process checkpoint charges, and assembles the same
        // restorable image.
        assert_eq!(remote.checkpoint_stats(), local.checkpoint_stats());
        assert_eq!(remote.checkpoint().unwrap(), local_ckpt);
        assert!(remote.events().is_empty());
        let wire = remote.wire_stats();
        assert!(wire.frames_sent > 0 && wire.bytes_received > 0);
    }

    #[test]
    fn pipelined_frames_stay_bit_identical_and_fewer() {
        let feeds = walk_feeds(4, 16_000);
        let base = EngineConfig::new(4, 500);

        let mut local = ShardedEngine::counters(det_spec(4), base).unwrap();
        let local_report = local.run_parted(&slices(&feeds)).unwrap();
        let local_ckpt = local.checkpoint().unwrap();

        let mut sync = RemoteEngine::counters(det_spec(4), base, fast_rcfg()).unwrap();
        sync.run_parted(&slices(&feeds)).unwrap();
        let sync_frames = sync.wire_stats().frames_sent;

        for rpf in [4, 16] {
            let cfg = base.rounds_per_frame(rpf);
            let mut remote = RemoteEngine::counters(det_spec(4), cfg, fast_rcfg()).unwrap();
            let report = remote.run_parted(&slices(&feeds)).unwrap();

            // The full equivalence surface, at every frame width.
            assert_eq!(report.n, local_report.n, "rpf={rpf}");
            assert_eq!(report.batches, local_report.batches);
            assert_eq!(report.final_f, local_report.final_f);
            assert_eq!(report.final_estimate, local_report.final_estimate);
            assert_eq!(report.tracker_stats, local_report.tracker_stats);
            assert_eq!(report.merge_stats, local_report.merge_stats);
            assert_eq!(remote.shard_estimates().unwrap(), local.shard_estimates());
            assert_eq!(remote.checkpoint_stats(), local.checkpoint_stats());
            assert_eq!(remote.checkpoint().unwrap(), local_ckpt);
            assert!(remote.events().is_empty());

            // Only the wire ledger moves: batching rounds into fewer,
            // fatter frames strictly reduces coordinator frames sent.
            let frames = remote.wire_stats().frames_sent;
            assert!(
                frames < sync_frames,
                "rpf={rpf}: {frames} frames vs {sync_frames} synchronous"
            );
        }
    }

    #[test]
    fn pipelined_failover_respawns_and_stays_bit_identical() {
        let feeds = walk_feeds(4, 12_000);
        let cfg = EngineConfig::new(4, 250)
            .checkpoint_every(4)
            .rounds_per_frame(4);

        let mut local = ShardedEngine::counters(det_spec(4), cfg).unwrap();
        let local_report = local.run_parted(&slices(&feeds)).unwrap();

        // Reattach is requested but must degrade to a respawn in
        // pipelined mode (writers hold a static owner snapshot).
        let rcfg = RemoteConfig {
            recovery: Recovery::Reattach,
            ..fast_rcfg()
        };
        let mut remote = RemoteEngine::counters(det_spec(4), cfg, rcfg).unwrap();
        remote.set_fault_plan(FaultPlan::new().inject(
            FaultPoint::MidRound(6),
            1,
            FaultKind::Sever,
        ));
        let report = remote.run_parted(&slices(&feeds)).unwrap();

        assert_eq!(remote.events().len(), 1);
        assert_eq!(remote.events()[0].worker, 1);
        assert_eq!(remote.events()[0].recovered_to, 1, "forced respawn");
        assert_eq!(report.final_f, local_report.final_f);
        assert_eq!(report.final_estimate, local_report.final_estimate);
        assert_eq!(report.tracker_stats, local_report.tracker_stats);
        assert_eq!(report.merge_stats, local_report.merge_stats);
        assert_eq!(remote.shard_estimates().unwrap(), local.shard_estimates());
        assert_eq!(remote.checkpoint().unwrap(), local.checkpoint().unwrap());
    }

    #[test]
    fn pipelined_engine_is_incremental_across_runs() {
        let feeds = walk_feeds(3, 9_000);
        let cfg = EngineConfig::new(3, 300).rounds_per_frame(4);
        let mut local = ShardedEngine::counters(det_spec(3), cfg).unwrap();
        let mut remote = RemoteEngine::counters(det_spec(3), cfg, fast_rcfg()).unwrap();
        for half in 0..2 {
            let part: Vec<(usize, &[i64])> = feeds
                .iter()
                .map(|(s, v)| {
                    let mid = v.len() / 2;
                    let range = if half == 0 { &v[..mid] } else { &v[mid..] };
                    (*s, range)
                })
                .collect();
            local.run_parted(&part).unwrap();
            local.checkpoint().unwrap();
            remote.run_parted(&part).unwrap();
        }
        assert_eq!(remote.estimate(), local.estimate());
        assert_eq!(remote.time(), local.time());
        assert_eq!(remote.merge_stats(), local.merge_stats());
        assert_eq!(remote.checkpoint().unwrap(), local.checkpoint().unwrap());
    }

    #[test]
    fn delta_checkpoint_pulls_stay_bit_identical_and_cheaper() {
        let feeds = walk_feeds(4, 16_000);
        let full_cfg = EngineConfig::new(4, 250).checkpoint_every(4);
        let delta_cfg = full_cfg.delta_rebase(3);

        let mut local = ShardedEngine::counters(det_spec(4), full_cfg).unwrap();
        let local_report = local.run_parted(&slices(&feeds)).unwrap();
        let local_ckpt = local.checkpoint().unwrap();

        let mut full = RemoteEngine::counters(det_spec(4), full_cfg, fast_rcfg()).unwrap();
        full.run_parted(&slices(&feeds)).unwrap();

        let mut delta = RemoteEngine::counters(det_spec(4), delta_cfg, fast_rcfg()).unwrap();
        let report = delta.run_parted(&slices(&feeds)).unwrap();

        // Delta pulls are an encoding change only: every observable result
        // matches the full-snapshot engine and the in-process engine.
        assert_eq!(report.final_estimate, local_report.final_estimate);
        assert_eq!(report.tracker_stats, local_report.tracker_stats);
        assert_eq!(report.merge_stats, local_report.merge_stats);
        assert_eq!(delta.checkpoint().unwrap(), local_ckpt);
        assert_eq!(delta.checkpoint().unwrap(), full.checkpoint().unwrap());

        // Both modes ship one state frame per shard per sync, so the ledgers
        // agree on message counts; the delta ledger carries fewer words.
        let (d, f) = (delta.checkpoint_stats(), full.checkpoint_stats());
        assert_eq!(d.total_messages(), f.total_messages());
        assert!(
            d.total_words() < f.total_words(),
            "delta words {} vs full words {}",
            d.total_words(),
            f.total_words()
        );
    }

    #[test]
    fn delta_mode_failover_resyncs_wire_bases() {
        let feeds = walk_feeds(4, 12_000);
        let cfg = EngineConfig::new(4, 250)
            .checkpoint_every(4)
            .delta_rebase(3);

        let mut local = ShardedEngine::counters(det_spec(4), cfg).unwrap();
        let local_report = local.run_parted(&slices(&feeds)).unwrap();

        let mut remote = RemoteEngine::counters(det_spec(4), cfg, fast_rcfg()).unwrap();
        remote.set_fault_plan(FaultPlan::new().inject(
            FaultPoint::MidRound(6),
            1,
            FaultKind::Sever,
        ));
        let report = remote.run_parted(&slices(&feeds)).unwrap();

        assert_eq!(remote.events().len(), 1);
        assert_eq!(report.final_estimate, local_report.final_estimate);
        assert_eq!(report.tracker_stats, local_report.tracker_stats);
        assert_eq!(remote.checkpoint().unwrap(), local.checkpoint().unwrap());
    }

    #[test]
    fn severed_worker_fails_over_and_stays_bit_identical() {
        let feeds = walk_feeds(4, 12_000);
        let cfg = EngineConfig::new(4, 250).checkpoint_every(4);

        let mut local = ShardedEngine::counters(det_spec(4), cfg).unwrap();
        let local_report = local.run_parted(&slices(&feeds)).unwrap();

        for recovery in [Recovery::Respawn, Recovery::Reattach] {
            let rcfg = RemoteConfig {
                recovery,
                ..fast_rcfg()
            };
            let mut remote = RemoteEngine::counters(det_spec(4), cfg, rcfg).unwrap();
            remote.set_fault_plan(FaultPlan::new().inject(
                FaultPoint::MidRound(6),
                1,
                FaultKind::Sever,
            ));
            let report = remote.run_parted(&slices(&feeds)).unwrap();

            assert_eq!(remote.events().len(), 1, "{recovery:?}");
            let event = remote.events()[0];
            assert_eq!(event.worker, 1);
            assert_eq!(
                event.recovered_to,
                if recovery == Recovery::Respawn { 1 } else { 0 }
            );
            // Checkpoint at boundary 4 bounds the replay to rounds 4..6.
            assert_eq!(event.replayed_rounds, 2);
            assert_eq!(
                report.final_estimate, local_report.final_estimate,
                "{recovery:?}"
            );
            assert_eq!(report.final_f, local_report.final_f);
            assert_eq!(report.tracker_stats, local_report.tracker_stats);
            assert_eq!(report.merge_stats, local_report.merge_stats);
            assert_eq!(remote.shard_estimates().unwrap(), local.shard_estimates());
        }
    }

    #[test]
    fn delayed_worker_trips_the_failure_detector() {
        let feeds = walk_feeds(2, 4_000);
        let cfg = EngineConfig::new(2, 500).checkpoint_every(2);
        let rcfg = RemoteConfig {
            io_timeout: Duration::from_millis(100),
            ..RemoteConfig::default()
        };

        let mut local = ShardedEngine::counters(det_spec(2), cfg).unwrap();
        let local_report = local.run_parted(&slices(&feeds)).unwrap();

        let mut remote = RemoteEngine::counters(det_spec(2), cfg, rcfg).unwrap();
        remote.set_fault_plan(FaultPlan::new().inject(
            FaultPoint::MidRound(3),
            0,
            FaultKind::Delay { ms: 600 },
        ));
        let report = remote.run_parted(&slices(&feeds)).unwrap();
        assert_eq!(remote.events().len(), 1);
        assert_eq!(report.final_estimate, local_report.final_estimate);
        assert_eq!(report.merge_stats, local_report.merge_stats);
    }

    #[test]
    fn engine_is_incremental_across_remote_runs() {
        let feeds = walk_feeds(3, 9_000);
        let cfg = EngineConfig::new(3, 300);
        let mut local = ShardedEngine::counters(det_spec(3), cfg).unwrap();
        let mut remote = RemoteEngine::counters(det_spec(3), cfg, fast_rcfg()).unwrap();
        for half in 0..2 {
            let part: Vec<(usize, &[i64])> = feeds
                .iter()
                .map(|(s, v)| {
                    let mid = v.len() / 2;
                    let range = if half == 0 { &v[..mid] } else { &v[mid..] };
                    (*s, range)
                })
                .collect();
            local.run_parted(&part).unwrap();
            local.checkpoint().unwrap();
            remote.run_parted(&part).unwrap();
        }
        assert_eq!(remote.estimate(), local.estimate());
        assert_eq!(remote.time(), local.time());
        assert_eq!(remote.merge_stats(), local.merge_stats());
        assert_eq!(remote.checkpoint_stats(), local.checkpoint_stats());
        assert_eq!(remote.checkpoint().unwrap(), local.checkpoint().unwrap());
    }

    #[test]
    fn bad_feeds_are_rejected_before_any_traffic() {
        let cfg = EngineConfig::new(2, 100);
        let mut remote = RemoteEngine::counters(det_spec(2), cfg, fast_rcfg()).unwrap();
        let ones = vec![1i64; 10];
        let err = remote.run_parted(&[(7, ones.as_slice())]).unwrap_err();
        assert!(matches!(
            err,
            RemoteError::Engine(EngineError::Run(RunError::SiteOutOfRange { site: 7, .. }))
        ));
        assert_eq!(remote.time(), 0);

        let cmy = TrackerSpec::new(TrackerKind::CmyMonotone).k(1).eps(0.1);
        let mut remote =
            RemoteEngine::counters(cmy, EngineConfig::new(1, 100), fast_rcfg()).unwrap();
        let bad = vec![1i64, -1];
        let err = remote.run_parted(&[(0, bad.as_slice())]).unwrap_err();
        assert!(matches!(
            err,
            RemoteError::Engine(EngineError::Run(RunError::DeletionUnsupported { .. }))
        ));
    }
}
