//! The coordinator ↔ shard-worker wire protocol.
//!
//! Every protocol message is one transport frame (see
//! `dsv_net::transport`): a versioned envelope (magic [`WIRE_MAGIC`] +
//! `u16` [`WIRE_VERSION`]), a `u8` message tag, then the fields, all
//! encoded with the workspace codec (`dsv_net::codec`). Decoding is
//! panic-free and exact — truncation, corruption, unknown tags, and
//! trailing bytes are typed [`CodecError`]s — and the corruption gauntlet
//! in `tests/failover_injection.rs` drives every byte of every message
//! shape through the decoder to hold it to that.
//!
//! The payloads reuse the already wire-sized model types: round chunks
//! are the per-site runs `run_parted` dispatches, checkpoint states are
//! the same versioned `TrackerState` envelopes the in-process seam
//! serializes, and boundary reports carry exactly the `(shard, estimate,
//! Σδ, length)` tuples the in-process merge path reconciles — which is
//! why a remote run can be bit-identical to the in-process one.

use dsv_core::api::TrackerSpec;
use dsv_core::codec::TrackerState;
use dsv_net::codec::{CodecError, Dec, Enc};
use dsv_net::StateDelta;

/// Magic bytes opening every remote-protocol message.
pub const WIRE_MAGIC: [u8; 4] = *b"DSVR";

/// Current remote-protocol version. A peer speaking a newer version is a
/// typed [`CodecError::UnsupportedVersion`], surfaced before any shard
/// state moves. v2 adds delta checkpoint pulls — per-shard want-delta
/// flags on [`ToWorker::Checkpoint`] and tagged [`StateEntry`] report
/// entries. v3 adds the pipelined-ingestion [`ToWorker::Rounds`]
/// envelope, batching several rounds of chunks into one frame (the
/// worker still answers one [`ToCoord::RoundReport`] per round). Older
/// frames (v1 plain shard lists and untagged full states, v2
/// single-round [`ToWorker::Round`] frames) still decode.
pub const WIRE_VERSION: u16 = 3;

/// One shard's inputs for one round — the per-problem input payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Inputs {
    /// Counter-stream deltas (`In = i64`).
    Counts(Vec<i64>),
    /// Item-stream updates (`In = (item, δ)`).
    Items(Vec<(u64, i64)>),
}

impl Inputs {
    /// Number of inputs carried.
    pub fn len(&self) -> usize {
        match self {
            Inputs::Counts(v) => v.len(),
            Inputs::Items(v) => v.len(),
        }
    }

    /// Whether no inputs are carried.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn encode(&self, enc: &mut Enc) {
        match self {
            Inputs::Counts(v) => {
                enc.u8(1);
                enc.seq_i64(v);
            }
            Inputs::Items(v) => {
                enc.u8(2);
                enc.seq_len(v.len());
                for &(item, delta) in v {
                    enc.u64(item);
                    enc.i64(delta);
                }
            }
        }
    }

    fn decode(dec: &mut Dec) -> Result<Self, CodecError> {
        match dec.u8()? {
            1 => Ok(Inputs::Counts(dec.seq_i64("count inputs")?)),
            2 => {
                let n = dec.seq_len("item inputs", 16)?;
                let mut v = Vec::with_capacity(n);
                for _ in 0..n {
                    let item = dec.u64()?;
                    let delta = dec.i64()?;
                    v.push((item, delta));
                }
                Ok(Inputs::Items(v))
            }
            tag => Err(CodecError::BadTag {
                what: "input payload",
                tag: tag as u64,
            }),
        }
    }
}

/// One shard's work within a round: the contiguous input run of one feed,
/// exactly as `run_parted` would dispatch it in-process. Chunks arrive in
/// feed order, which is what keeps the last-report-per-shard rule (and so
/// the merge ledger) identical to the in-process path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Chunk {
    /// The logical shard the inputs belong to.
    pub sid: usize,
    /// The site the feed carries.
    pub site: usize,
    /// The inputs, in feed arrival order.
    pub inputs: Inputs,
}

/// A shard to (re)install on a worker: its id and the checkpoint state to
/// restore (`None` builds a fresh replica — a shard that has never been
/// checkpointed).
#[derive(Debug, Clone, PartialEq)]
pub struct ShardInit {
    /// The logical shard id.
    pub sid: usize,
    /// The state to restore, if any.
    pub state: Option<TrackerState>,
}

/// One shard's checkpoint pull request: which shard to snapshot, and
/// whether a [`StateDelta`] against the worker's last-shipped snapshot is
/// acceptable in place of the full state. The coordinator only sets
/// `want_delta` when delta checkpointing is on
/// ([`crate::EngineConfig::delta_rebase`]) and both sides hold the same
/// base; a worker without a base replies in full regardless.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatePull {
    /// The logical shard to snapshot.
    pub sid: usize,
    /// Whether a delta against the last-shipped snapshot is acceptable.
    pub want_delta: bool,
}

/// One shard's state in a [`ToCoord::CheckpointReport`]: the full
/// snapshot, or a delta against the last snapshot this worker shipped
/// (or was restored from) for that shard.
#[derive(Debug, Clone, PartialEq)]
pub enum StateEntry {
    /// The complete versioned snapshot.
    Full(TrackerState),
    /// A section-aware diff against the worker's previous shipped
    /// snapshot payload; the coordinator applies it to its own copy of
    /// that base (fingerprint-checked on both ends of the apply).
    Delta(StateDelta),
}

impl StateEntry {
    /// Bytes of state payload this entry ships (what the checkpoint
    /// ledger charges): the snapshot payload for a full entry, the
    /// encoded delta for a delta entry.
    pub fn wire_len(&self) -> usize {
        match self {
            StateEntry::Full(state) => state.payload().len(),
            StateEntry::Delta(delta) => delta.encoded_len(),
        }
    }
}

/// One round's work inside a multi-round [`ToWorker::Rounds`] frame —
/// the same `(round, delay, chunks)` triple a single-round
/// [`ToWorker::Round`] carries, just batched.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoundWork {
    /// Round number (0-based within the current ingestion call).
    pub round: u64,
    /// Milliseconds to sleep before processing this round — 0 in
    /// production; nonzero only under an injected delay fault.
    pub delay_ms: u64,
    /// The round's work, in feed order.
    pub chunks: Vec<Chunk>,
}

/// Coordinator → worker messages.
#[derive(Debug, Clone, PartialEq)]
pub enum ToWorker {
    /// Install the worker's replica set: build (or restore) one tracker
    /// per shard from `spec.shard(sid)`. Sent once after the handshake,
    /// and again in full to a respawned replacement.
    Assign {
        /// The coordinator's tracker spec (workers derive per-shard
        /// replicas via `TrackerSpec::shard`).
        spec: TrackerSpec,
        /// Total logical shard count `S` (diagnostics / sanity).
        s_count: usize,
        /// The shards this worker must own, with restore states.
        shards: Vec<ShardInit>,
    },
    /// Add shards to an already-assigned worker — the reattach path,
    /// migrating a dead worker's shards onto a live one.
    Attach {
        /// The shards to add, with restore states.
        shards: Vec<ShardInit>,
    },
    /// Process one round of chunks (in the given order) and reply with a
    /// [`ToCoord::RoundReport`].
    Round {
        /// Round number (0-based within the current ingestion call).
        round: u64,
        /// Milliseconds to sleep before processing — 0 in production;
        /// nonzero only under an injected delay fault, so the
        /// coordinator's read timeout fires against a live-but-stalled
        /// worker.
        delay_ms: u64,
        /// The work, in feed order.
        chunks: Vec<Chunk>,
    },
    /// Process several rounds back to back — the DSVR v3 pipelined
    /// envelope. The worker handles each entry exactly as it would a
    /// [`ToWorker::Round`] frame, in order, sending one
    /// [`ToCoord::RoundReport`] per entry as soon as that round is done
    /// (so the coordinator can absorb round `r` while the worker is
    /// already processing `r + 1`).
    Rounds {
        /// The batched rounds, ascending round number.
        rounds: Vec<RoundWork>,
    },
    /// Snapshot the named shards and reply with a
    /// [`ToCoord::CheckpointReport`].
    Checkpoint {
        /// The (dirty) shards to snapshot, each with its pull shape.
        shards: Vec<StatePull>,
    },
    /// Shut down cleanly.
    Finish,
}

impl ToWorker {
    /// Encode to one transport frame payload.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut enc = Enc::new();
        enc.magic(WIRE_MAGIC, WIRE_VERSION);
        match self {
            ToWorker::Assign {
                spec,
                s_count,
                shards,
            } => {
                enc.u8(1);
                spec.encode(&mut enc);
                enc.usize(*s_count);
                encode_shard_inits(&mut enc, shards);
            }
            ToWorker::Attach { shards } => {
                enc.u8(2);
                encode_shard_inits(&mut enc, shards);
            }
            ToWorker::Round {
                round,
                delay_ms,
                chunks,
            } => {
                enc.u8(3);
                enc.u64(*round);
                enc.u64(*delay_ms);
                encode_chunks(&mut enc, chunks);
            }
            ToWorker::Rounds { rounds } => {
                enc.u8(6);
                enc.seq_len(rounds.len());
                for work in rounds {
                    enc.u64(work.round);
                    enc.u64(work.delay_ms);
                    encode_chunks(&mut enc, &work.chunks);
                }
            }
            ToWorker::Checkpoint { shards } => {
                enc.u8(4);
                enc.seq_len(shards.len());
                for pull in shards {
                    enc.usize(pull.sid);
                    enc.bool(pull.want_delta);
                }
            }
            ToWorker::Finish => enc.u8(5),
        }
        enc.into_bytes()
    }

    /// Decode one transport frame payload; must consume it exactly.
    /// Accepts v1 frames, whose checkpoint requests carry no want-delta
    /// flags (decoded as all-full pulls).
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CodecError> {
        let mut dec = Dec::new(bytes);
        let version = dec.magic(WIRE_MAGIC, WIRE_VERSION)?;
        let msg = match dec.u8()? {
            1 => {
                let spec = TrackerSpec::decode(&mut dec)?;
                let s_count = dec.usize()?;
                let shards = decode_shard_inits(&mut dec)?;
                ToWorker::Assign {
                    spec,
                    s_count,
                    shards,
                }
            }
            2 => ToWorker::Attach {
                shards: decode_shard_inits(&mut dec)?,
            },
            3 => {
                let round = dec.u64()?;
                let delay_ms = dec.u64()?;
                ToWorker::Round {
                    round,
                    delay_ms,
                    chunks: decode_chunks(&mut dec)?,
                }
            }
            6 => {
                let n = dec.seq_len("batched rounds", 25)?;
                let mut rounds = Vec::with_capacity(n);
                for _ in 0..n {
                    let round = dec.u64()?;
                    let delay_ms = dec.u64()?;
                    rounds.push(RoundWork {
                        round,
                        delay_ms,
                        chunks: decode_chunks(&mut dec)?,
                    });
                }
                ToWorker::Rounds { rounds }
            }
            4 => {
                let n = dec.seq_len("checkpoint shards", 8)?;
                let mut shards = Vec::with_capacity(n);
                for _ in 0..n {
                    let sid = dec.usize()?;
                    let want_delta = if version >= 2 { dec.bool()? } else { false };
                    shards.push(StatePull { sid, want_delta });
                }
                ToWorker::Checkpoint { shards }
            }
            5 => ToWorker::Finish,
            tag => {
                return Err(CodecError::BadTag {
                    what: "coordinator message",
                    tag: tag as u64,
                })
            }
        };
        dec.finish()?;
        Ok(msg)
    }
}

fn encode_chunks(enc: &mut Enc, chunks: &[Chunk]) {
    enc.seq_len(chunks.len());
    for chunk in chunks {
        enc.usize(chunk.sid);
        enc.usize(chunk.site);
        chunk.inputs.encode(enc);
    }
}

fn decode_chunks(dec: &mut Dec) -> Result<Vec<Chunk>, CodecError> {
    let n = dec.seq_len("round chunks", 17)?;
    let mut chunks = Vec::with_capacity(n);
    for _ in 0..n {
        let sid = dec.usize()?;
        let site = dec.usize()?;
        let inputs = Inputs::decode(dec)?;
        chunks.push(Chunk { sid, site, inputs });
    }
    Ok(chunks)
}

fn encode_shard_inits(enc: &mut Enc, shards: &[ShardInit]) {
    enc.seq_len(shards.len());
    for init in shards {
        enc.usize(init.sid);
        match &init.state {
            Some(state) => {
                enc.bool(true);
                enc.blob(&state.to_bytes());
            }
            None => enc.bool(false),
        }
    }
}

fn decode_shard_inits(dec: &mut Dec) -> Result<Vec<ShardInit>, CodecError> {
    let n = dec.seq_len("assigned shards", 9)?;
    let mut shards = Vec::with_capacity(n);
    for _ in 0..n {
        let sid = dec.usize()?;
        let state = if dec.bool()? {
            Some(TrackerState::from_bytes(dec.blob()?)?)
        } else {
            None
        };
        shards.push(ShardInit { sid, state });
    }
    Ok(shards)
}

/// One shard's end-of-round report: the tuple the in-process merge path
/// reconciles — end-of-round local estimate, the round's ground-truth
/// increment, and the inputs consumed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoundEntry {
    /// The reporting shard.
    pub sid: usize,
    /// Its local estimate after this round's chunks.
    pub estimate: i64,
    /// Sum of the round's deltas at this shard (ground truth).
    pub sum: i64,
    /// Inputs consumed this round at this shard.
    pub len: u64,
}

/// Worker → coordinator messages.
#[derive(Debug, Clone, PartialEq)]
pub enum ToCoord {
    /// Reply to [`ToWorker::Assign`] / [`ToWorker::Attach`]: empty
    /// `error` on success, a human-readable build/restore failure
    /// otherwise.
    AssignAck {
        /// Empty on success.
        error: String,
    },
    /// Reply to [`ToWorker::Round`].
    RoundReport {
        /// Echo of the round number (protocol sanity).
        round: u64,
        /// One entry per shard that received chunks, ascending sid.
        reports: Vec<RoundEntry>,
    },
    /// Reply to [`ToWorker::Checkpoint`].
    CheckpointReport {
        /// The requested shards' states, full or delta per entry.
        states: Vec<(usize, StateEntry)>,
    },
}

impl ToCoord {
    /// Encode to one transport frame payload.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut enc = Enc::new();
        enc.magic(WIRE_MAGIC, WIRE_VERSION);
        match self {
            ToCoord::AssignAck { error } => {
                enc.u8(1);
                enc.blob(error.as_bytes());
            }
            ToCoord::RoundReport { round, reports } => {
                enc.u8(2);
                enc.u64(*round);
                enc.seq_len(reports.len());
                for r in reports {
                    enc.usize(r.sid);
                    enc.i64(r.estimate);
                    enc.i64(r.sum);
                    enc.u64(r.len);
                }
            }
            ToCoord::CheckpointReport { states } => {
                enc.u8(3);
                enc.seq_len(states.len());
                for (sid, entry) in states {
                    enc.usize(*sid);
                    match entry {
                        StateEntry::Full(state) => {
                            enc.u8(1);
                            enc.blob(&state.to_bytes());
                        }
                        StateEntry::Delta(delta) => {
                            enc.u8(2);
                            delta.encode(&mut enc);
                        }
                    }
                }
            }
        }
        enc.into_bytes()
    }

    /// Decode one transport frame payload; must consume it exactly.
    /// Accepts v1 frames, whose checkpoint reports carry untagged full
    /// states.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CodecError> {
        let mut dec = Dec::new(bytes);
        let version = dec.magic(WIRE_MAGIC, WIRE_VERSION)?;
        let msg = match dec.u8()? {
            1 => ToCoord::AssignAck {
                error: String::from_utf8(dec.blob()?.to_vec()).map_err(|_| {
                    CodecError::BadValue {
                        what: "assign ack error string",
                    }
                })?,
            },
            2 => {
                let round = dec.u64()?;
                let n = dec.seq_len("round reports", 32)?;
                let mut reports = Vec::with_capacity(n);
                for _ in 0..n {
                    reports.push(RoundEntry {
                        sid: dec.usize()?,
                        estimate: dec.i64()?,
                        sum: dec.i64()?,
                        len: dec.u64()?,
                    });
                }
                ToCoord::RoundReport { round, reports }
            }
            3 => {
                let n = dec.seq_len("checkpoint states", 9)?;
                let mut states = Vec::with_capacity(n);
                for _ in 0..n {
                    let sid = dec.usize()?;
                    let entry = if version >= 2 {
                        match dec.u8()? {
                            1 => StateEntry::Full(TrackerState::from_bytes(dec.blob()?)?),
                            2 => StateEntry::Delta(StateDelta::decode(&mut dec)?),
                            tag => {
                                return Err(CodecError::BadTag {
                                    what: "checkpoint state entry",
                                    tag: tag as u64,
                                })
                            }
                        }
                    } else {
                        StateEntry::Full(TrackerState::from_bytes(dec.blob()?)?)
                    };
                    states.push((sid, entry));
                }
                ToCoord::CheckpointReport { states }
            }
            tag => {
                return Err(CodecError::BadTag {
                    what: "worker message",
                    tag: tag as u64,
                })
            }
        };
        dec.finish()?;
        Ok(msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsv_core::api::TrackerKind;

    fn sample_messages() -> (Vec<ToWorker>, Vec<ToCoord>) {
        let spec = TrackerSpec::new(TrackerKind::Randomized)
            .k(3)
            .eps(0.2)
            .seed(11)
            .deletions(true);
        let state = TrackerState::new(TrackerKind::Randomized, 3, vec![9; 24]);
        let to_worker = vec![
            ToWorker::Assign {
                spec,
                s_count: 4,
                shards: vec![
                    ShardInit {
                        sid: 0,
                        state: None,
                    },
                    ShardInit {
                        sid: 2,
                        state: Some(state.clone()),
                    },
                ],
            },
            ToWorker::Attach {
                shards: vec![ShardInit {
                    sid: 3,
                    state: Some(state.clone()),
                }],
            },
            ToWorker::Round {
                round: 7,
                delay_ms: 0,
                chunks: vec![
                    Chunk {
                        sid: 0,
                        site: 0,
                        inputs: Inputs::Counts(vec![1, -1, 1]),
                    },
                    Chunk {
                        sid: 2,
                        site: 2,
                        inputs: Inputs::Items(vec![(5, 1), (9, -1)]),
                    },
                ],
            },
            ToWorker::Rounds {
                rounds: vec![
                    RoundWork {
                        round: 8,
                        delay_ms: 0,
                        chunks: vec![Chunk {
                            sid: 1,
                            site: 1,
                            inputs: Inputs::Counts(vec![1, 1, -1]),
                        }],
                    },
                    RoundWork {
                        round: 9,
                        delay_ms: 25,
                        chunks: vec![
                            Chunk {
                                sid: 1,
                                site: 1,
                                inputs: Inputs::Counts(vec![-1]),
                            },
                            Chunk {
                                sid: 3,
                                site: 3,
                                inputs: Inputs::Items(vec![(2, 1)]),
                            },
                        ],
                    },
                ],
            },
            ToWorker::Checkpoint {
                shards: vec![
                    StatePull {
                        sid: 0,
                        want_delta: false,
                    },
                    StatePull {
                        sid: 2,
                        want_delta: true,
                    },
                ],
            },
            ToWorker::Finish,
        ];
        let to_coord = vec![
            ToCoord::AssignAck {
                error: String::new(),
            },
            ToCoord::AssignAck {
                error: "k mismatch".to_string(),
            },
            ToCoord::RoundReport {
                round: 7,
                reports: vec![
                    RoundEntry {
                        sid: 0,
                        estimate: 1,
                        sum: 1,
                        len: 3,
                    },
                    RoundEntry {
                        sid: 2,
                        estimate: -4,
                        sum: 0,
                        len: 2,
                    },
                ],
            },
            ToCoord::CheckpointReport {
                states: vec![
                    (2, StateEntry::Full(state.clone())),
                    (
                        3,
                        StateEntry::Delta(StateDelta::diff(state.payload(), &[7; 40])),
                    ),
                ],
            },
        ];
        (to_worker, to_coord)
    }

    #[test]
    fn every_message_shape_round_trips() {
        let (to_worker, to_coord) = sample_messages();
        for msg in &to_worker {
            assert_eq!(&ToWorker::from_bytes(&msg.to_bytes()).unwrap(), msg);
        }
        for msg in &to_coord {
            assert_eq!(&ToCoord::from_bytes(&msg.to_bytes()).unwrap(), msg);
        }
    }

    #[test]
    fn truncation_at_every_byte_is_a_typed_error() {
        let (to_worker, to_coord) = sample_messages();
        for msg in &to_worker {
            let bytes = msg.to_bytes();
            for cut in 0..bytes.len() {
                assert!(ToWorker::from_bytes(&bytes[..cut]).is_err(), "cut {cut}");
            }
        }
        for msg in &to_coord {
            let bytes = msg.to_bytes();
            for cut in 0..bytes.len() {
                assert!(ToCoord::from_bytes(&bytes[..cut]).is_err(), "cut {cut}");
            }
        }
    }

    #[test]
    fn v2_single_round_frames_still_decode() {
        // A v2 Round frame, exactly as a PR 6 coordinator would emit it:
        // the tag-3 single-round shape under the older version word.
        let mut enc = Enc::new();
        enc.magic(WIRE_MAGIC, 2);
        enc.u8(3);
        enc.u64(4); // round
        enc.u64(0); // delay_ms
        enc.seq_len(1);
        enc.usize(2);
        enc.usize(2);
        enc.u8(1); // Inputs::Counts
        enc.seq_i64(&[1, -1]);
        assert_eq!(
            ToWorker::from_bytes(&enc.into_bytes()).unwrap(),
            ToWorker::Round {
                round: 4,
                delay_ms: 0,
                chunks: vec![Chunk {
                    sid: 2,
                    site: 2,
                    inputs: Inputs::Counts(vec![1, -1]),
                }],
            }
        );
    }

    #[test]
    fn v1_checkpoint_frames_still_decode() {
        // A v1 Checkpoint request: shard list with no want-delta flags.
        let mut enc = Enc::new();
        enc.magic(WIRE_MAGIC, 1);
        enc.u8(4);
        enc.seq_len(2);
        enc.usize(0);
        enc.usize(2);
        assert_eq!(
            ToWorker::from_bytes(&enc.into_bytes()).unwrap(),
            ToWorker::Checkpoint {
                shards: vec![
                    StatePull {
                        sid: 0,
                        want_delta: false,
                    },
                    StatePull {
                        sid: 2,
                        want_delta: false,
                    },
                ],
            }
        );
        // A v1 CheckpointReport: untagged full states.
        let state = TrackerState::new(TrackerKind::Randomized, 3, vec![9; 24]);
        let mut enc = Enc::new();
        enc.magic(WIRE_MAGIC, 1);
        enc.u8(3);
        enc.seq_len(1);
        enc.usize(2);
        enc.blob(&state.to_bytes());
        assert_eq!(
            ToCoord::from_bytes(&enc.into_bytes()).unwrap(),
            ToCoord::CheckpointReport {
                states: vec![(2, StateEntry::Full(state))],
            }
        );
    }

    #[test]
    fn envelope_and_tag_corruption_are_specific_errors() {
        let bytes = ToWorker::Finish.to_bytes();
        let mut alien = bytes.clone();
        alien[0] = b'X';
        assert!(matches!(
            ToWorker::from_bytes(&alien),
            Err(CodecError::BadMagic { .. })
        ));
        let mut future = bytes.clone();
        future[4] = (WIRE_VERSION + 1) as u8;
        assert!(matches!(
            ToWorker::from_bytes(&future),
            Err(CodecError::UnsupportedVersion { .. })
        ));
        let mut bad_tag = bytes.clone();
        bad_tag[6] = 0xEE;
        assert!(matches!(
            ToWorker::from_bytes(&bad_tag),
            Err(CodecError::BadTag { .. })
        ));
        let mut trailing = bytes;
        trailing.push(0);
        assert!(matches!(
            ToWorker::from_bytes(&trailing),
            Err(CodecError::Trailing { left: 1 })
        ));
    }
}
