//! The shard-worker side: connect to the coordinator, install replicas,
//! process rounds, serve checkpoint snapshots.
//!
//! The same serve loop backs both deployment shapes — a thread inside the
//! coordinator process (tests, single-machine runs) and a separate OS
//! process entered through [`shard_server_main`] (the `dsv-shard-server`
//! binary). Either way the worker is a pure protocol server: all of its
//! configuration (spec, shard set, restore states) arrives in
//! [`ToWorker::Assign`] messages, so a freshly spawned replacement is
//! indistinguishable from the process it replaces once assigned and
//! replayed.

use super::wire::{Chunk, Inputs, RoundEntry, ShardInit, StateEntry, ToCoord, ToWorker};
use dsv_core::api::{ItemTracker, Problem, Tracker, TrackerSpec};
use dsv_core::codec::TrackerState;
use dsv_net::transport::{hello_bytes, Conn, Endpoint, Role, TransportError};
use dsv_net::StateDelta;
use std::collections::BTreeMap;
use std::time::Duration;

/// A worker-side replica of either problem family.
enum AnyTracker {
    Counter(Box<dyn Tracker + Send>),
    Item(Box<dyn ItemTracker + Send>),
}

/// A worker that cannot serve, as a typed error (process exit path).
#[derive(Debug)]
pub enum WorkerError {
    /// The transport failed (connect, frame I/O, timeout).
    Transport(TransportError),
    /// The coordinator sent something the protocol forbids.
    Protocol(&'static str),
}

impl std::fmt::Display for WorkerError {
    fn fmt(&self, fm: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkerError::Transport(e) => write!(fm, "transport: {e}"),
            WorkerError::Protocol(what) => write!(fm, "protocol violation: {what}"),
        }
    }
}

impl std::error::Error for WorkerError {}

impl From<TransportError> for WorkerError {
    fn from(e: TransportError) -> Self {
        WorkerError::Transport(e)
    }
}

/// Build (or restore) the replica for `init` under `spec`'s problem.
fn make_tracker(spec: &TrackerSpec, init: &ShardInit) -> Result<AnyTracker, String> {
    let shard_spec = spec.shard(init.sid);
    match (spec.kind().problem(), &init.state) {
        (Problem::Counting, None) => shard_spec
            .build()
            .map(AnyTracker::Counter)
            .map_err(|e| e.to_string()),
        (Problem::Counting, Some(state)) => shard_spec
            .resume(state)
            .map(AnyTracker::Counter)
            .map_err(|e| e.to_string()),
        (Problem::Frequencies, None) => shard_spec
            .build_item()
            .map(AnyTracker::Item)
            .map_err(|e| e.to_string()),
        (Problem::Frequencies, Some(state)) => shard_spec
            .resume_item(state)
            .map(AnyTracker::Item)
            .map_err(|e| e.to_string()),
    }
}

/// Install `shards` into the replica map, replying with an
/// [`ToCoord::AssignAck`] (empty error string on success). A restored
/// shard's state becomes its delta base (the coordinator holds the same
/// bytes); a fresh shard has no base until its first checkpoint pull.
fn install(
    conn: &mut Conn,
    spec: &Option<TrackerSpec>,
    trackers: &mut BTreeMap<usize, AnyTracker>,
    bases: &mut BTreeMap<usize, TrackerState>,
    shards: &[ShardInit],
) -> Result<(), WorkerError> {
    let ack = match spec {
        None => "shards attached before any Assign".to_string(),
        Some(spec) => shards
            .iter()
            .try_for_each(|init| {
                trackers.insert(init.sid, make_tracker(spec, init)?);
                match &init.state {
                    Some(state) => {
                        bases.insert(init.sid, state.clone());
                    }
                    None => {
                        bases.remove(&init.sid);
                    }
                }
                Ok::<(), String>(())
            })
            .err()
            .unwrap_or_default(),
    };
    conn.send(&ToCoord::AssignAck { error: ack }.to_bytes())?;
    Ok(())
}

/// Serve one coordinator connection until `Finish`, EOF, or idle timeout.
///
/// `worker` and `generation` identify this spawn in the transport
/// handshake; `idle_timeout` bounds every read, so a worker orphaned by a
/// dead coordinator exits instead of leaking.
pub fn serve(
    ep: &Endpoint,
    worker: u64,
    generation: u64,
    idle_timeout: Duration,
    connect_retries: u32,
    connect_backoff: Duration,
) -> Result<(), WorkerError> {
    match serve_conn(
        ep,
        worker,
        generation,
        idle_timeout,
        connect_retries,
        connect_backoff,
    ) {
        // The coordinator severed the link or went away (possibly while a
        // reply was in flight): exit quietly — a replacement worker will
        // be assigned from checkpoint.
        Err(WorkerError::Transport(TransportError::Closed { .. })) => Ok(()),
        other => other,
    }
}

/// Apply one round of chunks to the replica map and send its
/// [`ToCoord::RoundReport`]. Per-shard accumulation follows the
/// `run_parted` rule: estimates overwrite (last chunk in feed order
/// wins), sums and lengths add.
fn process_round(
    conn: &mut Conn,
    trackers: &mut BTreeMap<usize, AnyTracker>,
    round: u64,
    delay_ms: u64,
    chunks: &[Chunk],
) -> Result<(), WorkerError> {
    if delay_ms > 0 {
        std::thread::sleep(Duration::from_millis(delay_ms));
    }
    let mut acc: BTreeMap<usize, RoundEntry> = BTreeMap::new();
    for chunk in chunks {
        let tracker = trackers
            .get_mut(&chunk.sid)
            .ok_or(WorkerError::Protocol("round chunk for unassigned shard"))?;
        let (est, sum) = match (tracker, &chunk.inputs) {
            (AnyTracker::Counter(t), Inputs::Counts(v)) => {
                (t.update_run(chunk.site, v), v.iter().sum::<i64>())
            }
            (AnyTracker::Item(t), Inputs::Items(v)) => (
                t.update_run(chunk.site, v),
                v.iter().map(|&(_, d)| d).sum::<i64>(),
            ),
            _ => return Err(WorkerError::Protocol("input payload problem mismatch")),
        };
        let entry = acc.entry(chunk.sid).or_insert(RoundEntry {
            sid: chunk.sid,
            estimate: est,
            sum: 0,
            len: 0,
        });
        entry.estimate = est;
        entry.sum += sum;
        entry.len += chunk.inputs.len() as u64;
    }
    let reports = acc.into_values().collect();
    conn.send(&ToCoord::RoundReport { round, reports }.to_bytes())?;
    Ok(())
}

fn serve_conn(
    ep: &Endpoint,
    worker: u64,
    generation: u64,
    idle_timeout: Duration,
    connect_retries: u32,
    connect_backoff: Duration,
) -> Result<(), WorkerError> {
    let mut conn = Conn::connect(ep, connect_retries, connect_backoff)?;
    conn.set_io_timeout(Some(idle_timeout))?;
    conn.send(&hello_bytes(Role::Worker, worker, generation))?;

    let mut spec: Option<TrackerSpec> = None;
    let mut trackers: BTreeMap<usize, AnyTracker> = BTreeMap::new();
    // Per-shard delta base: the snapshot last shipped to (or restored
    // from) the coordinator, which holds the same bytes.
    let mut bases: BTreeMap<usize, TrackerState> = BTreeMap::new();
    loop {
        let frame = conn.recv()?;
        let msg = ToWorker::from_bytes(&frame)
            .map_err(|_| WorkerError::Protocol("undecodable coordinator frame"))?;
        match msg {
            ToWorker::Assign {
                spec: new_spec,
                s_count: _,
                shards,
            } => {
                trackers.clear();
                bases.clear();
                spec = Some(new_spec);
                install(&mut conn, &spec, &mut trackers, &mut bases, &shards)?;
            }
            ToWorker::Attach { shards } => {
                install(&mut conn, &spec, &mut trackers, &mut bases, &shards)?;
            }
            ToWorker::Round {
                round,
                delay_ms,
                chunks,
            } => {
                process_round(&mut conn, &mut trackers, round, delay_ms, &chunks)?;
            }
            ToWorker::Rounds { rounds } => {
                // The pipelined envelope: each batched round is absorbed
                // exactly like a single-round frame, in order, and each
                // answers with its own report as soon as it completes —
                // so the coordinator can absorb early rounds while later
                // ones are still being processed here.
                for work in rounds {
                    process_round(
                        &mut conn,
                        &mut trackers,
                        work.round,
                        work.delay_ms,
                        &work.chunks,
                    )?;
                }
            }
            ToWorker::Checkpoint { shards } => {
                let mut states = Vec::with_capacity(shards.len());
                for pull in shards {
                    let tracker = trackers
                        .get(&pull.sid)
                        .ok_or(WorkerError::Protocol("checkpoint of unassigned shard"))?;
                    let state = match tracker {
                        AnyTracker::Counter(t) => t.snapshot(),
                        AnyTracker::Item(t) => t.snapshot(),
                    }
                    .map_err(|_| WorkerError::Protocol("shard state snapshot failed"))?;
                    // Ship a delta when asked and a base exists; either
                    // way this snapshot becomes the next base.
                    let entry = match bases.get(&pull.sid) {
                        Some(base) if pull.want_delta => {
                            StateEntry::Delta(StateDelta::diff(base.payload(), state.payload()))
                        }
                        _ => StateEntry::Full(state.clone()),
                    };
                    bases.insert(pull.sid, state);
                    states.push((pull.sid, entry));
                }
                conn.send(&ToCoord::CheckpointReport { states }.to_bytes())?;
            }
            ToWorker::Finish => return Ok(()),
        }
    }
}

/// Entry point for the `dsv-shard-server` binary. Parses
/// `<endpoint> --worker N --gen N [--timeout-ms N] [--retries N]
/// [--backoff-ms N]`, serves, and returns the process exit code (0 on a
/// clean finish, 2 on usage errors, 1 on serve failures).
pub fn shard_server_main() -> i32 {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parse_args(&args) {
        Err(usage) => {
            eprintln!("dsv-shard-server: {usage}");
            eprintln!(
                "usage: dsv-shard-server <tcp:addr:port|unix:/path> --worker N --gen N \
                 [--timeout-ms N] [--retries N] [--backoff-ms N]"
            );
            2
        }
        Ok((ep, worker, generation, timeout_ms, retries, backoff_ms)) => {
            match serve(
                &ep,
                worker,
                generation,
                Duration::from_millis(timeout_ms),
                retries,
                Duration::from_millis(backoff_ms),
            ) {
                Ok(()) => 0,
                Err(e) => {
                    eprintln!("dsv-shard-server (worker {worker}): {e}");
                    1
                }
            }
        }
    }
}

type ParsedArgs = (Endpoint, u64, u64, u64, u32, u64);

fn parse_args(args: &[String]) -> Result<ParsedArgs, String> {
    let mut endpoint = None;
    let mut worker = None;
    let mut generation = None;
    let mut timeout_ms = 30_000u64;
    let mut retries = 10u32;
    let mut backoff_ms = 10u64;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut flag_value = |name: &str| {
            it.next()
                .ok_or_else(|| format!("{name} needs a value"))
                .map(|s| s.as_str())
        };
        match arg.as_str() {
            "--worker" => worker = Some(parse_num(flag_value("--worker")?, "--worker")?),
            "--gen" => generation = Some(parse_num(flag_value("--gen")?, "--gen")?),
            "--timeout-ms" => timeout_ms = parse_num(flag_value("--timeout-ms")?, "--timeout-ms")?,
            "--retries" => {
                retries = parse_num::<u64>(flag_value("--retries")?, "--retries")? as u32
            }
            "--backoff-ms" => backoff_ms = parse_num(flag_value("--backoff-ms")?, "--backoff-ms")?,
            other if endpoint.is_none() && !other.starts_with("--") => {
                endpoint =
                    Some(Endpoint::parse(other).map_err(|_| format!("bad endpoint `{other}`"))?);
            }
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    Ok((
        endpoint.ok_or("missing endpoint")?,
        worker.ok_or("missing --worker")?,
        generation.ok_or("missing --gen")?,
        timeout_ms,
        retries,
        backoff_ms,
    ))
}

fn parse_num<T: std::str::FromStr>(s: &str, what: &str) -> Result<T, String> {
    s.parse().map_err(|_| format!("{what}: bad number `{s}`"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn args_parse_and_reject() {
        let ok = |args: &[&str]| {
            parse_args(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>()).unwrap()
        };
        let (ep, w, g, t, r, b) = ok(&[
            "tcp:127.0.0.1:9000",
            "--worker",
            "3",
            "--gen",
            "2",
            "--timeout-ms",
            "500",
            "--retries",
            "4",
            "--backoff-ms",
            "7",
        ]);
        assert_eq!(ep, Endpoint::parse("tcp:127.0.0.1:9000").unwrap());
        assert_eq!((w, g, t, r, b), (3, 2, 500, 4, 7));

        let err = |args: &[&str]| {
            parse_args(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>()).unwrap_err()
        };
        assert!(err(&[]).contains("missing endpoint"));
        assert!(err(&["tcp:127.0.0.1:1", "--worker", "0"]).contains("missing --gen"));
        assert!(err(&["nope:addr", "--worker", "0", "--gen", "0"]).contains("bad endpoint"));
        assert!(err(&["tcp:a:1", "--worker", "x", "--gen", "0"]).contains("bad number"));
        assert!(err(&["tcp:a:1", "--worker", "0", "--gen", "0", "--bogus"])
            .contains("unexpected argument"));
    }
}
