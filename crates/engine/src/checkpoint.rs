//! Whole-engine checkpoints: per-shard tracker states plus the merge
//! coordinator, taken at batch boundaries.
//!
//! Batch boundaries are the engine's exact sync points — every shard has
//! quiesced, the coordinator's global estimate is reconciled, and the
//! ε-audit has run — which makes them safe cut points: a checkpoint taken
//! there, restored (onto any worker count) and driven over the remaining
//! stream, reproduces the uninterrupted run's estimates and ledgers
//! bit-for-bit. See `DESIGN.md` §6 for the consistency argument.
//!
//! The wire form is `b"DSVE"`, a `u16` version ([`CHECKPOINT_VERSION`]),
//! the engine scalars (shard count, kind, `k`, consumed time, ground-truth
//! `f`), the merge-coordinator blob, and one nested
//! [`TrackerState`] per shard. Decoding is panic-free: truncations,
//! corruptions, and version skew surface as typed
//! [`CodecError`]s.

use dsv_core::api::TrackerKind;
use dsv_core::codec::{kind_from_tag, kind_tag, CodecError, Dec, Enc, TrackerState};
use dsv_net::Time;

/// Magic bytes opening a serialized [`EngineCheckpoint`].
pub const CHECKPOINT_MAGIC: [u8; 4] = *b"DSVE";

/// Current engine-checkpoint format version. Bumps when the envelope
/// changes; nested tracker states version independently (see
/// `dsv_core::codec::STATE_VERSION`).
pub const CHECKPOINT_VERSION: u16 = 1;

/// A complete, restorable image of a [`crate::ShardedEngine`] at a batch
/// boundary: every shard replica's [`TrackerState`] plus the merge
/// coordinator, the consumed stream length, and the ground-truth `f`.
///
/// Produced by [`crate::ShardedEngine::checkpoint`]; consumed by the
/// engine `resume` constructors. The worker count is deliberately **not**
/// recorded — it is execution detail, and a checkpoint may be resumed
/// onto any number of workers with bit-identical results (that is the
/// rescaling seam).
#[derive(Debug, Clone, PartialEq)]
pub struct EngineCheckpoint {
    kind: TrackerKind,
    k: usize,
    time: Time,
    f: i64,
    merge: Vec<u8>,
    states: Vec<TrackerState>,
}

impl EngineCheckpoint {
    /// Assemble a checkpoint from its parts (used by
    /// [`crate::ShardedEngine::checkpoint`]).
    pub(crate) fn new(
        kind: TrackerKind,
        k: usize,
        time: Time,
        f: i64,
        merge: Vec<u8>,
        states: Vec<TrackerState>,
    ) -> Self {
        EngineCheckpoint {
            kind,
            k,
            time,
            f,
            merge,
            states,
        }
    }

    /// The replica kind.
    pub fn kind(&self) -> TrackerKind {
        self.kind
    }

    /// The replicas' site count `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The logical shard count `S` (must match the resuming engine's).
    pub fn shards(&self) -> usize {
        self.states.len()
    }

    /// Updates consumed when the checkpoint was taken.
    pub fn time(&self) -> Time {
        self.time
    }

    /// Ground-truth `f` when the checkpoint was taken.
    pub fn f(&self) -> i64 {
        self.f
    }

    /// The per-shard tracker states.
    pub fn states(&self) -> &[TrackerState] {
        &self.states
    }

    /// The serialized merge coordinator.
    pub(crate) fn merge(&self) -> &[u8] {
        &self.merge
    }

    /// Serialize to the versioned wire form (what a deployment writes to
    /// stable storage).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut enc = Enc::new();
        enc.magic(CHECKPOINT_MAGIC, CHECKPOINT_VERSION);
        enc.u8(kind_tag(self.kind));
        enc.usize(self.k);
        enc.u64(self.time);
        enc.i64(self.f);
        enc.blob(&self.merge);
        enc.seq_len(self.states.len());
        for state in &self.states {
            state.encode(&mut enc);
        }
        enc.into_bytes()
    }

    /// Decode the versioned wire form; typed [`CodecError`]s on
    /// truncation, corruption, version skew, or internal disagreement
    /// (a nested state whose kind or `k` contradicts the envelope).
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CodecError> {
        let mut dec = Dec::new(bytes);
        dec.magic(CHECKPOINT_MAGIC, CHECKPOINT_VERSION)?;
        let tag = dec.u8()?;
        let kind = kind_from_tag(tag).ok_or(CodecError::BadTag {
            what: "tracker kind",
            tag: tag as u64,
        })?;
        let k = dec.usize()?;
        let time = dec.u64()?;
        let f = dec.i64()?;
        let merge = dec.blob()?.to_vec();
        // Each nested state is ≥ the 7-byte envelope head; pre-validating
        // the count against that bound keeps corrupted prefixes cheap.
        let shards = dec.seq_len("shard states", 7)?;
        if shards == 0 {
            return Err(CodecError::BadValue {
                what: "shard count",
            });
        }
        let mut states = Vec::with_capacity(shards);
        for _ in 0..shards {
            let state = TrackerState::decode(&mut dec)?;
            if state.kind() != kind {
                return Err(CodecError::Mismatch {
                    what: "shard state kind",
                    expected: kind_tag(kind) as u64,
                    found: kind_tag(state.kind()) as u64,
                });
            }
            if state.k() != k {
                return Err(CodecError::Mismatch {
                    what: "shard state site count",
                    expected: k as u64,
                    found: state.k() as u64,
                });
            }
            states.push(state);
        }
        dec.finish()?;
        Ok(EngineCheckpoint {
            kind,
            k,
            time,
            f,
            merge,
            states,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> EngineCheckpoint {
        EngineCheckpoint::new(
            TrackerKind::Deterministic,
            3,
            1_000,
            -42,
            vec![1, 2, 3, 4],
            vec![
                TrackerState::new(TrackerKind::Deterministic, 3, vec![7; 10]),
                TrackerState::new(TrackerKind::Deterministic, 3, vec![8; 12]),
            ],
        )
    }

    #[test]
    fn wire_form_round_trips() {
        let ckpt = sample();
        let back = EngineCheckpoint::from_bytes(&ckpt.to_bytes()).unwrap();
        assert_eq!(back, ckpt);
        assert_eq!(back.shards(), 2);
        assert_eq!(back.time(), 1_000);
        assert_eq!(back.f(), -42);
    }

    #[test]
    fn truncations_and_corruptions_are_typed_errors() {
        let bytes = sample().to_bytes();
        for cut in 0..bytes.len() {
            assert!(
                EngineCheckpoint::from_bytes(&bytes[..cut]).is_err(),
                "cut at {cut}"
            );
        }
        let mut future = bytes.clone();
        future[4] = (CHECKPOINT_VERSION + 1) as u8;
        assert!(matches!(
            EngineCheckpoint::from_bytes(&future),
            Err(CodecError::UnsupportedVersion { .. })
        ));
        let mut trailing = bytes;
        trailing.push(0xAB);
        assert!(matches!(
            EngineCheckpoint::from_bytes(&trailing),
            Err(CodecError::Trailing { left: 1 })
        ));
    }

    #[test]
    fn internal_disagreement_is_rejected() {
        let mut ckpt = sample();
        ckpt.states[1] = TrackerState::new(TrackerKind::Naive, 3, vec![]);
        assert!(matches!(
            EngineCheckpoint::from_bytes(&ckpt.to_bytes()),
            Err(CodecError::Mismatch {
                what: "shard state kind",
                ..
            })
        ));
        let mut ckpt = sample();
        ckpt.states[0] = TrackerState::new(TrackerKind::Deterministic, 9, vec![]);
        assert!(matches!(
            EngineCheckpoint::from_bytes(&ckpt.to_bytes()),
            Err(CodecError::Mismatch {
                what: "shard state site count",
                ..
            })
        ));
    }
}
