//! Stream → shard routing.

use dsv_core::api::StreamRecord;
use dsv_net::{ItemUpdate, Update};

/// How the engine routes stream records to shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Partition {
    /// `shard = site mod S`: preserves per-site update order and gives
    /// each shard long same-site runs — the batched `absorb_quiet` fast
    /// path's best case. The default for counter streams.
    SiteAffine,
    /// `shard = arrival index mod S`: balances load under skewed site
    /// placement, at the cost of shorter same-site runs per shard.
    RoundRobin,
    /// `shard = hash(item) mod S`: item streams only. Every item is owned
    /// by exactly one shard, so merged per-item estimates are sums of one
    /// meaningful term and the sharded per-item guarantee is the replica
    /// guarantee verbatim.
    ByItem,
}

/// A stream record the engine can route: a [`StreamRecord`] plus an
/// optional item key for [`Partition::ByItem`].
pub trait ShardRecord: StreamRecord {
    /// The record's item key, if it belongs to an item stream.
    fn item_key(&self) -> Option<u64> {
        None
    }
}

impl ShardRecord for Update {}

impl ShardRecord for ItemUpdate {
    fn item_key(&self) -> Option<u64> {
        Some(self.item)
    }
}

/// Fibonacci hash of an item key (the same scatter `dsv-gen::HashAssign`
/// uses for timesteps).
pub(crate) fn hash_item(item: u64) -> u64 {
    item.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32
}

/// The ground-truth increment a raw tracker input contributes to the
/// audited scalar — `delta` itself for counter inputs, the signed count
/// for item inputs. The parted ingestion path
/// ([`crate::ShardedEngine::run_parted`]) receives bare inputs instead of
/// timed records, and audits through this.
pub trait InputDelta: Copy {
    /// Wire width of one input in words, for charging ingestion traffic
    /// ([`dsv_net::FeedFrame`]) in the model's currency.
    const WORDS: usize;

    /// The signed contribution to `f` (respectively `F1`).
    fn delta_of(self) -> i64;
}

impl InputDelta for i64 {
    const WORDS: usize = 1;

    fn delta_of(self) -> i64 {
        self
    }
}

impl InputDelta for (u64, i64) {
    const WORDS: usize = 2;

    fn delta_of(self) -> i64 {
        self.1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn item_keys_are_present_exactly_for_item_streams() {
        assert_eq!(Update::new(1, 0, 1).item_key(), None);
        assert_eq!(ItemUpdate::new(1, 0, 42, 1).item_key(), Some(42));
    }

    #[test]
    fn item_hash_scatters() {
        let mut shards = [0u32; 4];
        for item in 0..4_000u64 {
            shards[(hash_item(item) % 4) as usize] += 1;
        }
        for &c in &shards {
            assert!((600..=1400).contains(&c), "imbalanced: {shards:?}");
        }
    }
}
