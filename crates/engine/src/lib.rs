//! # dsv-engine — batched, sharded execution engine
//!
//! The tracking algorithms in `dsv-core` are defined — and audited — one
//! update at a time: the `Driver` feeds a stream through a single tracker
//! and checks the `(1±ε)` guarantee after every step. That is the right
//! *semantics* but the wrong *execution model* for the ROADMAP's "fast as
//! the hardware allows" target: per-update dynamic dispatch, per-update
//! auditing, and a single thread.
//!
//! This crate executes the same trackers the way high-throughput stream
//! systems do (cf. differential dataflow): **ingest in batches, shard
//! across workers, reconcile at batch boundaries**.
//!
//! * [`ShardedEngine`] partitions an update stream across `S` shards
//!   ([`Partition`]: site-affine or round-robin for counter streams,
//!   item-hashed for item streams), drives one tracker replica per shard
//!   on its own worker thread, and feeds each replica through the batched
//!   [`Tracker::update_batch`](dsv_core::api::Tracker::update_batch) path
//!   (which routes message-free runs through the hot kinds'
//!   `absorb_quiet` kernels instead of the per-update simulator loop).
//! * At every batch boundary the shards reconcile with a coordinator-side
//!   **global estimate**: a shard whose local estimate changed sends one
//!   [`ShardReport`](dsv_net::ShardReport) (charged to a [`CommStats`](dsv_net::CommStats)
//!   ledger like any other message of the model), and the coordinator
//!   maintains `f̂ = Σ_s f̂_s` incrementally.
//! * The boundary estimate inherits the paper's guarantee: each replica
//!   maintains `|f̂_s − f_s| ≤ ε·|f_s|` over its partial stream, so
//!   `|f̂ − f| ≤ ε·Σ_s|f_s|`, which equals `ε·|f|` whenever the partial
//!   sums agree in sign (insert-only and drift-dominated streams) — see
//!   `DESIGN.md` §5 for the full argument. The engine audits this at
//!   every boundary and reports violations in its [`EngineReport`].
//!
//! With `S = 1` the engine is **bit-identical** to the sequential path —
//! same estimates, same [`CommStats`](dsv_net::CommStats) — for every kind, including the
//! randomized ones (same replica, same seed, same update order); the
//! facade's `tests/engine_equivalence.rs` holds it to that.
//!
//! Ingestion comes in three shapes, strongest guarantee first:
//! [`ShardedEngine::run`] (central router over a timed stream),
//! [`ShardedEngine::run_parted`] (pre-parted per-site feeds, one
//! synchronized round at a time), and [`ShardedEngine::run_pipelined`]
//! (per-feed bounded queues — see the [`ingest`] types [`ShardFeed`] /
//! [`Backpressure`] — where feeding, shard execution, and coordinator
//! reconciliation all overlap while keeping estimates and ledgers
//! bit-identical to `run_parted`). The optional `async-ingest` feature
//! adds runtime-agnostic `push_async` futures to the feed handles.
//!
//! For multi-tenant workloads — millions of independent `(tenant,
//! metric)` functions rather than one big one — the [`fleet`] module's
//! [`TrackerFleet`] serves keyed trackers out of per-shard state slabs
//! with the same boundary discipline, per-key ε-audits, fleet-wide
//! queries ([`TrackerFleet::top_k`]), keyed pipelined ingestion
//! ([`FleetFeed`]), and a versioned [`FleetCheckpoint`].
//!
//! ```
//! use dsv_core::api::{TrackerKind, TrackerSpec};
//! use dsv_engine::{EngineConfig, ShardedEngine};
//! use dsv_net::Update;
//!
//! let spec = TrackerSpec::new(TrackerKind::Deterministic).k(4).eps(0.1);
//! let mut engine =
//!     ShardedEngine::counters(spec, EngineConfig::new(2, 512).eps(0.1)).unwrap();
//! let updates: Vec<Update> = (1..=10_000)
//!     .map(|t| Update::new(t, (t % 4) as usize, 1))
//!     .collect();
//! let report = engine.run(&updates).unwrap();
//! assert_eq!(report.boundary_violations, 0);
//! assert!(report.final_estimate > 0);
//! ```

#![warn(missing_docs)]

mod checkpoint;
mod config;
mod consolidate;
pub mod delta;
pub mod fleet;
pub mod ingest;
mod merge;
mod partition;
#[cfg(feature = "remote")]
pub mod remote;
mod report;
mod sharded;

pub use checkpoint::{EngineCheckpoint, CHECKPOINT_MAGIC, CHECKPOINT_VERSION};
pub use config::{EngineConfig, EngineError};
pub use consolidate::{ConsolidateInput, Consolidator};
pub use delta::{CheckpointStore, DeltaStats, STORE_MAGIC, STORE_VERSION};
pub use fleet::{
    CounterFleet, FleetCheckpoint, FleetDelta, FleetMemory, FleetReport, ItemFleet, KeyAudit,
    TrackerFleet, FLEET_MAGIC, FLEET_VERSION,
};
pub use ingest::{Backpressure, FeedError, FleetFeed, ShardFeed};
pub use partition::{InputDelta, Partition, ShardRecord};
pub use report::EngineReport;
pub use sharded::{CounterEngine, ItemEngine, ShardedEngine};

#[cfg(feature = "async-ingest")]
pub use ingest::{AsyncPush, AsyncPushBatch};
