//! Incremental checkpoint store: chained `DSVD` deltas over shard states.
//!
//! [`crate::ShardedEngine::checkpoint`] serializes every dirty shard in
//! full at each boundary, even though the paper's protocols keep most
//! state quiet between boundaries (counters drift inside their bands;
//! only threshold crossings mutate coordinator-visible state). A
//! [`CheckpointStore`] records the same boundaries incrementally: per
//! logical shard it keeps a full **base** snapshot payload plus a bounded
//! chain of [`StateDelta`] links, each the section-aware diff of the new
//! snapshot bytes against the previous ones. A shard whose snapshot did
//! not move contributes an [identity](StateDelta::is_identity) link a few
//! bytes long — which is exactly what the engine's clean-shard skip
//! produces, so the two optimizations compose.
//!
//! **Chain and rebase invariants.** The first boundary is always a base.
//! With [`rebase`](CheckpointStore::rebase_period) `K > 0` a fresh base
//! is forced after every `K` chained deltas, so
//! [`materialize`](CheckpointStore::materialize) replays at most `K`
//! links; `K = 0` chains forever. Every link records the byte length and
//! FNV-1a fingerprint of both its base and its result, checked at decode
//! time (without applying) and again at apply time — a broken, reordered,
//! or wrong-base link is a typed error, never silent corruption, and a
//! materialized boundary is **bit-identical** to the
//! [`EngineCheckpoint`] that was recorded (held by
//! `tests/delta_checkpoint.rs` for all ten kinds).
//!
//! Boundary metadata — time, ground-truth `f`, and the merge-coordinator
//! blob — is tiny next to shard states and is stored in full per
//! boundary. The store's own wire form (`b"DSVS"`, [`STORE_VERSION`])
//! gets the same robustness treatment as every other envelope:
//! truncation, corruption, version skew, and incoherent chains all
//! decode to typed [`CodecError`]s (held by `tests/codec_robustness.rs`).

use dsv_core::api::TrackerKind;
use dsv_core::codec::{kind_from_tag, kind_tag, TrackerState};
use dsv_net::codec::{CodecError, Dec, Enc};
use dsv_net::{fingerprint, StateDelta, Time};

use crate::checkpoint::EngineCheckpoint;
use crate::config::EngineError;

/// Magic bytes opening a serialized [`CheckpointStore`].
pub const STORE_MAGIC: [u8; 4] = *b"DSVS";

/// Current checkpoint-store format version. Bump on **any** layout
/// change (and see `MIGRATION.md`); nested deltas carry their own `DSVD`
/// version independently.
pub const STORE_VERSION: u16 = 1;

/// One shard's contribution to one retained boundary.
#[derive(Debug, Clone, PartialEq)]
enum Link {
    /// A full snapshot payload — the chain (re)starts here.
    Base(Vec<u8>),
    /// A delta against the shard's previous boundary payload.
    Delta(StateDelta),
}

/// One retained boundary: metadata in full, shard states as chain links.
#[derive(Debug, Clone, PartialEq)]
struct Boundary {
    time: Time,
    f: i64,
    merge: Vec<u8>,
    links: Vec<Link>,
}

/// Byte accounting over a store's lifetime (in-memory counters; they
/// restart at zero when a store is decoded from bytes).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeltaStats {
    /// Boundaries recorded.
    pub boundaries: u64,
    /// Boundaries recorded as full bases (chain restarts).
    pub bases: u64,
    /// Identity links recorded (shards whose snapshot bytes were
    /// unchanged — the quiet-stream case).
    pub identity_links: u64,
    /// What the same boundaries would have cost as full
    /// [`EngineCheckpoint::to_bytes`] images.
    pub full_bytes: u64,
    /// What the store's incremental boundary records actually cost.
    pub delta_bytes: u64,
}

impl DeltaStats {
    /// `full_bytes / delta_bytes` — how many times cheaper the
    /// incremental encoding was over the recorded window.
    pub fn shrink(&self) -> f64 {
        if self.delta_bytes == 0 {
            0.0
        } else {
            self.full_bytes as f64 / self.delta_bytes as f64
        }
    }
}

/// An incremental, chain-encoded archive of engine checkpoints — see the
/// [module docs](self) for the format and its invariants.
///
/// Feed it boundaries with [`record`](Self::record) (or
/// [`crate::ShardedEngine::checkpoint_into`]); get any retained boundary
/// back, bit-identical, with [`materialize`](Self::materialize).
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointStore {
    rebase: u64,
    kind: Option<TrackerKind>,
    k: usize,
    shards: usize,
    boundaries: Vec<Boundary>,
    /// The previous boundary's payload per shard — the diff base.
    prev: Vec<Vec<u8>>,
    /// Chained deltas since the last base.
    since_base: u64,
    stats: DeltaStats,
}

impl CheckpointStore {
    /// An empty store that forces a fresh base after every `rebase`
    /// chained deltas (`0` = never rebase; the first boundary is always a
    /// base). Engines configured with
    /// [`crate::EngineConfig::delta_rebase`] pass that period here.
    pub fn new(rebase: u64) -> Self {
        CheckpointStore {
            rebase,
            kind: None,
            k: 0,
            shards: 0,
            boundaries: Vec::new(),
            prev: Vec::new(),
            since_base: 0,
            stats: DeltaStats::default(),
        }
    }

    /// The configured rebase period (0 = never).
    pub fn rebase_period(&self) -> u64 {
        self.rebase
    }

    /// Retained boundaries, oldest first.
    pub fn boundaries(&self) -> Vec<Time> {
        self.boundaries.iter().map(|b| b.time).collect()
    }

    /// Number of retained boundaries.
    pub fn len(&self) -> usize {
        self.boundaries.len()
    }

    /// True before the first boundary is recorded.
    pub fn is_empty(&self) -> bool {
        self.boundaries.is_empty()
    }

    /// The most recently recorded boundary time.
    pub fn last_boundary(&self) -> Option<Time> {
        self.boundaries.last().map(|b| b.time)
    }

    /// Lifetime byte accounting (full-equivalent vs incremental).
    pub fn stats(&self) -> &DeltaStats {
        &self.stats
    }

    /// Record one checkpoint as the next boundary. The first record fixes
    /// the store's kind, site count, and shard count; later records must
    /// agree and must advance the boundary time (typed
    /// [`EngineError::CheckpointMismatch`] otherwise). Whether this
    /// boundary is a fresh base or a chain of deltas follows the rebase
    /// invariant; either way the recorded image is reconstructible
    /// bit-identically.
    pub fn record(&mut self, ckpt: &EngineCheckpoint) -> Result<(), EngineError> {
        if let Some(kind) = self.kind {
            if ckpt.kind() != kind {
                return Err(EngineError::CheckpointMismatch {
                    what: "tracker kind tag",
                    expected: kind_tag(kind) as u64,
                    found: kind_tag(ckpt.kind()) as u64,
                });
            }
            if ckpt.k() != self.k {
                return Err(EngineError::CheckpointMismatch {
                    what: "site count",
                    expected: self.k as u64,
                    found: ckpt.k() as u64,
                });
            }
            if ckpt.shards() != self.shards {
                return Err(EngineError::CheckpointMismatch {
                    what: "logical shard count",
                    expected: self.shards as u64,
                    found: ckpt.shards() as u64,
                });
            }
            let last = self.boundaries.last().map(|b| b.time).unwrap_or(0);
            if ckpt.time() <= last {
                return Err(EngineError::CheckpointMismatch {
                    what: "monotone boundary time",
                    expected: last + 1,
                    found: ckpt.time(),
                });
            }
        } else {
            self.kind = Some(ckpt.kind());
            self.k = ckpt.k();
            self.shards = ckpt.shards();
            self.prev = vec![Vec::new(); self.shards];
        }
        let fresh_base =
            self.boundaries.is_empty() || (self.rebase > 0 && self.since_base >= self.rebase);
        let mut links = Vec::with_capacity(self.shards);
        for (s, state) in ckpt.states().iter().enumerate() {
            let payload = state.payload();
            if fresh_base {
                links.push(Link::Base(payload.to_vec()));
            } else {
                let delta = StateDelta::diff(&self.prev[s], payload);
                if delta.is_identity() {
                    self.stats.identity_links += 1;
                }
                links.push(Link::Delta(delta));
            }
            if self.prev[s] != payload {
                self.prev[s].clear();
                self.prev[s].extend_from_slice(payload);
            }
        }
        let boundary = Boundary {
            time: ckpt.time(),
            f: ckpt.f(),
            merge: ckpt.merge().to_vec(),
            links,
        };
        if fresh_base {
            self.since_base = 0;
            self.stats.bases += 1;
        } else {
            self.since_base += 1;
        }
        let mut scratch = Enc::new();
        encode_boundary(&boundary, &mut scratch);
        self.stats.delta_bytes += scratch.len() as u64;
        self.stats.full_bytes += ckpt.to_bytes().len() as u64;
        self.stats.boundaries += 1;
        self.boundaries.push(boundary);
        Ok(())
    }

    /// Reconstruct the checkpoint recorded at boundary `time`,
    /// bit-identical to the [`EngineCheckpoint`] that was recorded there:
    /// per shard, replay the delta chain forward from the nearest base.
    /// An unretained time is a typed [`EngineError::UnknownBoundary`]; a
    /// chain whose links were tampered with fails with a typed
    /// [`CodecError::Mismatch`], never silently wrong bytes.
    pub fn materialize(&self, time: Time) -> Result<EngineCheckpoint, EngineError> {
        let idx = self
            .boundaries
            .binary_search_by_key(&time, |b| b.time)
            .map_err(|_| EngineError::UnknownBoundary { time })?;
        let kind = self.kind.expect("non-empty store has a kind");
        let boundary = &self.boundaries[idx];
        let mut states = Vec::with_capacity(self.shards);
        for s in 0..self.shards {
            // Walk back to the nearest base for this shard...
            let base_idx = (0..=idx)
                .rev()
                .find(|&i| matches!(self.boundaries[i].links[s], Link::Base(_)))
                .expect("every chain starts at a base");
            let mut payload = match &self.boundaries[base_idx].links[s] {
                Link::Base(bytes) => bytes.clone(),
                Link::Delta(_) => unreachable!("base_idx indexes a base"),
            };
            // ...then replay the chain forward.
            for i in base_idx + 1..=idx {
                match &self.boundaries[i].links[s] {
                    Link::Delta(delta) => payload = delta.apply(&payload)?,
                    Link::Base(_) => unreachable!("base_idx is the nearest base"),
                }
            }
            states.push(TrackerState::new(kind, self.k, payload));
        }
        Ok(EngineCheckpoint::new(
            kind,
            self.k,
            boundary.time,
            boundary.f,
            boundary.merge.clone(),
            states,
        ))
    }

    /// Reconstruct the most recent boundary
    /// (see [`materialize`](Self::materialize)).
    pub fn materialize_latest(&self) -> Result<EngineCheckpoint, EngineError> {
        let time = self
            .last_boundary()
            .ok_or(EngineError::UnknownBoundary { time: 0 })?;
        self.materialize(time)
    }

    /// Serialize the store to its versioned wire form.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut enc = Enc::new();
        enc.magic(STORE_MAGIC, STORE_VERSION);
        enc.u8(self.kind.map(kind_tag).unwrap_or(0));
        enc.usize(self.k);
        enc.usize(self.shards);
        enc.u64(self.rebase);
        enc.seq_len(self.boundaries.len());
        for boundary in &self.boundaries {
            encode_boundary(boundary, &mut enc);
        }
        enc.into_bytes()
    }

    /// Decode the versioned wire form, requiring exact consumption and a
    /// coherent chain: boundary times strictly increasing, every shard's
    /// first link a base, and every delta link's recorded base
    /// length/fingerprint equal to the previous link's result — so a
    /// reordered or cross-wired chain is rejected *here*, before any
    /// delta is applied. The surviving chains are then replayed once to
    /// rebuild the diff bases, which also verifies every result
    /// fingerprint.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CodecError> {
        let mut dec = Dec::new(bytes);
        dec.magic(STORE_MAGIC, STORE_VERSION)?;
        let tag = dec.u8()?;
        let k = dec.usize()?;
        let shards = dec.usize()?;
        let rebase = dec.u64()?;
        let n = dec.seq_len("store boundaries", 17)?;
        let kind = if n == 0 && tag == 0 {
            None
        } else {
            Some(kind_from_tag(tag).ok_or(CodecError::BadTag {
                what: "store tracker kind",
                tag: tag as u64,
            })?)
        };
        if n > 0 && (k == 0 || shards == 0) {
            return Err(CodecError::BadValue {
                what: "store shard or site count",
            });
        }
        if n == 0 && (k != 0 || shards != 0) {
            return Err(CodecError::BadValue {
                what: "store shard or site count",
            });
        }
        // Every recorded link costs at least its one tag byte, so a
        // shard count the remaining payload cannot possibly carry is
        // corruption — reject it before it sizes any allocation.
        if shards > dec.remaining() {
            return Err(CodecError::BadLength {
                what: "store shard count",
            });
        }
        let mut boundaries = Vec::with_capacity(n);
        // Per-shard (length, fingerprint) of the previous link's result —
        // the chain-coherence check, no delta application needed.
        let mut tip: Vec<Option<(u64, u64)>> = vec![None; shards];
        let mut last_time = 0u64;
        for bi in 0..n {
            let time = dec.u64()?;
            if bi > 0 && time <= last_time {
                return Err(CodecError::Mismatch {
                    what: "monotone store boundary time",
                    expected: last_time + 1,
                    found: time,
                });
            }
            last_time = time;
            let f = dec.i64()?;
            let merge = dec.blob()?.to_vec();
            let mut links = Vec::with_capacity(shards);
            for shard_tip in tip.iter_mut() {
                match dec.u8()? {
                    1 => {
                        let payload = dec.blob()?.to_vec();
                        *shard_tip = Some((payload.len() as u64, fingerprint(&payload)));
                        links.push(Link::Base(payload));
                    }
                    2 => {
                        let delta = StateDelta::decode(&mut dec)?;
                        let Some((len, hash)) = *shard_tip else {
                            return Err(CodecError::BadValue {
                                what: "store chain start (delta before any base)",
                            });
                        };
                        if delta.base_len() != len {
                            return Err(CodecError::Mismatch {
                                what: "store chain link base length",
                                expected: len,
                                found: delta.base_len(),
                            });
                        }
                        if delta.base_hash() != hash {
                            return Err(CodecError::Mismatch {
                                what: "store chain link base fingerprint",
                                expected: hash,
                                found: delta.base_hash(),
                            });
                        }
                        *shard_tip = Some((delta.new_len(), delta.new_hash()));
                        links.push(Link::Delta(delta));
                    }
                    tag => {
                        return Err(CodecError::BadTag {
                            what: "store chain link",
                            tag: tag as u64,
                        })
                    }
                }
            }
            boundaries.push(Boundary {
                time,
                f,
                merge,
                links,
            });
        }
        dec.finish()?;
        // Rebuild the diff bases by replaying each shard's chain once
        // (this also verifies every delta's result fingerprint), and
        // recover how deep the current chain is for the rebase invariant.
        let mut prev = vec![Vec::new(); shards];
        for boundary in &boundaries {
            for (s, link) in boundary.links.iter().enumerate() {
                match link {
                    Link::Base(payload) => prev[s] = payload.clone(),
                    Link::Delta(delta) => prev[s] = delta.apply(&prev[s])?,
                }
            }
        }
        let since_base = boundaries
            .iter()
            .rev()
            .take_while(|b| matches!(b.links.first(), Some(Link::Delta(_))))
            .count() as u64;
        Ok(CheckpointStore {
            rebase,
            kind,
            k,
            shards,
            boundaries,
            prev,
            since_base,
            stats: DeltaStats::default(),
        })
    }
}

/// Encode one boundary record (shared by [`CheckpointStore::to_bytes`]
/// and the per-record byte accounting).
fn encode_boundary(boundary: &Boundary, enc: &mut Enc) {
    enc.u64(boundary.time);
    enc.i64(boundary.f);
    enc.blob(&boundary.merge);
    for link in &boundary.links {
        match link {
            Link::Base(payload) => {
                enc.u8(1);
                enc.blob(payload);
            }
            Link::Delta(delta) => {
                enc.u8(2);
                delta.encode(enc);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CounterEngine, EngineConfig, ShardedEngine};
    use dsv_core::api::{TrackerKind, TrackerSpec};
    use dsv_net::Update;

    fn stream(n: u64, k: usize) -> Vec<Update> {
        (1..=n)
            .map(|t| Update::new(t, (t % k as u64) as usize, if t % 5 == 0 { -1 } else { 1 }))
            .collect()
    }

    fn engine() -> CounterEngine {
        let spec = TrackerSpec::new(TrackerKind::Deterministic)
            .k(4)
            .eps(0.1)
            .deletions(true);
        ShardedEngine::counters(spec, EngineConfig::new(3, 256).eps(0.1)).unwrap()
    }

    #[test]
    fn recorded_boundaries_materialize_bit_identically() {
        let mut engine = engine();
        let updates = stream(4 * 1024, 4);
        let mut store = CheckpointStore::new(2);
        let mut recorded = Vec::new();
        for chunk in updates.chunks(1024) {
            engine.run(chunk).unwrap();
            let ckpt = engine.checkpoint().unwrap();
            store.record(&ckpt).unwrap();
            recorded.push(ckpt);
        }
        assert_eq!(store.len(), 4);
        assert_eq!(
            store.boundaries(),
            recorded.iter().map(|c| c.time()).collect::<Vec<_>>()
        );
        for ckpt in &recorded {
            let back = store.materialize(ckpt.time()).unwrap();
            assert_eq!(&back, ckpt, "boundary t = {}", ckpt.time());
            assert_eq!(
                back.to_bytes(),
                ckpt.to_bytes(),
                "bytes t = {}",
                ckpt.time()
            );
        }
        assert_eq!(
            store.materialize_latest().unwrap(),
            *recorded.last().unwrap()
        );
        // Rebase every 2 deltas: boundaries 1, 4 are bases (1 + 2 deltas,
        // then a fresh base).
        assert_eq!(store.stats().bases, 2);
        assert_eq!(store.stats().boundaries, 4);
        assert!(store.stats().full_bytes > store.stats().delta_bytes);
    }

    #[test]
    fn quiet_boundaries_cost_identity_links() {
        let mut engine = engine();
        engine.run(&stream(1024, 4)).unwrap();
        let mut store = CheckpointStore::new(0);
        store.record(&engine.checkpoint().unwrap()).unwrap();
        // No updates ran: the next checkpoint is byte-identical, and the
        // fabricated later time makes it a distinct boundary.
        let ckpt = engine.checkpoint().unwrap();
        let quiet = EngineCheckpoint::new(
            ckpt.kind(),
            ckpt.k(),
            ckpt.time() + 1,
            ckpt.f(),
            ckpt.merge().to_vec(),
            ckpt.states().to_vec(),
        );
        store.record(&quiet).unwrap();
        assert_eq!(store.stats().identity_links, 3, "all shards quiet");
        assert_eq!(store.materialize(quiet.time()).unwrap(), quiet);
    }

    #[test]
    fn mismatched_records_and_unknown_boundaries_are_typed() {
        let mut engine = engine();
        engine.run(&stream(512, 4)).unwrap();
        let ckpt = engine.checkpoint().unwrap();
        let mut store = CheckpointStore::new(0);
        store.record(&ckpt).unwrap();
        // Same time again: not monotone.
        assert!(matches!(
            store.record(&ckpt).unwrap_err(),
            EngineError::CheckpointMismatch {
                what: "monotone boundary time",
                ..
            }
        ));
        // A different engine shape is rejected.
        let spec = TrackerSpec::new(TrackerKind::Deterministic).k(4).eps(0.1);
        let mut other = ShardedEngine::counters(spec, EngineConfig::new(5, 256).eps(0.1)).unwrap();
        other
            .run(&(1..=1024).map(|t| Update::new(t, 0, 1)).collect::<Vec<_>>())
            .unwrap();
        assert!(matches!(
            store.record(&other.checkpoint().unwrap()).unwrap_err(),
            EngineError::CheckpointMismatch {
                what: "logical shard count",
                ..
            }
        ));
        assert!(matches!(
            store.materialize(99_999).unwrap_err(),
            EngineError::UnknownBoundary { time: 99_999 }
        ));
        assert!(matches!(
            CheckpointStore::new(0).materialize_latest().unwrap_err(),
            EngineError::UnknownBoundary { time: 0 }
        ));
    }

    #[test]
    fn store_wire_form_round_trips() {
        let mut engine = engine();
        let updates = stream(3 * 1024, 4);
        let mut store = CheckpointStore::new(3);
        for chunk in updates.chunks(1024) {
            engine.run(chunk).unwrap();
            store.record(&engine.checkpoint().unwrap()).unwrap();
        }
        let bytes = store.to_bytes();
        let back = CheckpointStore::from_bytes(&bytes).unwrap();
        assert_eq!(back.boundaries(), store.boundaries());
        assert_eq!(back.rebase_period(), 3);
        for time in store.boundaries() {
            assert_eq!(
                back.materialize(time).unwrap(),
                store.materialize(time).unwrap()
            );
        }
        // A decoded store keeps recording coherently.
        let mut resumed = back;
        engine.run(&stream(1024, 4)).unwrap();
        resumed.record(&engine.checkpoint().unwrap()).unwrap();
        assert_eq!(resumed.len(), 4);
        resumed.materialize_latest().unwrap();

        // Empty stores round-trip too.
        let empty = CheckpointStore::new(0);
        let back = CheckpointStore::from_bytes(&empty.to_bytes()).unwrap();
        assert!(back.is_empty());
    }
}
