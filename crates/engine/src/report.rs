//! Outcome of an engine run.

use dsv_net::{CommStats, ErrorProbe, IngestStats};
use std::time::Duration;

/// Outcome of [`crate::ShardedEngine::run`] over one stream (or stream
/// segment — the engine is incremental and can be run repeatedly).
#[derive(Debug, Clone)]
pub struct EngineReport {
    /// Updates consumed by this run.
    pub n: u64,
    /// Batches executed (= boundary reconciliations and audits).
    pub batches: u64,
    /// Logical shard replicas.
    pub shards: usize,
    /// Worker threads that drove the replicas during this run.
    pub workers: usize,
    /// Configured batch size.
    pub batch_size: usize,
    /// Ground-truth `f` after this run (cumulative across runs).
    pub final_f: i64,
    /// Coordinator-side global estimate after this run.
    pub final_estimate: i64,
    /// Boundaries where `|f − f̂| > ε·|f|`.
    pub boundary_violations: u64,
    /// Largest boundary relative error observed.
    pub max_boundary_rel_err: f64,
    /// In-protocol traffic, summed across all shard replicas.
    pub tracker_stats: CommStats,
    /// Engine-level shard → coordinator reconciliation traffic.
    pub merge_stats: CommStats,
    /// Pipelined-ingestion traffic, stalls, and queue occupancy
    /// (cumulative over the engine's [`run_pipelined`] calls; empty for
    /// engines fed only through `run` / `run_parted`).
    ///
    /// [`run_pipelined`]: crate::ShardedEngine::run_pipelined
    pub ingest_stats: IngestStats,
    /// Sampled boundary trajectory (per `EngineConfig::probe_every`).
    pub probes: Vec<ErrorProbe>,
    /// Wall-clock time spent inside `run`.
    pub elapsed: Duration,
}

impl EngineReport {
    /// Ingestion throughput of this run, in updates per second.
    pub fn updates_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.n as f64 / secs
        } else {
            f64::INFINITY
        }
    }

    /// Fraction of boundary audits that violated the ε bound.
    pub fn violation_rate(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.boundary_violations as f64 / self.batches as f64
        }
    }

    /// All communication: in-protocol traffic plus merge traffic.
    pub fn total_stats(&self) -> CommStats {
        let mut total = self.tracker_stats.clone();
        total.merge(&self.merge_stats);
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_metrics() {
        let r = EngineReport {
            n: 1_000,
            batches: 10,
            shards: 4,
            workers: 4,
            batch_size: 100,
            final_f: 500,
            final_estimate: 498,
            boundary_violations: 2,
            max_boundary_rel_err: 0.3,
            tracker_stats: CommStats::new(),
            merge_stats: CommStats::new(),
            ingest_stats: IngestStats::new(),
            probes: Vec::new(),
            elapsed: Duration::from_millis(500),
        };
        assert!((r.updates_per_sec() - 2_000.0).abs() < 1e-9);
        assert!((r.violation_rate() - 0.2).abs() < 1e-12);
        assert_eq!(r.total_stats().total_messages(), 0);
    }
}
