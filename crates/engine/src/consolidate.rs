//! Batch consolidation: pre-aggregate a same-site run before the tracker
//! sees it.
//!
//! Differential-dataflow's `consolidation.rs` sorts update batches and
//! merges duplicates before operators run; the analogue here has one form
//! per input family:
//!
//! * **counter runs** (`&[i64]`) are run-length encoded — the trackers'
//!   quiet conditions are bands on a running sum, so a run of identical
//!   deltas is absorbed in O(1) via
//!   [`SiteNode::absorb_quiet_run`](dsv_net::SiteNode::absorb_quiet_run)
//!   instead of one compare per ±1;
//! * **item runs** (`&[(u64, i64)]`) are sorted and duplicate items merged
//!   into [`MergedEntry`] nets, so a frequency site can absorb the whole
//!   run by applying one net per distinct item via
//!   [`SiteNode::absorb_quiet_merged`](dsv_net::SiteNode::absorb_quiet_merged).
//!
//! Both transforms are *exact*: the consolidated form is offered to the
//! tracker alongside enough information to replay the raw run whenever a
//! closed form can't prove quietness, so estimates, ε-audits, `CommStats`
//! and checkpoint bytes stay bit-identical to unconsolidated ingestion
//! (held by `tests/consolidation_equivalence.rs` for all ten kinds).
//!
//! Enabled per engine with [`EngineConfig::consolidate`](crate::EngineConfig::consolidate);
//! each worker owns one [`Consolidator`] of reused scratch buffers.

use crate::partition::InputDelta;
use dsv_core::api::Tracker;
use dsv_net::{MergedEntry, SiteId};

/// Reusable consolidation scratch: one per engine worker.
#[derive(Debug, Default)]
pub struct Consolidator {
    /// RLE segments of a counter run.
    segs: Vec<(i64, u32)>,
    /// Sort scratch for item runs.
    pairs: Vec<(u64, i64)>,
    /// Per-distinct-item merge of an item run.
    merged: Vec<MergedEntry>,
}

impl Consolidator {
    /// Fresh scratch with empty buffers.
    pub fn new() -> Self {
        Self::default()
    }

    /// Run-length encode `run` into `(value, count)` segments (clearing
    /// previous contents). Runs longer than `u32::MAX` are split.
    ///
    /// The scan extends a segment by whole 32-element blocks while they
    /// are all equal to the segment value — a branch-free slice compare
    /// the compiler vectorizes — and finishes the crossing block scalar,
    /// so monotone batches compress at memcmp speed.
    pub fn compress_runs(&mut self, run: &[i64]) -> &[(i64, u32)] {
        self.segs.clear();
        let mut i = 0;
        while i < run.len() {
            let v = run[i];
            let mut j = i + 1;
            while j + 32 <= run.len() && run[j..j + 32].iter().all(|&x| x == v) {
                j += 32;
            }
            while j < run.len() && run[j] == v {
                j += 1;
            }
            let mut len = j - i;
            while len > 0 {
                let c = len.min(u32::MAX as usize);
                self.segs.push((v, c as u32));
                len -= c;
            }
            i = j;
        }
        &self.segs
    }

    /// Sort-and-merge `run` into one [`MergedEntry`] per distinct item
    /// (sorted by item, clearing previous contents). The raw run is left
    /// untouched — sites that cannot absorb the merged form replay it.
    pub fn merge_items(&mut self, run: &[(u64, i64)]) -> &[MergedEntry] {
        self.pairs.clear();
        self.pairs.extend_from_slice(run);
        self.pairs.sort_unstable_by_key(|&(item, _)| item);
        self.merged.clear();
        for &(item, delta) in &self.pairs {
            match self.merged.last_mut() {
                Some(e) if e.item == item => {
                    e.net += delta;
                    e.count += 1;
                }
                _ => self.merged.push(MergedEntry {
                    item,
                    net: delta,
                    count: 1,
                }),
            }
        }
        &self.merged
    }
}

/// Input families that know their consolidated ingestion form. The
/// engine's run paths call this instead of
/// [`Tracker::update_run`](dsv_core::api::Tracker::update_run) when the
/// [`consolidate`](crate::EngineConfig::consolidate) knob is on.
pub trait ConsolidateInput: InputDelta {
    /// Consolidate `run` in `scratch` and feed it to `tracker`,
    /// bit-identically to `tracker.update_run(site, run)`.
    fn update_consolidated<T: Tracker<Self> + ?Sized>(
        tracker: &mut T,
        site: SiteId,
        run: &[Self],
        scratch: &mut Consolidator,
    ) -> i64;
}

impl ConsolidateInput for i64 {
    fn update_consolidated<T: Tracker<Self> + ?Sized>(
        tracker: &mut T,
        site: SiteId,
        run: &[Self],
        scratch: &mut Consolidator,
    ) -> i64 {
        scratch.compress_runs(run);
        tracker.update_run_rle(site, &scratch.segs)
    }
}

impl ConsolidateInput for (u64, i64) {
    fn update_consolidated<T: Tracker<Self> + ?Sized>(
        tracker: &mut T,
        site: SiteId,
        run: &[Self],
        scratch: &mut Consolidator,
    ) -> i64 {
        scratch.merge_items(run);
        tracker.update_run_merged(site, run, &scratch.merged)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rle_roundtrips_and_splits() {
        let mut c = Consolidator::new();
        assert!(c.compress_runs(&[]).is_empty());
        let run: Vec<i64> = [vec![1i64; 100], vec![-1; 3], vec![1; 40], vec![0; 1]].concat();
        let segs: Vec<_> = c.compress_runs(&run).to_vec();
        assert_eq!(segs, vec![(1, 100), (-1, 3), (1, 40), (0, 1)]);
        let expanded: Vec<i64> = segs
            .iter()
            .flat_map(|&(v, n)| std::iter::repeat_n(v, n as usize))
            .collect();
        assert_eq!(expanded, run);
        // Alternating input degenerates to one segment per element.
        let alt: Vec<i64> = (0..67).map(|i| if i % 2 == 0 { 1 } else { -1 }).collect();
        assert_eq!(c.compress_runs(&alt).len(), 67);
    }

    #[test]
    fn merge_sums_duplicates_sorted() {
        let mut c = Consolidator::new();
        let run = [(7u64, 1i64), (3, 1), (7, 1), (7, -1), (3, 1), (9, -1)];
        let merged: Vec<_> = c.merge_items(&run).to_vec();
        assert_eq!(
            merged,
            vec![
                MergedEntry {
                    item: 3,
                    net: 2,
                    count: 2
                },
                MergedEntry {
                    item: 7,
                    net: 1,
                    count: 3
                },
                MergedEntry {
                    item: 9,
                    net: -1,
                    count: 1
                },
            ]
        );
        let n: u32 = merged.iter().map(|e| e.count).sum();
        assert_eq!(n as usize, run.len());
    }
}
