//! The coordinator side of the engine: merging shard estimates.

use dsv_net::codec::{restore_seq, CodecError, Dec, Enc};
use dsv_net::{CommStats, MsgKind, ShardReport, WireSize};

/// Maintains the coordinator-side global estimate `f̂ = Σ_s f̂_s` under
/// delta reporting: a shard sends a [`ShardReport`] only when its local
/// estimate changed during the batch, and the coordinator keeps the last
/// reported value per shard (which is exact for silent shards). Every
/// accepted report is charged to the merge ledger as an ordinary up
/// message of the model.
#[derive(Debug, Clone)]
pub(crate) struct MergeCoordinator {
    last_reported: Vec<i64>,
    global: i64,
    stats: CommStats,
}

impl MergeCoordinator {
    pub(crate) fn new(shards: usize) -> Self {
        MergeCoordinator {
            last_reported: vec![0; shards],
            global: 0,
            stats: CommStats::new(),
        }
    }

    /// A shard's estimate at a batch boundary. Charges one message iff it
    /// differs from the shard's last report.
    pub(crate) fn absorb(&mut self, shard: usize, estimate: i64) {
        if estimate != self.last_reported[shard] {
            self.global += estimate - self.last_reported[shard];
            self.last_reported[shard] = estimate;
            let report = ShardReport { shard, estimate };
            self.stats.charge(MsgKind::Up, report.words());
        }
    }

    /// The current global estimate.
    pub(crate) fn estimate(&self) -> i64 {
        self.global
    }

    /// The merge-traffic ledger.
    pub(crate) fn stats(&self) -> &CommStats {
        &self.stats
    }

    /// Serialize the coordinator for an engine checkpoint.
    pub(crate) fn save_state(&self, enc: &mut Enc) {
        enc.seq_i64(&self.last_reported);
        enc.i64(self.global);
        self.stats.encode(enc);
    }

    /// Restore state written by [`save_state`](Self::save_state); the
    /// serialized shard count must match this coordinator's.
    pub(crate) fn load_state(&mut self, dec: &mut Dec) -> Result<(), CodecError> {
        restore_seq(
            "merge shard reports",
            &mut self.last_reported,
            &dec.seq_i64("last_reported")?,
        )?;
        self.global = dec.i64()?;
        self.stats = CommStats::decode(dec)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn silent_shards_cost_nothing_and_stay_merged() {
        let mut m = MergeCoordinator::new(3);
        m.absorb(0, 10);
        m.absorb(1, -4);
        m.absorb(2, 0); // unchanged from the initial 0: silent
        assert_eq!(m.estimate(), 6);
        assert_eq!(m.stats().total_messages(), 2);

        // Next boundary: only shard 1 moved.
        m.absorb(0, 10);
        m.absorb(1, -2);
        m.absorb(2, 0);
        assert_eq!(m.estimate(), 8);
        assert_eq!(m.stats().total_messages(), 3);
        assert_eq!(m.stats().total_words(), 3);
    }
}
