//! The batched, sharded runner.

use crate::checkpoint::EngineCheckpoint;
use crate::config::{EngineConfig, EngineError};
use crate::consolidate::{ConsolidateInput, Consolidator};
use crate::delta::CheckpointStore;
use crate::ingest::{Ring, RingConsumer, ShardFeed};
use crate::merge::MergeCoordinator;
use crate::partition::{hash_item, Partition, ShardRecord};
use crate::report::EngineReport;
use dsv_core::api::{ItemTracker, RunError, Tracker, TrackerKind, TrackerSpec};
use dsv_core::codec::{Dec, Enc, TrackerState};
use dsv_net::{
    relative_error, CommStats, ErrorProbe, IngestStats, MsgKind, SiteId, StateFrame, Time, WireSize,
};
use std::collections::BTreeMap;
use std::marker::PhantomData;
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Instant;

/// The counting-problem engine: shard replicas built by
/// [`ShardedEngine::counters`] from any of the six counter kinds.
pub type CounterEngine = ShardedEngine<Box<dyn Tracker + Send>>;

/// The item-frequency engine: shard replicas built by
/// [`ShardedEngine::items`] from any of the four frequency kinds.
pub type ItemEngine = ShardedEngine<Box<dyn ItemTracker + Send>, (u64, i64)>;

/// A unit of work shipped to a shard worker, carrying its buffer so
/// allocations are recycled batch to batch.
enum WorkBuf<In> {
    /// Mixed-site sub-batch, in arrival order (general layout).
    Batch(Vec<(SiteId, In)>),
    /// All updates at one site (site-affine layout with at most one site
    /// per shard) — drives the zero-copy `update_run` path.
    Run(SiteId, Vec<In>),
}

/// Per-record validation shared by both routing layouts: rejects what
/// the sequential `Driver` rejects, returning the record's ground-truth
/// increment.
#[inline]
fn check_record<R, In>(
    rec: &R,
    k: usize,
    kind: TrackerKind,
    deletions_ok: bool,
) -> Result<i64, EngineError>
where
    R: ShardRecord<In = In>,
    In: Copy,
{
    if rec.site() >= k {
        return Err(RunError::SiteOutOfRange {
            site: rec.site(),
            k,
            time: rec.time(),
        }
        .into());
    }
    let delta = rec.delta();
    if delta < 0 && !deletions_ok {
        return Err(RunError::DeletionUnsupported {
            kind,
            time: rec.time(),
        }
        .into());
    }
    Ok(delta)
}

/// Feed a same-site run to a shard replica, through the consolidation
/// stage when the engine has one (`scratch` is `Some` iff
/// [`EngineConfig::consolidate`] is on). Both paths are bit-identical;
/// the consolidated one pre-aggregates the run (RLE for counter inputs,
/// sort-merge for item inputs) so the tracker's closed-form absorb
/// kernels see whole segments instead of every ±1.
fn ingest_run<T, In>(
    tracker: &mut T,
    site: SiteId,
    run: &[In],
    scratch: Option<&mut Consolidator>,
) -> i64
where
    T: Tracker<In> + ?Sized,
    In: ConsolidateInput,
{
    match scratch {
        Some(s) => In::update_consolidated(tracker, site, run, s),
        None => tracker.update_run(site, run),
    }
}

/// Route one batch into per-site run buffers (`shard == site`; valid
/// whenever every shard owns at most one site). Returns the batch's
/// ground-truth increment.
fn fill_runs<R, In>(
    batch: &[R],
    k: usize,
    kind: TrackerKind,
    deletions_ok: bool,
    bufs: &mut [Vec<In>],
) -> Result<i64, EngineError>
where
    R: ShardRecord<In = In>,
    In: Copy,
{
    let mut df = 0i64;
    for rec in batch {
        df += check_record(rec, k, kind, deletions_ok)?;
        bufs[rec.site()].push(rec.input());
    }
    Ok(df)
}

/// Route one batch into per-shard mixed-site buffers (general layout).
/// `lut` maps sites to shards for [`Partition::SiteAffine`] (computed
/// once, so the hot loop carries no division); `rr` is the rotating
/// cursor for [`Partition::RoundRobin`].
#[allow(clippy::too_many_arguments)]
fn fill_tuples<R, In>(
    batch: &[R],
    k: usize,
    kind: TrackerKind,
    deletions_ok: bool,
    s_count: usize,
    partition: Partition,
    lut: &[u32],
    rr: &mut usize,
    bufs: &mut [Vec<(SiteId, In)>],
) -> Result<i64, EngineError>
where
    R: ShardRecord<In = In>,
    In: Copy,
{
    let mut df = 0i64;
    for rec in batch {
        let delta = check_record(rec, k, kind, deletions_ok)?;
        let site = rec.site();
        let shard = match partition {
            Partition::SiteAffine => lut[site] as usize,
            Partition::RoundRobin => {
                let s = *rr;
                *rr += 1;
                if *rr == s_count {
                    *rr = 0;
                }
                s
            }
            Partition::ByItem => match rec.item_key() {
                Some(item) => (hash_item(item) % s_count as u64) as usize,
                None => return Err(EngineError::MissingItemKey { time: rec.time() }),
            },
        };
        df += delta;
        bufs[shard].push((site, rec.input()));
    }
    Ok(df)
}

/// One feed drained by a pipelined worker: its queue's consumer end, a
/// recycled round buffer, and whether the feed has delivered its final
/// (short or empty) round.
struct FeedState<In: Copy> {
    consumer: RingConsumer<In>,
    buf: Vec<In>,
    done: bool,
}

/// One logical shard owned by a pipelined worker: its slot within the
/// worker's replica group, its shard id, and its feeds in feed order.
struct OwnedShard<In: Copy> {
    slot: usize,
    sid: usize,
    feeds: Vec<FeedState<In>>,
}

/// Run-local audit accumulator (per `run` call). Shared with the remote
/// coordinator, which audits the same boundary cut over socket-delivered
/// reports.
pub(crate) struct RunAudit {
    eps: f64,
    probe_every: u64,
    pub(crate) batches: u64,
    pub(crate) violations: u64,
    pub(crate) max_err: f64,
    pub(crate) probes: Vec<ErrorProbe>,
}

impl RunAudit {
    pub(crate) fn new(eps: f64, probe_every: u64) -> Self {
        RunAudit {
            eps,
            probe_every,
            batches: 0,
            violations: 0,
            max_err: 0.0,
            probes: Vec::new(),
        }
    }

    /// Audit one batch boundary: global truth `f` vs merged estimate.
    pub(crate) fn boundary(&mut self, time: Time, f: i64, fhat: i64) {
        self.batches += 1;
        let err = relative_error(f, fhat);
        if err > self.max_err {
            self.max_err = err;
        }
        // Same float-slack convention as the sequential Driver.
        if err > self.eps * (1.0 + 1e-12) {
            self.violations += 1;
        }
        if self.probe_every > 0 && self.batches.is_multiple_of(self.probe_every) {
            self.probes.push(ErrorProbe {
                time,
                f,
                fhat,
                rel_err: err,
            });
        }
    }
}

/// A batched, sharded runner over `S` tracker replicas.
///
/// `T` is the replica type — usually `Box<dyn Tracker + Send>` (see
/// [`CounterEngine`]) or `Box<dyn ItemTracker + Send>` ([`ItemEngine`]),
/// but any `Send` tracker works. The engine is incremental:
/// [`run`](Self::run) may be called repeatedly with successive stream
/// segments, and shard state, the merged estimate, and both communication
/// ledgers persist across calls.
///
/// The `S` logical shards are driven by `W ≤ S` worker threads (worker
/// `w` owns shards `s ≡ w (mod W)`; [`EngineConfig::workers`]). Because
/// replica state is a pure function of the stream → *shard* routing,
/// never of the shard → worker assignment, the worker count can change
/// freely between ingestion calls — [`rescale`](Self::rescale) — and
/// whole engines can be externalized and resumed at batch boundaries —
/// [`checkpoint`](Self::checkpoint) / resume constructors — with
/// bit-identical estimates and ledgers.
///
/// See the crate docs for the execution model and the guarantee argument.
#[derive(Debug)]
pub struct ShardedEngine<T, In: Copy = i64> {
    shards: Vec<T>,
    cfg: EngineConfig,
    coord: MergeCoordinator,
    /// Snapshot traffic ([`StateFrame`]s), charged per checkpoint.
    /// Separate from the tracker and merge ledgers so checkpointing never
    /// perturbs the ledgers the resume-equivalence guarantee covers.
    ckpt_stats: CommStats,
    /// Pipelined-ingestion ledger ([`dsv_net::FeedFrame`] traffic, stalls,
    /// occupancy), accumulated by [`run_pipelined`](Self::run_pipelined).
    /// Separate from the other ledgers for the same reason as
    /// `ckpt_stats`: the transport must not perturb the ledgers the
    /// pipelined-equivalence guarantee is stated over.
    ingest_stats: IngestStats,
    /// Inputs dispatched to each shard since its state was last captured
    /// by [`checkpoint`](Self::checkpoint). Tracker state is a pure
    /// function of the inputs a replica has consumed, so a zero counter
    /// proves the shard's snapshot is unchanged — the dirty-shard skip
    /// that keeps a periodic checkpoint sink from reserializing (and
    /// re-charging) quiet shards every period. Counting *inputs* rather
    /// than watching the quiet ledger is deliberate: trackers mutate
    /// internal state (round counters, samplers) without sending
    /// messages, so "ledger unchanged" would under-approximate dirtiness.
    shard_inputs: Vec<u64>,
    /// Each shard's serialized state as of its last checkpoint capture
    /// (`None` until first captured). Reused verbatim for clean shards.
    ckpt_cache: Vec<Option<TrackerState>>,
    time: Time,
    f: i64,
    _in: PhantomData<fn(In) -> In>,
}

impl<T, In> ShardedEngine<T, In>
where
    T: Tracker<In> + Send,
    In: Copy + Send,
{
    /// Build an engine whose shard replica `s` is produced by `make(s)`.
    ///
    /// All replicas must agree on kind and site count (they track shards
    /// of one logical stream); [`TrackerSpec::shard`] is the intended way
    /// to derive per-shard specs.
    pub fn with_factory<E>(
        cfg: EngineConfig,
        mut make: impl FnMut(usize) -> Result<T, E>,
    ) -> Result<Self, EngineError>
    where
        EngineError: From<E>,
    {
        cfg.validate()?;
        let mut shards = Vec::with_capacity(cfg.shards_count());
        for s in 0..cfg.shards_count() {
            shards.push(make(s).map_err(EngineError::from)?);
        }
        let kind = shards[0].kind();
        let k = shards[0].k();
        assert!(
            shards.iter().all(|t| t.kind() == kind && t.k() == k),
            "shard replicas must agree on kind and site count"
        );
        Ok(ShardedEngine {
            coord: MergeCoordinator::new(cfg.shards_count()),
            shards,
            ckpt_stats: CommStats::new(),
            ingest_stats: IngestStats::new(),
            shard_inputs: vec![0; cfg.shards_count()],
            ckpt_cache: vec![None; cfg.shards_count()],
            cfg,
            time: 0,
            f: 0,
            _in: PhantomData,
        })
    }

    /// Rebuild an engine from an [`EngineCheckpoint`]: construct fresh
    /// replicas with `make` (which must reproduce the original build
    /// parameters — [`TrackerSpec::shard`] seeding included), then restore
    /// every shard's state, the merge coordinator, and the engine scalars.
    ///
    /// `cfg` must agree with the checkpoint on the **logical** shard
    /// count; the **worker** count is free — resuming onto a different
    /// `cfg.workers` is the rescaling seam, and is exact (see
    /// [`rescale`](Self::rescale)).
    pub fn with_factory_resume<E>(
        cfg: EngineConfig,
        ckpt: &EngineCheckpoint,
        make: impl FnMut(usize) -> Result<T, E>,
    ) -> Result<Self, EngineError>
    where
        EngineError: From<E>,
    {
        if cfg.shards_count() != ckpt.shards() {
            return Err(EngineError::CheckpointMismatch {
                what: "logical shard count",
                expected: cfg.shards_count() as u64,
                found: ckpt.shards() as u64,
            });
        }
        let mut engine = Self::with_factory(cfg, make)?;
        if engine.kind() != ckpt.kind() {
            return Err(EngineError::CheckpointMismatch {
                what: "tracker kind tag",
                expected: dsv_core::codec::kind_tag(engine.kind()) as u64,
                found: dsv_core::codec::kind_tag(ckpt.kind()) as u64,
            });
        }
        for (tracker, state) in engine.shards.iter_mut().zip(ckpt.states()) {
            tracker.restore(state)?;
        }
        let mut dec = Dec::new(ckpt.merge());
        engine.coord.load_state(&mut dec)?;
        dec.finish()?;
        engine.time = ckpt.time();
        engine.f = ckpt.f();
        Ok(engine)
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// The replica kind.
    pub fn kind(&self) -> TrackerKind {
        self.shards[0].kind()
    }

    /// Updates consumed so far (across all `run` calls).
    pub fn time(&self) -> Time {
        self.time
    }

    /// The coordinator-side global estimate `f̂ = Σ_s f̂_s`.
    pub fn estimate(&self) -> i64 {
        self.coord.estimate()
    }

    /// Current per-shard local estimates (diagnostics).
    pub fn shard_estimates(&self) -> Vec<i64> {
        self.shards.iter().map(|t| t.estimate()).collect()
    }

    /// In-protocol traffic summed across all shard replicas.
    pub fn tracker_stats(&self) -> CommStats {
        let mut total = CommStats::new();
        for t in &self.shards {
            total.merge(t.stats());
        }
        total
    }

    /// Engine-level shard → coordinator reconciliation traffic.
    pub fn merge_stats(&self) -> &CommStats {
        self.coord.stats()
    }

    /// Snapshot traffic charged by [`checkpoint`](Self::checkpoint) calls
    /// on this engine (one [`StateFrame`] per shard per checkpoint).
    pub fn checkpoint_stats(&self) -> &CommStats {
        &self.ckpt_stats
    }

    /// Pipelined-ingestion traffic, stalls, and queue occupancy charged
    /// by [`run_pipelined`](Self::run_pipelined) calls on this engine.
    pub fn ingest_stats(&self) -> &IngestStats {
        &self.ingest_stats
    }

    /// Capture the engine's complete state — every shard replica's
    /// [`dsv_core::codec::TrackerState`], the merge coordinator, consumed
    /// time, and ground-truth `f` — as a restorable [`EngineCheckpoint`].
    ///
    /// Call between ingestion calls: every point between [`run`](Self::run)
    /// / [`run_parted`](Self::run_parted) calls is a batch boundary, the
    /// engine's exact sync point (shards quiesced, estimate reconciled,
    /// audit run), which is what makes the cut safe — see `DESIGN.md` §6.
    /// Shipping the state off the workers is charged to the dedicated
    /// [`checkpoint_stats`](Self::checkpoint_stats) ledger as one
    /// [`StateFrame`] per **dirty** shard: a shard that has consumed no
    /// inputs since its last capture is provably unchanged, so its cached
    /// serialized state is reused verbatim and nothing is charged — which
    /// is what keeps a periodic auto-checkpoint sink
    /// ([`EngineConfig::checkpoint_every`]) from paying full
    /// serialization cost per boundary on skewed streams.
    pub fn checkpoint(&mut self) -> Result<EngineCheckpoint, EngineError> {
        let mut states = Vec::with_capacity(self.shards.len());
        for (sid, tracker) in self.shards.iter().enumerate() {
            if self.shard_inputs[sid] == 0 {
                if let Some(cached) = &self.ckpt_cache[sid] {
                    states.push(cached.clone());
                    continue;
                }
            }
            let state = tracker.snapshot()?;
            let frame = StateFrame::for_payload(sid, state.payload().len());
            self.ckpt_stats.charge(MsgKind::Up, frame.words());
            self.ckpt_cache[sid] = Some(state.clone());
            self.shard_inputs[sid] = 0;
            states.push(state);
        }
        let mut merge = Enc::new();
        self.coord.save_state(&mut merge);
        Ok(EngineCheckpoint::new(
            self.kind(),
            self.shards[0].k(),
            self.time,
            self.f,
            merge.into_bytes(),
            states,
        ))
    }

    /// Capture a checkpoint (see [`checkpoint`](Self::checkpoint)) and
    /// record it as the next boundary of an incremental
    /// [`CheckpointStore`], returning the recorded boundary time. The
    /// clean-shard skip composes with delta encoding: a shard that
    /// consumed no inputs reuses its cached snapshot verbatim, so the
    /// store diffs two identical payloads and records a few-byte
    /// [identity link](dsv_net::StateDelta::is_identity). Pair with a
    /// store built as
    /// `CheckpointStore::new(cfg.delta_rebase_period())` to honor the
    /// engine's [`EngineConfig::delta_rebase`] setting.
    pub fn checkpoint_into(&mut self, store: &mut CheckpointStore) -> Result<Time, EngineError> {
        let ckpt = self.checkpoint()?;
        let time = ckpt.time();
        store.record(&ckpt)?;
        Ok(time)
    }

    /// Live-rescale the engine: reassign the `S` logical shard replicas
    /// across `workers` worker threads, effective from the next ingestion
    /// call. No shard state moves logically and no stream is replayed —
    /// the shard → worker map is execution detail — so estimates and
    /// ledgers continue bit-identically at any worker count (values above
    /// `S` are clamped to one worker per shard).
    pub fn rescale(&mut self, workers: usize) -> Result<(), EngineError> {
        if workers == 0 {
            return Err(EngineError::ZeroWorkers);
        }
        self.cfg = self.cfg.workers(workers);
        Ok(())
    }

    /// Ingest `stream` in batches, reconciling and auditing at every
    /// batch boundary. With more than one shard, each batch's per-shard
    /// sub-batches execute on persistent worker threads.
    ///
    /// Streams the sequential `Driver` rejects (out-of-range sites,
    /// deletions into insert-only kinds) return the same typed errors
    /// here, detected before the offending batch is dispatched.
    pub fn run<R>(&mut self, stream: &[R]) -> Result<EngineReport, EngineError>
    where
        R: ShardRecord<In = In>,
        In: ConsolidateInput,
    {
        let started = Instant::now();
        let cfg = self.cfg;
        let s_count = cfg.shards_count();
        let w_count = cfg.workers_count();
        let kind = self.shards[0].kind();
        let k = self.shards[0].k();
        let deletions_ok = kind.supports_deletions();
        let partition = cfg.partition_policy();

        // Layout choice: when site-affine routing gives every shard at
        // most one site (`shard == site`), per-site run buffers feed the
        // zero-copy `update_run` path; otherwise mixed-site tuple buffers
        // feed `update_batch`.
        let use_runs = partition == Partition::SiteAffine && k <= s_count;
        let mut run_bufs: Vec<Vec<In>> = if use_runs {
            (0..k).map(|_| Vec::new()).collect()
        } else {
            Vec::new()
        };
        let mut tup_bufs: Vec<Vec<(SiteId, In)>> = if use_runs {
            Vec::new()
        } else {
            (0..s_count).map(|_| Vec::new()).collect()
        };
        // Site → shard map for the affine tuple path (no division in the
        // hot loop) and the rotating round-robin cursor, phase-continuous
        // across `run` calls.
        let lut: Vec<u32> = if !use_runs && partition == Partition::SiteAffine {
            (0..k).map(|site| (site % s_count) as u32).collect()
        } else {
            Vec::new()
        };
        let mut rr = (self.time % s_count as u64) as usize;

        let mut audit = RunAudit::new(cfg.eps_value(), cfg.probe_period());

        // Split borrows so worker threads can own `&mut` replicas while
        // the main thread plays coordinator.
        let shards = &mut self.shards;
        let coord = &mut self.coord;
        let time = &mut self.time;
        let f = &mut self.f;
        let shard_inputs = &mut self.shard_inputs;

        if w_count == 1 {
            // One worker (any shard count): batched, but inline — no
            // thread machinery. Same state trajectory as the threaded
            // path, since replica state never depends on worker placement.
            let mut scratch = cfg.consolidate_enabled().then(Consolidator::new);
            for batch in stream.chunks(cfg.batch_size()) {
                let df = if use_runs {
                    fill_runs(batch, k, kind, deletions_ok, &mut run_bufs)?
                } else {
                    fill_tuples(
                        batch,
                        k,
                        kind,
                        deletions_ok,
                        s_count,
                        partition,
                        &lut,
                        &mut rr,
                        &mut tup_bufs,
                    )?
                };
                *time += batch.len() as Time;
                *f += df;
                if use_runs {
                    // shard == site in this layout.
                    for (site, buf) in run_bufs.iter_mut().enumerate() {
                        if buf.is_empty() {
                            continue;
                        }
                        shard_inputs[site] += buf.len() as u64;
                        let est = ingest_run(&mut shards[site], site, buf, scratch.as_mut());
                        buf.clear();
                        coord.absorb(site, est);
                    }
                } else {
                    for (sid, buf) in tup_bufs.iter_mut().enumerate() {
                        if buf.is_empty() {
                            continue;
                        }
                        shard_inputs[sid] += buf.len() as u64;
                        let est = shards[sid].update_batch(buf);
                        buf.clear();
                        coord.absorb(sid, est);
                    }
                }
                audit.boundary(*time, *f, coord.estimate());
            }
        } else {
            std::thread::scope(|scope| -> Result<(), EngineError> {
                let (res_tx, res_rx) = mpsc::channel::<(usize, i64, WorkBuf<In>)>();
                // Worker w owns logical shards {s : s ≡ w (mod W)}, as a
                // dense group; a shard's slot within its group is s / W.
                let mut groups: Vec<Vec<&mut T>> = (0..w_count).map(|_| Vec::new()).collect();
                for (sid, tracker) in shards.iter_mut().enumerate() {
                    groups[sid % w_count].push(tracker);
                }
                let mut work_txs = Vec::with_capacity(w_count);
                let consolidate = cfg.consolidate_enabled();
                for (w, mut group) in groups.into_iter().enumerate() {
                    let bound = group.len().max(1);
                    let (tx, rx) = mpsc::sync_channel::<(usize, WorkBuf<In>)>(bound);
                    let res_tx = res_tx.clone();
                    work_txs.push(tx);
                    scope.spawn(move || {
                        // Per-worker consolidation scratch, reused across
                        // rounds — no allocation in the steady state.
                        let mut scratch = consolidate.then(Consolidator::new);
                        while let Ok((slot, work)) = rx.recv() {
                            let tracker = &mut *group[slot];
                            let est = match &work {
                                WorkBuf::Batch(buf) => tracker.update_batch(buf),
                                WorkBuf::Run(site, buf) => {
                                    ingest_run(tracker, *site, buf, scratch.as_mut())
                                }
                            };
                            let sid = slot * w_count + w;
                            if res_tx.send((sid, est, work)).is_err() {
                                break;
                            }
                        }
                    });
                }
                drop(res_tx);

                for batch in stream.chunks(cfg.batch_size()) {
                    let df = if use_runs {
                        fill_runs(batch, k, kind, deletions_ok, &mut run_bufs)?
                    } else {
                        fill_tuples(
                            batch,
                            k,
                            kind,
                            deletions_ok,
                            s_count,
                            partition,
                            &lut,
                            &mut rr,
                            &mut tup_bufs,
                        )?
                    };
                    *time += batch.len() as Time;
                    *f += df;
                    let mut outstanding = 0;
                    for sid in 0..s_count {
                        let work = if use_runs {
                            if sid >= k || run_bufs[sid].is_empty() {
                                continue;
                            }
                            WorkBuf::Run(sid, std::mem::take(&mut run_bufs[sid]))
                        } else {
                            if tup_bufs[sid].is_empty() {
                                continue;
                            }
                            WorkBuf::Batch(std::mem::take(&mut tup_bufs[sid]))
                        };
                        shard_inputs[sid] += match &work {
                            WorkBuf::Run(_, buf) => buf.len() as u64,
                            WorkBuf::Batch(buf) => buf.len() as u64,
                        };
                        work_txs[sid % w_count]
                            .send((sid / w_count, work))
                            .expect("shard worker died");
                        outstanding += 1;
                    }
                    for _ in 0..outstanding {
                        let (sid, est, work) = res_rx.recv().expect("shard worker died");
                        match work {
                            // Recycle the allocation for the next batch.
                            WorkBuf::Run(_, mut buf) => {
                                buf.clear();
                                run_bufs[sid] = buf;
                            }
                            WorkBuf::Batch(mut buf) => {
                                buf.clear();
                                tup_bufs[sid] = buf;
                            }
                        }
                        coord.absorb(sid, est);
                    }
                    // Shards without updates this batch are covered by the
                    // coordinator's cached last report, which is still
                    // exact — the delta-reporting merge rule.
                    audit.boundary(*time, *f, coord.estimate());
                }
                Ok(())
            })?;
        }

        Ok(self.finish_report(stream.len() as u64, audit, started))
    }

    /// Ingest pre-parted per-site feeds — the shape a deployed system
    /// has, where every site's stream arrives on its own queue and no
    /// central router exists. Each element of `feeds` is `(site, inputs)`:
    /// one site's contiguous input run in that site's arrival order
    /// (several feeds may name the same site). Rounds of
    /// [`EngineConfig::batch_size`] updates per feed execute across the
    /// shard workers (`shard = site mod S`) through the zero-copy
    /// [`Tracker::update_run`] path, and the engine reconciles and audits
    /// at every round boundary exactly as [`run`](Self::run) does.
    ///
    /// Cross-site interleaving is not defined by a global clock here — it
    /// never is on a distributed ingest path — so estimates can differ
    /// from a particular sequential interleaving, while every per-shard
    /// guarantee and the boundary audit are unchanged.
    pub fn run_parted(&mut self, feeds: &[(SiteId, &[In])]) -> Result<EngineReport, EngineError>
    where
        In: ConsolidateInput + Sync,
    {
        let started = Instant::now();
        let cfg = self.cfg;
        let s_count = cfg.shards_count();
        let w_count = cfg.workers_count();
        let kind = self.shards[0].kind();
        let k = self.shards[0].k();
        let deletions_ok = kind.supports_deletions();
        let batch = cfg.batch_size();

        // Validate before anything runs: sites in range, and insert-only
        // kinds reject feeds containing deletions.
        for &(site, inputs) in feeds {
            if site >= k {
                return Err(RunError::SiteOutOfRange {
                    site,
                    k,
                    time: self.time,
                }
                .into());
            }
            if !deletions_ok {
                if let Some(pos) = inputs.iter().position(|&x| x.delta_of() < 0) {
                    return Err(RunError::DeletionUnsupported {
                        kind,
                        time: self.time + pos as Time + 1,
                    }
                    .into());
                }
            }
        }

        let total: usize = feeds.iter().map(|(_, inputs)| inputs.len()).sum();
        let rounds = feeds
            .iter()
            .map(|(_, inputs)| inputs.len().div_ceil(batch))
            .max()
            .unwrap_or(0);
        let mut audit = RunAudit::new(cfg.eps_value(), cfg.probe_period());

        let shards = &mut self.shards;
        let coord = &mut self.coord;
        let time = &mut self.time;
        let f = &mut self.f;
        let shard_inputs = &mut self.shard_inputs;

        let chunk_of = |inputs: &'_ [In], round: usize| {
            let lo = (round * batch).min(inputs.len());
            let hi = ((round + 1) * batch).min(inputs.len());
            (lo, hi)
        };

        if w_count == 1 {
            // Absorb once per shard per round (the shard's end-of-round
            // estimate), exactly like the threaded path — worker count
            // must never show in the merge ledger.
            let mut scratch = cfg.consolidate_enabled().then(Consolidator::new);
            let mut finals: Vec<Option<i64>> = vec![None; s_count];
            for round in 0..rounds {
                for &(site, inputs) in feeds {
                    let (lo, hi) = chunk_of(inputs, round);
                    if lo == hi {
                        continue;
                    }
                    let chunk = &inputs[lo..hi];
                    let sum: i64 = chunk.iter().map(|x| x.delta_of()).sum();
                    let sid = site % s_count;
                    shard_inputs[sid] += chunk.len() as u64;
                    let est = ingest_run(&mut shards[sid], site, chunk, scratch.as_mut());
                    *time += chunk.len() as Time;
                    *f += sum;
                    finals[sid] = Some(est);
                }
                for (sid, est) in finals.iter_mut().enumerate() {
                    if let Some(e) = est.take() {
                        coord.absorb(sid, e);
                    }
                }
                audit.boundary(*time, *f, coord.estimate());
            }
        } else {
            std::thread::scope(|scope| {
                // Work items are (group slot, feed, lo, hi) index tuples;
                // workers resolve them against the shared feed slices, so
                // nothing is copied on this path.
                let (res_tx, res_rx) = mpsc::channel::<(usize, i64, i64, usize)>();
                let mut groups: Vec<Vec<&mut T>> = (0..w_count).map(|_| Vec::new()).collect();
                for (sid, tracker) in shards.iter_mut().enumerate() {
                    groups[sid % w_count].push(tracker);
                }
                let mut work_txs = Vec::with_capacity(w_count);
                let consolidate = cfg.consolidate_enabled();
                for (w, mut group) in groups.into_iter().enumerate() {
                    let bound = feeds.len().max(1);
                    let (tx, rx) = mpsc::sync_channel::<(usize, usize, usize, usize)>(bound);
                    let res_tx = res_tx.clone();
                    work_txs.push(tx);
                    scope.spawn(move || {
                        let mut scratch = consolidate.then(Consolidator::new);
                        while let Ok((slot, feed, lo, hi)) = rx.recv() {
                            let (site, inputs) = feeds[feed];
                            let chunk = &inputs[lo..hi];
                            let sum: i64 = chunk.iter().map(|x| x.delta_of()).sum();
                            let tracker = &mut *group[slot];
                            let est = ingest_run(tracker, site, chunk, scratch.as_mut());
                            let sid = slot * w_count + w;
                            if res_tx.send((sid, est, sum, chunk.len())).is_err() {
                                break;
                            }
                        }
                    });
                }
                drop(res_tx);

                let mut finals: Vec<Option<i64>> = vec![None; s_count];
                for round in 0..rounds {
                    let mut outstanding = 0;
                    for (feed, &(site, inputs)) in feeds.iter().enumerate() {
                        let (lo, hi) = chunk_of(inputs, round);
                        if lo == hi {
                            continue;
                        }
                        let sid = site % s_count;
                        shard_inputs[sid] += (hi - lo) as u64;
                        work_txs[sid % w_count]
                            .send((sid / w_count, feed, lo, hi))
                            .expect("shard worker died");
                        outstanding += 1;
                    }
                    for _ in 0..outstanding {
                        let (sid, est, sum, len) = res_rx.recv().expect("shard worker died");
                        *f += sum;
                        *time += len as Time;
                        // Per-worker FIFO means the last estimate received
                        // per shard is its end-of-round state; absorbing
                        // only that keeps merge accounting once-per-shard.
                        finals[sid] = Some(est);
                    }
                    for (sid, est) in finals.iter_mut().enumerate() {
                        if let Some(e) = est.take() {
                            coord.absorb(sid, e);
                        }
                    }
                    audit.boundary(*time, *f, coord.estimate());
                }
            });
        }

        Ok(self.finish_report(total as u64, audit, started))
    }

    /// Ingest through the pipelined path: per-feed bounded queues,
    /// produced by the `feeder` closure and drained by the shard workers,
    /// with the coordinator reconciling each completed boundary while the
    /// workers already absorb the next one.
    ///
    /// `sites[i]` names the site feed `i` carries (several feeds may name
    /// the same site, exactly like [`run_parted`](Self::run_parted)); the
    /// feeder closure receives one [`ShardFeed`] handle per feed, in the
    /// same order, and runs on the calling thread concurrently with the
    /// workers. Push inputs from it directly, or move the handles into
    /// producer threads/tasks of your own — the run finishes when every
    /// handle is closed (dropping closes) and every queue is drained.
    /// Handles stashed beyond the closure are force-closed when it
    /// returns, so the run always terminates.
    ///
    /// **Equivalence contract:** for the same per-site input sequences
    /// and configuration, estimates, per-shard replica states, and the
    /// tracker + merge [`CommStats`] ledgers are **bit-identical** to
    /// [`run_parted`](Self::run_parted) over the same feeds — the
    /// boundary cut is the same (rounds of [`EngineConfig::batch_size`]
    /// inputs per feed), only the execution overlaps. What pipelining
    /// adds is charged to the separate [`ingest_stats`](Self::ingest_stats)
    /// ledger. The divergence is error *timing*: `run_parted` validates
    /// whole feeds before running anything, while a pipelined feed is
    /// validated at the push boundary ([`crate::FeedError`]) — inputs
    /// pushed before the offending one are already in flight and will be
    /// consumed.
    ///
    /// Backpressure ([`EngineConfig::backpressure`]) bounds each queue at
    /// [`EngineConfig::queue_capacity`] inputs; a feed that outruns its
    /// shard stalls (or errors) at the push boundary, and a feed that
    /// lags only stalls the shard it feeds — every other worker keeps
    /// absorbing, which is the overlap the `e17_pipeline` bench gates.
    pub fn run_pipelined<F>(
        &mut self,
        sites: &[SiteId],
        feeder: F,
    ) -> Result<EngineReport, EngineError>
    where
        In: ConsolidateInput + Send + Sync,
        F: FnOnce(Vec<ShardFeed<In>>),
    {
        let started = Instant::now();
        let cfg = self.cfg;
        let s_count = cfg.shards_count();
        let w_count = cfg.workers_count();
        let kind = self.shards[0].kind();
        let k = self.shards[0].k();
        let deletions_ok = kind.supports_deletions();
        let batch = cfg.batch_size();

        for &site in sites {
            if site >= k {
                return Err(RunError::SiteOutOfRange {
                    site,
                    k,
                    time: self.time,
                }
                .into());
            }
        }

        // One bounded SPSC ring per feed; producer ends become the
        // ShardFeed handles, consumer ends go to the owning workers.
        let rings: Vec<Arc<Ring<In>>> = sites
            .iter()
            .map(|_| Arc::new(Ring::new(cfg.queue_capacity_value())))
            .collect();
        let mut handles = Vec::with_capacity(sites.len());
        // Worker w owns shards s ≡ w (mod W); within a shard, feeds keep
        // their index order (the order run_parted processes them in).
        let mut consumers: Vec<BTreeMap<usize, Vec<RingConsumer<In>>>> =
            (0..w_count).map(|_| BTreeMap::new()).collect();
        for (feed, (&site, ring)) in sites.iter().zip(&rings).enumerate() {
            let shard = site % s_count;
            handles.push(ShardFeed::new(
                Arc::clone(ring),
                feed,
                site,
                shard,
                cfg.backpressure_policy(),
                deletions_ok,
            ));
            consumers[shard % w_count]
                .entry(shard)
                .or_default()
                .push(RingConsumer {
                    ring: Arc::clone(ring),
                    site,
                });
        }

        let mut audit = RunAudit::new(cfg.eps_value(), cfg.probe_period());

        let shards = &mut self.shards;
        let coord = &mut self.coord;
        let time = &mut self.time;
        let f = &mut self.f;
        let shard_inputs = &mut self.shard_inputs;

        /// A worker's end-of-round message: per owned shard with work
        /// this round, `(shard, end-of-round estimate, Σ delta, inputs)`.
        enum CoordMsg {
            Round {
                worker: usize,
                round: u64,
                reports: Vec<(usize, i64, i64, u64)>,
            },
            Done {
                worker: usize,
            },
        }

        let n_total = std::thread::scope(|scope| {
            let (res_tx, res_rx) = mpsc::channel::<CoordMsg>();
            let mut groups: Vec<Vec<&mut T>> = (0..w_count).map(|_| Vec::new()).collect();
            for (sid, tracker) in shards.iter_mut().enumerate() {
                groups[sid % w_count].push(tracker);
            }

            let consolidate = cfg.consolidate_enabled();
            for ((w, mut group), shard_feeds) in groups.into_iter().enumerate().zip(consumers) {
                let res_tx = res_tx.clone();
                scope.spawn(move || {
                    let mut scratch = consolidate.then(Consolidator::new);
                    // The worker's shards with feeds, ascending sid.
                    let mut owned: Vec<OwnedShard<In>> = shard_feeds
                        .into_iter()
                        .map(|(sid, feeds)| OwnedShard {
                            slot: sid / w_count,
                            sid,
                            feeds: feeds
                                .into_iter()
                                .map(|consumer| FeedState {
                                    consumer,
                                    buf: Vec::with_capacity(batch),
                                    done: false,
                                })
                                .collect(),
                        })
                        .collect();
                    let mut round = 0u64;
                    loop {
                        let mut reports = Vec::new();
                        for shard in owned.iter_mut() {
                            let mut sum = 0i64;
                            let mut len = 0u64;
                            let mut est = 0i64;
                            let mut any = false;
                            for fs in shard.feeds.iter_mut() {
                                if fs.done {
                                    continue;
                                }
                                fs.buf.clear();
                                // Blocks until the feed delivers this
                                // round's inputs or closes — a lagging
                                // feed stalls only this worker.
                                fs.consumer.pop_round(&mut fs.buf, batch);
                                if fs.buf.len() < batch {
                                    fs.done = true;
                                }
                                if fs.buf.is_empty() {
                                    continue;
                                }
                                sum += fs.buf.iter().map(|x| x.delta_of()).sum::<i64>();
                                len += fs.buf.len() as u64;
                                est = ingest_run(
                                    &mut *group[shard.slot],
                                    fs.consumer.site,
                                    &fs.buf,
                                    scratch.as_mut(),
                                );
                                any = true;
                            }
                            if any {
                                reports.push((shard.sid, est, sum, len));
                            }
                        }
                        // Feed rounds are contiguous from 0, so the first
                        // all-empty round means every owned feed is done.
                        if reports.is_empty() {
                            let _ = res_tx.send(CoordMsg::Done { worker: w });
                            break;
                        }
                        if res_tx
                            .send(CoordMsg::Round {
                                worker: w,
                                round,
                                reports,
                            })
                            .is_err()
                        {
                            break;
                        }
                        round += 1;
                    }
                });
            }
            drop(res_tx);

            // The coordinator: runs on its own scoped thread so merging
            // boundary r overlaps the workers' ingestion of r+1.
            let audit_ref = &mut audit;
            let coordinator = scope.spawn(move || {
                let mut n: u64 = 0;
                // next_watermark[w]: lowest round worker w might still
                // report (MAX once done). Worker messages arrive in round
                // order per worker, so a round below every watermark is
                // complete and can be reconciled.
                let mut next_watermark = vec![0u64; w_count];
                let mut pending: BTreeMap<u64, Vec<(usize, i64, i64, u64)>> = BTreeMap::new();
                let mut next_round = 0u64;
                for msg in res_rx {
                    match msg {
                        CoordMsg::Round {
                            worker,
                            round,
                            reports,
                        } => {
                            pending.entry(round).or_default().extend(reports);
                            next_watermark[worker] = round + 1;
                        }
                        CoordMsg::Done { worker } => {
                            next_watermark[worker] = u64::MAX;
                        }
                    }
                    let ready = next_watermark.iter().copied().min().unwrap_or(u64::MAX);
                    while next_round < ready {
                        let Some(mut reports) = pending.remove(&next_round) else {
                            // Rounds are dense: no entry means every
                            // produced round is already reconciled.
                            break;
                        };
                        // Same per-boundary order as run_parted: fold the
                        // ground truth, then absorb shard estimates in
                        // shard order, then audit the boundary.
                        reports.sort_unstable_by_key(|&(sid, ..)| sid);
                        for &(sid, _, sum, len) in &reports {
                            *f += sum;
                            *time += len as Time;
                            shard_inputs[sid] += len;
                            n += len;
                        }
                        for &(sid, est, ..) in &reports {
                            coord.absorb(sid, est);
                        }
                        audit_ref.boundary(*time, *f, coord.estimate());
                        next_round += 1;
                    }
                }
                n
            });

            feeder(handles);
            // The feeder has returned: force-close every ring so stashed
            // or leaked handles cannot wedge the workers.
            for ring in &rings {
                ring.close();
            }
            coordinator.join().expect("engine coordinator panicked")
        });

        for ring in &rings {
            ring.drain_stats(&mut self.ingest_stats);
        }

        Ok(self.finish_report(n_total, audit, started))
    }

    /// Assemble the report shared by the ingestion paths (all execution
    /// borrows have ended by the time this runs).
    fn finish_report(&self, n: u64, audit: RunAudit, started: Instant) -> EngineReport {
        EngineReport {
            n,
            batches: audit.batches,
            shards: self.cfg.shards_count(),
            workers: self.cfg.workers_count(),
            batch_size: self.cfg.batch_size(),
            final_f: self.f,
            final_estimate: self.coord.estimate(),
            boundary_violations: audit.violations,
            max_boundary_rel_err: audit.max_err,
            tracker_stats: self.tracker_stats(),
            merge_stats: self.coord.stats().clone(),
            ingest_stats: self.ingest_stats.clone(),
            probes: audit.probes,
            elapsed: started.elapsed(),
        }
    }
}

impl CounterEngine {
    /// Build a counting engine: one replica of `spec` per shard, shard `s`
    /// re-seeded via [`TrackerSpec::shard`] (shard 0 keeps the spec's seed,
    /// so a single-shard engine is bit-identical to the sequential path).
    pub fn counters(spec: TrackerSpec, cfg: EngineConfig) -> Result<Self, EngineError> {
        Self::with_factory(cfg, |s| spec.shard(s).build())
    }

    /// Resume a counting engine from a checkpoint taken by
    /// [`ShardedEngine::checkpoint`]. `spec` must carry the parameters
    /// the checkpointed engine was built with; `cfg` must agree on the
    /// logical shard count but may change the worker count (rescaling).
    pub fn resume(
        spec: TrackerSpec,
        cfg: EngineConfig,
        ckpt: &EngineCheckpoint,
    ) -> Result<Self, EngineError> {
        Self::with_factory_resume(cfg, ckpt, |s| spec.shard(s).build())
    }
}

impl ItemEngine {
    /// Build an item-frequency engine; see [`ShardedEngine::counters`] for
    /// the replica/seed convention. Pair with [`Partition::ByItem`] so
    /// every item is owned by exactly one shard.
    pub fn items(spec: TrackerSpec, cfg: EngineConfig) -> Result<Self, EngineError> {
        Self::with_factory(cfg, |s| spec.shard(s).build_item())
    }

    /// Resume an item-frequency engine from a checkpoint; see
    /// [`CounterEngine::resume`].
    pub fn resume(
        spec: TrackerSpec,
        cfg: EngineConfig,
        ckpt: &EngineCheckpoint,
    ) -> Result<Self, EngineError> {
        Self::with_factory_resume(cfg, ckpt, |s| spec.shard(s).build_item())
    }
}

impl<T> ShardedEngine<T, (u64, i64)>
where
    T: ItemTracker + Send,
{
    /// Merged per-item estimate `Σ_s f̂_ℓ^{(s)}`. Under
    /// [`Partition::ByItem`] only the owning shard contributes; under the
    /// other policies this is still within `ε·F1` because the per-shard
    /// `F1` budgets sum to the global one.
    pub fn estimate_item(&self, item: u64) -> i64 {
        self.shards.iter().map(|t| t.estimate_item(item)).sum()
    }

    /// Total coordinator-side space across shard replicas, in words.
    pub fn coord_space_words(&self) -> usize {
        self.shards.iter().map(|t| t.coord_space_words()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsv_core::api::{Driver, TrackerSpec};
    use dsv_gen::{DeltaGen, ItemStreamGen, MonotoneGen, RoundRobin, WalkGen};
    use dsv_net::{ItemUpdate, Update};

    fn det_spec(k: usize) -> TrackerSpec {
        TrackerSpec::new(TrackerKind::Deterministic)
            .k(k)
            .eps(0.1)
            .deletions(true)
    }

    #[test]
    fn single_shard_is_bit_identical_to_sequential_driver() {
        let updates = WalkGen::fair(3).updates(20_000, RoundRobin::new(4));
        let mut sequential = det_spec(4).build().unwrap();
        let report = Driver::new(0.1)
            .unwrap()
            .run(&mut sequential, &updates)
            .unwrap();

        for batch in [1usize, 7, 1024, 50_000] {
            let mut engine =
                ShardedEngine::counters(det_spec(4), EngineConfig::new(1, batch)).unwrap();
            let er = engine.run(&updates).unwrap();
            assert_eq!(er.final_estimate, report.final_estimate, "batch {batch}");
            assert_eq!(er.final_f, report.final_f);
            assert_eq!(engine.tracker_stats(), report.stats, "batch {batch}");
            assert_eq!(er.boundary_violations, 0);
        }
    }

    #[test]
    fn sharded_monotone_stream_stays_within_eps_at_boundaries() {
        let updates = MonotoneGen::ones().updates(50_000, RoundRobin::new(8));
        for shards in [2usize, 4, 8] {
            let mut engine =
                ShardedEngine::counters(det_spec(8), EngineConfig::new(shards, 1_000)).unwrap();
            let report = engine.run(&updates).unwrap();
            assert_eq!(report.boundary_violations, 0, "S={shards}");
            assert_eq!(report.final_f, 50_000);
            assert_eq!(report.batches, 50);
            let err = relative_error(report.final_f, report.final_estimate);
            assert!(err <= 0.1, "S={shards}: err {err}");
            // Merge traffic: at most one report per shard per boundary,
            // and far fewer in practice on a monotone stream.
            assert!(report.merge_stats.total_messages() <= (shards as u64) * report.batches);
            assert!(report.probes.len() == report.batches as usize);
        }
    }

    #[test]
    fn engine_is_incremental_across_runs() {
        let updates = MonotoneGen::ones().updates(10_000, RoundRobin::new(4));
        let mut engine = ShardedEngine::counters(det_spec(4), EngineConfig::new(2, 500)).unwrap();
        let first = engine.run(&updates[..4_000]).unwrap();
        let second = engine.run(&updates[4_000..]).unwrap();
        assert_eq!(first.n, 4_000);
        assert_eq!(second.n, 6_000);
        assert_eq!(second.final_f, 10_000);
        assert_eq!(engine.time(), 10_000);
        let err = relative_error(second.final_f, engine.estimate());
        assert!(err <= 0.1);
    }

    #[test]
    fn round_robin_partition_spreads_a_single_site_stream() {
        // k = 1 single-site kind, sharded by arrival index: each shard
        // tracks a subsequence exactly within ε, and the monotone partial
        // sums merge within ε.
        let spec = TrackerSpec::new(TrackerKind::SingleSite).k(1).eps(0.05);
        let updates = MonotoneGen::ones().updates(30_000, dsv_gen::SingleSite::solo());
        let mut engine = ShardedEngine::counters(
            spec,
            EngineConfig::new(4, 1_000)
                .partition(Partition::RoundRobin)
                .eps(0.05),
        )
        .unwrap();
        let report = engine.run(&updates).unwrap();
        assert_eq!(report.boundary_violations, 0);
        let spread = engine.shard_estimates();
        assert!(spread.iter().all(|&e| e > 0), "all shards fed: {spread:?}");
    }

    #[test]
    fn item_engine_tracks_f1_and_items_under_by_item_partition() {
        let updates = ItemStreamGen::new(7, 256, 1.1, 0.2, 1).updates(40_000, RoundRobin::new(4));
        let spec = TrackerSpec::new(TrackerKind::ExactFreq)
            .k(4)
            .eps(0.1)
            .universe(256);
        let mut engine = ShardedEngine::items(
            spec,
            EngineConfig::new(4, 2_000).partition(Partition::ByItem),
        )
        .unwrap();
        let report = engine.run(&updates).unwrap();
        assert_eq!(report.boundary_violations, 0);
        // Per-item audit against exact ground truth at the end.
        let mut truth = dsv_sketch::ExactCounts::new();
        let mut f1 = 0i64;
        for u in &updates {
            truth.update(u.item, u.delta);
            f1 += u.delta;
        }
        assert_eq!(report.final_f, f1);
        use dsv_sketch::FreqSketch;
        let budget = 0.1 * f1 as f64;
        for item in 0..256u64 {
            let err = (engine.estimate_item(item) - truth.estimate(item)).unsigned_abs() as f64;
            assert!(err <= budget * (1.0 + 1e-12), "item {item}: err {err}");
        }
        assert!(engine.coord_space_words() > 0);
    }

    #[test]
    fn invalid_streams_are_typed_errors_not_panics() {
        // Out-of-range site.
        let mut engine = ShardedEngine::counters(det_spec(2), EngineConfig::new(2, 16)).unwrap();
        let err = engine.run(&[Update::new(1, 9, 1)]).unwrap_err();
        assert!(matches!(
            err,
            EngineError::Run(RunError::SiteOutOfRange { site: 9, k: 2, .. })
        ));

        // Deletion into an insert-only kind.
        let cmy = TrackerSpec::new(TrackerKind::CmyMonotone).k(2).eps(0.1);
        let mut engine = ShardedEngine::counters(cmy, EngineConfig::new(2, 16)).unwrap();
        let err = engine
            .run(&[Update::new(1, 0, 1), Update::new(2, 1, -1)])
            .unwrap_err();
        assert!(matches!(
            err,
            EngineError::Run(RunError::DeletionUnsupported { .. })
        ));

        // ByItem partitioning of a counter stream.
        let mut engine = ShardedEngine::counters(
            det_spec(2),
            EngineConfig::new(2, 16).partition(Partition::ByItem),
        )
        .unwrap();
        let err = engine.run(&[Update::new(1, 0, 1)]).unwrap_err();
        assert_eq!(err, EngineError::MissingItemKey { time: 1 });

        // Item streams route fine by item.
        let spec = TrackerSpec::new(TrackerKind::CountMinFreq).k(2).eps(0.2);
        let mut engine = ShardedEngine::items(
            spec,
            EngineConfig::new(2, 16)
                .partition(Partition::ByItem)
                .eps(0.2),
        )
        .unwrap();
        assert!(engine.run(&[ItemUpdate::new(1, 0, 5, 1)]).is_ok());
    }

    #[test]
    fn parted_ingest_matches_routed_ingest_per_shard() {
        // With S >= k each shard owns one site, so parted and routed
        // ingestion feed every replica the same per-site sequence —
        // identical shard estimates and protocol traffic.
        let updates = WalkGen::fair(5).updates(32_000, RoundRobin::new(4));
        let mut routed = ShardedEngine::counters(det_spec(4), EngineConfig::new(4, 8_000)).unwrap();
        let routed_report = routed.run(&updates).unwrap();

        let mut feeds: Vec<(usize, Vec<i64>)> = (0..4).map(|s| (s, Vec::new())).collect();
        for u in &updates {
            feeds[u.site].1.push(u.delta);
        }
        let feed_slices: Vec<(usize, &[i64])> =
            feeds.iter().map(|(s, v)| (*s, v.as_slice())).collect();
        let mut parted = ShardedEngine::counters(det_spec(4), EngineConfig::new(4, 2_000)).unwrap();
        let parted_report = parted.run_parted(&feed_slices).unwrap();

        assert_eq!(parted_report.n, routed_report.n);
        assert_eq!(parted_report.final_f, routed_report.final_f);
        assert_eq!(parted.shard_estimates(), routed.shard_estimates());
        assert_eq!(parted.tracker_stats(), routed.tracker_stats());
        assert_eq!(parted_report.final_estimate, routed_report.final_estimate);
    }

    #[test]
    fn parted_ingest_audits_and_rejects_bad_feeds() {
        let mut engine = ShardedEngine::counters(det_spec(2), EngineConfig::new(2, 100)).unwrap();
        let ones = vec![1i64; 5_000];
        let report = engine
            .run_parted(&[(0, ones.as_slice()), (1, ones.as_slice())])
            .unwrap();
        assert_eq!(report.n, 10_000);
        assert_eq!(report.final_f, 10_000);
        assert_eq!(report.boundary_violations, 0);
        assert_eq!(report.batches, 50);

        let err = engine.run_parted(&[(7, ones.as_slice())]).unwrap_err();
        assert!(matches!(
            err,
            EngineError::Run(RunError::SiteOutOfRange { site: 7, .. })
        ));

        let cmy = TrackerSpec::new(TrackerKind::CmyMonotone).k(1).eps(0.1);
        let mut engine = ShardedEngine::counters(cmy, EngineConfig::new(1, 100)).unwrap();
        let bad = vec![1i64, 1, -1];
        let err = engine.run_parted(&[(0, bad.as_slice())]).unwrap_err();
        assert!(matches!(
            err,
            EngineError::Run(RunError::DeletionUnsupported { .. })
        ));
        // Nothing ran: validation precedes execution.
        assert_eq!(engine.time(), 0);
    }

    #[test]
    fn pipelined_ingest_is_bit_identical_to_parted_ingest() {
        let updates = WalkGen::fair(5).updates(32_000, RoundRobin::new(4));
        let mut feeds: Vec<(usize, Vec<i64>)> = (0..4).map(|s| (s, Vec::new())).collect();
        for u in &updates {
            feeds[u.site].1.push(u.delta);
        }
        let feed_slices: Vec<(usize, &[i64])> =
            feeds.iter().map(|(s, v)| (*s, v.as_slice())).collect();
        let sites: Vec<usize> = feeds.iter().map(|(s, _)| *s).collect();

        let cfg = EngineConfig::new(4, 1_000);
        let mut parted = ShardedEngine::counters(det_spec(4), cfg).unwrap();
        let parted_report = parted.run_parted(&feed_slices).unwrap();

        for workers in [4usize, 2, 1] {
            let mut piped = ShardedEngine::counters(det_spec(4), cfg.workers(workers)).unwrap();
            let report = piped
                .run_pipelined(&sites, |handles| {
                    // One producer thread per feed: the deployment shape.
                    std::thread::scope(|s| {
                        for (mut handle, (_, data)) in handles.into_iter().zip(&feeds) {
                            s.spawn(move || {
                                for chunk in data.chunks(333) {
                                    handle.push_batch(chunk).unwrap();
                                }
                            });
                        }
                    });
                })
                .unwrap();
            assert_eq!(report.n, parted_report.n, "W={workers}");
            assert_eq!(report.batches, parted_report.batches);
            assert_eq!(report.final_f, parted_report.final_f);
            assert_eq!(report.final_estimate, parted_report.final_estimate);
            assert_eq!(piped.shard_estimates(), parted.shard_estimates());
            assert_eq!(piped.tracker_stats(), parted.tracker_stats());
            assert_eq!(piped.merge_stats(), parted.merge_stats());
            // The transport is charged on its own ledger, in full.
            assert_eq!(report.ingest_stats.items, updates.len() as u64);
            assert_eq!(report.ingest_stats.words, updates.len() as u64);
            assert!(report.ingest_stats.frames > 0);
        }
    }

    #[test]
    fn pipelined_single_feeder_thread_with_blocking_backpressure() {
        // One thread round-robining chunks across all handles, chunks no
        // larger than the queue capacity: the documented safe schedule
        // for a single Block-policy producer.
        let n_per_site = 5_000usize;
        let feeds: Vec<Vec<i64>> = (0..3).map(|_| vec![1i64; n_per_site]).collect();
        let cfg = EngineConfig::new(3, 256).queue_capacity(128);
        let mut parted = ShardedEngine::counters(det_spec(3), cfg).unwrap();
        let slices: Vec<(usize, &[i64])> = feeds
            .iter()
            .enumerate()
            .map(|(s, v)| (s, v.as_slice()))
            .collect();
        parted.run_parted(&slices).unwrap();

        let mut piped = ShardedEngine::counters(det_spec(3), cfg).unwrap();
        let report = piped
            .run_pipelined(&[0, 1, 2], |mut handles| {
                let mut at = [0usize; 3];
                loop {
                    let mut progressed = false;
                    for (i, handle) in handles.iter_mut().enumerate() {
                        if at[i] < n_per_site {
                            let hi = (at[i] + 100).min(n_per_site);
                            handle.push_batch(&feeds[i][at[i]..hi]).unwrap();
                            at[i] = hi;
                            progressed = true;
                        }
                    }
                    if !progressed {
                        break;
                    }
                }
            })
            .unwrap();
        assert_eq!(report.final_f, 3 * n_per_site as i64);
        assert_eq!(piped.shard_estimates(), parted.shard_estimates());
        assert_eq!(piped.merge_stats(), parted.merge_stats());
        // Every input went through the bounded transport (whether any
        // push stalled is consumer-pace-dependent; the guaranteed-stall
        // case lives in tests/pipeline_equivalence.rs with a 1-slot
        // queue, where no chunk can ever land in one shot).
        assert_eq!(report.ingest_stats.items, 3 * n_per_site as u64);
        assert_eq!(report.ingest_stats.dropped, 0);
    }

    #[test]
    fn pipelined_rejects_bad_sites_and_zero_capacity() {
        let mut engine = ShardedEngine::counters(det_spec(2), EngineConfig::new(2, 16)).unwrap();
        let err = engine.run_pipelined(&[0, 9], |_| {}).unwrap_err();
        assert!(matches!(
            err,
            EngineError::Run(RunError::SiteOutOfRange { site: 9, k: 2, .. })
        ));
        assert_eq!(engine.time(), 0);

        let err = ShardedEngine::counters(det_spec(2), EngineConfig::new(2, 16).queue_capacity(0))
            .unwrap_err();
        assert_eq!(err, EngineError::ZeroQueueCapacity);
    }

    #[test]
    fn pipelined_empty_run_and_leaked_handle_terminate() {
        let mut engine = ShardedEngine::counters(det_spec(2), EngineConfig::new(2, 16)).unwrap();
        // No feeds at all.
        let report = engine
            .run_pipelined(&[], |handles| assert!(handles.is_empty()))
            .unwrap();
        assert_eq!((report.n, report.batches), (0, 0));

        // A handle stashed past the feeder closure is force-closed by the
        // engine, so the run still terminates and the data still lands.
        let mut stash = None;
        let report = engine
            .run_pipelined(&[0], |mut handles| {
                let mut h = handles.pop().unwrap();
                h.push_batch(&[1, 1, 1]).unwrap();
                stash = Some(h);
            })
            .unwrap();
        assert_eq!(report.n, 3);
        let mut leaked = stash.unwrap();
        assert_eq!(leaked.push(1), Err(crate::FeedError::Closed { pushed: 0 }));
    }

    #[test]
    fn probe_period_zero_disables_probes() {
        let updates = MonotoneGen::ones().updates(5_000, RoundRobin::new(2));
        let mut engine =
            ShardedEngine::counters(det_spec(2), EngineConfig::new(2, 500).probe_every(0)).unwrap();
        let report = engine.run(&updates).unwrap();
        assert!(report.probes.is_empty());
        assert_eq!(report.batches, 10);
        assert!(report.updates_per_sec() > 0.0);
    }
}
