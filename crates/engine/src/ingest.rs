//! Pipelined ingestion: bounded per-shard queues and feeder handles.
//!
//! [`crate::ShardedEngine::run_parted`] synchronizes every round from one
//! feeder thread: a slow feed stalls every shard. This module is the
//! decoupling layer that fixes that. Each feed gets a **bounded SPSC ring
//! queue** (hand-rolled on atomics — no dependencies); the producer side
//! is a [`ShardFeed`] handle the feeder code pushes into, the consumer
//! side is drained by the owning shard worker inside
//! [`crate::ShardedEngine::run_pipelined`]. A feed that lags only stalls
//! the shard it feeds; every other worker keeps absorbing, and the
//! coordinator reconciles completed boundaries concurrently.
//!
//! ## Backpressure
//!
//! A bounded queue must decide what a producer does when it is full —
//! that is the [`Backpressure`] policy in
//! [`EngineConfig`](crate::EngineConfig): park until the worker drains
//! ([`Backpressure::Block`], the default), spin-yield
//! ([`Backpressure::Yield`]), or surface a typed [`FeedError::Full`]
//! ([`Backpressure::Error`]) so the caller can shed load. Stalls, waits,
//! and queue occupancy are charged to the engine's
//! [`IngestStats`] ledger; the traffic itself is
//! accounted as [`FeedFrame`]s in the model's word
//! currency.
//!
//! ## Ordering discipline
//!
//! With [`Backpressure::Block`], a single thread feeding several handles
//! must interleave its pushes (round-robin chunks no larger than the
//! queue capacity) or it can deadlock against the round-ordered consumer:
//! the worker drains a shard's feeds in feed order, so filling feed `j`'s
//! queue to the brim before feed `i < j` of the same shard has its round
//! available parks the producer while the worker waits on `i`. One
//! producer thread per feed (the deployment shape) cannot deadlock.
//!
//! ## Consolidation
//!
//! Feeds carry raw per-site inputs; batch consolidation
//! ([`EngineConfig::consolidate`](crate::EngineConfig::consolidate)) is
//! applied by the *consuming* worker after it drains a round — each
//! worker owns a [`Consolidator`](crate::Consolidator) of reused scratch
//! buffers — so the queue protocol, the [`FeedFrame`] word charges, and
//! the boundary cut are byte-for-byte the same with the knob on or off,
//! and producers never pay the sort/RLE cost on their threads.
//!
//! ## The `async-ingest` feature
//!
//! With the `async-ingest` feature the handles additionally expose
//! `ShardFeed::push_async` / `ShardFeed::push_batch_async`: futures
//! that resolve when the input is enqueued, awaiting capacity instead of
//! blocking the thread. The futures are runtime-agnostic (plain
//! `std::future` wakers — they run on `tokio` or any other executor, and
//! the feature adds no dependency).

use crate::partition::InputDelta;
use dsv_net::{FeedFrame, IngestStats, SiteId};
use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// What a [`ShardFeed`] push does when its bounded queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Backpressure {
    /// Park the producer until the worker drains space (the default).
    /// Applies backpressure end-to-end: a feed outrunning its shard is
    /// slowed to the shard's pace.
    #[default]
    Block,
    /// Spin with [`std::thread::yield_now`] until space frees up. Lower
    /// wakeup latency than [`Backpressure::Block`] at the cost of burning
    /// the producer's core while stalled.
    Yield,
    /// Fail fast: return [`FeedError::Full`] with the input not enqueued,
    /// letting the producer shed or reroute load.
    Error,
}

/// A typed feeder-side failure. `pushed` is always the number of inputs
/// of the failing call that *were* enqueued before the error (0 for
/// single pushes): those inputs are in flight and will be consumed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FeedError {
    /// The queue is full and the policy is [`Backpressure::Error`].
    Full {
        /// Inputs of this call enqueued before the queue filled.
        pushed: usize,
    },
    /// The feed was closed (by [`ShardFeed::close`] or by the engine
    /// tearing down the run); the input was not enqueued.
    Closed {
        /// Inputs of this call enqueued before the close was observed.
        pushed: usize,
    },
    /// The input is a deletion but the engine's tracker kind is
    /// insert-only — the same stream the sequential `Driver` rejects,
    /// detected at the feed boundary before it can corrupt a replica.
    /// The whole call is validated before transport, so **nothing** of
    /// the failing call was enqueued.
    DeletionUnsupported {
        /// Index of the offending input within the call (0 for `push`).
        at: usize,
    },
}

impl std::fmt::Display for FeedError {
    fn fmt(&self, fm: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FeedError::Full { pushed } => {
                write!(fm, "queue full after {pushed} inputs (policy = Error)")
            }
            FeedError::Closed { pushed } => {
                write!(fm, "feed closed after {pushed} inputs")
            }
            FeedError::DeletionUnsupported { at } => write!(
                fm,
                "deletion pushed into an insert-only tracker kind (input {at} of the call; nothing enqueued)"
            ),
        }
    }
}

impl std::error::Error for FeedError {}

/// How long a parked producer or consumer sleeps per condvar wait. The
/// waiting protocol re-checks its condition before every wait, so this is
/// a robustness bound on wakeup latency, not a poll period.
const PARK_TIMEOUT: Duration = Duration::from_micros(100);

/// The bounded SPSC ring. One producer ([`ShardFeed`]) and one consumer
/// (the owning worker's [`RingConsumer`]) — the discipline is enforced by
/// handle ownership, not checked at runtime.
///
/// Lock-free on the data path: `tail` counts items ever pushed (written
/// by the producer only), `head` items ever popped (consumer only), both
/// monotone, so `tail - head` is the occupancy and slot `i % cap` is safe
/// to write iff `tail - head < cap` and safe to read iff `head < tail`.
/// The Release store of each counter publishes the slot writes/reads that
/// preceded it; the opposite side's Acquire load observes them. Waiting
/// (full producer, empty consumer) is a classic monitor: the waiter
/// re-checks its condition under the `gate` mutex before waiting, and the
/// other side notifies under the same mutex after every counter advance —
/// chunk-grained, so the lock is uncontended noise on the throughput
/// path, and wakeups can never be lost (the timed wait is pure belt and
/// braces).
pub(crate) struct Ring<T: Copy> {
    slots: Box<[UnsafeCell<MaybeUninit<T>>]>,
    cap: usize,
    tail: AtomicU64,
    head: AtomicU64,
    closed: AtomicBool,
    gate: Mutex<()>,
    not_full: Condvar,
    not_empty: Condvar,
    // Ledger counters (relaxed; read by the engine after the run).
    frames: AtomicU64,
    items: AtomicU64,
    words: AtomicU64,
    push_stalls: AtomicU64,
    pop_waits: AtomicU64,
    occ_sum: AtomicU64,
    occ_samples: AtomicU64,
    high_water: AtomicU64,
    #[cfg(feature = "async-ingest")]
    prod_waker: Mutex<Option<std::task::Waker>>,
}

// SAFETY: the slots are accessed from two threads, but never the same
// slot concurrently — the producer only writes slots in `head + cap >
// i >= tail` territory it owns, the consumer only reads slots `< tail`
// it owns, and the Acquire/Release counter handshake orders the accesses
// (see the type docs). `T: Copy` means no drops are ever owed.
unsafe impl<T: Copy + Send> Sync for Ring<T> {}
unsafe impl<T: Copy + Send> Send for Ring<T> {}

impl<T: Copy> Ring<T> {
    pub(crate) fn new(cap: usize) -> Self {
        assert!(cap > 0, "ring capacity must be positive (validated)");
        let slots = (0..cap)
            .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Ring {
            slots,
            cap,
            tail: AtomicU64::new(0),
            head: AtomicU64::new(0),
            closed: AtomicBool::new(false),
            gate: Mutex::new(()),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
            frames: AtomicU64::new(0),
            items: AtomicU64::new(0),
            words: AtomicU64::new(0),
            push_stalls: AtomicU64::new(0),
            pop_waits: AtomicU64::new(0),
            occ_sum: AtomicU64::new(0),
            occ_samples: AtomicU64::new(0),
            high_water: AtomicU64::new(0),
            #[cfg(feature = "async-ingest")]
            prod_waker: Mutex::new(None),
        }
    }

    fn occupancy(&self) -> u64 {
        self.tail.load(Ordering::Relaxed) - self.head.load(Ordering::Acquire)
    }

    fn is_full(&self) -> bool {
        self.occupancy() >= self.cap as u64
    }

    /// Base pointer of the slot array as `*mut T` (the sanctioned
    /// `UnsafeCell` path; `UnsafeCell<MaybeUninit<T>>` is layout-
    /// transparent over `T`, and consecutive slots are contiguous).
    fn base(&self) -> *mut T {
        UnsafeCell::raw_get(self.slots.as_ptr()).cast::<T>()
    }

    /// Producer-only: enqueue as many of `xs` as fit right now, as at
    /// most two contiguous `memcpy` segments (no per-item index math).
    /// Returns the number enqueued. Never waits, and never enqueues into
    /// a closed ring (the caller reports a typed `Closed` instead), so a
    /// push racing an engine force-close cannot acknowledge inputs no
    /// worker will drain — except in the unavoidable window where the
    /// close lands between this check and the `tail` publication, which
    /// teardown accounts as [`IngestStats::dropped`].
    pub(crate) fn push_some(&self, xs: &[T]) -> usize {
        if self.is_closed() {
            return 0;
        }
        let t = self.tail.load(Ordering::Relaxed);
        let h = self.head.load(Ordering::Acquire);
        let space = self.cap as u64 - (t - h);
        let n = xs.len().min(space as usize);
        if n == 0 {
            return 0;
        }
        let start = (t % self.cap as u64) as usize;
        let first = n.min(self.cap - start);
        // SAFETY: slots `t..t+space` are unoccupied (consumer is at `h`
        // and `t + space - h == cap`) and owned by this producer; the two
        // segments stay inside the allocation and cannot alias `xs`.
        unsafe {
            std::ptr::copy_nonoverlapping(xs.as_ptr(), self.base().add(start), first);
            std::ptr::copy_nonoverlapping(xs.as_ptr().add(first), self.base(), n - first);
        }
        self.tail.store(t + n as u64, Ordering::Release);
        // Publish under the gate: a consumer past its own re-check is
        // either already waiting (notified) or will re-check the new tail
        // once it acquires the gate — wakeups cannot be lost.
        let _guard = self.gate.lock().unwrap();
        self.not_empty.notify_all();
        n
    }

    /// Producer-only: park until the queue has space or is closed.
    pub(crate) fn wait_not_full(&self) {
        let guard = self.gate.lock().unwrap();
        if self.is_full() && !self.closed.load(Ordering::Acquire) {
            let _unused = self.not_full.wait_timeout(guard, PARK_TIMEOUT).unwrap();
        }
    }

    /// Close the queue (idempotent; producer side or engine teardown).
    pub(crate) fn close(&self) {
        self.closed.store(true, Ordering::Release);
        let _guard = self.gate.lock().unwrap();
        self.not_empty.notify_all();
        self.not_full.notify_all();
        #[cfg(feature = "async-ingest")]
        if let Some(waker) = self.prod_waker.lock().unwrap().take() {
            waker.wake();
        }
    }

    pub(crate) fn is_closed(&self) -> bool {
        self.closed.load(Ordering::Acquire)
    }

    /// Consumer-only: pop exactly `want` items into `out`, waiting for
    /// the producer as needed; fewer only when the queue is closed and
    /// drained (the feed's final partial round).
    pub(crate) fn pop_round(&self, out: &mut Vec<T>, want: usize) {
        let mut waited = false;
        while out.len() < want {
            let h = self.head.load(Ordering::Relaxed);
            let t = self.tail.load(Ordering::Acquire);
            if t == h {
                if self.closed.load(Ordering::Acquire) {
                    // `closed` is set after the final push; re-read the
                    // tail so a push racing the close is not dropped.
                    if self.tail.load(Ordering::Acquire) == h {
                        break;
                    }
                    continue;
                }
                if !waited {
                    waited = true;
                    self.pop_waits.fetch_add(1, Ordering::Relaxed);
                }
                let guard = self.gate.lock().unwrap();
                if self.tail.load(Ordering::Acquire) == h && !self.closed.load(Ordering::Acquire) {
                    let _unused = self.not_empty.wait_timeout(guard, PARK_TIMEOUT).unwrap();
                }
                continue;
            }
            let take = ((t - h) as usize).min(want - out.len());
            let start = (h % self.cap as u64) as usize;
            let first = take.min(self.cap - start);
            // SAFETY: slots `h..t` were initialized by the producer and
            // published by its Release store of `tail`; this consumer
            // owns them until it advances `head`. Viewing them as `&[T]`
            // is sound — the producer only writes the disjoint free
            // region.
            unsafe {
                out.extend_from_slice(std::slice::from_raw_parts(self.base().add(start), first));
                out.extend_from_slice(std::slice::from_raw_parts(self.base(), take - first));
            }
            self.head.store(h + take as u64, Ordering::Release);
            {
                let _guard = self.gate.lock().unwrap();
                self.not_full.notify_all();
            }
            #[cfg(feature = "async-ingest")]
            if let Some(waker) = self.prod_waker.lock().unwrap().take() {
                waker.wake();
            }
        }
    }

    /// Fold this ring's counters into an engine-level ledger (called
    /// after the run, once the workers have exited). Inputs still
    /// resident — possible only when a stashed handle's push raced the
    /// engine's force-close — are surfaced as `dropped` rather than
    /// silently vanishing.
    pub(crate) fn drain_stats(&self, into: &mut IngestStats) {
        into.merge(&IngestStats {
            frames: self.frames.load(Ordering::Relaxed),
            items: self.items.load(Ordering::Relaxed),
            words: self.words.load(Ordering::Relaxed),
            push_stalls: self.push_stalls.load(Ordering::Relaxed),
            pop_waits: self.pop_waits.load(Ordering::Relaxed),
            occupancy_sum: self.occ_sum.load(Ordering::Relaxed),
            occupancy_samples: self.occ_samples.load(Ordering::Relaxed),
            high_water: self.high_water.load(Ordering::Relaxed),
            dropped: self.occupancy(),
        });
    }
}

/// The consumer end of one feed's ring, owned by the worker that drives
/// the feed's shard.
pub(crate) struct RingConsumer<T: Copy> {
    pub(crate) ring: Arc<Ring<T>>,
    pub(crate) site: SiteId,
}

impl<T: Copy> RingConsumer<T> {
    pub(crate) fn pop_round(&self, out: &mut Vec<T>, want: usize) {
        self.ring.pop_round(out, want);
    }
}

/// The producer handle for one feed of a pipelined run: push inputs for
/// one site into its shard's bounded queue.
///
/// Handed to the feeder closure by
/// [`crate::ShardedEngine::run_pipelined`]; one handle per feed, single
/// producer by ownership (`push` takes `&mut self`, the type is not
/// `Clone`). Dropping the handle closes the feed; [`close`](Self::close)
/// does so explicitly and pushing afterwards is a typed
/// [`FeedError::Closed`].
#[derive(Debug)]
pub struct ShardFeed<In: Copy> {
    ring: Arc<Ring<In>>,
    feed: usize,
    site: SiteId,
    shard: usize,
    policy: Backpressure,
    deletions_ok: bool,
    words_per_item: usize,
    closed: bool,
}

impl<In: Copy> std::fmt::Debug for Ring<In> {
    fn fmt(&self, fm: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        fm.debug_struct("Ring")
            .field("cap", &self.cap)
            .field("occupancy", &self.occupancy())
            .field("closed", &self.is_closed())
            .finish()
    }
}

impl<In: InputDelta> ShardFeed<In> {
    pub(crate) fn new(
        ring: Arc<Ring<In>>,
        feed: usize,
        site: SiteId,
        shard: usize,
        policy: Backpressure,
        deletions_ok: bool,
    ) -> Self {
        ShardFeed {
            ring,
            feed,
            site,
            shard,
            policy,
            deletions_ok,
            words_per_item: In::WORDS,
            closed: false,
        }
    }

    /// The site this feed's inputs belong to.
    pub fn site(&self) -> SiteId {
        self.site
    }

    /// The logical shard (`site mod S`) this feed's queue belongs to.
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// The queue's capacity in inputs.
    pub fn capacity(&self) -> usize {
        self.ring.cap
    }

    /// Inputs currently resident in the queue (racy snapshot).
    pub fn occupancy(&self) -> u64 {
        self.ring.occupancy()
    }

    fn check_open(&self, pushed: usize) -> Result<(), FeedError> {
        if self.closed || self.ring.is_closed() {
            Err(FeedError::Closed { pushed })
        } else {
            Ok(())
        }
    }

    fn check_delta(&self, x: In, at: usize) -> Result<(), FeedError> {
        if !self.deletions_ok && x.delta_of() < 0 {
            Err(FeedError::DeletionUnsupported { at })
        } else {
            Ok(())
        }
    }

    /// Charge `items` enqueued inputs (traffic volume only; the async
    /// path calls this once per landed segment).
    fn charge_items(&self, items: usize) {
        let frame = FeedFrame::for_chunk(self.feed, items, self.words_per_item);
        let r = &self.ring;
        r.items.fetch_add(frame.items as u64, Ordering::Relaxed);
        r.words.fetch_add(frame.words as u64, Ordering::Relaxed);
    }

    /// Count one frame (one `push` / `push_batch` call, sync or async)
    /// and sample occupancy: resident items once the frame has landed —
    /// the queue depth a new arrival would see behind it.
    fn charge_frame_meta(&self) {
        let r = &self.ring;
        let occupancy = r.occupancy();
        r.frames.fetch_add(1, Ordering::Relaxed);
        r.occ_sum.fetch_add(occupancy, Ordering::Relaxed);
        r.occ_samples.fetch_add(1, Ordering::Relaxed);
        r.high_water.fetch_max(occupancy, Ordering::Relaxed);
    }

    /// Charge one complete frame of `items` inputs.
    fn charge(&self, items: usize) {
        self.charge_items(items);
        self.charge_frame_meta();
    }

    /// Push one input, honoring the configured [`Backpressure`] policy
    /// when the queue is full.
    pub fn push(&mut self, x: In) -> Result<(), FeedError> {
        self.push_batch(&[x])
    }

    /// Push one input without ever waiting, regardless of policy:
    /// [`FeedError::Full`] if the queue has no space right now.
    pub fn try_push(&mut self, x: In) -> Result<(), FeedError> {
        self.check_open(0)?;
        self.check_delta(x, 0)?;
        if self.ring.push_some(&[x]) == 1 {
            self.charge(1);
            Ok(())
        } else {
            Err(FeedError::Full { pushed: 0 })
        }
    }

    /// Push a chunk of inputs in order, honoring the configured
    /// [`Backpressure`] policy whenever the queue fills mid-chunk. On an
    /// error, `pushed` inputs of this call were enqueued (and will be
    /// consumed); the rest were not.
    pub fn push_batch(&mut self, xs: &[In]) -> Result<(), FeedError> {
        self.check_open(0)?;
        for (i, &x) in xs.iter().enumerate() {
            self.check_delta(x, i)?;
        }
        let mut pushed = 0;
        let mut stalled = false;
        while pushed < xs.len() {
            if let Err(e) = self.check_open(pushed) {
                // The feed closed mid-chunk (engine teardown): the
                // enqueued prefix is consumed like any other inputs, so
                // it is charged like any other inputs.
                if pushed > 0 {
                    self.charge(pushed);
                }
                return Err(e);
            }
            let n = self.ring.push_some(&xs[pushed..]);
            pushed += n;
            if pushed == xs.len() {
                break;
            }
            match self.policy {
                Backpressure::Error => {
                    if pushed > 0 {
                        self.charge(pushed);
                    }
                    return Err(FeedError::Full { pushed });
                }
                Backpressure::Yield => {
                    if !stalled {
                        stalled = true;
                        self.ring.push_stalls.fetch_add(1, Ordering::Relaxed);
                    }
                    std::thread::yield_now();
                }
                Backpressure::Block => {
                    if !stalled {
                        stalled = true;
                        self.ring.push_stalls.fetch_add(1, Ordering::Relaxed);
                    }
                    self.ring.wait_not_full();
                }
            }
        }
        if pushed > 0 {
            self.charge(pushed);
        }
        Ok(())
    }

    /// Close the feed: the worker drains what was pushed, finishes the
    /// feed's final (possibly partial) round, and stops expecting data.
    /// Idempotent; also performed on drop. Pushing after a close is a
    /// typed [`FeedError::Closed`].
    pub fn close(&mut self) {
        if !self.closed {
            self.closed = true;
            self.ring.close();
        }
    }
}

impl<In: Copy> Drop for ShardFeed<In> {
    fn drop(&mut self) {
        if !self.closed {
            self.closed = true;
            self.ring.close();
        }
    }
}

/// The producer handle for one feed of a pipelined **fleet** run: push
/// `(key, input)` deltas into a bounded queue drained by the fleet
/// driver ([`crate::TrackerFleet::run_pipelined`]).
///
/// Same discipline as [`ShardFeed`]: one handle per feed, single
/// producer by ownership (not `Clone`), dropping closes, and the
/// configured [`Backpressure`] policy applies when the queue fills.
/// Unlike a [`ShardFeed`], a fleet feed is not tied to a site or shard —
/// the key routes each delta to its shard on the consumer side, which is
/// why the traffic is charged as *keyed* frames
/// ([`FeedFrame::for_keyed_chunk`]: every input ships its routing key as
/// one extra word) to the fleet's [`IngestStats`] ledger.
#[derive(Debug)]
pub struct FleetFeed<In: Copy> {
    ring: Arc<Ring<(u64, In)>>,
    feed: usize,
    policy: Backpressure,
    deletions_ok: bool,
    closed: bool,
}

impl<In: InputDelta> FleetFeed<In> {
    pub(crate) fn new(
        ring: Arc<Ring<(u64, In)>>,
        feed: usize,
        policy: Backpressure,
        deletions_ok: bool,
    ) -> Self {
        FleetFeed {
            ring,
            feed,
            policy,
            deletions_ok,
            closed: false,
        }
    }

    /// This feed's index among the run's feeds (drain order).
    pub fn feed(&self) -> usize {
        self.feed
    }

    /// The queue's capacity in keyed inputs.
    pub fn capacity(&self) -> usize {
        self.ring.cap
    }

    /// Keyed inputs currently resident in the queue (racy snapshot).
    pub fn occupancy(&self) -> u64 {
        self.ring.occupancy()
    }

    fn check_open(&self, pushed: usize) -> Result<(), FeedError> {
        if self.closed || self.ring.is_closed() {
            Err(FeedError::Closed { pushed })
        } else {
            Ok(())
        }
    }

    /// Charge one keyed frame of `items` enqueued inputs.
    fn charge(&self, items: usize) {
        let frame = FeedFrame::for_keyed_chunk(self.feed, items, In::WORDS);
        let r = &self.ring;
        r.items.fetch_add(frame.items as u64, Ordering::Relaxed);
        r.words.fetch_add(frame.words as u64, Ordering::Relaxed);
        let occupancy = r.occupancy();
        r.frames.fetch_add(1, Ordering::Relaxed);
        r.occ_sum.fetch_add(occupancy, Ordering::Relaxed);
        r.occ_samples.fetch_add(1, Ordering::Relaxed);
        r.high_water.fetch_max(occupancy, Ordering::Relaxed);
    }

    /// Push one keyed delta, honoring the configured [`Backpressure`]
    /// policy when the queue is full.
    pub fn push(&mut self, key: u64, input: In) -> Result<(), FeedError> {
        self.push_batch(&[(key, input)])
    }

    /// Push one keyed delta without ever waiting, regardless of policy:
    /// [`FeedError::Full`] if the queue has no space right now.
    pub fn try_push(&mut self, key: u64, input: In) -> Result<(), FeedError> {
        self.check_open(0)?;
        if !self.deletions_ok && input.delta_of() < 0 {
            return Err(FeedError::DeletionUnsupported { at: 0 });
        }
        if self.ring.push_some(&[(key, input)]) == 1 {
            self.charge(1);
            Ok(())
        } else {
            Err(FeedError::Full { pushed: 0 })
        }
    }

    /// Push a chunk of keyed deltas in order; identical contract to
    /// [`ShardFeed::push_batch`] (validated before transport, `pushed`
    /// counts the landed prefix on error).
    pub fn push_batch(&mut self, xs: &[(u64, In)]) -> Result<(), FeedError> {
        self.check_open(0)?;
        if !self.deletions_ok {
            if let Some(at) = xs.iter().position(|&(_, x)| x.delta_of() < 0) {
                return Err(FeedError::DeletionUnsupported { at });
            }
        }
        let mut pushed = 0;
        let mut stalled = false;
        while pushed < xs.len() {
            if let Err(e) = self.check_open(pushed) {
                if pushed > 0 {
                    self.charge(pushed);
                }
                return Err(e);
            }
            let n = self.ring.push_some(&xs[pushed..]);
            pushed += n;
            if pushed == xs.len() {
                break;
            }
            match self.policy {
                Backpressure::Error => {
                    if pushed > 0 {
                        self.charge(pushed);
                    }
                    return Err(FeedError::Full { pushed });
                }
                Backpressure::Yield => {
                    if !stalled {
                        stalled = true;
                        self.ring.push_stalls.fetch_add(1, Ordering::Relaxed);
                    }
                    std::thread::yield_now();
                }
                Backpressure::Block => {
                    if !stalled {
                        stalled = true;
                        self.ring.push_stalls.fetch_add(1, Ordering::Relaxed);
                    }
                    self.ring.wait_not_full();
                }
            }
        }
        if pushed > 0 {
            self.charge(pushed);
        }
        Ok(())
    }

    /// Close the feed: the fleet drains what was pushed and stops
    /// expecting data. Idempotent; also performed on drop.
    pub fn close(&mut self) {
        if !self.closed {
            self.closed = true;
            self.ring.close();
        }
    }
}

impl<In: Copy> Drop for FleetFeed<In> {
    fn drop(&mut self) {
        if !self.closed {
            self.closed = true;
            self.ring.close();
        }
    }
}

#[cfg(feature = "async-ingest")]
mod async_feed {
    //! Runtime-agnostic async pushes (`async-ingest` feature): plain
    //! `std::future` futures that await queue capacity via the ring's
    //! producer waker — drive them from `tokio`, any other executor, or a
    //! hand-rolled `block_on`.

    use super::{FeedError, ShardFeed};
    use crate::partition::InputDelta;
    use std::future::Future;
    use std::pin::Pin;
    use std::sync::atomic::Ordering;
    use std::task::{Context, Poll};

    impl<In: InputDelta> ShardFeed<In> {
        /// Async push: resolves once the input is enqueued, awaiting
        /// capacity instead of blocking the thread. (The sync
        /// [`Backpressure`](super::Backpressure) policy does not apply —
        /// awaiting *is* the backpressure.)
        pub fn push_async(&mut self, x: In) -> AsyncPush<'_, In> {
            AsyncPush {
                feed: self,
                x,
                stalled: false,
            }
        }

        /// Async chunk push; see [`push_async`](Self::push_async). The
        /// chunk is enqueued in order, possibly across several polls.
        pub fn push_batch_async<'a>(&'a mut self, xs: &'a [In]) -> AsyncPushBatch<'a, In> {
            AsyncPushBatch {
                feed: self,
                xs,
                at: 0,
                stalled: false,
            }
        }

        /// One poll step shared by the async futures: try to push
        /// `xs[*at..]`, registering `cx`'s waker before parking.
        ///
        /// Ledger semantics match the sync calls: enqueued inputs are
        /// charged as they land (segment by segment across polls), one
        /// frame + occupancy sample is counted when the call completes —
        /// or, like the sync error paths, when it errors with a landed
        /// prefix — and a call that ever suspends counts one push stall
        /// (`*stalled` persists across polls in the future's state).
        fn poll_push(
            &mut self,
            cx: &mut Context<'_>,
            xs: &[In],
            at: &mut usize,
            stalled: &mut bool,
        ) -> Poll<Result<(), FeedError>> {
            if *at == 0 {
                if let Err(e) = self.check_open(0) {
                    return Poll::Ready(Err(e));
                }
                for (i, &x) in xs.iter().enumerate() {
                    if let Err(e) = self.check_delta(x, i) {
                        return Poll::Ready(Err(e));
                    }
                }
            }
            loop {
                if let Err(e) = self.check_open(*at) {
                    if *at > 0 {
                        self.charge_frame_meta();
                    }
                    return Poll::Ready(Err(e));
                }
                let n = self.ring.push_some(&xs[*at..]);
                if n > 0 {
                    self.charge_items(n);
                    *at += n;
                }
                if *at == xs.len() {
                    if !xs.is_empty() {
                        self.charge_frame_meta();
                    }
                    return Poll::Ready(Ok(()));
                }
                // Register, then re-check: a consumer pop between the
                // failed push and the registration must not be lost.
                *self.ring.prod_waker.lock().unwrap() = Some(cx.waker().clone());
                if self.ring.is_full() && !self.ring.is_closed() {
                    if !*stalled {
                        *stalled = true;
                        self.ring.push_stalls.fetch_add(1, Ordering::Relaxed);
                    }
                    return Poll::Pending;
                }
            }
        }
    }

    /// Future of [`ShardFeed::push_async`].
    #[derive(Debug)]
    #[must_use = "futures do nothing unless polled"]
    pub struct AsyncPush<'a, In: Copy> {
        feed: &'a mut ShardFeed<In>,
        x: In,
        stalled: bool,
    }

    // The futures hold no self-references (the input is plain `Copy`
    // data and the feed a normal `&mut`), so they are always Unpin even
    // when `In` itself is not.
    impl<In: Copy> Unpin for AsyncPush<'_, In> {}
    impl<In: Copy> Unpin for AsyncPushBatch<'_, In> {}

    impl<In: InputDelta> Future for AsyncPush<'_, In> {
        type Output = Result<(), FeedError>;
        fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
            let this = self.get_mut();
            let x = this.x;
            // A single input either enqueues fully or not at all, so the
            // progress cursor can restart at 0 every poll.
            let mut at = 0;
            this.feed.poll_push(cx, &[x], &mut at, &mut this.stalled)
        }
    }

    /// Future of [`ShardFeed::push_batch_async`].
    #[derive(Debug)]
    #[must_use = "futures do nothing unless polled"]
    pub struct AsyncPushBatch<'a, In: Copy> {
        feed: &'a mut ShardFeed<In>,
        xs: &'a [In],
        at: usize,
        stalled: bool,
    }

    impl<In: InputDelta> Future for AsyncPushBatch<'_, In> {
        type Output = Result<(), FeedError>;
        fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
            let this = self.get_mut();
            let xs = this.xs;
            this.feed.poll_push(cx, xs, &mut this.at, &mut this.stalled)
        }
    }
}

#[cfg(feature = "async-ingest")]
pub use async_feed::{AsyncPush, AsyncPushBatch};

#[cfg(test)]
mod tests {
    use super::*;

    fn feed_pair(cap: usize, policy: Backpressure) -> (ShardFeed<i64>, RingConsumer<i64>) {
        let ring = Arc::new(Ring::new(cap));
        let feed = ShardFeed::new(Arc::clone(&ring), 0, 0, 0, policy, true);
        (feed, RingConsumer { ring, site: 0 })
    }

    #[test]
    fn ring_roundtrips_in_order_across_wraparound() {
        let (mut feed, cons) = feed_pair(7, Backpressure::Error);
        let mut out = Vec::new();
        let mut expect = Vec::new();
        for chunk in 0..40 {
            let xs: Vec<i64> = (0..5).map(|i| chunk * 100 + i).collect();
            feed.push_batch(&xs).unwrap();
            expect.extend_from_slice(&xs);
            let want = out.len() + 5;
            cons.pop_round(&mut out, want);
        }
        assert_eq!(out, expect);
    }

    #[test]
    fn error_policy_reports_full_with_partial_progress() {
        let (mut feed, cons) = feed_pair(4, Backpressure::Error);
        assert_eq!(
            feed.push_batch(&[1, 2, 3, 4, 5, 6]),
            Err(FeedError::Full { pushed: 4 })
        );
        assert_eq!(feed.try_push(9), Err(FeedError::Full { pushed: 0 }));
        let mut out = Vec::new();
        cons.pop_round(&mut out, 2);
        assert_eq!(out, vec![1, 2]);
        // Space again: the remainder can be re-offered by the caller.
        assert_eq!(feed.push_batch(&[5, 6]), Ok(()));
    }

    #[test]
    fn push_after_close_is_a_typed_error() {
        let (mut feed, cons) = feed_pair(4, Backpressure::Block);
        feed.push(42).unwrap();
        feed.close();
        feed.close(); // idempotent
        assert_eq!(feed.push(1), Err(FeedError::Closed { pushed: 0 }));
        assert_eq!(
            feed.push_batch(&[1, 2]),
            Err(FeedError::Closed { pushed: 0 })
        );
        let mut out = Vec::new();
        cons.pop_round(&mut out, 10);
        assert_eq!(out, vec![42], "data pushed before the close is drained");
    }

    #[test]
    fn deletions_are_rejected_for_insert_only_feeds() {
        let ring = Arc::new(Ring::new(8));
        let mut feed: ShardFeed<i64> =
            ShardFeed::new(Arc::clone(&ring), 0, 0, 0, Backpressure::Block, false);
        assert_eq!(
            feed.push_batch(&[1, 1, -1, 1]),
            Err(FeedError::DeletionUnsupported { at: 2 })
        );
        // Nothing was enqueued: the chunk is validated before transport.
        assert_eq!(ring.occupancy(), 0);
        assert_eq!(feed.push(-3), Err(FeedError::DeletionUnsupported { at: 0 }));
    }

    #[test]
    fn closing_mid_chunk_charges_the_enqueued_prefix() {
        // A Block-policy producer parked mid-chunk when the ring is
        // force-closed (engine teardown) reports Closed with the landed
        // prefix — and that prefix is charged to the ledger exactly like
        // the Error-policy partial, since consumed inputs and charged
        // inputs must agree. Nothing drained them here, so teardown
        // surfaces them as dropped.
        let (mut feed, cons) = feed_pair(4, Backpressure::Block);
        std::thread::scope(|scope| {
            let ring = Arc::clone(&cons.ring);
            scope.spawn(move || {
                std::thread::sleep(Duration::from_millis(20));
                ring.close();
            });
            let err = feed.push_batch(&[1i64; 10]).unwrap_err();
            assert_eq!(err, FeedError::Closed { pushed: 4 });
        });
        let mut stats = IngestStats::new();
        cons.ring.drain_stats(&mut stats);
        assert_eq!(stats.items, 4);
        assert_eq!(stats.frames, 1);
        assert_eq!(stats.push_stalls, 1);
        assert_eq!(stats.dropped, 4);
    }

    #[test]
    fn block_policy_hands_off_across_threads() {
        let (mut feed, cons) = feed_pair(8, Backpressure::Block);
        let n = 10_000i64;
        std::thread::scope(|scope| {
            scope.spawn(move || {
                for i in 0..n {
                    feed.push(i).unwrap();
                }
                // Drop closes.
            });
            let mut out = Vec::new();
            cons.pop_round(&mut out, n as usize + 5);
            assert_eq!(out.len(), n as usize);
            assert!(out.iter().copied().eq(0..n));
            assert!(cons.ring.is_closed());
        });
    }

    #[test]
    fn yield_policy_hands_off_across_threads() {
        let (mut feed, cons) = feed_pair(3, Backpressure::Yield);
        std::thread::scope(|scope| {
            scope.spawn(move || {
                feed.push_batch(&(0..500).collect::<Vec<i64>>()).unwrap();
            });
            let mut out = Vec::new();
            cons.pop_round(&mut out, 500);
            assert_eq!(out.len(), 500);
        });
    }

    #[test]
    fn fleet_feed_charges_keyed_frames_and_validates_deletions() {
        let ring: Arc<Ring<(u64, i64)>> = Arc::new(Ring::new(16));
        let mut feed = FleetFeed::new(Arc::clone(&ring), 3, Backpressure::Error, false);
        assert_eq!(feed.feed(), 3);
        assert_eq!(feed.capacity(), 16);
        feed.push(7, 1).unwrap();
        feed.push_batch(&[(7, 2), (9, 1)]).unwrap();
        assert_eq!(
            feed.push_batch(&[(1, 1), (2, -1)]),
            Err(FeedError::DeletionUnsupported { at: 1 })
        );
        assert_eq!(feed.occupancy(), 3);
        let mut out = Vec::new();
        ring.pop_round(&mut out, 3);
        assert_eq!(out, vec![(7, 1), (7, 2), (9, 1)]);
        let mut stats = IngestStats::new();
        ring.drain_stats(&mut stats);
        assert_eq!(stats.frames, 2);
        assert_eq!(stats.items, 3);
        // Keyed counter deltas are two words each: key + delta.
        assert_eq!(stats.words, 6);
        feed.close();
        assert_eq!(feed.push(1, 1), Err(FeedError::Closed { pushed: 0 }));
        assert_eq!(feed.try_push(1, 1), Err(FeedError::Closed { pushed: 0 }));
    }

    #[test]
    fn ledger_counters_reach_the_engine_ledger() {
        let (mut feed, cons) = feed_pair(16, Backpressure::Error);
        feed.push_batch(&[1, 2, 3]).unwrap();
        feed.push(4).unwrap();
        let mut out = Vec::new();
        cons.pop_round(&mut out, 4);
        let mut stats = IngestStats::new();
        cons.ring.drain_stats(&mut stats);
        assert_eq!(stats.frames, 2);
        assert_eq!(stats.items, 4);
        assert_eq!(stats.words, 4); // i64 inputs: one word each
        assert_eq!(stats.occupancy_samples, 2);
        assert_eq!(stats.high_water, 4); // after the 4th input landed
        assert_eq!(stats.push_stalls, 0);
    }
}
