//! `TrackerFleet`: millions of independent keyed functions in one engine.
//!
//! The paper tracks a *single* distributed function `f(n)` to within
//! `ε`. Production monitoring traffic is a different shape: millions of
//! independent `(tenant, metric)` functions, each tiny, each wanting the
//! exact same per-function guarantee. A fleet serves that shape without
//! a million boxed trackers:
//!
//! * **Routing** — a key owns exactly one logical shard via the same
//!   Fibonacci item hash as [`crate::Partition::ByItem`]
//!   (`hash(key) mod S`), so per-key state never moves and the per-key
//!   guarantee is a standalone tracker's guarantee verbatim. Routing
//!   depends only on the key and the shard count — never on workers —
//!   which is the rescaling invariant.
//! * **Slab storage** — per-key state lives as compact snapshot-payload
//!   records (the PR 4 state codec's `TrackerState` payload bytes) in a
//!   per-shard append-only arena, indexed by an open-addressed key
//!   table. A small per-shard cache of live trackers (clock-evicted,
//!   [`crate::EngineConfig::fleet_cache`]) absorbs updates; cold records
//!   rehydrate through one scratch [`TrackerState`] per shard, so the
//!   steady state allocates nothing per key. Freezing a tracker
//!   *snapshots* it, so cache capacity is a pure execution knob: any
//!   capacity ≥ 1 yields bit-identical estimates, ledgers, and
//!   checkpoint bytes.
//! * **Keyed batching** — updates stage in per-shard chains grouped by
//!   key and apply at batch boundaries (every
//!   [`crate::EngineConfig::new`] `batch` updates), each key receiving
//!   its staged run through the same `update_run`/`update_batch` fast
//!   paths the sharded engine uses. Batch segmentation never changes
//!   results (`tests/batch_proptests.rs` holds that for every kind), so
//!   boundary-cut consistency survives keying.
//! * **Fleet queries** — [`estimate`](TrackerFleet::estimate),
//!   [`top_k`](TrackerFleet::top_k), per-key ε-audits
//!   ([`key_audit`](TrackerFleet::key_audit)), aggregate
//!   [`CommStats`]/memory accounting, and a versioned
//!   [`FleetCheckpoint`] (`b"DSVF"`) for checkpoint → resume → rescale
//!   that is bit-identical in estimates and ledgers.
//!
//! Every key is built from the **same** spec (same seeds included):
//! the fleet's contract is that key `x` behaves exactly like one
//! standalone tracker fed `x`'s substream, and `tests/fleet_equivalence.rs`
//! holds that bit-identically for all ten registry kinds.
//!
//! Estimates are *boundary* values, like the sharded engine's
//! coordinator estimate: queries between boundaries report the last cut,
//! and [`flush`](TrackerFleet::flush) forces one.

use std::sync::Arc;
use std::time::{Duration, Instant};

use dsv_core::api::{BuildError, ItemTracker, RunError, Tracker, TrackerKind, TrackerSpec};
use dsv_core::codec::{kind_from_tag, kind_tag, CodecError, Dec, Enc, TrackerState};
use dsv_net::{fingerprint, relative_error, CommStats, IngestStats, SiteId, StateDelta, Time};

use crate::config::{EngineConfig, EngineError};
use crate::consolidate::{ConsolidateInput, Consolidator};
use crate::ingest::{FleetFeed, Ring};
use crate::partition::hash_item;

/// Magic bytes opening a serialized [`FleetCheckpoint`].
pub const FLEET_MAGIC: [u8; 4] = *b"DSVF";

/// Current fleet-checkpoint format version. Bump on **any** layout
/// change (and see `MIGRATION.md`); nested tracker payloads carry their
/// own `DSVT` version independently. v2 adds a shard-table variant tag
/// after the version: `TABLE_FULL` for the classic full table,
/// `TABLE_DELTA` for a parent-anchored [`FleetDelta`] table; v1 bytes
/// (no tag, full table) still decode.
pub const FLEET_VERSION: u16 = 2;

/// `DSVF` v2 shard-table variant: every slot record in full (the only
/// layout v1 had).
const TABLE_FULL: u8 = 1;

/// `DSVF` v2 shard-table variant: delta-chain table — slot ops diffed
/// against a parent checkpoint, decoded by [`FleetDelta::from_bytes`].
const TABLE_DELTA: u8 = 2;

/// Niche marker for "no slot / no cache entry / no staged successor".
const NONE_U32: u32 = u32::MAX;

/// Arena-length sentinel: this slot has no frozen bytes (brand new, or
/// its live tracker owns the state).
const FRESH: u32 = u32::MAX;

/// Open-addressed key → slot index (linear probing, power-of-two
/// capacity, load kept ≤ 1/2). `SipHash` through a std map is the wrong
/// tool at tens of millions of lookups per second; the probe hash is a
/// second Fibonacci-style multiply, deliberately decorrelated from the
/// key → shard routing hash so a shard's resident keys (which all agree
/// on `hash(key) mod S`) do not cluster into probe chains.
struct KeyIndex {
    keys: Vec<u64>,
    /// `slot + 1`; 0 marks an empty cell (keys may legitimately be 0).
    vals: Vec<u32>,
    len: usize,
}

impl KeyIndex {
    fn new() -> Self {
        KeyIndex {
            keys: vec![0; 16],
            vals: vec![0; 16],
            len: 0,
        }
    }

    fn mask(&self) -> usize {
        self.vals.len() - 1
    }

    fn start(&self, key: u64) -> usize {
        (key.wrapping_mul(0xD6E8_FEB8_6659_FD93) >> 32) as usize & self.mask()
    }

    fn get(&self, key: u64) -> Option<u32> {
        let mask = self.mask();
        let mut i = self.start(key);
        loop {
            let v = self.vals[i];
            if v == 0 {
                return None;
            }
            if self.keys[i] == key {
                return Some(v - 1);
            }
            i = (i + 1) & mask;
        }
    }

    fn insert(&mut self, key: u64, slot: u32) {
        if (self.len + 1) * 2 > self.vals.len() {
            self.grow();
        }
        let mask = self.mask();
        let mut i = self.start(key);
        while self.vals[i] != 0 {
            debug_assert_ne!(self.keys[i], key, "duplicate fleet key insert");
            i = (i + 1) & mask;
        }
        self.keys[i] = key;
        self.vals[i] = slot + 1;
        self.len += 1;
    }

    fn grow(&mut self) {
        let cap = self.vals.len() * 2;
        let old_keys = std::mem::replace(&mut self.keys, vec![0; cap]);
        let old_vals = std::mem::replace(&mut self.vals, vec![0; cap]);
        for (key, v) in old_keys.into_iter().zip(old_vals) {
            if v == 0 {
                continue;
            }
            let mask = self.mask();
            let mut i = self.start(key);
            while self.vals[i] != 0 {
                i = (i + 1) & mask;
            }
            self.keys[i] = key;
            self.vals[i] = v;
        }
    }

    fn bytes(&self) -> usize {
        self.keys.len() * 8 + self.vals.len() * 4
    }
}

/// One keyed function's record: where its frozen state lives, whether a
/// live tracker currently owns it, its staged chain, and its audited
/// scalars. 64 bytes — the per-key footprint besides the state payload.
struct Slot {
    key: u64,
    /// Frozen state location in the shard arena (valid iff `len != FRESH`).
    off: usize,
    len: u32,
    /// Cache entry owning this slot's live tracker (`NONE_U32` if frozen).
    cached: u32,
    /// Staged-update chain (indices into the shard's staging buffer).
    head: u32,
    tail: u32,
    /// Last boundary estimate `f̂(t)` for this key.
    estimate: i64,
    /// Ground truth `f(t)` for this key (the audit's reference).
    f: i64,
    updates: u64,
    violations: u64,
}

/// One staged keyed update: a link in its slot's arrival-order chain.
struct Staged<In> {
    site: u32,
    input: In,
    next: u32,
}

/// A live tracker absorbing one slot's updates until evicted.
struct CacheEntry<T> {
    tracker: T,
    /// Owning slot (`NONE_U32` between freeze and reuse).
    slot: u32,
    /// Second-chance bit for the clock hand.
    hot: bool,
}

/// What one shard's boundary application reports back for reconciliation
/// (merged into fleet scalars in shard order, so worker placement never
/// shows in any ledger).
struct ApplyOut {
    f_delta: i64,
    est_delta: i64,
    updates: u64,
    violations: u64,
    max_err: f64,
    stats_delta: CommStats,
}

impl ApplyOut {
    fn new() -> Self {
        ApplyOut {
            f_delta: 0,
            est_delta: 0,
            updates: 0,
            violations: 0,
            max_err: 0.0,
            stats_delta: CommStats::new(),
        }
    }
}

/// One logical shard: the slab (index + slots + arena), the live-tracker
/// cache, and the staging area for the current batch.
struct ShardSlab<T, In> {
    index: KeyIndex,
    slots: Vec<Slot>,
    /// Frozen state payloads, append-only between compactions.
    arena: Vec<u8>,
    /// Bytes in `arena` no longer referenced by any slot.
    garbage: usize,
    cache: Vec<CacheEntry<T>>,
    /// Clock hand for second-chance eviction.
    clock: usize,
    staged: Vec<Staged<In>>,
    /// Slots with a non-empty staged chain, in first-touch order.
    touched: Vec<u32>,
    /// Scratch for rehydrating frozen payloads without allocating.
    scratch: TrackerState,
    run_buf: Vec<In>,
    site_buf: Vec<u32>,
    tup_buf: Vec<(SiteId, In)>,
    /// Consolidation scratch for the uniform-site chain collapse.
    cons: Consolidator,
}

impl<T, In> ShardSlab<T, In>
where
    T: Tracker<In>,
    In: ConsolidateInput,
{
    fn new(kind: TrackerKind, k: usize) -> Self {
        ShardSlab {
            index: KeyIndex::new(),
            slots: Vec::new(),
            arena: Vec::new(),
            garbage: 0,
            cache: Vec::new(),
            clock: 0,
            staged: Vec::new(),
            touched: Vec::new(),
            scratch: TrackerState::new(kind, k, Vec::new()),
            run_buf: Vec::new(),
            site_buf: Vec::new(),
            tup_buf: Vec::new(),
            cons: Consolidator::new(),
        }
    }

    /// The slot for `key`, creating an empty (fresh) one on first sight.
    fn slot_for(&mut self, key: u64) -> u32 {
        if let Some(sid) = self.index.get(key) {
            return sid;
        }
        let sid = self.slots.len() as u32;
        self.slots.push(Slot {
            key,
            off: 0,
            len: FRESH,
            cached: NONE_U32,
            head: NONE_U32,
            tail: NONE_U32,
            estimate: 0,
            f: 0,
            updates: 0,
            violations: 0,
        });
        self.index.insert(key, sid);
        sid
    }

    /// Stage one update in its slot's arrival-order chain; returns the
    /// slot id so bursty callers can route follow-ups via
    /// [`stage_at`](Self::stage_at) without re-probing the index.
    fn stage(&mut self, key: u64, site: SiteId, input: In) -> u32 {
        let sid = self.slot_for(key);
        self.stage_at(sid, site, input);
        sid
    }

    /// Stage one update for an already-resolved slot.
    fn stage_at(&mut self, sid: u32, site: SiteId, input: In) {
        let at = self.staged.len() as u32;
        self.staged.push(Staged {
            site: site as u32,
            input,
            next: NONE_U32,
        });
        let slot = &mut self.slots[sid as usize];
        if slot.head == NONE_U32 {
            slot.head = at;
            self.touched.push(sid);
        } else {
            self.staged[slot.tail as usize].next = at;
        }
        self.slots[sid as usize].tail = at;
    }

    /// Snapshot cache entry `ci`'s tracker into the arena, releasing the
    /// entry for reuse. The frozen bytes equal what a checkpoint would
    /// record, which is why eviction never shows in results.
    fn freeze(&mut self, ci: usize) -> Result<(), EngineError> {
        let owner = self.cache[ci].slot;
        if owner == NONE_U32 {
            return Ok(());
        }
        let state = self.cache[ci]
            .tracker
            .snapshot()
            .map_err(EngineError::Codec)?;
        let bytes = state.payload();
        let slot = &mut self.slots[owner as usize];
        slot.off = self.arena.len();
        slot.len = bytes.len() as u32;
        slot.cached = NONE_U32;
        self.arena.extend_from_slice(bytes);
        self.cache[ci].slot = NONE_U32;
        Ok(())
    }

    /// A live tracker for slot `sid`: the cached one if present, else a
    /// (possibly evicted) cache entry rehydrated from the slot's frozen
    /// bytes — or from the shared fresh prototype for a never-applied key.
    fn materialize(
        &mut self,
        sid: u32,
        factory: &dyn Fn() -> Result<T, BuildError>,
        proto: &TrackerState,
        cap: usize,
    ) -> Result<usize, EngineError> {
        if self.slots[sid as usize].cached != NONE_U32 {
            let ci = self.slots[sid as usize].cached as usize;
            self.cache[ci].hot = true;
            return Ok(ci);
        }
        let ci = if self.cache.len() < cap {
            let tracker = factory().map_err(EngineError::Build)?;
            self.cache.push(CacheEntry {
                tracker,
                slot: NONE_U32,
                hot: false,
            });
            self.cache.len() - 1
        } else {
            loop {
                if self.clock >= self.cache.len() {
                    self.clock = 0;
                }
                if self.cache[self.clock].hot {
                    self.cache[self.clock].hot = false;
                    self.clock += 1;
                } else {
                    break;
                }
            }
            let victim = self.clock;
            self.clock += 1;
            self.freeze(victim)?;
            victim
        };
        let slot = &mut self.slots[sid as usize];
        if slot.len == FRESH {
            self.cache[ci]
                .tracker
                .restore(proto)
                .map_err(EngineError::Codec)?;
        } else {
            self.scratch
                .set_payload(&self.arena[slot.off..slot.off + slot.len as usize]);
            self.cache[ci]
                .tracker
                .restore(&self.scratch)
                .map_err(EngineError::Codec)?;
            // The live tracker owns the state now; the frozen copy is
            // stale the moment an update lands.
            self.garbage += slot.len as usize;
            slot.len = FRESH;
        }
        slot.cached = ci as u32;
        self.cache[ci].slot = sid;
        self.cache[ci].hot = true;
        Ok(ci)
    }

    /// Apply every staged chain at a batch boundary: group-by-key is the
    /// chain itself, and each key's run goes through the same
    /// `update_run` / `update_batch` fast paths as the sharded engine.
    #[allow(clippy::too_many_arguments)]
    fn apply(
        &mut self,
        eps: f64,
        factory: &dyn Fn() -> Result<T, BuildError>,
        proto: &TrackerState,
        proto_stats: &CommStats,
        cap: usize,
        gc_floor: usize,
        consolidate: bool,
    ) -> Result<ApplyOut, EngineError> {
        let mut out = ApplyOut::new();
        let touched = std::mem::take(&mut self.touched);
        for &sid in &touched {
            self.run_buf.clear();
            self.site_buf.clear();
            let mut cursor = self.slots[sid as usize].head;
            let mut delta = 0i64;
            while cursor != NONE_U32 {
                let st = &self.staged[cursor as usize];
                delta += st.input.delta_of();
                self.run_buf.push(st.input);
                self.site_buf.push(st.site);
                cursor = st.next;
            }
            // A key's first-ever application charges the build-time
            // traffic its standalone twin would have on the ledger.
            if self.slots[sid as usize].len == FRESH && self.slots[sid as usize].cached == NONE_U32
            {
                out.stats_delta.merge(proto_stats);
            }
            let ci = self.materialize(sid, factory, proto, cap)?;
            let first = self.site_buf[0];
            let uniform = self.site_buf.iter().all(|&s| s == first);
            self.tup_buf.clear();
            if !uniform {
                self.tup_buf.extend(
                    self.site_buf
                        .iter()
                        .zip(self.run_buf.iter())
                        .map(|(&s, &x)| (s as usize, x)),
                );
            }
            let entry = &mut self.cache[ci];
            let before = entry.tracker.stats().clone();
            let est = if uniform {
                if consolidate {
                    In::update_consolidated(
                        &mut entry.tracker,
                        first as usize,
                        &self.run_buf,
                        &mut self.cons,
                    )
                } else {
                    entry.tracker.update_run(first as usize, &self.run_buf)
                }
            } else {
                entry.tracker.update_batch(&self.tup_buf)
            };
            out.stats_delta.merge(&entry.tracker.stats().since(&before));
            let slot = &mut self.slots[sid as usize];
            slot.f += delta;
            slot.updates += self.run_buf.len() as u64;
            out.f_delta += delta;
            out.updates += self.run_buf.len() as u64;
            out.est_delta += est - slot.estimate;
            slot.estimate = est;
            slot.head = NONE_U32;
            slot.tail = NONE_U32;
            // Per-key ε-audit at the boundary, with the same float slack
            // as the engine's RunAudit.
            let err = relative_error(slot.f, est);
            if err > out.max_err {
                out.max_err = err;
            }
            if err > eps * (1.0 + 1e-12) {
                slot.violations += 1;
                out.violations += 1;
            }
        }
        self.staged.clear();
        self.touched = touched;
        self.touched.clear();
        self.maybe_compact(gc_floor);
        Ok(out)
    }

    /// Reclaim arena garbage once it exceeds both the live bytes and the
    /// configured floor ([`EngineConfig::fleet_gc_bytes`]): one ordered
    /// copy of every referenced payload, amortized O(1) per freeze.
    fn maybe_compact(&mut self, gc_floor: usize) {
        let live = self.arena.len() - self.garbage;
        if self.garbage <= gc_floor || self.garbage <= live {
            return;
        }
        let mut fresh = Vec::with_capacity(live);
        for slot in &mut self.slots {
            if slot.len == FRESH {
                continue;
            }
            let off = fresh.len();
            fresh.extend_from_slice(&self.arena[slot.off..slot.off + slot.len as usize]);
            slot.off = off;
        }
        self.arena = fresh;
        self.garbage = 0;
    }

    /// Serialize every slot for a checkpoint. Cached trackers snapshot in
    /// place (without eviction), frozen slots reuse their arena bytes, so
    /// the records are independent of cache capacity and worker count.
    fn records(&self, proto: &TrackerState) -> Result<Vec<SlotRecord>, EngineError> {
        let mut out = Vec::with_capacity(self.slots.len());
        for slot in &self.slots {
            let state = if slot.cached != NONE_U32 {
                self.cache[slot.cached as usize]
                    .tracker
                    .snapshot()
                    .map_err(EngineError::Codec)?
                    .payload()
                    .to_vec()
            } else if slot.len != FRESH {
                self.arena[slot.off..slot.off + slot.len as usize].to_vec()
            } else {
                proto.payload().to_vec()
            };
            out.push(SlotRecord {
                key: slot.key,
                f: slot.f,
                updates: slot.updates,
                violations: slot.violations,
                estimate: slot.estimate,
                state,
            });
        }
        Ok(out)
    }

    fn memory_into(&self, mem: &mut FleetMemory) {
        mem.keys += self.slots.len() as u64;
        mem.arena_bytes += self.arena.len() as u64;
        mem.arena_garbage += self.garbage as u64;
        mem.slot_bytes += (self.slots.capacity() * std::mem::size_of::<Slot>()) as u64;
        mem.index_bytes += self.index.bytes() as u64;
        mem.cached_trackers += self.cache.len() as u64;
        mem.staged_inputs += self.staged.len() as u64;
    }
}

/// A per-key audit line: the key's ground truth, boundary estimate, and
/// ε-violation history.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KeyAudit {
    /// The audited key.
    pub key: u64,
    /// Ground truth `f(t)` of this key's substream.
    pub f: i64,
    /// The key's estimate as of the last batch boundary.
    pub estimate: i64,
    /// Updates this key has absorbed.
    pub updates: u64,
    /// Boundary audits where this key's relative error exceeded ε.
    pub violations: u64,
}

/// Fleet memory accounting, in bytes and object counts, summed over
/// shards.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FleetMemory {
    /// Live keys (slots) across the fleet.
    pub keys: u64,
    /// Arena bytes holding frozen per-key state payloads.
    pub arena_bytes: u64,
    /// Arena bytes pending compaction.
    pub arena_garbage: u64,
    /// Bytes of per-key slot records (64 per key, capacity included).
    pub slot_bytes: u64,
    /// Bytes of the key → slot hash indexes.
    pub index_bytes: u64,
    /// Live (cached) trackers resident across all shards.
    pub cached_trackers: u64,
    /// Updates currently staged for the next boundary.
    pub staged_inputs: u64,
}

impl FleetMemory {
    /// Total accounted bytes (slabs only; cached trackers are opaque).
    pub fn total_bytes(&self) -> u64 {
        self.arena_bytes + self.slot_bytes + self.index_bytes
    }
}

/// What one fleet run did: scalars over the run's window, cumulative
/// ledgers, and throughput.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// Updates applied by this run.
    pub n: u64,
    /// Batch boundaries cut by this run.
    pub boundaries: u64,
    /// Live keys in the fleet after the run.
    pub live_keys: u64,
    /// Logical shards.
    pub shards: usize,
    /// Workers used at boundaries.
    pub workers: usize,
    /// Batch size (updates per boundary).
    pub batch: usize,
    /// Fleet-wide ground truth Σ_key f_key after the run.
    pub final_f: i64,
    /// Fleet-wide Σ_key boundary estimates after the run.
    pub final_estimate: i64,
    /// Per-key boundary ε-violations during this run.
    pub key_violations: u64,
    /// Aggregate (Σf vs Σf̂) boundary ε-violations during this run.
    pub aggregate_violations: u64,
    /// Worst per-key boundary relative error over the fleet's lifetime.
    pub max_rel_err: f64,
    /// Cumulative in-protocol traffic, summed over every key's tracker.
    pub tracker_stats: CommStats,
    /// Cumulative pipelined-ingestion ledger (empty for synchronous runs).
    pub ingest_stats: IngestStats,
    /// Wall-clock time of this run.
    pub elapsed: Duration,
}

impl FleetReport {
    /// Updates per second of wall-clock time for this run.
    pub fn updates_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.n as f64 / secs
        }
    }
}

/// One slot's checkpointed record: identity, audited scalars, and the
/// state payload (kind and site count live once in the header).
#[derive(Debug, Clone, PartialEq)]
struct SlotRecord {
    key: u64,
    f: i64,
    updates: u64,
    violations: u64,
    estimate: i64,
    state: Vec<u8>,
}

/// A versioned snapshot of a whole fleet (`b"DSVF"`, currently
/// [`FLEET_VERSION`]): fleet scalars, the aggregate ledger, and one
/// compact record per key. Taking one cuts a batch boundary first (staged
/// updates are applied, so a checkpoint is always a boundary state).
///
/// The wire form is produced by [`to_bytes`](Self::to_bytes) and read by
/// [`from_bytes`](Self::from_bytes); truncated, corrupted, version-skewed
/// or internally inconsistent payloads decode to typed [`CodecError`]s,
/// never panics (held by `tests/codec_robustness.rs`). Checkpoint bytes
/// are bit-identical across worker counts *and* cache capacities.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetCheckpoint {
    kind: TrackerKind,
    k: usize,
    time: Time,
    f: i64,
    boundaries: u64,
    key_violations: u64,
    agg_violations: u64,
    max_err: f64,
    tracker_stats: CommStats,
    shards: Vec<Vec<SlotRecord>>,
}

impl FleetCheckpoint {
    /// The checkpointed tracker kind.
    pub fn kind(&self) -> TrackerKind {
        self.kind
    }

    /// Sites per keyed tracker.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Logical shard count (must match the resuming config).
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Live keys captured.
    pub fn keys(&self) -> usize {
        self.shards.iter().map(Vec::len).sum()
    }

    /// Updates applied when the checkpoint was cut.
    pub fn time(&self) -> Time {
        self.time
    }

    /// Fleet-wide ground truth at the checkpoint.
    pub fn f(&self) -> i64 {
        self.f
    }

    /// Serialize to the versioned wire form (v2, full shard table).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut enc = Enc::new();
        enc.magic(FLEET_MAGIC, FLEET_VERSION);
        enc.u8(TABLE_FULL);
        enc.u8(kind_tag(self.kind));
        enc.usize(self.k);
        enc.u64(self.time);
        enc.i64(self.f);
        enc.u64(self.boundaries);
        enc.u64(self.key_violations);
        enc.u64(self.agg_violations);
        enc.f64(self.max_err);
        self.tracker_stats.encode(&mut enc);
        enc.seq_len(self.shards.len());
        for records in &self.shards {
            enc.seq_len(records.len());
            for rec in records {
                enc.u64(rec.key);
                enc.i64(rec.f);
                enc.u64(rec.updates);
                enc.u64(rec.violations);
                enc.i64(rec.estimate);
                enc.blob(&rec.state);
            }
        }
        enc.into_bytes()
    }

    /// Decode the versioned wire form, requiring exact consumption and
    /// internal consistency (shard and state shapes, update accounting).
    /// Accepts v1 bytes (no table-variant tag) and v2 full tables; a v2
    /// delta table is a typed error directing the caller to
    /// [`FleetDelta::from_bytes`], since it cannot stand alone.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CodecError> {
        let mut dec = Dec::new(bytes);
        let version = dec.magic(FLEET_MAGIC, FLEET_VERSION)?;
        if version >= 2 {
            match dec.u8()? {
                TABLE_FULL => {}
                TABLE_DELTA => {
                    return Err(CodecError::BadValue {
                        what: "fleet table variant (delta tables decode with FleetDelta)",
                    })
                }
                tag => {
                    return Err(CodecError::BadTag {
                        what: "fleet table variant",
                        tag: tag as u64,
                    })
                }
            }
        }
        Self::decode_table(&mut dec)
    }

    /// Decode the table body shared by v1 and v2-full payloads
    /// (everything after the magic/version/variant prefix).
    fn decode_table(dec: &mut Dec<'_>) -> Result<Self, CodecError> {
        let tag = dec.u8()?;
        let kind = kind_from_tag(tag).ok_or(CodecError::BadTag {
            what: "fleet tracker kind",
            tag: tag as u64,
        })?;
        let k = dec.usize()?;
        if k == 0 {
            return Err(CodecError::BadValue {
                what: "fleet site count",
            });
        }
        let time = dec.u64()?;
        let f = dec.i64()?;
        let boundaries = dec.u64()?;
        let key_violations = dec.u64()?;
        let agg_violations = dec.u64()?;
        let max_err = dec.f64()?;
        if max_err.is_nan() || max_err < 0.0 {
            return Err(CodecError::BadValue {
                what: "fleet max relative error",
            });
        }
        let tracker_stats = CommStats::decode(dec)?;
        let n_shards = dec.seq_len("fleet shards", 8)?;
        if n_shards == 0 {
            return Err(CodecError::BadValue {
                what: "fleet shard count",
            });
        }
        let mut shards = Vec::with_capacity(n_shards);
        let mut total_updates: u64 = 0;
        for _ in 0..n_shards {
            let n_slots = dec.seq_len("fleet slots", 48)?;
            let mut records = Vec::with_capacity(n_slots);
            for _ in 0..n_slots {
                let key = dec.u64()?;
                let fk = dec.i64()?;
                let updates = dec.u64()?;
                let violations = dec.u64()?;
                let estimate = dec.i64()?;
                let state = dec.blob()?.to_vec();
                if state.is_empty() {
                    return Err(CodecError::BadValue {
                        what: "fleet slot state",
                    });
                }
                total_updates = total_updates.saturating_add(updates);
                records.push(SlotRecord {
                    key,
                    f: fk,
                    updates,
                    violations,
                    estimate,
                    state,
                });
            }
            shards.push(records);
        }
        dec.finish()?;
        // Every applied update belongs to exactly one key, so the
        // per-key counts must re-sum to the fleet clock.
        if total_updates != time {
            return Err(CodecError::Mismatch {
                what: "fleet per-key update total vs time",
                expected: time,
                found: total_updates,
            });
        }
        Ok(FleetCheckpoint {
            kind,
            k,
            time,
            f,
            boundaries,
            key_violations,
            agg_violations,
            max_err,
            tracker_stats,
            shards,
        })
    }
}

/// One slot's contribution to a [`FleetDelta`], positionally aligned
/// against the parent checkpoint's slot table. Slots are append-only per
/// shard, so a parent's records are always a positional prefix of its
/// child's — ops never need to carry reordering information.
#[derive(Debug, Clone, PartialEq)]
enum SlotOp {
    /// The record (key, scalars, and state bytes) is unchanged.
    Same,
    /// Same key; fresh scalars and a [`StateDelta`] over the state bytes.
    Delta {
        f: i64,
        updates: u64,
        violations: u64,
        estimate: i64,
        state: StateDelta,
    },
    /// A key appended since the parent, recorded in full.
    Full(SlotRecord),
}

/// A fleet checkpoint encoded as a diff against a **parent**
/// [`FleetCheckpoint`] — the `DSVF` v2 delta-chain shard-table variant.
///
/// Build one with [`TrackerFleet::checkpoint_delta`] (or
/// [`FleetDelta::between`] two explicit checkpoints); reconstruct the
/// child, bit-identically, with [`apply`](Self::apply) against the same
/// parent. The parent is pinned by the FNV-1a fingerprint of its full
/// wire form, so applying against the wrong parent — or a tampered one —
/// is a typed [`CodecError::Mismatch`], never silent corruption. Fleet
/// slot slabs are append-only per shard, so the parent's records are a
/// positional prefix of the child's: unchanged slots cost one tag byte,
/// touched slots a section-aware [`StateDelta`], and only keys that
/// first applied an update since the parent ship in full.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetDelta {
    parent_time: Time,
    parent_hash: u64,
    kind: TrackerKind,
    k: usize,
    time: Time,
    f: i64,
    boundaries: u64,
    key_violations: u64,
    agg_violations: u64,
    max_err: f64,
    tracker_stats: CommStats,
    shards: Vec<Vec<SlotOp>>,
}

impl FleetDelta {
    /// Diff `child` against `parent`. Both must come from the same fleet
    /// lineage: same kind, site count, and shard count, with the
    /// parent's slot table a positional key-prefix of the child's and
    /// the fleet clock advanced — anything else is a typed
    /// [`EngineError::CheckpointMismatch`].
    pub fn between(parent: &FleetCheckpoint, child: &FleetCheckpoint) -> Result<Self, EngineError> {
        if child.kind != parent.kind {
            return Err(EngineError::CheckpointMismatch {
                what: "tracker kind tag",
                expected: kind_tag(parent.kind) as u64,
                found: kind_tag(child.kind) as u64,
            });
        }
        if child.k != parent.k {
            return Err(EngineError::CheckpointMismatch {
                what: "site count",
                expected: parent.k as u64,
                found: child.k as u64,
            });
        }
        if child.shards.len() != parent.shards.len() {
            return Err(EngineError::CheckpointMismatch {
                what: "logical shard count",
                expected: parent.shards.len() as u64,
                found: child.shards.len() as u64,
            });
        }
        if child.time < parent.time {
            return Err(EngineError::CheckpointMismatch {
                what: "monotone fleet clock",
                expected: parent.time,
                found: child.time,
            });
        }
        let mut shards = Vec::with_capacity(child.shards.len());
        for (ps, cs) in parent.shards.iter().zip(&child.shards) {
            if cs.len() < ps.len() {
                return Err(EngineError::CheckpointMismatch {
                    what: "fleet slot prefix length",
                    expected: ps.len() as u64,
                    found: cs.len() as u64,
                });
            }
            let mut ops = Vec::with_capacity(cs.len());
            for (pr, cr) in ps.iter().zip(cs) {
                if cr.key != pr.key {
                    return Err(EngineError::CheckpointMismatch {
                        what: "fleet slot key prefix",
                        expected: pr.key,
                        found: cr.key,
                    });
                }
                if cr == pr {
                    ops.push(SlotOp::Same);
                } else {
                    ops.push(SlotOp::Delta {
                        f: cr.f,
                        updates: cr.updates,
                        violations: cr.violations,
                        estimate: cr.estimate,
                        state: StateDelta::diff(&pr.state, &cr.state),
                    });
                }
            }
            for cr in &cs[ps.len()..] {
                ops.push(SlotOp::Full(cr.clone()));
            }
            shards.push(ops);
        }
        Ok(FleetDelta {
            parent_time: parent.time,
            parent_hash: fingerprint(&parent.to_bytes()),
            kind: child.kind,
            k: child.k,
            time: child.time,
            f: child.f,
            boundaries: child.boundaries,
            key_violations: child.key_violations,
            agg_violations: child.agg_violations,
            max_err: child.max_err,
            tracker_stats: child.tracker_stats.clone(),
            shards,
        })
    }

    /// Reconstruct the child checkpoint this delta was diffed from,
    /// bit-identical to the original. `parent` must be the exact
    /// checkpoint the delta was built against (pinned by fingerprint);
    /// a wrong or tampered parent, a cross-wired state delta, or a
    /// shape mismatch is a typed [`CodecError`].
    pub fn apply(&self, parent: &FleetCheckpoint) -> Result<FleetCheckpoint, CodecError> {
        let found = fingerprint(&parent.to_bytes());
        if found != self.parent_hash {
            return Err(CodecError::Mismatch {
                what: "fleet delta parent fingerprint",
                expected: self.parent_hash,
                found,
            });
        }
        if self.shards.len() != parent.shards.len() {
            return Err(CodecError::Mismatch {
                what: "fleet delta shard count",
                expected: parent.shards.len() as u64,
                found: self.shards.len() as u64,
            });
        }
        let mut shards = Vec::with_capacity(self.shards.len());
        let mut total_updates: u64 = 0;
        for (ops, ps) in self.shards.iter().zip(&parent.shards) {
            let aligned = ops
                .iter()
                .take_while(|op| !matches!(op, SlotOp::Full(_)))
                .count();
            if aligned != ps.len() {
                return Err(CodecError::Mismatch {
                    what: "fleet delta aligned ops vs parent slots",
                    expected: ps.len() as u64,
                    found: aligned as u64,
                });
            }
            let mut records = Vec::with_capacity(ops.len());
            for (i, op) in ops.iter().enumerate() {
                let rec = match op {
                    SlotOp::Same => ps[i].clone(),
                    SlotOp::Delta {
                        f,
                        updates,
                        violations,
                        estimate,
                        state,
                    } => SlotRecord {
                        key: ps[i].key,
                        f: *f,
                        updates: *updates,
                        violations: *violations,
                        estimate: *estimate,
                        state: state.apply(&ps[i].state)?,
                    },
                    SlotOp::Full(rec) => rec.clone(),
                };
                total_updates = total_updates.saturating_add(rec.updates);
                records.push(rec);
            }
            shards.push(records);
        }
        if total_updates != self.time {
            return Err(CodecError::Mismatch {
                what: "fleet per-key update total vs time",
                expected: self.time,
                found: total_updates,
            });
        }
        Ok(FleetCheckpoint {
            kind: self.kind,
            k: self.k,
            time: self.time,
            f: self.f,
            boundaries: self.boundaries,
            key_violations: self.key_violations,
            agg_violations: self.agg_violations,
            max_err: self.max_err,
            tracker_stats: self.tracker_stats.clone(),
            shards,
        })
    }

    /// Fleet clock of the parent this delta chains from.
    pub fn parent_time(&self) -> Time {
        self.parent_time
    }

    /// Fleet clock of the child this delta reconstructs.
    pub fn time(&self) -> Time {
        self.time
    }

    /// Serialize to the versioned wire form (`DSVF` v2, delta table).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut enc = Enc::new();
        enc.magic(FLEET_MAGIC, FLEET_VERSION);
        enc.u8(TABLE_DELTA);
        enc.u64(self.parent_time);
        enc.u64(self.parent_hash);
        enc.u8(kind_tag(self.kind));
        enc.usize(self.k);
        enc.u64(self.time);
        enc.i64(self.f);
        enc.u64(self.boundaries);
        enc.u64(self.key_violations);
        enc.u64(self.agg_violations);
        enc.f64(self.max_err);
        self.tracker_stats.encode(&mut enc);
        enc.seq_len(self.shards.len());
        for ops in &self.shards {
            enc.seq_len(ops.len());
            for op in ops {
                match op {
                    SlotOp::Same => enc.u8(0),
                    SlotOp::Delta {
                        f,
                        updates,
                        violations,
                        estimate,
                        state,
                    } => {
                        enc.u8(1);
                        enc.i64(*f);
                        enc.u64(*updates);
                        enc.u64(*violations);
                        enc.i64(*estimate);
                        state.encode(&mut enc);
                    }
                    SlotOp::Full(rec) => {
                        enc.u8(2);
                        enc.u64(rec.key);
                        enc.i64(rec.f);
                        enc.u64(rec.updates);
                        enc.u64(rec.violations);
                        enc.i64(rec.estimate);
                        enc.blob(&rec.state);
                    }
                }
            }
        }
        enc.into_bytes()
    }

    /// Decode the versioned wire form, requiring exact consumption, the
    /// delta table variant, and per-shard op order (full records only
    /// after the aligned prefix). Truncated, corrupted, or version-skewed
    /// payloads decode to typed [`CodecError`]s, never panics.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CodecError> {
        let mut dec = Dec::new(bytes);
        let version = dec.magic(FLEET_MAGIC, FLEET_VERSION)?;
        if version < 2 {
            return Err(CodecError::BadValue {
                what: "fleet delta table requires format v2",
            });
        }
        match dec.u8()? {
            TABLE_DELTA => {}
            TABLE_FULL => {
                return Err(CodecError::BadValue {
                    what: "fleet table variant (full tables decode with FleetCheckpoint)",
                })
            }
            tag => {
                return Err(CodecError::BadTag {
                    what: "fleet table variant",
                    tag: tag as u64,
                })
            }
        }
        let parent_time = dec.u64()?;
        let parent_hash = dec.u64()?;
        let tag = dec.u8()?;
        let kind = kind_from_tag(tag).ok_or(CodecError::BadTag {
            what: "fleet tracker kind",
            tag: tag as u64,
        })?;
        let k = dec.usize()?;
        if k == 0 {
            return Err(CodecError::BadValue {
                what: "fleet site count",
            });
        }
        let time = dec.u64()?;
        let f = dec.i64()?;
        let boundaries = dec.u64()?;
        let key_violations = dec.u64()?;
        let agg_violations = dec.u64()?;
        let max_err = dec.f64()?;
        if max_err.is_nan() || max_err < 0.0 {
            return Err(CodecError::BadValue {
                what: "fleet max relative error",
            });
        }
        let tracker_stats = CommStats::decode(&mut dec)?;
        let n_shards = dec.seq_len("fleet shards", 8)?;
        if n_shards == 0 {
            return Err(CodecError::BadValue {
                what: "fleet shard count",
            });
        }
        let mut shards = Vec::with_capacity(n_shards);
        for _ in 0..n_shards {
            let n_ops = dec.seq_len("fleet delta ops", 1)?;
            let mut ops = Vec::with_capacity(n_ops);
            let mut appending = false;
            for _ in 0..n_ops {
                let op = match dec.u8()? {
                    0 => SlotOp::Same,
                    1 => SlotOp::Delta {
                        f: dec.i64()?,
                        updates: dec.u64()?,
                        violations: dec.u64()?,
                        estimate: dec.i64()?,
                        state: StateDelta::decode(&mut dec)?,
                    },
                    2 => {
                        appending = true;
                        let key = dec.u64()?;
                        let fk = dec.i64()?;
                        let updates = dec.u64()?;
                        let violations = dec.u64()?;
                        let estimate = dec.i64()?;
                        let state = dec.blob()?.to_vec();
                        if state.is_empty() {
                            return Err(CodecError::BadValue {
                                what: "fleet slot state",
                            });
                        }
                        SlotOp::Full(SlotRecord {
                            key,
                            f: fk,
                            updates,
                            violations,
                            estimate,
                            state,
                        })
                    }
                    tag => {
                        return Err(CodecError::BadTag {
                            what: "fleet delta slot op",
                            tag: tag as u64,
                        })
                    }
                };
                if appending && !matches!(op, SlotOp::Full(_)) {
                    return Err(CodecError::BadValue {
                        what: "fleet delta op order (aligned op after appended record)",
                    });
                }
                ops.push(op);
            }
            shards.push(ops);
        }
        dec.finish()?;
        Ok(FleetDelta {
            parent_time,
            parent_hash,
            kind,
            k,
            time,
            f,
            boundaries,
            key_violations,
            agg_violations,
            max_err,
            tracker_stats,
            shards,
        })
    }
}

/// Scalars snapshotted at run start so reports cover just the run.
struct Mark {
    time: Time,
    boundaries: u64,
    key_violations: u64,
    agg_violations: u64,
}

/// A multi-tenant fleet of keyed trackers: every key gets the exact
/// per-function behavior of a standalone tracker built from the same
/// spec, and the fleet serves updates, queries, audits, checkpoints, and
/// pipelined ingestion over all of them at once. See the module docs for
/// the slab/batching design.
pub struct TrackerFleet<T, In: Copy> {
    cfg: EngineConfig,
    factory: Arc<dyn Fn() -> Result<T, BuildError> + Send + Sync>,
    /// Snapshot of a fresh tracker: the rehydration source for keys that
    /// have never applied an update.
    proto: Arc<TrackerState>,
    /// A fresh tracker's ledger, charged once per key on first apply.
    proto_stats: Arc<CommStats>,
    kind: TrackerKind,
    k: usize,
    deletions_ok: bool,
    shards: Vec<ShardSlab<T, In>>,
    /// Updates applied (the fleet clock; staged updates not included).
    time: Time,
    /// Fleet-wide ground truth Σ_key f_key.
    f: i64,
    /// Fleet-wide Σ_key boundary estimates.
    agg_estimate: i64,
    boundaries: u64,
    key_violations: u64,
    agg_violations: u64,
    max_err: f64,
    tracker_stats: CommStats,
    ingest_stats: IngestStats,
    staged_total: usize,
    /// Last staged key's routing, so bursty streams skip the shard hash
    /// and index probe. Never stale: a key's shard is pure in `(key, S)`
    /// and slot ids are append-only. `memo_slot == NONE_U32` means empty.
    memo_key: u64,
    memo_shard: u32,
    memo_slot: u32,
}

/// A fleet of counter trackers (`i64` deltas per key).
pub type CounterFleet = TrackerFleet<Box<dyn Tracker + Send>, i64>;

/// A fleet of item-frequency trackers (`(item, delta)` inputs per key).
pub type ItemFleet = TrackerFleet<Box<dyn ItemTracker + Send>, (u64, i64)>;

impl<T, In> TrackerFleet<T, In>
where
    T: Tracker<In> + Send,
    In: ConsolidateInput + Send,
{
    /// Build a fleet whose keys each track with a tracker from `factory`.
    ///
    /// The factory is keyless on purpose: every key must behave exactly
    /// like the same standalone tracker (same spec, same seeds), which is
    /// the fleet's bit-identity contract. `cfg.shards` fixes the key →
    /// shard routing for the fleet's lifetime; `cfg.workers` and
    /// `cfg.fleet_cache` are pure execution knobs.
    pub fn with_factory<F>(cfg: EngineConfig, factory: F) -> Result<Self, EngineError>
    where
        F: Fn() -> Result<T, BuildError> + Send + Sync + 'static,
    {
        cfg.validate()?;
        let factory: Arc<dyn Fn() -> Result<T, BuildError> + Send + Sync> = Arc::new(factory);
        let prototype = factory().map_err(EngineError::Build)?;
        let proto = Arc::new(prototype.snapshot().map_err(EngineError::Codec)?);
        let proto_stats = Arc::new(prototype.stats().clone());
        let kind = prototype.kind();
        let k = prototype.k();
        let shards = (0..cfg.shards_count())
            .map(|_| ShardSlab::new(kind, k))
            .collect();
        Ok(TrackerFleet {
            cfg,
            factory,
            proto,
            proto_stats,
            kind,
            k,
            deletions_ok: kind.supports_deletions(),
            shards,
            time: 0,
            f: 0,
            agg_estimate: 0,
            boundaries: 0,
            key_violations: 0,
            agg_violations: 0,
            max_err: 0.0,
            tracker_stats: CommStats::new(),
            ingest_stats: IngestStats::new(),
            staged_total: 0,
            memo_key: 0,
            memo_shard: 0,
            memo_slot: NONE_U32,
        })
    }

    /// Rebuild a fleet from a [`FleetCheckpoint`]: `factory` must
    /// reproduce the original build (same spec — kind, k, ε, seeds), and
    /// `cfg` must agree on the **logical** shard count. The worker count
    /// and cache capacity are free — resuming onto different ones is the
    /// rescaling seam, and is exact.
    pub fn with_factory_resume<F>(
        cfg: EngineConfig,
        ckpt: &FleetCheckpoint,
        factory: F,
    ) -> Result<Self, EngineError>
    where
        F: Fn() -> Result<T, BuildError> + Send + Sync + 'static,
    {
        if cfg.shards_count() != ckpt.shards() {
            return Err(EngineError::CheckpointMismatch {
                what: "logical shard count",
                expected: cfg.shards_count() as u64,
                found: ckpt.shards() as u64,
            });
        }
        let mut fleet = Self::with_factory(cfg, factory)?;
        if fleet.kind != ckpt.kind {
            return Err(EngineError::CheckpointMismatch {
                what: "tracker kind tag",
                expected: kind_tag(fleet.kind) as u64,
                found: kind_tag(ckpt.kind) as u64,
            });
        }
        if fleet.k != ckpt.k {
            return Err(EngineError::CheckpointMismatch {
                what: "site count",
                expected: fleet.k as u64,
                found: ckpt.k as u64,
            });
        }
        let n_shards = fleet.shards.len() as u64;
        for (s, records) in ckpt.shards.iter().enumerate() {
            for rec in records {
                let route = hash_item(rec.key) % n_shards;
                if route != s as u64 {
                    return Err(EngineError::CheckpointMismatch {
                        what: "key → shard routing",
                        expected: s as u64,
                        found: route,
                    });
                }
                let shard = &mut fleet.shards[s];
                if shard.index.get(rec.key).is_some() {
                    return Err(EngineError::CheckpointMismatch {
                        what: "unique fleet keys per shard",
                        expected: 1,
                        found: 2,
                    });
                }
                let sid = shard.slots.len() as u32;
                shard.slots.push(Slot {
                    key: rec.key,
                    off: shard.arena.len(),
                    len: rec.state.len() as u32,
                    cached: NONE_U32,
                    head: NONE_U32,
                    tail: NONE_U32,
                    estimate: rec.estimate,
                    f: rec.f,
                    updates: rec.updates,
                    violations: rec.violations,
                });
                shard.arena.extend_from_slice(&rec.state);
                shard.index.insert(rec.key, sid);
                fleet.agg_estimate += rec.estimate;
            }
        }
        fleet.time = ckpt.time;
        fleet.f = ckpt.f;
        fleet.boundaries = ckpt.boundaries;
        fleet.key_violations = ckpt.key_violations;
        fleet.agg_violations = ckpt.agg_violations;
        fleet.max_err = ckpt.max_err;
        fleet.tracker_stats = ckpt.tracker_stats.clone();
        Ok(fleet)
    }

    /// The fleet configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// The tracker kind every key runs.
    pub fn kind(&self) -> TrackerKind {
        self.kind
    }

    /// Sites per keyed tracker.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Updates applied (staged updates not yet included).
    pub fn time(&self) -> Time {
        self.time
    }

    /// Fleet-wide ground truth Σ_key f_key.
    pub fn f(&self) -> i64 {
        self.f
    }

    /// Fleet-wide Σ_key boundary estimates.
    pub fn aggregate_estimate(&self) -> i64 {
        self.agg_estimate
    }

    /// Live keys across the fleet.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.slots.len()).sum()
    }

    /// True before the first key is seen.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.slots.is_empty())
    }

    /// Batch boundaries cut so far.
    pub fn boundaries(&self) -> u64 {
        self.boundaries
    }

    /// Per-key boundary ε-violations so far.
    pub fn key_violations(&self) -> u64 {
        self.key_violations
    }

    /// Aggregate (Σf vs Σf̂) boundary ε-violations so far.
    pub fn aggregate_violations(&self) -> u64 {
        self.agg_violations
    }

    /// Worst per-key boundary relative error seen so far.
    pub fn max_rel_err(&self) -> f64 {
        self.max_err
    }

    /// Cumulative in-protocol traffic, summed over every key's tracker —
    /// exactly Σ_key of what each key's standalone twin would report.
    pub fn comm_stats(&self) -> &CommStats {
        &self.tracker_stats
    }

    /// Cumulative pipelined-ingestion ledger.
    pub fn ingest_stats(&self) -> &IngestStats {
        &self.ingest_stats
    }

    /// The logical shard owning `key` — a pure function of the key and
    /// the shard count, stable across workers, rescaling, and resume.
    pub fn shard_of(&self, key: u64) -> usize {
        (hash_item(key) % self.shards.len() as u64) as usize
    }

    /// Memory accounting summed over shards.
    pub fn memory(&self) -> FleetMemory {
        let mut mem = FleetMemory::default();
        for shard in &self.shards {
            shard.memory_into(&mut mem);
        }
        mem
    }

    /// Stage one update for `key` at site 0 (single-site convenience).
    pub fn update(&mut self, key: u64, input: In) -> Result<(), EngineError> {
        self.update_at(key, 0, input)
    }

    /// Stage one update for `key` arriving at `site`, cutting a batch
    /// boundary automatically once `cfg.batch` updates are staged.
    pub fn update_at(&mut self, key: u64, site: SiteId, input: In) -> Result<(), EngineError> {
        if site >= self.k {
            return Err(RunError::SiteOutOfRange {
                site,
                k: self.k,
                time: self.time + self.staged_total as u64 + 1,
            }
            .into());
        }
        if !self.deletions_ok && input.delta_of() < 0 {
            return Err(RunError::DeletionUnsupported {
                kind: self.kind,
                time: self.time + self.staged_total as u64 + 1,
            }
            .into());
        }
        if self.memo_slot != NONE_U32 && key == self.memo_key {
            self.shards[self.memo_shard as usize].stage_at(self.memo_slot, site, input);
        } else {
            let s = self.shard_of(key);
            let sid = self.shards[s].stage(key, site, input);
            self.memo_key = key;
            self.memo_shard = s as u32;
            self.memo_slot = sid;
        }
        self.staged_total += 1;
        if self.staged_total >= self.cfg.batch_size() {
            self.flush()?;
        }
        Ok(())
    }

    /// Cut a batch boundary now: apply every staged chain, audit every
    /// touched key (and the fleet aggregate) against ε, and advance the
    /// clock. A no-op when nothing is staged.
    pub fn flush(&mut self) -> Result<(), EngineError> {
        if self.staged_total == 0 {
            return Ok(());
        }
        let n = self.staged_total as u64;
        let workers = self.cfg.workers_count().min(self.shards.len()).max(1);
        let eps = self.cfg.eps_value();
        let cap = self.cfg.fleet_cache_capacity();
        let gc_floor = self.cfg.fleet_gc_floor();
        let consolidate = self.cfg.consolidate_enabled();
        let factory = Arc::clone(&self.factory);
        let proto = Arc::clone(&self.proto);
        let proto_stats = Arc::clone(&self.proto_stats);
        let mut outs: Vec<(usize, ApplyOut)> = Vec::new();
        if workers <= 1 {
            for (sid, shard) in self.shards.iter_mut().enumerate() {
                if shard.touched.is_empty() {
                    continue;
                }
                outs.push((
                    sid,
                    shard.apply(
                        eps,
                        &*factory,
                        &proto,
                        &proto_stats,
                        cap,
                        gc_floor,
                        consolidate,
                    )?,
                ));
            }
        } else {
            let mut groups: Vec<Vec<(usize, &mut ShardSlab<T, In>)>> =
                (0..workers).map(|_| Vec::new()).collect();
            for (sid, shard) in self.shards.iter_mut().enumerate() {
                if shard.touched.is_empty() {
                    continue;
                }
                groups[sid % workers].push((sid, shard));
            }
            let results = std::thread::scope(|scope| {
                let handles: Vec<_> = groups
                    .into_iter()
                    .filter(|g| !g.is_empty())
                    .map(|group| {
                        let factory = Arc::clone(&factory);
                        let proto = Arc::clone(&proto);
                        let proto_stats = Arc::clone(&proto_stats);
                        scope.spawn(move || -> Result<Vec<(usize, ApplyOut)>, EngineError> {
                            let mut outs = Vec::with_capacity(group.len());
                            for (sid, shard) in group {
                                outs.push((
                                    sid,
                                    shard.apply(
                                        eps,
                                        &*factory,
                                        &proto,
                                        &proto_stats,
                                        cap,
                                        gc_floor,
                                        consolidate,
                                    )?,
                                ));
                            }
                            Ok(outs)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("fleet worker panicked"))
                    .collect::<Vec<_>>()
            });
            for r in results {
                outs.extend(r?);
            }
        }
        // Reconcile in shard order so worker placement never shows in
        // any scalar or ledger.
        outs.sort_unstable_by_key(|&(sid, _)| sid);
        for (_, out) in &outs {
            self.f += out.f_delta;
            self.agg_estimate += out.est_delta;
            self.key_violations += out.violations;
            if out.max_err > self.max_err {
                self.max_err = out.max_err;
            }
            self.tracker_stats.merge(&out.stats_delta);
        }
        self.time += n;
        self.staged_total = 0;
        self.boundaries += 1;
        // Aggregate ε-audit: the fleet-wide Σf̂ versus Σf. Each term is
        // ε-accurate, so the sum of one-signed truths is too; the audit
        // records when mixed-sign cancellation breaks that.
        if relative_error(self.f, self.agg_estimate) > eps * (1.0 + 1e-12) {
            self.agg_violations += 1;
        }
        Ok(())
    }

    /// The key's estimate as of the last batch boundary (`None` for a
    /// never-seen key; 0 for a key staged but not yet flushed).
    pub fn estimate(&self, key: u64) -> Option<i64> {
        let shard = &self.shards[self.shard_of(key)];
        shard
            .index
            .get(key)
            .map(|sid| shard.slots[sid as usize].estimate)
    }

    /// The key's full audit line (`None` for a never-seen key).
    pub fn key_audit(&self, key: u64) -> Option<KeyAudit> {
        let shard = &self.shards[self.shard_of(key)];
        shard.index.get(key).map(|sid| {
            let slot = &shard.slots[sid as usize];
            KeyAudit {
                key: slot.key,
                f: slot.f,
                estimate: slot.estimate,
                updates: slot.updates,
                violations: slot.violations,
            }
        })
    }

    /// The `k` keys with the largest boundary estimates, descending, ties
    /// broken toward the smaller key. One heap pass over the slots —
    /// `O(keys · log k)`, no per-key tracker is touched.
    pub fn top_k(&self, k: usize) -> Vec<(u64, i64)> {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        if k == 0 {
            return Vec::new();
        }
        let mut heap: BinaryHeap<Reverse<(i64, Reverse<u64>)>> = BinaryHeap::with_capacity(k + 1);
        for shard in &self.shards {
            for slot in &shard.slots {
                heap.push(Reverse((slot.estimate, Reverse(slot.key))));
                if heap.len() > k {
                    heap.pop();
                }
            }
        }
        let mut out: Vec<(u64, i64)> = heap
            .into_iter()
            .map(|Reverse((est, Reverse(key)))| (key, est))
            .collect();
        out.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        out
    }

    /// Change the worker count for subsequent boundaries. Workers are a
    /// pure execution knob: estimates, audits, ledgers, and checkpoint
    /// bytes are bit-identical for any count ≥ 1.
    pub fn rescale(&mut self, workers: usize) -> Result<(), EngineError> {
        if workers == 0 {
            return Err(EngineError::ZeroWorkers);
        }
        self.cfg = self.cfg.workers(workers);
        Ok(())
    }

    /// Run a keyed stream synchronously: stage every `(key, input)` at
    /// site 0 in order, cut the final boundary, and report.
    pub fn run(&mut self, stream: &[(u64, In)]) -> Result<FleetReport, EngineError> {
        let started = Instant::now();
        let mark = self.mark();
        for &(key, input) in stream {
            self.update_at(key, 0, input)?;
        }
        self.flush()?;
        Ok(self.finish_report(mark, started))
    }

    /// Checkpoint the whole fleet. Cuts a boundary first (staged updates
    /// are applied — a checkpoint mid-batch is an early boundary), then
    /// serializes every key without disturbing the cache.
    pub fn checkpoint(&mut self) -> Result<FleetCheckpoint, EngineError> {
        self.flush()?;
        let mut shards = Vec::with_capacity(self.shards.len());
        for shard in &self.shards {
            shards.push(shard.records(&self.proto)?);
        }
        Ok(FleetCheckpoint {
            kind: self.kind,
            k: self.k,
            time: self.time,
            f: self.f,
            boundaries: self.boundaries,
            key_violations: self.key_violations,
            agg_violations: self.agg_violations,
            max_err: self.max_err,
            tracker_stats: self.tracker_stats.clone(),
            shards,
        })
    }

    /// Checkpoint the whole fleet as a [`FleetDelta`] against `parent`
    /// (normally this fleet's previous checkpoint): cuts a boundary like
    /// [`checkpoint`](Self::checkpoint), then diffs the slot table so
    /// untouched keys cost one byte, touched keys a section-aware
    /// [`StateDelta`], and only newly applied keys ship in full.
    /// `delta.apply(&parent)` reconstructs the full checkpoint
    /// bit-identically.
    pub fn checkpoint_delta(
        &mut self,
        parent: &FleetCheckpoint,
    ) -> Result<FleetDelta, EngineError> {
        let child = self.checkpoint()?;
        FleetDelta::between(parent, &child)
    }

    /// Run with pipelined keyed ingestion: one bounded queue per feed,
    /// the feeder closure producing `(key, input)` pushes on the caller
    /// thread while a driver drains feeds in index order, one batch-sized
    /// round per feed per cycle (so the boundary schedule is a pure
    /// function of the pushed sequences — bit-identical to [`Self::run`] for a
    /// single feed). `sites[i]` is the site feed `i`'s traffic arrives
    /// at. Dropping or closing every handle ends the run; handles are
    /// force-closed after the feeder returns.
    pub fn run_pipelined<F>(
        &mut self,
        sites: &[SiteId],
        feeder: F,
    ) -> Result<FleetReport, EngineError>
    where
        F: FnOnce(Vec<FleetFeed<In>>),
    {
        let started = Instant::now();
        for &site in sites {
            if site >= self.k {
                return Err(RunError::SiteOutOfRange {
                    site,
                    k: self.k,
                    time: self.time,
                }
                .into());
            }
        }
        let mark = self.mark();
        let batch = self.cfg.batch_size();
        let queue_cap = self.cfg.queue_capacity_value();
        let policy = self.cfg.backpressure_policy();
        let deletions_ok = self.deletions_ok;
        let rings: Vec<Arc<Ring<(u64, In)>>> = sites
            .iter()
            .map(|_| Arc::new(Ring::new(queue_cap)))
            .collect();
        let handles: Vec<FleetFeed<In>> = rings
            .iter()
            .enumerate()
            .map(|(i, ring)| FleetFeed::new(Arc::clone(ring), i, policy, deletions_ok))
            .collect();
        let fleet = &mut *self;
        let outcome = std::thread::scope(|scope| {
            let rings = &rings;
            let driver = scope.spawn(move || -> Result<(), EngineError> {
                let mut buf: Vec<(u64, In)> = Vec::with_capacity(batch);
                let mut done = vec![false; rings.len()];
                let drive = (|| -> Result<(), EngineError> {
                    loop {
                        let mut any = false;
                        for fi in 0..rings.len() {
                            if done[fi] {
                                continue;
                            }
                            buf.clear();
                            rings[fi].pop_round(&mut buf, batch);
                            if buf.len() < batch {
                                done[fi] = true;
                            }
                            if buf.is_empty() {
                                continue;
                            }
                            any = true;
                            let site = sites[fi];
                            for &(key, input) in buf.iter() {
                                fleet.update_at(key, site, input)?;
                            }
                        }
                        if !any {
                            return Ok(());
                        }
                    }
                })();
                let result = drive.and_then(|()| fleet.flush());
                if result.is_err() {
                    // Unblock any feeder still pushing before surfacing
                    // the error.
                    for ring in rings.iter() {
                        ring.close();
                    }
                }
                result
            });
            feeder(handles);
            for ring in rings.iter() {
                ring.close();
            }
            driver.join().expect("fleet pipeline driver panicked")
        });
        for ring in &rings {
            ring.drain_stats(&mut self.ingest_stats);
        }
        outcome?;
        Ok(self.finish_report(mark, started))
    }

    fn mark(&self) -> Mark {
        Mark {
            time: self.time,
            boundaries: self.boundaries,
            key_violations: self.key_violations,
            agg_violations: self.agg_violations,
        }
    }

    fn finish_report(&self, mark: Mark, started: Instant) -> FleetReport {
        FleetReport {
            n: self.time - mark.time,
            boundaries: self.boundaries - mark.boundaries,
            live_keys: self.len() as u64,
            shards: self.cfg.shards_count(),
            workers: self.cfg.workers_count(),
            batch: self.cfg.batch_size(),
            final_f: self.f,
            final_estimate: self.agg_estimate,
            key_violations: self.key_violations - mark.key_violations,
            aggregate_violations: self.agg_violations - mark.agg_violations,
            max_rel_err: self.max_err,
            tracker_stats: self.tracker_stats.clone(),
            ingest_stats: self.ingest_stats.clone(),
            elapsed: started.elapsed(),
        }
    }
}

impl CounterFleet {
    /// A fleet of counter trackers, every key built from `spec`.
    pub fn counters(spec: TrackerSpec, cfg: EngineConfig) -> Result<Self, EngineError> {
        Self::with_factory(cfg, move || spec.build())
    }

    /// Resume a counter fleet from a checkpoint taken under `spec`.
    pub fn resume(
        spec: TrackerSpec,
        cfg: EngineConfig,
        ckpt: &FleetCheckpoint,
    ) -> Result<Self, EngineError> {
        Self::with_factory_resume(cfg, ckpt, move || spec.build())
    }
}

impl ItemFleet {
    /// A fleet of item-frequency trackers, every key built from `spec`.
    pub fn items(spec: TrackerSpec, cfg: EngineConfig) -> Result<Self, EngineError> {
        Self::with_factory(cfg, move || spec.build_item())
    }

    /// Resume an item fleet from a checkpoint taken under `spec`.
    pub fn resume(
        spec: TrackerSpec,
        cfg: EngineConfig,
        ckpt: &FleetCheckpoint,
    ) -> Result<Self, EngineError> {
        Self::with_factory_resume(cfg, ckpt, move || spec.build_item())
    }
}

impl<T> TrackerFleet<T, (u64, i64)>
where
    T: ItemTracker + Send,
{
    /// The key's per-item frequency estimate as of the last boundary.
    /// Materializes the key's tracker (possibly evicting another), which
    /// is why this takes `&mut self`; results are unaffected.
    pub fn estimate_item(&mut self, key: u64, item: u64) -> Result<i64, EngineError> {
        let cap = self.cfg.fleet_cache_capacity();
        let s = self.shard_of(key);
        let factory = Arc::clone(&self.factory);
        let proto = Arc::clone(&self.proto);
        let shard = &mut self.shards[s];
        let Some(sid) = shard.index.get(key) else {
            return Err(EngineError::UnknownKey { key });
        };
        let ci = shard.materialize(sid, &*factory, proto.as_ref(), cap)?;
        Ok(shard.cache[ci].tracker.estimate_item(item))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> TrackerSpec {
        TrackerSpec::new(TrackerKind::Deterministic).eps(0.1)
    }

    fn cfg() -> EngineConfig {
        EngineConfig::new(4, 8).eps(0.1)
    }

    #[test]
    fn key_index_handles_growth_and_key_zero() {
        let mut idx = KeyIndex::new();
        for i in 0..1000u64 {
            idx.insert(i * 7, i as u32);
        }
        for i in 0..1000u64 {
            assert_eq!(idx.get(i * 7), Some(i as u32), "key {}", i * 7);
        }
        assert_eq!(idx.get(1), None);
        assert_eq!(idx.get(0), Some(0));
    }

    #[test]
    fn fleet_tracks_many_keys_with_per_key_truth() {
        let mut fleet = CounterFleet::counters(spec(), cfg()).unwrap();
        for round in 0..10 {
            for key in 0..50u64 {
                fleet.update(key, 1 + (key as i64 % 3)).unwrap();
            }
            let _ = round;
        }
        fleet.flush().unwrap();
        assert_eq!(fleet.len(), 50);
        assert_eq!(fleet.time(), 500);
        for key in 0..50u64 {
            let audit = fleet.key_audit(key).unwrap();
            assert_eq!(audit.f, 10 * (1 + (key as i64 % 3)));
            assert_eq!(audit.updates, 10);
            assert_eq!(audit.violations, 0, "key {key} violated ε");
        }
        assert_eq!(
            fleet.f(),
            (0..50u64).map(|k| 10 * (1 + (k as i64 % 3))).sum::<i64>()
        );
        assert_eq!(fleet.key_violations(), 0);
        assert!(fleet.max_rel_err() <= 0.1 * (1.0 + 1e-12));
        assert_eq!(fleet.estimate(999), None);
        assert!(fleet.key_audit(999).is_none());
    }

    #[test]
    fn tiny_cache_matches_large_cache_bit_for_bit() {
        let run = |cache: usize| {
            let mut fleet = CounterFleet::counters(spec(), cfg().fleet_cache(cache)).unwrap();
            let mut state = 0x9E37u64;
            for t in 0..600 {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let key = (state >> 33) % 37;
                fleet.update(key, 1 + (t % 4)).unwrap();
            }
            fleet.flush().unwrap();
            (
                (0..37u64).map(|k| fleet.estimate(k)).collect::<Vec<_>>(),
                fleet.comm_stats().clone(),
                fleet.checkpoint().unwrap().to_bytes(),
            )
        };
        let tiny = run(1);
        let large = run(1024);
        assert_eq!(tiny.0, large.0, "estimates differ across cache sizes");
        assert_eq!(tiny.1, large.1, "ledgers differ across cache sizes");
        assert_eq!(
            tiny.2, large.2,
            "checkpoint bytes differ across cache sizes"
        );
    }

    #[test]
    fn worker_count_is_invisible_in_results() {
        let run = |workers: usize| {
            let mut fleet = CounterFleet::counters(spec(), cfg().workers(workers)).unwrap();
            for t in 0..400u64 {
                fleet.update(t % 23, 2).unwrap();
            }
            fleet.flush().unwrap();
            fleet.checkpoint().unwrap().to_bytes()
        };
        assert_eq!(run(1), run(3));
        assert_eq!(run(1), run(8));
    }

    #[test]
    fn rescale_mid_stream_is_exact() {
        let mut straight = CounterFleet::counters(spec(), cfg()).unwrap();
        let mut rescaled = CounterFleet::counters(spec(), cfg()).unwrap();
        for t in 0..150u64 {
            straight.update(t % 11, 1).unwrap();
            rescaled.update(t % 11, 1).unwrap();
            if t == 70 {
                rescaled.rescale(5).unwrap();
            }
        }
        straight.flush().unwrap();
        rescaled.flush().unwrap();
        assert_eq!(
            straight.checkpoint().unwrap().to_bytes(),
            rescaled.checkpoint().unwrap().to_bytes()
        );
        assert!(matches!(rescaled.rescale(0), Err(EngineError::ZeroWorkers)));
    }

    #[test]
    fn checkpoint_resume_continues_bit_identically() {
        let mut fleet = CounterFleet::counters(spec(), cfg()).unwrap();
        for t in 0..300u64 {
            fleet.update(t % 17, 1 + (t as i64 % 2)).unwrap();
        }
        let ckpt = fleet.checkpoint().unwrap();
        let bytes = ckpt.to_bytes();
        let back = FleetCheckpoint::from_bytes(&bytes).unwrap();
        assert_eq!(back, ckpt);
        assert_eq!(back.keys(), 17);

        let mut resumed = CounterFleet::resume(spec(), cfg().workers(4), &back).unwrap();
        assert_eq!(resumed.time(), fleet.time());
        assert_eq!(resumed.f(), fleet.f());
        for t in 300..500u64 {
            fleet.update(t % 17, 1 + (t as i64 % 2)).unwrap();
            resumed.update(t % 17, 1 + (t as i64 % 2)).unwrap();
        }
        fleet.flush().unwrap();
        resumed.flush().unwrap();
        for key in 0..17u64 {
            assert_eq!(resumed.estimate(key), fleet.estimate(key), "key {key}");
            assert_eq!(resumed.key_audit(key), fleet.key_audit(key), "key {key}");
        }
        assert_eq!(resumed.comm_stats(), fleet.comm_stats());
        assert_eq!(
            resumed.checkpoint().unwrap().to_bytes(),
            fleet.checkpoint().unwrap().to_bytes()
        );
    }

    #[test]
    fn resume_rejects_mismatched_shape() {
        let mut fleet = CounterFleet::counters(spec(), cfg()).unwrap();
        fleet.update(1, 1).unwrap();
        let ckpt = fleet.checkpoint().unwrap();
        assert!(matches!(
            CounterFleet::resume(spec(), EngineConfig::new(8, 8).eps(0.1), &ckpt),
            Err(EngineError::CheckpointMismatch {
                what: "logical shard count",
                ..
            })
        ));
        assert!(matches!(
            CounterFleet::resume(TrackerSpec::new(TrackerKind::Naive).eps(0.1), cfg(), &ckpt),
            Err(EngineError::CheckpointMismatch {
                what: "tracker kind tag",
                ..
            })
        ));
        assert!(matches!(
            CounterFleet::resume(
                TrackerSpec::new(TrackerKind::Deterministic).k(2).eps(0.1),
                cfg(),
                &ckpt
            ),
            Err(EngineError::CheckpointMismatch {
                what: "site count",
                ..
            })
        ));
    }

    #[test]
    fn top_k_orders_by_estimate_then_smaller_key() {
        let mut fleet = CounterFleet::counters(spec(), cfg()).unwrap();
        for (key, n) in [(5u64, 30i64), (9, 30), (2, 50), (7, 10)] {
            for _ in 0..n {
                fleet.update(key, 1).unwrap();
            }
        }
        fleet.flush().unwrap();
        let top = fleet.top_k(3);
        assert_eq!(top.len(), 3);
        assert_eq!(top[0].0, 2);
        assert_eq!(top[1].0, 5, "tie must break toward the smaller key");
        assert_eq!(top[2].0, 9);
        assert!(top[0].1 >= top[1].1 && top[1].1 >= top[2].1);
        assert_eq!(fleet.top_k(0), Vec::new());
        assert_eq!(fleet.top_k(10).len(), 4);
    }

    #[test]
    fn item_fleet_estimates_per_key_items() {
        let spec = TrackerSpec::new(TrackerKind::ExactFreq)
            .k(2)
            .eps(0.25)
            .universe(64);
        let mut fleet = ItemFleet::items(spec, cfg()).unwrap();
        for _ in 0..20 {
            fleet.update_at(10, 0, (3, 1)).unwrap();
            fleet.update_at(20, 1, (3, 1)).unwrap();
            fleet.update_at(20, 1, (3, 1)).unwrap();
        }
        fleet.flush().unwrap();
        let a = fleet.estimate_item(10, 3).unwrap();
        let b = fleet.estimate_item(20, 3).unwrap();
        assert_eq!(a, 20);
        assert_eq!(b, 40);
        assert!(matches!(
            fleet.estimate_item(99, 3),
            Err(EngineError::UnknownKey { key: 99 })
        ));
    }

    #[test]
    fn deletions_are_gated_by_kind() {
        let mut mono =
            CounterFleet::counters(TrackerSpec::new(TrackerKind::CmyMonotone).eps(0.1), cfg())
                .unwrap();
        assert!(matches!(
            mono.update(1, -1),
            Err(EngineError::Run(RunError::DeletionUnsupported { .. }))
        ));
        let mut fleet = CounterFleet::counters(
            TrackerSpec::new(TrackerKind::Naive)
                .eps(0.1)
                .deletions(true),
            cfg(),
        )
        .unwrap();
        fleet.update(1, 5).unwrap();
        fleet.update(1, -2).unwrap();
        fleet.flush().unwrap();
        assert_eq!(fleet.key_audit(1).unwrap().f, 3);
        assert!(matches!(
            fleet.update_at(1, 9, 1),
            Err(EngineError::Run(RunError::SiteOutOfRange { site: 9, .. }))
        ));
    }

    #[test]
    fn pipelined_single_feed_matches_synchronous_run() {
        let stream: Vec<(u64, i64)> = (0..500u64).map(|t| (t % 29, 1 + (t as i64 % 3))).collect();
        let mut sync = CounterFleet::counters(spec(), cfg()).unwrap();
        sync.run(&stream).unwrap();
        let sync_ckpt = sync.checkpoint().unwrap().to_bytes();

        let mut piped = CounterFleet::counters(spec(), cfg()).unwrap();
        let report = piped
            .run_pipelined(&[0], |mut feeds| {
                let mut feed = feeds.pop().unwrap();
                for &(key, input) in &stream {
                    feed.push(key, input).unwrap();
                }
            })
            .unwrap();
        assert_eq!(piped.checkpoint().unwrap().to_bytes(), sync_ckpt);
        assert_eq!(report.n, 500);
        assert_eq!(report.ingest_stats.items, 500);
        // Keyed counter deltas are two words each on the wire.
        assert_eq!(report.ingest_stats.words, 1000);
        assert_eq!(report.ingest_stats.dropped, 0);
    }

    #[test]
    fn checkpoint_codec_rejects_corruption() {
        let mut fleet = CounterFleet::counters(spec(), cfg()).unwrap();
        for t in 0..64u64 {
            fleet.update(t % 5, 1).unwrap();
        }
        let bytes = fleet.checkpoint().unwrap().to_bytes();
        for cut in 0..bytes.len() {
            assert!(
                FleetCheckpoint::from_bytes(&bytes[..cut]).is_err(),
                "cut at {cut} decoded"
            );
        }
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert_eq!(
            FleetCheckpoint::from_bytes(&trailing),
            Err(CodecError::Trailing { left: 1 })
        );
        let mut skew = bytes.clone();
        skew[4] = (FLEET_VERSION + 1) as u8;
        assert!(matches!(
            FleetCheckpoint::from_bytes(&skew),
            Err(CodecError::UnsupportedVersion { .. })
        ));
        let mut bad_kind = bytes;
        bad_kind[6] = 200;
        assert!(matches!(
            FleetCheckpoint::from_bytes(&bad_kind),
            Err(CodecError::BadTag { tag: 200, .. })
        ));
    }

    #[test]
    fn fleet_delta_applies_bit_identically_and_round_trips() {
        let mut fleet = CounterFleet::counters(spec(), cfg()).unwrap();
        for t in 0..300u64 {
            fleet.update(t % 13, 1).unwrap();
        }
        let parent = fleet.checkpoint().unwrap();
        // Touch two existing keys and add three new ones.
        for _ in 0..40 {
            fleet.update(3, 2).unwrap();
            fleet.update(7, -1).unwrap();
            fleet.update(100, 1).unwrap();
            fleet.update(101, 1).unwrap();
            fleet.update(102, 1).unwrap();
        }
        let delta = fleet.checkpoint_delta(&parent).unwrap();
        let child = fleet.checkpoint().unwrap();
        assert_eq!(delta.parent_time(), parent.time());
        assert_eq!(delta.time(), child.time());
        let rebuilt = delta.apply(&parent).unwrap();
        assert_eq!(rebuilt, child);
        assert_eq!(rebuilt.to_bytes(), child.to_bytes());
        // Wire round trip, then apply again.
        let wire = FleetDelta::from_bytes(&delta.to_bytes()).unwrap();
        assert_eq!(wire, delta);
        assert_eq!(wire.apply(&parent).unwrap().to_bytes(), child.to_bytes());
        // A quiet fleet's delta is tiny next to the full table.
        let quiet = fleet.checkpoint_delta(&child).unwrap();
        assert!(
            quiet.to_bytes().len() * 10 <= child.to_bytes().len(),
            "quiet delta {} vs full {}",
            quiet.to_bytes().len(),
            child.to_bytes().len()
        );
        // Wrong parent is a typed fingerprint mismatch, not corruption.
        assert!(matches!(
            delta.apply(&child),
            Err(CodecError::Mismatch {
                what: "fleet delta parent fingerprint",
                ..
            })
        ));
        // The two table variants refuse each other's decoder, typed.
        assert!(matches!(
            FleetCheckpoint::from_bytes(&delta.to_bytes()),
            Err(CodecError::BadValue { .. })
        ));
        assert!(matches!(
            FleetDelta::from_bytes(&child.to_bytes()),
            Err(CodecError::BadValue { .. })
        ));
    }

    #[test]
    fn fleet_v1_bytes_still_decode() {
        let mut fleet = CounterFleet::counters(spec(), cfg()).unwrap();
        for t in 0..128u64 {
            fleet.update(t % 9, 1).unwrap();
        }
        let ckpt = fleet.checkpoint().unwrap();
        // Rewrite the v2 wire form as v1: drop the table-variant byte
        // (index 6) and patch the version word back to 1.
        let mut v1 = ckpt.to_bytes();
        v1.remove(6);
        v1[4] = 1;
        v1[5] = 0;
        let back = FleetCheckpoint::from_bytes(&v1).unwrap();
        assert_eq!(back, ckpt);
        assert_eq!(back.to_bytes(), ckpt.to_bytes(), "re-encodes as v2");
    }

    #[test]
    fn memory_accounts_slabs_and_gc_compacts() {
        let mut fleet =
            CounterFleet::counters(spec(), cfg().fleet_cache(1).fleet_gc_bytes(64)).unwrap();
        let mut state = 7u64;
        for _ in 0..4000 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            fleet.update((state >> 40) % 200, 1).unwrap();
        }
        fleet.flush().unwrap();
        let mem = fleet.memory();
        assert_eq!(mem.keys, fleet.len() as u64);
        assert!(mem.arena_bytes > 0);
        assert!(mem.total_bytes() > 0);
        assert_eq!(mem.staged_inputs, 0);
        // With a one-entry cache and a 64-byte floor, eviction churn must
        // have compacted: garbage stays bounded by live bytes + floor.
        assert!(
            mem.arena_garbage <= mem.arena_bytes,
            "garbage {} exceeds arena {}",
            mem.arena_garbage,
            mem.arena_bytes
        );
    }
}
