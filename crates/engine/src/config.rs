//! Engine configuration and errors.

use crate::ingest::Backpressure;
use crate::Partition;
use dsv_core::api::{BuildError, RunError};
use dsv_net::codec::CodecError;
use dsv_net::Time;

/// Configuration of a [`crate::ShardedEngine`].
///
/// | Parameter | Default | Meaning |
/// |-----------|---------|---------|
/// | `shards`  | —       | Number of shard replicas `S` (worker threads for `S > 1`) |
/// | `batch`   | —       | Updates per ingestion batch (reconciliation period) |
/// | [`partition`](Self::partition) | [`Partition::SiteAffine`] | Stream → shard routing |
/// | [`eps`](Self::eps) | `0.1` | Relative error audited at batch boundaries |
/// | [`probe_every`](Self::probe_every) | `1` | Record an error probe every N boundaries (0 = never) |
/// | [`workers`](Self::workers) | `= shards` | Worker threads executing the shard replicas |
/// | [`backpressure`](Self::backpressure) | [`Backpressure::Block`] | Full-queue policy for pipelined feeds |
/// | [`queue_capacity`](Self::queue_capacity) | `2 × batch` | Bounded capacity of each pipelined feed queue, in inputs |
/// | [`checkpoint_every`](Self::checkpoint_every) | `0` (off) | Auto-checkpoint sink period, in batch boundaries |
/// | [`fleet_cache`](Self::fleet_cache) | `1024` | Live per-key trackers cached per fleet shard (fleet only) |
/// | [`fleet_gc_bytes`](Self::fleet_gc_bytes) | `64 KiB` | Minimum per-shard arena garbage before the fleet compacts (fleet only) |
/// | [`consolidate`](Self::consolidate) | `false` | Pre-aggregate same-site runs (RLE / sort-merge) before ingestion |
/// | [`delta_rebase`](Self::delta_rebase) | `0` (off) | Delta checkpointing: fresh base snapshot every K chained deltas |
/// | [`rounds_per_frame`](Self::rounds_per_frame) | `1` | Remote pipelining: rounds batched per wire frame (≤1 = synchronous ping-pong) |
///
/// **Shards vs workers.** `shards` is the *logical* partitioning: how many
/// tracker replicas the stream is split across. It is part of the engine's
/// checkpointed identity — state lives per shard, and the stream → shard
/// routing is a pure function of the record and the shard count, so
/// changing it would change which replica owns which updates. `workers` is
/// the *physical* parallelism: how many threads drive those replicas
/// (worker `w` owns shards `s ≡ w (mod W)`). It is **not** state — any
/// worker count produces bit-identical estimates and ledgers — which is
/// exactly what makes live rescaling ([`crate::ShardedEngine::rescale`])
/// and resuming a checkpoint onto a different number of workers exact.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineConfig {
    shards: usize,
    batch: usize,
    partition: Partition,
    eps: f64,
    probe_every: u64,
    workers: usize,
    backpressure: Backpressure,
    queue_capacity: Option<usize>,
    checkpoint_every: u64,
    fleet_cache: Option<usize>,
    fleet_gc_bytes: usize,
    consolidate: bool,
    delta_rebase: u64,
    rounds_per_frame: usize,
}

impl EngineConfig {
    /// A configuration with `shards` replicas ingesting in batches of
    /// `batch` updates, and the documented defaults otherwise.
    pub fn new(shards: usize, batch: usize) -> Self {
        EngineConfig {
            shards,
            batch,
            partition: Partition::SiteAffine,
            eps: 0.1,
            probe_every: 1,
            workers: 0,
            backpressure: Backpressure::Block,
            queue_capacity: None,
            checkpoint_every: 0,
            fleet_cache: None,
            fleet_gc_bytes: 64 * 1024,
            consolidate: false,
            delta_rebase: 0,
            rounds_per_frame: 1,
        }
    }

    /// Rounds batched per wire frame on the remote path (default 1).
    /// Values ≤ 1 keep the PR 6 synchronous ping-pong: the coordinator
    /// ships one `Round` frame per worker and blocks on its report. For
    /// `n > 1` the remote engine switches to pipelined ingestion: round
    /// chunks are staged into per-worker bounded send queues (the same
    /// SPSC rings and [`Backpressure`] policies as
    /// [`crate::ShardedEngine::run_pipelined`]) and a writer thread per
    /// connection drains them into DSVR v3 `Rounds` envelopes carrying up
    /// to `n` rounds per length-prefixed frame, so staging overlaps
    /// socket writes and worker absorption. Purely an execution/transport
    /// knob: workers still answer one `RoundReport` per round, and the
    /// coordinator absorbs reports in round order, so estimates,
    /// ε-audits, `CommStats`, and checkpoint images are bit-identical to
    /// the in-process engine for **any** value. Two observable
    /// differences: `WireStats` counts fewer, fatter frames, and
    /// failover under pipelining always respawns the dead slot
    /// (`Recovery::Reattach` degrades to `Respawn`) — see DESIGN.md §12.
    /// Ignored everywhere outside the remote engine (`remote::RemoteEngine`,
    /// behind the `remote` feature).
    pub fn rounds_per_frame(mut self, n: usize) -> Self {
        self.rounds_per_frame = n;
        self
    }

    /// Delta checkpointing (default 0 = off): when `every > 0`, checkpoint
    /// sinks built on [`crate::CheckpointStore`] record each boundary as a
    /// chain of [`dsv_net::StateDelta`] links against the previous
    /// snapshot, forcing a fresh full base every `every` deltas (so
    /// reconstructing any retained boundary replays at most `every`
    /// links), and the remote engine ships `DSVD` deltas instead of full
    /// snapshots on its `Checkpoint` pulls. Purely a checkpoint-transport
    /// knob: materialized checkpoints, estimates, and the tracker/merge
    /// ledgers are bit-identical with it on or off — only the bytes that
    /// move (and the `checkpoint_stats` words that charge them) shrink.
    pub fn delta_rebase(mut self, every: u64) -> Self {
        self.delta_rebase = every;
        self
    }

    /// Pre-aggregate each same-site run before the shard's tracker sees
    /// it (default off): counter runs are run-length encoded and absorbed
    /// segment-at-a-time, item runs are sorted with duplicate items
    /// merged — see [`crate::Consolidator`]. Purely an execution knob:
    /// estimates, ε-audits, `CommStats`, and checkpoint bytes are
    /// bit-identical with it on or off (held by
    /// `tests/consolidation_equivalence.rs` for all ten kinds); it only
    /// changes how fast a batch is chewed through.
    pub fn consolidate(mut self, on: bool) -> Self {
        self.consolidate = on;
        self
    }

    /// Live per-key trackers a [`crate::TrackerFleet`] keeps materialized
    /// per shard (default 1024). Hot keys stay live across boundaries;
    /// cold keys are frozen back into the shard's state arena on
    /// eviction. Purely an execution knob: fleet estimates, ledgers, and
    /// checkpoints are bit-identical for **any** capacity ≥ 1 (the
    /// snapshot → restore → snapshot round-trip is byte-identical), so
    /// size it for your working set, not for correctness. Zero is
    /// rejected by validation. Ignored by [`crate::ShardedEngine`].
    pub fn fleet_cache(mut self, capacity: usize) -> Self {
        self.fleet_cache = Some(capacity);
        self
    }

    /// Minimum dead bytes in a fleet shard's state arena before it is
    /// compacted (default 64 KiB). Freezing a key appends its fresh
    /// record and strands the old one; a shard compacts when garbage
    /// exceeds both this floor and the live bytes. Another pure execution
    /// knob — compaction moves bytes, never changes them. Ignored by
    /// [`crate::ShardedEngine`].
    pub fn fleet_gc_bytes(mut self, bytes: usize) -> Self {
        self.fleet_gc_bytes = bytes;
        self
    }

    /// Auto-checkpoint each shard every `every` batch boundaries (default
    /// 0 = never). The remote engine uses this as its durability sink:
    /// shard state captured every N boundaries bounds how much stream a
    /// failover has to replay. Checkpoint traffic is charged to the
    /// separate `checkpoint_stats` ledger, so the period never perturbs
    /// tracker/merge equivalence.
    pub fn checkpoint_every(mut self, every: u64) -> Self {
        self.checkpoint_every = every;
        self
    }

    /// Full-queue policy for pipelined feed pushes (default
    /// [`Backpressure::Block`]); see
    /// [`crate::ShardedEngine::run_pipelined`].
    pub fn backpressure(mut self, policy: Backpressure) -> Self {
        self.backpressure = policy;
        self
    }

    /// Bounded capacity of each pipelined feed queue, in inputs (default
    /// `2 × batch`, so a feed can stage the next round while the worker
    /// drains the current one). Zero is rejected by validation — a
    /// zero-capacity queue can never carry an input.
    pub fn queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = Some(capacity);
        self
    }

    /// Number of worker threads driving the shard replicas (default: one
    /// per shard). Clamped to the shard count at execution time; `0`
    /// restores the default rather than meaning "no workers" (the live
    /// [`crate::ShardedEngine::rescale`], by contrast, rejects 0 with a
    /// typed error). See the struct docs for the shards-vs-workers
    /// distinction.
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Stream → shard routing policy (default [`Partition::SiteAffine`]).
    pub fn partition(mut self, partition: Partition) -> Self {
        self.partition = partition;
        self
    }

    /// Relative error audited at batch boundaries (default 0.1).
    pub fn eps(mut self, eps: f64) -> Self {
        self.eps = eps;
        self
    }

    /// Record an [`dsv_net::ErrorProbe`] every `every` batch boundaries
    /// (default 1 = every boundary; 0 = never — use for throughput runs).
    pub fn probe_every(mut self, every: u64) -> Self {
        self.probe_every = every;
        self
    }

    /// Number of shard replicas `S`.
    pub fn shards_count(&self) -> usize {
        self.shards
    }

    /// Number of worker threads (`= shards` unless overridden, and never
    /// more than the shard count).
    pub fn workers_count(&self) -> usize {
        if self.workers == 0 {
            self.shards
        } else {
            self.workers.min(self.shards)
        }
    }

    /// Updates per ingestion batch.
    pub fn batch_size(&self) -> usize {
        self.batch
    }

    /// The routing policy.
    pub fn partition_policy(&self) -> Partition {
        self.partition
    }

    /// The audited ε.
    pub fn eps_value(&self) -> f64 {
        self.eps
    }

    /// The probe period (0 = never).
    pub fn probe_period(&self) -> u64 {
        self.probe_every
    }

    /// The full-queue policy for pipelined feeds.
    pub fn backpressure_policy(&self) -> Backpressure {
        self.backpressure
    }

    /// The pipelined feed queue capacity in inputs (`2 × batch` unless
    /// overridden).
    pub fn queue_capacity_value(&self) -> usize {
        self.queue_capacity.unwrap_or(2 * self.batch)
    }

    /// The auto-checkpoint period in batch boundaries (0 = never).
    pub fn checkpoint_period(&self) -> u64 {
        self.checkpoint_every
    }

    /// The fleet's live-tracker cache capacity per shard (1024 unless
    /// overridden).
    pub fn fleet_cache_capacity(&self) -> usize {
        self.fleet_cache.unwrap_or(1024)
    }

    /// The fleet's per-shard arena garbage floor before compaction.
    pub fn fleet_gc_floor(&self) -> usize {
        self.fleet_gc_bytes
    }

    /// Whether same-site runs are consolidated before ingestion.
    pub fn consolidate_enabled(&self) -> bool {
        self.consolidate
    }

    /// The delta-checkpoint rebase period in chained deltas (0 = delta
    /// checkpointing off).
    pub fn delta_rebase_period(&self) -> u64 {
        self.delta_rebase
    }

    /// Rounds batched per remote wire frame (≤1 = synchronous
    /// one-round-per-frame ping-pong).
    pub fn rounds_per_frame_value(&self) -> usize {
        self.rounds_per_frame
    }

    pub(crate) fn validate(&self) -> Result<(), EngineError> {
        if self.shards == 0 {
            return Err(EngineError::ZeroShards);
        }
        if self.batch == 0 {
            return Err(EngineError::ZeroBatch);
        }
        if !(self.eps > 0.0 && self.eps < 1.0) {
            return Err(EngineError::InvalidEps { eps: self.eps });
        }
        if self.queue_capacity == Some(0) {
            return Err(EngineError::ZeroQueueCapacity);
        }
        if self.fleet_cache == Some(0) {
            return Err(EngineError::ZeroFleetCache);
        }
        Ok(())
    }
}

/// A sharded engine that cannot be built or run, as a typed error.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EngineError {
    /// The engine needs at least one shard.
    ZeroShards,
    /// The ingestion batch must hold at least one update.
    ZeroBatch,
    /// The boundary-audit ε must lie strictly inside `(0, 1)`.
    InvalidEps {
        /// The rejected value.
        eps: f64,
    },
    /// A shard replica could not be built.
    Build(BuildError),
    /// The stream cannot be run on the configured replicas (same
    /// conditions the sequential `Driver` rejects).
    Run(RunError),
    /// [`Partition::ByItem`] routing was asked of a record without an
    /// item key (a counter stream).
    MissingItemKey {
        /// Timestep of the offending record.
        time: Time,
    },
    /// A checkpoint could not be produced or restored (truncated,
    /// corrupted, wrong version, or an unsupported protocol).
    Codec(CodecError),
    /// A checkpoint disagrees with the engine it is being resumed into
    /// (different shard count, kind, or site count).
    CheckpointMismatch {
        /// What disagreed.
        what: &'static str,
        /// The value the engine requires.
        expected: u64,
        /// The value found in the checkpoint.
        found: u64,
    },
    /// [`crate::ShardedEngine::rescale`] needs at least one worker.
    ZeroWorkers,
    /// A pipelined feed queue must hold at least one input
    /// ([`EngineConfig::queue_capacity`] was 0).
    ZeroQueueCapacity,
    /// A tracker fleet needs room for at least one live tracker per
    /// shard ([`EngineConfig::fleet_cache`] was 0).
    ZeroFleetCache,
    /// A fleet operation addressed a key the fleet has never seen.
    UnknownKey {
        /// The unknown key.
        key: u64,
    },
    /// A [`crate::CheckpointStore`] was asked to materialize a boundary
    /// it does not retain.
    UnknownBoundary {
        /// The requested boundary time.
        time: Time,
    },
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, fm: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::ZeroShards => write!(fm, "need at least one shard"),
            EngineError::ZeroBatch => write!(fm, "batch size must be at least 1"),
            EngineError::InvalidEps { eps } => {
                write!(fm, "eps must be in (0, 1), got {eps}")
            }
            EngineError::Build(e) => write!(fm, "building a shard replica failed: {e}"),
            EngineError::Run(e) => write!(fm, "stream rejected: {e}"),
            EngineError::MissingItemKey { time } => write!(
                fm,
                "ByItem partitioning needs an item stream, but the record at t = {time} has no item key"
            ),
            EngineError::Codec(e) => write!(fm, "checkpoint codec failure: {e}"),
            EngineError::CheckpointMismatch {
                what,
                expected,
                found,
            } => write!(
                fm,
                "checkpoint mismatch: {what} is {found} in the checkpoint but {expected} in the engine"
            ),
            EngineError::ZeroWorkers => write!(fm, "need at least one worker"),
            EngineError::ZeroQueueCapacity => {
                write!(fm, "pipelined feed queues need capacity for at least one input")
            }
            EngineError::ZeroFleetCache => {
                write!(fm, "a fleet needs room for at least one live tracker per shard")
            }
            EngineError::UnknownKey { key } => {
                write!(fm, "the fleet has never seen key {key}")
            }
            EngineError::UnknownBoundary { time } => {
                write!(fm, "the checkpoint store retains no boundary at t = {time}")
            }
        }
    }
}

impl std::error::Error for EngineError {}

impl From<CodecError> for EngineError {
    fn from(e: CodecError) -> Self {
        EngineError::Codec(e)
    }
}

impl From<BuildError> for EngineError {
    fn from(e: BuildError) -> Self {
        EngineError::Build(e)
    }
}

impl From<RunError> for EngineError {
    fn from(e: RunError) -> Self {
        EngineError::Run(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation_rejects_degenerate_configs() {
        assert_eq!(
            EngineConfig::new(0, 10).validate(),
            Err(EngineError::ZeroShards)
        );
        assert_eq!(
            EngineConfig::new(2, 0).validate(),
            Err(EngineError::ZeroBatch)
        );
        for eps in [0.0, 1.0, -0.2, f64::NAN] {
            assert!(matches!(
                EngineConfig::new(2, 10).eps(eps).validate(),
                Err(EngineError::InvalidEps { .. })
            ));
        }
        assert!(EngineConfig::new(8, 65_536).eps(0.05).validate().is_ok());
        assert_eq!(
            EngineConfig::new(2, 10).queue_capacity(0).validate(),
            Err(EngineError::ZeroQueueCapacity)
        );
        assert!(EngineConfig::new(2, 10)
            .queue_capacity(1)
            .validate()
            .is_ok());
        assert_eq!(
            EngineConfig::new(2, 10).fleet_cache(0).validate(),
            Err(EngineError::ZeroFleetCache)
        );
        assert!(EngineConfig::new(2, 10).fleet_cache(1).validate().is_ok());
    }

    #[test]
    fn fleet_knobs_have_documented_defaults() {
        let cfg = EngineConfig::new(4, 1_000);
        assert_eq!(cfg.fleet_cache_capacity(), 1024);
        assert_eq!(cfg.fleet_gc_floor(), 64 * 1024);
        let cfg = cfg.fleet_cache(16).fleet_gc_bytes(1 << 20);
        assert_eq!(cfg.fleet_cache_capacity(), 16);
        assert_eq!(cfg.fleet_gc_floor(), 1 << 20);
    }

    #[test]
    fn queue_capacity_defaults_to_double_buffering() {
        let cfg = EngineConfig::new(4, 1_000);
        assert_eq!(cfg.queue_capacity_value(), 2_000);
        assert_eq!(cfg.backpressure_policy(), Backpressure::Block);
        let cfg = cfg.queue_capacity(64).backpressure(Backpressure::Yield);
        assert_eq!(cfg.queue_capacity_value(), 64);
        assert_eq!(cfg.backpressure_policy(), Backpressure::Yield);
    }

    #[test]
    fn errors_display_and_convert() {
        let e: EngineError = BuildError::ZeroSites.into();
        assert!(matches!(e, EngineError::Build(_)));
        let e: EngineError = RunError::SiteOutOfRange {
            site: 9,
            k: 2,
            time: 3,
        }
        .into();
        assert!(e.to_string().contains("site 9"));
        assert!(!EngineError::MissingItemKey { time: 7 }
            .to_string()
            .is_empty());
    }
}
