//! Criterion micro-benchmarks for the sketching substrate hot paths.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dsv_sketch::{CountMin, CrPrecis, FreqSketch, PairwiseHash};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn bench_hash(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(1);
    let h = PairwiseHash::random(1 << 20, &mut rng);
    let mut g = c.benchmark_group("hash");
    g.throughput(Throughput::Elements(1));
    g.bench_function("pairwise_mersenne61", |b| {
        let mut x = 0u64;
        b.iter(|| {
            x = x.wrapping_add(0x9E37_79B9);
            black_box(h.hash(black_box(x)))
        })
    });
    g.finish();
}

fn bench_countmin(c: &mut Criterion) {
    let mut g = c.benchmark_group("countmin");
    g.throughput(Throughput::Elements(1));
    let mut cm = CountMin::new(4, 1 << 12, 7);
    let mut rng = SmallRng::seed_from_u64(2);
    g.bench_function("update_4x4096", |b| {
        b.iter(|| {
            let item = rng.gen_range(0..1_000_000u64);
            cm.update(black_box(item), 1);
        })
    });
    g.bench_function("estimate_4x4096", |b| {
        let mut x = 0u64;
        b.iter(|| {
            x = x.wrapping_add(97);
            black_box(cm.estimate(black_box(x % 1_000_000)))
        })
    });
    g.finish();
}

fn bench_crprecis(c: &mut Criterion) {
    let mut g = c.benchmark_group("crprecis");
    g.throughput(Throughput::Elements(1));
    let mut cr = CrPrecis::new(8, 512);
    let mut rng = SmallRng::seed_from_u64(3);
    g.bench_function("update_8rows", |b| {
        b.iter(|| {
            let item = rng.gen_range(0..1_000_000u64);
            cr.update(black_box(item), 1);
        })
    });
    g.bench_function("estimate_avg_8rows", |b| {
        let mut x = 0u64;
        b.iter(|| {
            x = x.wrapping_add(31);
            black_box(cr.estimate(black_box(x % 1_000_000)))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_hash, bench_countmin, bench_crprecis);
criterion_main!(benches);
