//! E11 — §5.2 / Appendix I: single-site (`k = 1`) tracking of an arbitrary
//! integer aggregate uses `O(v(n)/ε)` messages ("whenever `|f − f̂| > εf`,
//! send `f`").

use dsv_bench::table::f;
use dsv_bench::{banner, Table};
use dsv_core::api::{Driver, TrackerKind, TrackerSpec};
use dsv_core::single_site::SingleSiteTracker;
use dsv_core::variability::Variability;
use dsv_gen::{assign_updates, AdversarialGen, DeltaGen, MonotoneGen, SingleSite, WalkGen};

fn main() {
    banner(
        "E11  (Section 5.2 / Appendix I) — single-site aggregate tracking",
        "messages <= (1+eps)/eps · v(n); guarantee |f - fhat| <= eps·|f| at every t; arbitrary integer updates allowed",
    );

    let n = 100_000u64;
    let mut t = Table::new(&[
        "stream",
        "eps",
        "v(n)",
        "violations",
        "messages",
        "bound (1+e)/e·v",
        "msgs/bound",
        "msgs/n",
    ]);
    let streams: Vec<(&str, Vec<i64>)> = vec![
        ("monotone", MonotoneGen::ones().deltas(n)),
        ("jumps<=100", MonotoneGen::jumps(3, 100).deltas(n)),
        ("fair walk", WalkGen::fair(7).deltas(n)),
        ("biased 0.1", WalkGen::biased(9, 0.1).deltas(n)),
        ("hover 50", AdversarialGen::hover(50).deltas(n)),
        (
            "zero-crossing",
            AdversarialGen::zero_crossing(20).deltas(20_000),
        ),
    ];
    for eps in [0.2f64, 0.05, 0.01] {
        for (name, deltas) in &streams {
            let v = Variability::of_stream(deltas.iter().copied());
            let updates = assign_updates(deltas, SingleSite::solo());
            let mut tracker = TrackerSpec::new(TrackerKind::SingleSite)
                .k(1)
                .eps(eps)
                .deletions(true)
                .build()
                .expect("k = 1 satisfies the single-site requirement");
            let report = Driver::new(eps)
                .expect("valid eps")
                .run(&mut tracker, &updates)
                .expect("single-site tracker accepts arbitrary integer updates");
            let bound = SingleSiteTracker::message_bound(eps, v);
            let msgs = report.stats.total_messages();
            t.row(vec![
                name.to_string(),
                f(eps),
                f(v),
                report.violations.to_string(),
                msgs.to_string(),
                f(bound),
                f(msgs as f64 / bound),
                f(msgs as f64 / updates.len() as f64),
            ]);
        }
    }
    t.print();

    println!(
        "\nreading: zero violations on every stream (including arbitrary-sized\n\
         jumps — no ±1 restriction at k = 1), and messages within the\n\
         Appendix I potential-argument bound (1+eps)/eps · v(n). The msgs/n\n\
         column shows the full spectrum: ~0 for monotone, ~1 for zero-crossing."
    );
}
