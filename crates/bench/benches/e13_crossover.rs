//! E13 — the framework claim (§1, §5): worst-case performance matches the
//! monotone algorithms when the stream is calm and **degrades gracefully**
//! as the stream varies faster, with the naive Θ(n) tracker only winning
//! in the fully-adversarial regime.
//!
//! The "variability dial" is a hover stream at level `L`: after a climb,
//! `f` oscillates in `{L−1, L}`, so `v(n) ≈ n/L`. Sweeping `L` from 3000
//! down to 1 moves `v` from ≈ n/3000 to ≈ n.

use dsv_bench::table::f;
use dsv_bench::{banner, Table};
use dsv_core::api::{Driver, TrackerKind, TrackerSpec};
use dsv_core::variability::Variability;
use dsv_gen::{AdversarialGen, DeltaGen, RoundRobin};

fn main() {
    banner(
        "E13  (framework) — graceful degradation & crossover vs the naive tracker",
        "hover level L gives v ~ n/L; tracker cost ~ (k/eps)·v crosses naive's n as v -> n·eps/k",
    );

    let n = 100_000u64;
    let k = 8;
    let eps = 0.1;
    let trials = 8u64;

    let mut t = Table::new(&[
        "hover L",
        "v(n)",
        "v/n",
        "det msgs",
        "rand msgs (mean)",
        "naive msgs",
        "det/naive",
        "winner",
    ]);
    for level in [1i64, 3, 10, 30, 100, 300, 1_000, 3_000] {
        let updates = AdversarialGen::hover(level).updates(n, RoundRobin::new(k));
        let v = Variability::of_stream(updates.iter().map(|u| u.delta));

        let driver = Driver::new(eps).expect("valid eps");
        let mut det = TrackerSpec::new(TrackerKind::Deterministic)
            .k(k)
            .eps(eps)
            .deletions(true)
            .build()
            .expect("valid spec");
        let det_m = driver
            .run(&mut det, &updates)
            .expect("deterministic tracker accepts deletions")
            .stats
            .total_messages();

        let rand_m: f64 = (0..trials)
            .map(|s| {
                let mut tracker = TrackerSpec::new(TrackerKind::Randomized)
                    .k(k)
                    .eps(eps)
                    .seed(900 + s)
                    .deletions(true)
                    .build()
                    .expect("valid spec");
                driver
                    .run(&mut tracker, &updates)
                    .expect("randomized tracker accepts deletions")
                    .stats
                    .total_messages() as f64
            })
            .sum::<f64>()
            / trials as f64;

        let naive_m = n; // one message per update, by definition

        let winner = if det_m.min(rand_m as u64) < naive_m {
            if rand_m < det_m as f64 {
                "randomized"
            } else {
                "deterministic"
            }
        } else {
            "naive"
        };
        t.row(vec![
            level.to_string(),
            f(v),
            f(v / n as f64),
            det_m.to_string(),
            f(rand_m),
            naive_m.to_string(),
            f(det_m as f64 / naive_m as f64),
            winner.into(),
        ]);
    }
    t.print();

    println!(
        "\nreading: at high hover levels (slowly-varying streams) the variability\n\
         trackers beat naive by orders of magnitude; as L -> 1 (v -> n) their\n\
         cost approaches and finally exceeds n — exactly the graceful\n\
         degradation the paper's framework promises, with the crossover where\n\
         (k/eps)·v ~ n. The Omega(n) lower-bound regime is real but confined\n\
         to maximally-variable streams."
    );
}
