//! E8 — Theorem 4.1: the deterministic tracing lower bound.
//!
//! The hard family fixes `r` flip times among `n`; all members share the
//! exact variability `(6m+9)/(2m+6)·ε·r` and are pairwise distinguishable
//! by any ε-accurate summary, so `Ω(log C(n,r)) = Ω(r log n) =
//! Ω((log n/ε)·v)` bits are required. We verify every premise
//! constructively, then run our own tracing summary (the recorded
//! deterministic tracker, Appendix D) on family streams and compare its
//! size against the lower bound.

use dsv_bench::table::f;
use dsv_bench::{banner, Table};
use dsv_core::deterministic::DeterministicTracker;
use dsv_core::expand::expand_stream;
use dsv_core::lower_bound::DetFlipFamily;
use dsv_core::tracing::TracingRecorder;

fn main() {
    banner(
        "E8  (Theorem 4.1) — deterministic tracing lower bound",
        "family of C(n,r) sequences, each with v = (6m+9)/(2m+6)·eps·r; any eps-summary needs Omega(r·log n) = Omega(v·log(n)/eps) bits",
    );

    println!("\n-- family structure: exact variability & information content --");
    let mut t = Table::new(&[
        "m (=1/eps)",
        "n",
        "r",
        "v formula",
        "v measured",
        "log2 C(n,r)",
        "r·log2(n/r)",
        "v·log2(n)/eps",
        "levels disjoint",
    ]);
    for (m, n, r) in [
        (4i64, 1_000u64, 10usize),
        (4, 10_000, 40),
        (8, 10_000, 40),
        (16, 100_000, 100),
    ] {
        let fam = DetFlipFamily::new(m, n, r);
        let member = fam.random_member(7);
        t.row(vec![
            m.to_string(),
            n.to_string(),
            r.to_string(),
            f(fam.exact_variability()),
            f(member.variability()),
            f(fam.log2_family_size()),
            f(fam.bits_lower_bound()),
            f(fam.exact_variability() * (n as f64).log2() / fam.eps()),
            fam.levels_distinguishable().to_string(),
        ]);
    }
    t.print();
    println!(
        "reading: measured per-member variability equals the closed form; the\n\
         information content log2 C(n,r) >= r·log2(n/r) grows with both r (that\n\
         is, with v) and log n, matching the Omega((log n/eps)·v) statement."
    );

    println!("\n-- pairwise distinctness of sampled members (Appendix E premise) --");
    let fam = DetFlipFamily::new(4, 2_000, 30);
    let members: Vec<_> = (0..40).map(|s| fam.random_member(s)).collect();
    let mut distinct = 0u32;
    let mut pairs = 0u32;
    for i in 0..members.len() {
        for j in (i + 1)..members.len() {
            pairs += 1;
            if members[i].values() != members[j].values() {
                distinct += 1;
            }
        }
    }
    println!("{distinct}/{pairs} sampled pairs are distinct trajectories (expected: all)");

    println!("\n-- our tracing summary vs the bound (Appendix D reduction) --");
    let mut t = Table::new(&[
        "m",
        "n",
        "r",
        "summary bits",
        "LB bits r·log2(n/r)",
        "bits/LB",
    ]);
    for (m, n, r) in [(4i64, 2_000u64, 20usize), (4, 8_000, 40), (8, 8_000, 40)] {
        let fam = DetFlipFamily::new(m, n, r);
        let member = fam.random_member(11);
        // Turn the trajectory into a ±1 stream (climb to m, then expanded
        // ±3 flips) and track it with the deterministic tracker at eps=1/m.
        let mut values = vec![];
        for t0 in 1..=n {
            values.push(member.value_at(t0));
        }
        let mut deltas = vec![1i64; m as usize]; // climb 0 -> m = f(0)
        let mut prev = m;
        for &v in &values {
            deltas.push(v - prev);
            prev = v;
        }
        let deltas = expand_stream(&deltas); // ±3 flips -> ±1 arrivals (App C)
        let eps = fam.eps();
        let mut sim = DeterministicTracker::sim(1, eps);
        let mut rec = TracingRecorder::new();
        for (i, &d) in deltas.iter().enumerate() {
            let est = sim.step(0, d);
            rec.observe((i + 1) as u64, est);
        }
        let summary = rec.finish();
        let lb = fam.bits_lower_bound();
        t.row(vec![
            m.to_string(),
            n.to_string(),
            r.to_string(),
            summary.bits().to_string(),
            f(lb),
            f(summary.bits() as f64 / lb),
        ]);
    }
    t.print();
    println!(
        "reading: the concrete summary produced by recording our tracker always\n\
         uses at least as many bits as the information-theoretic lower bound\n\
         (ratio >= 1), with a modest constant-factor gap — the upper and lower\n\
         bounds of the paper bracket the truth."
    );
}
