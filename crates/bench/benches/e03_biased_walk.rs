//! E3 — Theorem 2.4: for i.i.d. ±1 increments with drift μ
//! (`P(+1) = (1+μ)/2`), `E[v(n)] = O(log(n)/μ)`.

use dsv_bench::table::f;
use dsv_bench::{banner, Summary, Table};
use dsv_core::variability::Variability;
use dsv_gen::{DeltaGen, WalkGen};

fn main() {
    banner(
        "E3  (Theorem 2.4) — expected variability of drift-mu biased walks",
        "E[v(n)] = O(log(n)/mu): the ratio v·mu/ln(n) should stay bounded",
    );

    let trials = 16u64;
    let mut t = Table::new(&["mu", "n", "E[v] (mean)", "std", "ln(n)/mu", "ratio"]);
    for mu in [0.4f64, 0.2, 0.1, 0.05] {
        for n in [10_000u64, 100_000, 1_000_000] {
            let vs: Vec<f64> = (0..trials)
                .map(|seed| Variability::of_stream(WalkGen::biased(2_000 + seed, mu).deltas(n)))
                .collect();
            let s = Summary::of(&vs);
            let shape = Variability::thm24_shape(n, mu);
            t.row(vec![
                f(mu),
                n.to_string(),
                f(s.mean),
                f(s.std),
                f(shape),
                f(s.mean / shape),
            ]);
        }
    }
    t.print();

    println!(
        "\nreading: within each mu the ratio is stable across n (log n scaling),\n\
         and across mu at fixed n the bound's 1/mu factor is confirmed: halving\n\
         mu roughly doubles E[v] while the ratio column stays O(1)."
    );
}
