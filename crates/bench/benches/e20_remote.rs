//! E20 — the socket tax on remote ingestion, and what pipelining buys
//! back: `RemoteEngine::run_parted` throughput versus the in-process
//! engine, swept over `rounds_per_frame ∈ {1, 4, 16}`, both socket
//! families (UDS where the platform has it, TCP loopback everywhere),
//! and both worker deployments (in-process threads, separate
//! `dsv-shard-server` processes).
//!
//! `rounds_per_frame = 1` is the PR 6 wire protocol: one synchronous
//! round-trip per engine round, so every round pays a full
//! coordinator ↔ worker latency out of the ingestion clock. Larger
//! values switch the coordinator to the pipelined driver — bounded
//! per-worker send queues staging rounds while earlier rounds are in
//! flight, multi-round DSVR v3 `Rounds` frames on the wire — which
//! amortizes that latency across the frame without changing a single
//! byte of engine state (see `DESIGN.md` §12).
//!
//! Every timed run is audited first: estimates, ground truth, batch
//! counts, `CommStats` ledgers, per-shard replica estimates, and the
//! final checkpoint image must be **bit-identical** to an in-process
//! `ShardedEngine` over the same feeds — a throughput number from a
//! wrong answer aborts the run before any JSON exists.
//!
//! **The gate** (enforced here before `BENCH_e20.json` is written, and
//! re-enforced by `bench_schema` on the committed artifact): on the
//! gate combo — TCP with separate processes (threads only when the
//! server binary is absent) — the best pipelined configuration must
//! reach ≥ [`SPEEDUP_GATE`]× the one-round-per-frame throughput. TCP is
//! the gated family because it is where the tax actually lives: the
//! transport sets no `TCP_NODELAY`, so the synchronous ping-pong's
//! small request/response frames couple with Nagle + delayed-ACK into
//! tens of milliseconds per round, and batching rounds per frame is the
//! protocol-level fix (observed 7–48× here; UDS, whose kernel path is
//! nearly free, hovers near 1× and is reported as context, not gated).
//! The speedup comes from eliminating per-round round-trips — a
//! property of the protocol rather than of machine speed — so the gate
//! binds on smoke runs too.
//!
//! ```sh
//! cargo bench -p dsv-bench --features remote --bench e20_remote
//! target/release/deps/e20_remote-* --smoke --out X.json   # CI smoke
//! ```
//!
//! The shard-server binary for process mode is located next to this
//! bench automatically; set `DSV_SHARD_SERVER_BIN` to override (CI
//! does, to pin the exact artifact under test). Without it, process
//! combos are skipped and the gate falls back to the threads combo.

use dsv_bench::{banner, Json, Table};
use dsv_core::api::{TrackerKind, TrackerSpec};
use dsv_engine::remote::{RemoteConfig, RemoteEngine, RemoteTransport, SpawnMode};
use dsv_engine::{CounterEngine, EngineConfig, EngineReport, ShardedEngine};
use std::path::PathBuf;
use std::time::{Duration, Instant};

const EPS: f64 = 0.1;
const SITES: usize = 4;
const SHARDS: usize = 4;
const WORKERS: usize = 2;
/// Frame widths under test; 1 is the synchronous PR 6 baseline.
const RPFS: [usize; 3] = [1, 4, 16];
/// The acceptance gate: best pipelined throughput over the synchronous
/// one-round-per-frame throughput, on the gate combo.
const SPEEDUP_GATE: f64 = 1.3;

fn lcg(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state >> 33
}

/// A ±1 biased walk spread round-robin over the sites — the same stream
/// shape every remote run and the in-process reference consume.
fn feeds(n: u64, seed: u64) -> Vec<(usize, Vec<i64>)> {
    let mut feeds: Vec<(usize, Vec<i64>)> = (0..SITES).map(|s| (s, Vec::new())).collect();
    let mut s = seed;
    for i in 0..n {
        let delta = if lcg(&mut s).is_multiple_of(4) { -1 } else { 1 };
        feeds[(i % SITES as u64) as usize].1.push(delta);
    }
    feeds
}

/// Find the `dsv-shard-server` binary: explicit override first, then the
/// build layout (bench binaries live in `deps/`, one directory below).
fn locate_server_bin() -> Option<PathBuf> {
    if let Some(path) = std::env::var_os("DSV_SHARD_SERVER_BIN") {
        return Some(PathBuf::from(path));
    }
    let exe = std::env::current_exe().ok()?;
    let bin_name = format!("dsv-shard-server{}", std::env::consts::EXE_SUFFIX);
    let candidate = exe.parent()?.parent()?.join(bin_name);
    candidate.is_file().then_some(candidate)
}

struct Row {
    rpf: usize,
    wall_s: f64,
    updates_per_sec: f64,
    frames_sent: u64,
    frames_received: u64,
    bytes_sent: u64,
    bytes_received: u64,
}

struct Combo {
    transport: &'static str,
    spawn: &'static str,
    rows: Vec<Row>,
}

/// Run one remote configuration over `slices`, audit it bit-identical to
/// the in-process reference, and return its timing + wire ledger.
#[allow(clippy::too_many_arguments)]
fn run_remote(
    label: &str,
    spec: TrackerSpec,
    cfg: EngineConfig,
    rcfg: RemoteConfig,
    slices: &[(usize, &[i64])],
    n: u64,
    local: &mut CounterEngine,
    local_report: &EngineReport,
) -> Row {
    let mut remote = RemoteEngine::counters(spec, cfg, rcfg).expect("remote engine spawns");
    let start = Instant::now();
    let report = remote.run_parted(slices).expect("remote run completes");
    let wall = start.elapsed().as_secs_f64();

    // Audit before the timing is believed: a fast wrong answer is a bug,
    // not a result.
    assert_eq!(
        report.final_estimate, local_report.final_estimate,
        "{label}"
    );
    assert_eq!(report.final_f, local_report.final_f, "{label}");
    assert_eq!(report.n, local_report.n, "{label}");
    assert_eq!(report.batches, local_report.batches, "{label}");
    assert_eq!(
        report.boundary_violations, local_report.boundary_violations,
        "{label}"
    );
    assert_eq!(report.tracker_stats, local_report.tracker_stats, "{label}");
    assert_eq!(report.merge_stats, local_report.merge_stats, "{label}");
    assert_eq!(
        remote.shard_estimates().expect("replica estimates pull"),
        local.shard_estimates(),
        "{label}: replica estimates diverged"
    );
    assert_eq!(
        remote.checkpoint().expect("remote checkpoint"),
        local.checkpoint().expect("local checkpoint"),
        "{label}: checkpoint images diverged"
    );

    let wire = remote.wire_stats();
    Row {
        rpf: cfg.rounds_per_frame_value(),
        wall_s: wall,
        updates_per_sec: n as f64 / wall,
        frames_sent: wire.frames_sent,
        frames_received: wire.frames_received,
        bytes_sent: wire.bytes_sent,
        bytes_received: wire.bytes_received,
    }
}

fn main() {
    let mut smoke = false;
    let mut out = String::from("BENCH_e20.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--out" => out = args.next().expect("--out needs a path"),
            "--bench" | "--test" => {} // harness-compat flags from `cargo bench`
            other => {
                eprintln!("e20_remote: unknown argument '{other}'");
                std::process::exit(2);
            }
        }
    }
    // The synchronous TCP rows pay Nagle + delayed-ACK per round (that
    // is the point of the experiment), so round counts are chosen to
    // keep even those rows to seconds: 60 rounds per feed in smoke, 500
    // in the full run.
    let n: u64 = if smoke { 60_000 } else { 2_000_000 };
    let batch: usize = if smoke { 250 } else { 1_000 };

    banner(
        "E20 — remote ingestion and the socket tax",
        "RemoteEngine::run_parted vs the in-process engine across \
         rounds_per_frame x transport x spawn mode; pipelined frames must \
         buy back >= 1.3x over the one-round-per-frame wire protocol, \
         bit-identically",
    );
    println!(
        "n = {n}, sites = {SITES}, shards = {SHARDS}, workers = {WORKERS}, \
         batch = {batch}, eps = {EPS}{}",
        if smoke { "  [SMOKE]" } else { "" }
    );

    let spec = TrackerSpec::new(TrackerKind::Deterministic)
        .k(SITES)
        .eps(EPS)
        .seed(2016)
        .deletions(true);
    let base_cfg = EngineConfig::new(SHARDS, batch).workers(WORKERS);
    let feeds = feeds(n, 0x5EED_0020);
    let slices: Vec<(usize, &[i64])> = feeds.iter().map(|(s, v)| (*s, v.as_slice())).collect();

    // The in-process reference: the bit-identity oracle for every remote
    // run, and the "no sockets at all" throughput context row.
    let mut local = ShardedEngine::counters(spec, base_cfg).expect("valid engine config");
    let start = Instant::now();
    let local_report = local.run_parted(&slices).expect("local run");
    let local_ups = n as f64 / start.elapsed().as_secs_f64();

    let server_bin = locate_server_bin();
    if server_bin.is_none() {
        println!(
            "note: dsv-shard-server binary not found — process combos skipped \
             (build with `cargo build --release --features remote`, or set \
             DSV_SHARD_SERVER_BIN)"
        );
    }
    let mut spawns: Vec<(&'static str, SpawnMode)> = vec![("threads", SpawnMode::Threads)];
    if let Some(bin) = &server_bin {
        spawns.push(("processes", SpawnMode::Processes { bin: bin.clone() }));
    }
    let mut transports: Vec<(&'static str, RemoteTransport)> = vec![("tcp", RemoteTransport::Tcp)];
    #[cfg(unix)]
    transports.insert(0, ("uds", RemoteTransport::Uds));

    let mut combos: Vec<Combo> = Vec::new();
    for (tname, transport) in &transports {
        for (sname, spawn) in &spawns {
            let rcfg = RemoteConfig {
                transport: *transport,
                spawn: spawn.clone(),
                io_timeout: Duration::from_secs(10),
                ..RemoteConfig::default()
            };
            let mut rows = Vec::new();
            for rpf in RPFS {
                let label = format!("{tname}/{sname} rpf={rpf}");
                rows.push(run_remote(
                    &label,
                    spec,
                    base_cfg.rounds_per_frame(rpf),
                    rcfg.clone(),
                    &slices,
                    n,
                    &mut local,
                    &local_report,
                ));
            }
            combos.push(Combo {
                transport: tname,
                spawn: sname,
                rows,
            });
        }
    }

    let mut table = Table::new(&[
        "transport",
        "spawn",
        "rpf",
        "Mups",
        "vs sync",
        "vs local",
        "frames out",
        "KB out",
    ]);
    let mut combo_docs = Vec::new();
    for combo in &combos {
        let sync_ups = combo.rows[0].updates_per_sec;
        let mut row_docs = Vec::new();
        for row in &combo.rows {
            let speedup = row.updates_per_sec / sync_ups;
            table.row(vec![
                combo.transport.to_string(),
                combo.spawn.to_string(),
                row.rpf.to_string(),
                format!("{:.2}", row.updates_per_sec / 1e6),
                format!("{speedup:.2}x"),
                format!("{:.2}x", row.updates_per_sec / local_ups),
                row.frames_sent.to_string(),
                format!("{:.0}", row.bytes_sent as f64 / 1024.0),
            ]);
            row_docs.push(Json::obj(vec![
                ("rounds_per_frame", Json::num(row.rpf as f64)),
                ("wall_s", Json::num(row.wall_s)),
                ("updates_per_sec", Json::num(row.updates_per_sec)),
                ("speedup_vs_sync", Json::num(speedup)),
                ("vs_local", Json::num(row.updates_per_sec / local_ups)),
                ("frames_sent", Json::num(row.frames_sent as f64)),
                ("frames_received", Json::num(row.frames_received as f64)),
                ("bytes_sent", Json::num(row.bytes_sent as f64)),
                ("bytes_received", Json::num(row.bytes_received as f64)),
            ]));
        }
        combo_docs.push(Json::obj(vec![
            ("transport", Json::str(combo.transport)),
            ("spawn", Json::str(combo.spawn)),
            ("rows", Json::Arr(row_docs)),
        ]));
    }
    table.print();
    println!("\nin-process reference: {:.2} Mups", local_ups / 1e6);

    // The gate combo: TCP with separate processes — the deployment shape
    // where the per-round-trip tax is real (see the module docs; UDS is
    // context, not a gate). Threads stand in only when the server binary
    // is absent.
    let gate_spawn = if server_bin.is_some() {
        "processes"
    } else {
        "threads"
    };
    let gate_transport = "tcp";
    let gate = combos
        .iter()
        .find(|c| c.spawn == gate_spawn && c.transport == gate_transport)
        .expect("gate combo was run");
    let sync_ups = gate.rows[0].updates_per_sec;
    let gate_speedup = gate
        .rows
        .iter()
        .skip(1)
        .map(|r| r.updates_per_sec / sync_ups)
        .fold(0.0, f64::max);
    let gate_combo = format!("{gate_transport}/{gate_spawn}");
    println!(
        "\ngate: best pipelined speedup on {gate_combo} = {gate_speedup:.2}x \
         (target >= {SPEEDUP_GATE:.1}x); every run audited bit-identical to \
         the in-process engine"
    );
    // The speedup is protocol-structural — pipelining removes per-round
    // round-trips — so the gate binds before the artifact is written, on
    // smoke and full runs alike. A regression never produces a green
    // BENCH file.
    if gate_speedup < SPEEDUP_GATE {
        eprintln!(
            "e20_remote: GATE FAILED — best pipelined speedup {gate_speedup:.2}x \
             on {gate_combo} is below the required {SPEEDUP_GATE:.1}x"
        );
        std::process::exit(1);
    }

    let doc = Json::obj(vec![
        ("experiment", Json::str("e20_remote")),
        ("smoke", Json::Bool(smoke)),
        ("n", Json::num(n as f64)),
        ("kind", Json::str("deterministic")),
        ("k", Json::num(SITES as f64)),
        ("eps", Json::num(EPS)),
        ("shards", Json::num(SHARDS as f64)),
        ("workers", Json::num(WORKERS as f64)),
        ("batch", Json::num(batch as f64)),
        ("speedup_gate", Json::num(SPEEDUP_GATE)),
        ("gate_combo", Json::str(&gate_combo)),
        ("gate_speedup", Json::num(gate_speedup)),
        ("local_updates_per_sec", Json::num(local_ups)),
        ("combos", Json::Arr(combo_docs)),
    ]);
    std::fs::write(&out, format!("{doc}\n")).expect("write BENCH json");
    println!("\nwrote {out}");

    println!(
        "\nreading: rpf = 1 is the PR 6 wire protocol — every engine round a\n\
         synchronous coordinator <-> worker round-trip, so the socket latency\n\
         is paid n/batch times. rpf = 4/16 stage rounds into bounded send\n\
         queues and ship multi-round DSVR v3 frames, so the same latency is\n\
         paid once per frame; 'frames out' falling as rpf rises is that\n\
         amortization made visible. 'vs local' prices what remains of the\n\
         socket tax after pipelining — the floor is serialization plus one\n\
         memcpy per side, not zero."
    );
}
