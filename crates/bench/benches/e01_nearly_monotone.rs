//! E1 — Theorem 2.1: nearly-monotone streams have
//! `v(n) ≤ 4(1+β)(1 + log₂(2(1+β)f(n)))`; monotone streams (β = 1) have
//! `v = O(log f(n))` (exactly `H(n)` for the unit counter).

use dsv_bench::table::f;
use dsv_bench::{banner, Table};
use dsv_core::variability::Variability;
use dsv_gen::{DeltaGen, MonotoneGen, NearlyMonotoneGen};

fn main() {
    banner(
        "E1  (Theorem 2.1) — variability of monotone / nearly-monotone streams",
        "v(n) <= 4(1+beta)(1 + log2(2(1+beta)·f(n)));  unit counter: v(n) = H(n)",
    );

    println!("\n-- unit counter f(t) = t (beta = 1, tightest monotone case) --");
    let mut t = Table::new(&[
        "n",
        "v(n) measured",
        "H(n) exact",
        "thm2.1 bound",
        "v/bound",
    ]);
    for n in [1_000u64, 10_000, 100_000, 1_000_000] {
        let v = Variability::of_stream(MonotoneGen::ones().deltas(n));
        let h = Variability::harmonic(n);
        let bound = Variability::thm21_bound(1.0, n as i64);
        t.row(vec![n.to_string(), f(v), f(h), f(bound), f(v / bound)]);
    }
    t.print();

    println!("\n-- bursty monotone (jumps up to 64) --");
    let mut t = Table::new(&["n", "f(n)", "v(n) measured", "thm2.1 bound", "v/bound"]);
    for n in [10_000u64, 100_000, 1_000_000] {
        let deltas = MonotoneGen::jumps(7, 64).deltas(n);
        let fnl: i64 = deltas.iter().sum();
        let v = Variability::of_stream(deltas);
        let bound = Variability::thm21_bound(1.0, fnl);
        t.row(vec![
            n.to_string(),
            fnl.to_string(),
            f(v),
            f(bound),
            f(v / bound),
        ]);
    }
    t.print();

    println!("\n-- nearly monotone: f-(n) <= beta·f(n) by construction, n = 200_000 --");
    let mut t = Table::new(&[
        "beta",
        "f(n)",
        "f-(n)",
        "v(n) measured",
        "thm2.1 bound",
        "v/bound",
    ]);
    for beta in [1.0f64, 2.0, 4.0, 8.0] {
        let mut g = NearlyMonotoneGen::new(42, beta, 0.48);
        let deltas = g.deltas(200_000);
        let fnl: i64 = deltas.iter().sum();
        let fminus: i64 = deltas.iter().filter(|&&d| d < 0).map(|d| -d).sum();
        let v = Variability::of_stream(deltas);
        let bound = Variability::thm21_bound(beta, fnl);
        t.row(vec![
            f(beta),
            fnl.to_string(),
            fminus.to_string(),
            f(v),
            f(bound),
            f(v / bound),
        ]);
    }
    t.print();

    println!(
        "\nreading: v/bound <= 1 everywhere confirms Theorem 2.1; the monotone\n\
         rows grow logarithmically in n as claimed in the abstract."
    );
}
