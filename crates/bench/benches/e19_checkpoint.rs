//! E19 — incremental checkpoint bytes (`CheckpointStore`): what a
//! retained boundary costs as a chained delta record versus a full
//! [`EngineCheckpoint`] image, on quiet and loud streams.
//!
//! Two scenarios over the same `ShardedEngine` shape, each recording
//! every boundary into a [`CheckpointStore`] via `checkpoint_into`:
//!
//! * **quiet** — every update lands on one site, so one shard is dirty
//!   per boundary and the other shards contribute identity links. This
//!   is the regime the delta chain is built for, and **the gated
//!   scenario**: over the run the store's incremental bytes must be at
//!   least [`SHRINK_GATE`]× smaller than the same boundaries written as
//!   full snapshot images.
//! * **loud** — updates churn across every site, so every shard's
//!   payload moves at every boundary. Deltas still help (unchanged
//!   64-byte sections are skipped), but this scenario exists to price
//!   the worst case honestly; it is reported, not gated.
//!
//! Correctness is not traded for the byte counts: after each scenario,
//! every retained boundary is materialized from the chain and compared
//! byte-for-byte against the full image recorded at that boundary.
//!
//! Results go to `BENCH_e19.json`; the `bench_schema` CI bin re-enforces
//! the quiet-stream shrink gate on the committed artifact. Unlike the
//! throughput gates (e16/e18), the shrink ratio is structural — it does
//! not depend on machine speed — so it binds on smoke runs too.
//!
//! ```sh
//! cargo bench -p dsv-bench --bench e19_checkpoint        # full gated run
//! target/release/deps/e19_checkpoint-* --smoke --out X.json  # CI smoke
//! ```

use dsv_bench::{banner, Json, Table};
use dsv_core::api::{TrackerKind, TrackerSpec};
use dsv_engine::{CheckpointStore, EngineConfig, ShardedEngine};

const EPS: f64 = 0.1;
const SITES: usize = 64;
const SHARDS: usize = 16;
const BATCH: usize = 4_096;
/// Chain length bound: a fresh base every 32 chained deltas.
const REBASE: u64 = 32;
/// The quiet-stream acceptance gate: incremental boundary records must
/// be at least this many times smaller than full snapshot images.
const SHRINK_GATE: f64 = 10.0;

fn lcg(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state >> 33
}

struct ScenarioOutcome {
    name: &'static str,
    updates: u64,
    boundaries: u64,
    bases: u64,
    identity_links: u64,
    full_bytes: u64,
    delta_bytes: u64,
    shrink: f64,
}

/// Drive `rounds` boundaries of `per_round` ±1 walk updates, spread over
/// `fanout` sites, recording every boundary into a delta store and
/// verifying each retained boundary materializes bit-identically.
fn run_scenario(
    name: &'static str,
    fanout: usize,
    rounds: u64,
    per_round: u64,
    seed: u64,
) -> ScenarioOutcome {
    let spec = TrackerSpec::new(TrackerKind::Deterministic)
        .k(SITES)
        .eps(EPS)
        .deletions(true);
    let cfg = EngineConfig::new(SHARDS, BATCH)
        .eps(EPS)
        .delta_rebase(REBASE);
    let mut engine = ShardedEngine::counters(spec, cfg).expect("valid engine config");
    let mut store = CheckpointStore::new(cfg.delta_rebase_period());

    let mut s = seed;
    let mut images: Vec<(u64, Vec<u8>)> = Vec::new();
    for _ in 0..rounds {
        let mut feeds: Vec<(usize, Vec<i64>)> =
            (0..fanout).map(|site| (site, Vec::new())).collect();
        for _ in 0..per_round {
            let draw = lcg(&mut s);
            let delta = if draw & 1 == 0 { 1 } else { -1 };
            feeds[(draw >> 1) as usize % fanout].1.push(delta);
        }
        let slices: Vec<(usize, &[i64])> = feeds.iter().map(|(k, v)| (*k, v.as_slice())).collect();
        engine
            .run_parted(&slices)
            .expect("walk feeds fit the engine");
        let time = engine
            .checkpoint_into(&mut store)
            .expect("boundary records cleanly");
        // The reference image for the bit-identity audit below. The
        // engine's clean-shard cache makes this second snapshot free of
        // re-serialization for untouched shards.
        images.push((
            time,
            engine.checkpoint().expect("cached snapshot").to_bytes(),
        ));
    }

    // Every retained boundary must come back byte-for-byte from the
    // chain before any byte count is believed.
    for (time, image) in &images {
        let back = store
            .materialize(*time)
            .expect("retained boundary materializes");
        assert_eq!(
            &back.to_bytes(),
            image,
            "{name}: boundary t = {time} did not materialize bit-identically"
        );
    }

    let stats = store.stats();
    ScenarioOutcome {
        name,
        updates: rounds * per_round,
        boundaries: stats.boundaries,
        bases: stats.bases,
        identity_links: stats.identity_links,
        full_bytes: stats.full_bytes,
        delta_bytes: stats.delta_bytes,
        shrink: stats.shrink(),
    }
}

fn main() {
    let mut smoke = false;
    let mut out = String::from("BENCH_e19.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--out" => out = args.next().expect("--out needs a path"),
            "--bench" | "--test" => {} // harness-compat flags from `cargo bench`
            other => {
                eprintln!("e19_checkpoint: unknown argument '{other}'");
                std::process::exit(2);
            }
        }
    }
    let rounds: u64 = if smoke { 24 } else { 96 };
    let per_round: u64 = if smoke { 4_000 } else { 40_000 };

    banner(
        "E19 — incremental checkpoint bytes",
        "a CheckpointStore records every engine boundary as a chained, \
         section-diffed delta record; on quiet streams the retained history \
         costs >= 10x less than full snapshot images, and every boundary \
         still materializes bit-identically",
    );
    println!(
        "sites = {SITES}, shards = {SHARDS}, batch = {BATCH}, rebase = {REBASE}, \
         rounds = {rounds}, updates/round = {per_round}, eps = {EPS}{}",
        if smoke { "  [SMOKE]" } else { "" }
    );

    let scenarios = [
        run_scenario("quiet", 1, rounds, per_round, 0x5EED_0001),
        run_scenario("loud", SITES, rounds, per_round, 0x5EED_0002),
    ];

    let mut table = Table::new(&[
        "scenario",
        "boundaries",
        "bases",
        "identity",
        "full-B/bnd",
        "delta-B/bnd",
        "shrink",
    ]);
    let mut scenario_docs = Vec::new();
    for sc in &scenarios {
        let per = |bytes: u64| bytes as f64 / sc.boundaries as f64;
        table.row(vec![
            sc.name.to_string(),
            sc.boundaries.to_string(),
            sc.bases.to_string(),
            sc.identity_links.to_string(),
            format!("{:.0}", per(sc.full_bytes)),
            format!("{:.0}", per(sc.delta_bytes)),
            format!("{:.1}x", sc.shrink),
        ]);
        scenario_docs.push(Json::obj(vec![
            ("scenario", Json::str(sc.name)),
            ("updates", Json::num(sc.updates as f64)),
            ("boundaries", Json::num(sc.boundaries as f64)),
            ("bases", Json::num(sc.bases as f64)),
            ("identity_links", Json::num(sc.identity_links as f64)),
            ("full_bytes", Json::num(sc.full_bytes as f64)),
            ("delta_bytes", Json::num(sc.delta_bytes as f64)),
            ("full_bytes_per_boundary", Json::num(per(sc.full_bytes))),
            ("delta_bytes_per_boundary", Json::num(per(sc.delta_bytes))),
            ("shrink", Json::num(sc.shrink)),
        ]));
    }
    table.print();

    let quiet_shrink = scenarios[0].shrink;
    println!(
        "\ngate: quiet-stream shrink {quiet_shrink:.1}x (target >= {SHRINK_GATE:.0}x); \
         every boundary in both scenarios materialized bit-identically"
    );
    // The shrink ratio is a property of the encoding, not of the machine,
    // so the gate binds before the artifact is written — on smoke and
    // full runs alike. A regression never produces a green BENCH file.
    if quiet_shrink < SHRINK_GATE {
        eprintln!(
            "e19_checkpoint: GATE FAILED — quiet-stream shrink {quiet_shrink:.2}x \
             is below the required {SHRINK_GATE:.0}x"
        );
        std::process::exit(1);
    }

    let doc = Json::obj(vec![
        ("experiment", Json::str("e19_checkpoint")),
        ("smoke", Json::Bool(smoke)),
        (
            "n",
            Json::num(scenarios.iter().map(|s| s.updates as f64).sum()),
        ),
        ("kind", Json::str("deterministic")),
        ("k", Json::num(SITES as f64)),
        ("eps", Json::num(EPS)),
        ("shards", Json::num(SHARDS as f64)),
        ("batch", Json::num(BATCH as f64)),
        ("rebase", Json::num(REBASE as f64)),
        ("shrink_gate", Json::num(SHRINK_GATE)),
        ("quiet_shrink", Json::num(quiet_shrink)),
        ("loud_shrink", Json::num(scenarios[1].shrink)),
        ("scenarios", Json::Arr(scenario_docs)),
    ]);
    std::fs::write(&out, format!("{doc}\n")).expect("write BENCH json");
    println!("\nwrote {out}");

    println!(
        "\nreading: full-B/bnd is what checkpoint retention used to cost —\n\
         every boundary a complete EngineCheckpoint image. delta-B/bnd is\n\
         what the chain costs: per shard, either an identity link (the\n\
         quiet case — length + fingerprint, no payload), a section-diffed\n\
         delta (only 64-byte sections that moved, zero-RLE packed), or a\n\
         fresh base every {REBASE} chained deltas so materialization stays\n\
         bounded. The loud row is the honest worst case: when every shard\n\
         moves every boundary, the chain converges toward full-image cost\n\
         plus the diff headers."
    );
}
