//! E12 — Appendix C: simulating `|f'| > 1` with ±1 arrivals costs an
//! `O(log max f')` multiplicative variability overhead
//! (Theorem C.1: `Σ 1/(f(n−1)+t) ≤ (f'/f)(1 + H(f'))` for positive jumps,
//! `≤ 3·|f'|/f` for negative ones).

use dsv_bench::table::f;
use dsv_bench::{banner, Table};
use dsv_core::expand::{expand_stream, expanded_step_variability, expansion_bound};
use dsv_core::variability::{Variability, VariabilityMeter};
use dsv_gen::{DeltaGen, MonotoneGen};

fn main() {
    banner(
        "E12  (Appendix C) — simulating large updates with ±1 arrivals",
        "per-update expanded variability <= (f'/f)(1 + H(f')) [pos] or 3|f'|/f [neg]; overhead O(log max f')",
    );

    println!("\n-- single jumps landing on f_prev = 1000 --");
    let mut t = Table::new(&[
        "jump f'",
        "orig v'",
        "expanded v",
        "overhead x",
        "thmC.1 bound",
        "exp/bound",
        "1+H(|f'|)",
    ]);
    for exp in [1u32, 2, 4, 6, 8, 10] {
        let delta = 2i64.pow(exp);
        let f_prev = 1_000i64;
        let expanded = expanded_step_variability(f_prev, delta);
        let mut m = VariabilityMeter::with_initial(f_prev);
        let orig = m.observe(delta);
        let bound = expansion_bound(f_prev, delta);
        t.row(vec![
            delta.to_string(),
            f(orig),
            f(expanded),
            f(expanded / orig.max(1e-12)),
            f(bound),
            f(expanded / bound),
            f(1.0 + Variability::harmonic(delta as u64)),
        ]);
    }
    t.print();
    println!(
        "reading: the overhead factor grows like 1 + H(f') = O(log f'), and\n\
         the measured expanded variability never exceeds the Theorem C.1 bound."
    );

    println!("\n-- negative jumps from f_prev = 1000 --");
    let mut t = Table::new(&["jump f'", "expanded v", "3|f'|/f bound", "exp/bound"]);
    for delta in [-2i64, -16, -128, -512] {
        let f_prev = 1_000i64;
        let expanded = expanded_step_variability(f_prev, delta);
        let bound = expansion_bound(f_prev, delta);
        t.row(vec![
            delta.to_string(),
            f(expanded),
            f(bound),
            f(expanded / bound),
        ]);
    }
    t.print();

    println!("\n-- whole-stream expansion: bursty monotone with jumps <= J --");
    let mut t = Table::new(&["max jump J", "orig v", "expanded v", "overhead x", "1+H(J)"]);
    for j in [4i64, 16, 64, 256, 1024] {
        let deltas = MonotoneGen::jumps(11, j).deltas(20_000);
        let v_orig = Variability::of_stream(deltas.iter().copied());
        let v_exp = Variability::of_stream(expand_stream(&deltas));
        t.row(vec![
            j.to_string(),
            f(v_orig),
            f(v_exp),
            f(v_exp / v_orig),
            f(1.0 + Variability::harmonic(j as u64)),
        ]);
    }
    t.print();
    println!(
        "reading: stream-level overhead stays below 1 + H(J) = O(log max f'),\n\
         exactly the Appendix C claim — so feeding expanded streams to the ±1\n\
         trackers costs only a logarithmic factor."
    );
}
