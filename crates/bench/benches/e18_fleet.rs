//! E18 — keyed-fleet scale (`TrackerFleet`): millions of live (tenant,
//! metric) functions in one engine, on one CPU.
//!
//! Two phases over a single `CounterFleet` of deterministic trackers:
//!
//! * **cold-insert** — touch every key once. This is the worst case for
//!   the slab design: every update creates a slot, builds a tracker from
//!   the prototype snapshot, and (once the hot cache fills) freezes an
//!   evictee back to arena bytes. The phase exists to populate ≥ 1M live
//!   keys and to price key creation honestly; it is reported but not
//!   rate-gated.
//! * **steady** — Zipf-flavored production traffic: bursts of updates to
//!   one key at a time, most bursts landing in a hot working set that
//!   fits the per-shard caches, the tail paying freeze/restore. **This
//!   is the gated phase**: with ≥ 1M keys live, the fleet must sustain
//!   [`RATE_GATE`] updates/sec on the full run.
//!
//! Correctness is not traded for the rate: the fleet's per-key ε-audit
//! runs at every batch boundary, and the run asserts zero violations and
//! (in both modes) spot-checks keys against standalone twin trackers.
//!
//! Results go to `BENCH_e18.json`; the `bench_schema` CI bin re-enforces
//! the keys × throughput gate on the committed artifact.
//!
//! ```sh
//! cargo bench -p dsv-bench --bench e18_fleet            # full gated run
//! target/release/deps/e18_fleet-* --smoke --out X.json  # CI smoke
//! ```

use dsv_bench::{banner, Json, Table};
use dsv_core::api::{Tracker, TrackerKind, TrackerSpec};
use dsv_engine::{CounterFleet, EngineConfig};
use std::time::Instant;

const EPS: f64 = 0.1;
const SHARDS: usize = 64;
const BATCH: usize = 65_536;
const CACHE: usize = 4_096; // hot trackers per shard
/// Live keys the full run must end with (the ISSUE's fleet-scale floor).
const KEYS_GATE: u64 = 1_000_000;
/// Steady-phase updates/sec the full run must sustain on one CPU.
const RATE_GATE: f64 = 1.0e7;

fn lcg(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state >> 33
}

struct PhaseOutcome {
    name: &'static str,
    updates: u64,
    wall_s: f64,
    rate: f64,
    boundaries: u64,
    violations: u64,
}

fn main() {
    let mut smoke = false;
    let mut out = String::from("BENCH_e18.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--out" => out = args.next().expect("--out needs a path"),
            "--bench" | "--test" => {} // harness-compat flags from `cargo bench`
            other => {
                eprintln!("e18_fleet: unknown argument '{other}'");
                std::process::exit(2);
            }
        }
    }
    // Smoke keeps the same shape at 1/16 key scale so the startup path,
    // eviction path, and schema stay exercised in seconds.
    let keys: u64 = if smoke { 65_536 } else { 1 << 20 };
    // The head of the skew: a working set that accumulates real per-key
    // counts, where the deterministic protocol's message rate decays like
    // log(f)/(ε·f). 31 of 32 bursts land here; the rest sample the full
    // key range, so the cold tail's freeze/restore path stays priced in.
    let hot: u64 = 2_048;
    let steady_updates: u64 = if smoke { 2_000_000 } else { 40_000_000 };
    let burst: u64 = 32;

    let spec = TrackerSpec::new(TrackerKind::Deterministic).k(1).eps(EPS);
    let cfg = EngineConfig::new(SHARDS, BATCH).eps(EPS).fleet_cache(CACHE);
    let mut fleet = CounterFleet::counters(spec, cfg).expect("valid fleet config");

    banner(
        "E18 — keyed-fleet scale",
        "one TrackerFleet serves >= 1M live (tenant, metric) deterministic \
         trackers out of per-shard state slabs and sustains >= 1e7 updates/sec \
         of bursty skewed traffic on a single CPU, with every per-key epsilon \
         audit green",
    );
    println!(
        "keys = {keys}, hot set = {hot}, shards = {SHARDS}, batch = {BATCH}, \
         cache = {CACHE}/shard, burst = {burst}, eps = {EPS}{}",
        if smoke { "  [SMOKE]" } else { "" }
    );

    // Twin trackers for spot keys: the hottest, a mid hot-set key, and a
    // cold-tail key. Fed identically; compared after the steady phase.
    let spot = [0u64, hot - 1, keys - 1];
    let mut twins: Vec<(u64, Box<dyn Tracker + Send>, i64)> = spot
        .iter()
        .map(|&key| (key, spec.build().expect("valid spec"), 0i64))
        .collect();

    let mut phases = Vec::new();

    // Phase 1: cold inserts — every key exactly once, in a shuffled-ish
    // order (stride coprime to the key count) so shards fill evenly.
    let started = Instant::now();
    let stride = 1_000_003u64; // prime, coprime to the power-of-two key count
    for i in 0..keys {
        let key = (i.wrapping_mul(stride)) % keys;
        fleet.update(key, 1).expect("in-range update");
        if let Some(t) = twins.iter_mut().find(|(k, _, _)| *k == key) {
            t.1.step(0, 1);
            t.2 += 1;
        }
    }
    fleet.flush().expect("boundary reconcile");
    let wall = started.elapsed().as_secs_f64();
    phases.push(PhaseOutcome {
        name: "cold-insert",
        updates: keys,
        wall_s: wall,
        rate: keys as f64 / wall,
        boundaries: fleet.boundaries(),
        violations: fleet.key_violations(),
    });
    assert_eq!(fleet.len() as u64, keys, "every key is live after phase 1");

    // Phase 2: steady bursty traffic — 31 of 32 bursts hit the hot head.
    let boundaries_before = fleet.boundaries();
    let mut s = 0x00C0FFEEu64;
    let started = Instant::now();
    let bursts = steady_updates / burst;
    for _ in 0..bursts {
        let draw = lcg(&mut s);
        let key = if !draw.is_multiple_of(32) {
            (draw >> 5) % hot
        } else {
            (draw >> 5) % keys
        };
        for _ in 0..burst {
            fleet.update(key, 1).expect("in-range update");
        }
        if let Some(t) = twins.iter_mut().find(|(k, _, _)| *k == key) {
            for _ in 0..burst {
                t.1.step(0, 1);
            }
            t.2 += burst as i64;
        }
    }
    fleet.flush().expect("boundary reconcile");
    let wall = started.elapsed().as_secs_f64();
    let steady_rate = (bursts * burst) as f64 / wall;
    phases.push(PhaseOutcome {
        name: "steady",
        updates: bursts * burst,
        wall_s: wall,
        rate: steady_rate,
        boundaries: fleet.boundaries() - boundaries_before,
        violations: fleet.key_violations(),
    });

    // Correctness before any timing is believed: per-key audits are green
    // fleet-wide, and the spot keys answer exactly as standalone twins.
    assert_eq!(fleet.key_violations(), 0, "per-key epsilon audit");
    for (key, twin, f) in &twins {
        let audit = fleet.key_audit(*key).expect("spot keys are live");
        assert_eq!(audit.f, *f, "key {key}: ground truth drifted");
        assert_eq!(
            fleet.estimate(*key),
            Some(twin.estimate()),
            "key {key}: fleet estimate diverged from standalone twin"
        );
    }

    let mem = fleet.memory();
    let live_keys = fleet.len() as u64;
    let mut table = Table::new(&[
        "phase",
        "updates",
        "wall-s",
        "upd/s",
        "boundaries",
        "violations",
    ]);
    let mut phase_docs = Vec::new();
    for p in &phases {
        table.row(vec![
            p.name.to_string(),
            p.updates.to_string(),
            format!("{:.2}", p.wall_s),
            format!("{:.3e}", p.rate),
            p.boundaries.to_string(),
            p.violations.to_string(),
        ]);
        phase_docs.push(Json::obj(vec![
            ("phase", Json::str(p.name)),
            ("updates", Json::num(p.updates as f64)),
            ("wall_s", Json::num(p.wall_s)),
            ("updates_per_sec", Json::num(p.rate)),
            ("boundaries", Json::num(p.boundaries as f64)),
            ("key_violations", Json::num(p.violations as f64)),
        ]));
    }
    table.print();
    println!(
        "\nstate: {live_keys} live keys in {:.1} MiB — {:.1} MiB frozen arenas \
         ({:.1} MiB garbage), {} cached hot trackers, {:.1} MiB slots, {:.1} MiB index",
        mem.total_bytes() as f64 / (1 << 20) as f64,
        mem.arena_bytes as f64 / (1 << 20) as f64,
        mem.arena_garbage as f64 / (1 << 20) as f64,
        mem.cached_trackers,
        mem.slot_bytes as f64 / (1 << 20) as f64,
        mem.index_bytes as f64 / (1 << 20) as f64,
    );
    println!(
        "ledger: {} messages, fleet max rel err {:.4}",
        fleet.comm_stats().total_messages(),
        fleet.max_rel_err(),
    );

    let doc = Json::obj(vec![
        ("experiment", Json::str("e18_fleet")),
        ("smoke", Json::Bool(smoke)),
        (
            "n",
            Json::num(phases.iter().map(|p| p.updates as f64).sum()),
        ),
        ("kind", Json::str("deterministic")),
        ("k", Json::num(1.0)),
        ("eps", Json::num(EPS)),
        ("shards", Json::num(SHARDS as f64)),
        ("batch", Json::num(BATCH as f64)),
        ("fleet_cache", Json::num(CACHE as f64)),
        ("keys_gate", Json::num(KEYS_GATE as f64)),
        ("rate_gate", Json::num(RATE_GATE)),
        ("live_keys", Json::num(live_keys as f64)),
        ("steady_updates_per_sec", Json::num(steady_rate)),
        ("total_bytes", Json::num(mem.total_bytes() as f64)),
        ("key_violations", Json::num(fleet.key_violations() as f64)),
        ("phases", Json::Arr(phase_docs)),
    ]);
    std::fs::write(&out, format!("{doc}\n")).expect("write BENCH json");
    println!("\nwrote {out}");

    println!(
        "\ngate: {live_keys} live keys (target >= {KEYS_GATE}), steady rate \
         {steady_rate:.3e} upd/s (target >= {RATE_GATE:.1e})"
    );
    // The scale gate needs the full key population and a multi-second
    // steady phase, so — like e16's throughput gate — it binds on full
    // runs only; smoke runs hold the shape, the audits, and the twins.
    if !smoke && (live_keys < KEYS_GATE || steady_rate < RATE_GATE) {
        eprintln!(
            "e18_fleet: GATE FAILED — {live_keys} keys at {steady_rate:.3e} upd/s \
             (need >= {KEYS_GATE} keys at >= {RATE_GATE:.1e} upd/s)"
        );
        std::process::exit(1);
    }

    println!(
        "\nreading: the cold-insert phase prices key creation — slot, index\n\
         entry, prototype restore, and (once the caches fill) an eviction\n\
         freeze per key. The steady phase is the production regime: bursts\n\
         within a batch collapse into one materialize + one update_run per\n\
         key per boundary, so the hot set runs at in-cache tracker speed\n\
         while the cold tail pays a codec round-trip per touch. The per-key\n\
         epsilon audit runs at every boundary; violations would fail the run\n\
         before any throughput number is printed."
    );
}
