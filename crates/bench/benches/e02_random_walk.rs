//! E2 — Theorem 2.2: for i.i.d. fair ±1 increments,
//! `E[v(n)] = O(√n · log n)`.

use dsv_bench::table::f;
use dsv_bench::{banner, Summary, Table};
use dsv_core::variability::Variability;
use dsv_gen::{DeltaGen, WalkGen};

fn main() {
    banner(
        "E2  (Theorem 2.2) — expected variability of the fair ±1 random walk",
        "E[v(n)] = O(sqrt(n)·log n): the ratio v / (sqrt(n)·ln n) should stay bounded",
    );

    let trials = 24u64;
    let mut t = Table::new(&[
        "n",
        "E[v] (mean)",
        "std",
        "min",
        "max",
        "sqrt(n)ln(n)",
        "ratio",
    ]);
    let mut ratios = Vec::new();
    for n in [1_000u64, 4_000, 16_000, 64_000, 256_000, 1_024_000] {
        let vs: Vec<f64> = (0..trials)
            .map(|seed| Variability::of_stream(WalkGen::fair(1000 + seed).deltas(n)))
            .collect();
        let s = Summary::of(&vs);
        let shape = Variability::thm22_shape(n);
        ratios.push(s.mean / shape);
        t.row(vec![
            n.to_string(),
            f(s.mean),
            f(s.std),
            f(s.min),
            f(s.max),
            f(shape),
            f(s.mean / shape),
        ]);
    }
    t.print();

    let rs = Summary::of(&ratios);
    println!(
        "\nreading: the ratio column is the implied constant of Thm 2.2; it stays\n\
         within [{:.3}, {:.3}] across a 1000x range of n (bounded, slowly\n\
         decreasing — consistent with E[v] = O(sqrt(n) log n) and the sum\n\
         sum_t (1+2H_t)/sqrt(t) in the proof).",
        rs.min, rs.max
    );
}
