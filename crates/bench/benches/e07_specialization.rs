//! E7 — §2 remarks: the worst-case `v`-bounds specialize to the known
//! results on restricted inputs:
//!
//! * monotone inputs: `v = O(log n)`, so the §3 trackers match the
//!   CMY `O((k/ε)log n)` / HYZ `O((k+√k/ε)log n)` cost shapes;
//! * fair-coin inputs: `E[v] = O(√n log n)`, so the *worst-case* bound
//!   `O((√k/ε)·v)` reproduces Liu et al.'s expected
//!   `O((√k/ε)·√n·log n)` — but as a per-instance guarantee.

use dsv_bench::table::f;
use dsv_bench::{banner, Summary, Table};
use dsv_core::api::{Driver, TrackerKind, TrackerSpec};
use dsv_core::variability::Variability;
use dsv_gen::{DeltaGen, MonotoneGen, RoundRobin, WalkGen};
use dsv_net::Update;

/// Total messages of one spec-built tracker over `updates`.
fn messages(kind: TrackerKind, k: usize, eps: f64, seed: u64, updates: &[Update]) -> u64 {
    let mut tracker = TrackerSpec::new(kind)
        .k(k)
        .eps(eps)
        .seed(seed)
        .build()
        .expect("valid spec");
    Driver::new(eps)
        .expect("valid eps")
        .run(&mut tracker, updates)
        .expect("stream fits this kind")
        .stats
        .total_messages()
}

fn main() {
    banner(
        "E7  (Section 2 remarks) — specialization to monotone & random-input results",
        "monotone: tracker costs ~ CMY/HYZ log n shapes; fair coins: cost ~ (sqrt(k)/eps)·sqrt(n)·log n (Liu et al. shape)",
    );

    let k = 16;
    let eps = 0.1;

    println!("\n-- monotone counter, k = {k}, eps = {eps}: messages vs n --");
    let mut t = Table::new(&[
        "n",
        "v(n)",
        "det msgs",
        "CMY msgs",
        "det/CMY",
        "rand msgs",
        "HYZ msgs",
        "rand/HYZ",
    ]);
    for n in [20_000u64, 80_000, 320_000] {
        let updates = MonotoneGen::ones().updates(n, RoundRobin::new(k));
        let v = Variability::of_stream(updates.iter().map(|u| u.delta));

        let det_m = messages(TrackerKind::Deterministic, k, eps, 0, &updates);
        let cmy_m = messages(TrackerKind::CmyMonotone, k, eps, 0, &updates);

        let rand_m: f64 = {
            let runs: Vec<f64> = (0..8)
                .map(|s| messages(TrackerKind::Randomized, k, eps, 100 + s, &updates) as f64)
                .collect();
            Summary::of(&runs).mean
        };
        let hyz_m: f64 = {
            let runs: Vec<f64> = (0..8)
                .map(|s| messages(TrackerKind::HyzMonotone, k, eps, 200 + s, &updates) as f64)
                .collect();
            Summary::of(&runs).mean
        };

        t.row(vec![
            n.to_string(),
            f(v),
            det_m.to_string(),
            cmy_m.to_string(),
            f(det_m as f64 / cmy_m as f64),
            f(rand_m),
            f(hyz_m),
            f(rand_m / hyz_m),
        ]);
    }
    t.print();
    println!(
        "reading: on monotone inputs both trackers stay within a constant factor\n\
         of the specialized monotone algorithms — the generality is (nearly) free,\n\
         and all four columns grow ~ log n."
    );

    // Liu et al.'s shape needs the walk to actually leave the r = 0 zone
    // (|f| ≥ 4k), so the cleanest regime is small k where √n >> 4k.
    let k2 = 1;
    println!("\n-- fair coin flips, k = {k2}, eps = {eps}: Liu et al. shape --");
    let mut t = Table::new(&[
        "n",
        "E[v]",
        "E[det msgs]",
        "E[rand msgs]",
        "shape sqrt(n)ln n",
        "det/shape",
    ]);
    for n in [16_000u64, 64_000, 256_000, 1_024_000] {
        let mut vs = Vec::new();
        let mut det_ms = Vec::new();
        let mut rand_ms = Vec::new();
        for seed in 0..16u64 {
            let updates = WalkGen::fair(3_000 + seed).updates(n, RoundRobin::new(k2));
            vs.push(Variability::of_stream(updates.iter().map(|u| u.delta)));
            det_ms.push(messages(TrackerKind::Deterministic, k2, eps, 0, &updates) as f64);
            rand_ms.push(messages(TrackerKind::Randomized, k2, eps, 400 + seed, &updates) as f64);
        }
        let shape = Variability::thm22_shape(n);
        t.row(vec![
            n.to_string(),
            f(Summary::of(&vs).mean),
            f(Summary::of(&det_ms).mean),
            f(Summary::of(&rand_ms).mean),
            f(shape),
            f(Summary::of(&det_ms).mean / shape),
        ]);
    }
    t.print();
    println!(
        "reading: on fair coins the expected message cost tracks sqrt(n)·log n\n\
         (bounded final column across a 64x range of n), reproducing Liu et\n\
         al.'s *expected* bound from a *worst-case* guarantee — the decoupling\n\
         of input randomness from algorithm randomness promised in §2."
    );
}
