//! Criterion micro-benchmarks for the tracker hot paths (cost per stream
//! update, including all protocol work the update triggers).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use dsv_core::deterministic::DeterministicTracker;
use dsv_core::randomized::RandomizedTracker;
use dsv_core::variability::VariabilityMeter;
use dsv_gen::{DeltaGen, WalkGen};
use std::hint::black_box;

fn bench_variability_meter(c: &mut Criterion) {
    let mut g = c.benchmark_group("variability");
    g.throughput(Throughput::Elements(1));
    g.bench_function("meter_observe", |b| {
        let mut m = VariabilityMeter::new();
        let mut sign = 1i64;
        b.iter(|| {
            sign = -sign;
            black_box(m.observe(black_box(sign)))
        })
    });
    g.finish();
}

fn bench_trackers(c: &mut Criterion) {
    let n = 50_000usize;
    let k = 8;
    let eps = 0.1;
    let deltas = WalkGen::biased(3, 0.2).deltas(n as u64);

    let mut g = c.benchmark_group("tracker_per_update");
    g.throughput(Throughput::Elements(n as u64));
    g.bench_function("deterministic_k8", |b| {
        b.iter_batched(
            || DeterministicTracker::sim(k, eps),
            |mut sim| {
                for (i, &d) in deltas.iter().enumerate() {
                    black_box(sim.step(i % k, d));
                }
                sim
            },
            BatchSize::LargeInput,
        )
    });
    g.bench_function("randomized_k8", |b| {
        b.iter_batched(
            || RandomizedTracker::sim(k, eps, 42),
            |mut sim| {
                for (i, &d) in deltas.iter().enumerate() {
                    black_box(sim.step(i % k, d));
                }
                sim
            },
            BatchSize::LargeInput,
        )
    });
    g.finish();
}

criterion_group!(benches, bench_variability_meter, bench_trackers);
criterion_main!(benches);
