//! E6 — §3.4 randomized tracker: per-timestep failure probability < 1/3
//! and expected messages `O((k + √k/ε)·v(n))`.

use dsv_bench::table::f;
use dsv_bench::{banner, Summary, Table};
use dsv_core::api::{Driver, TrackerKind, TrackerSpec};
use dsv_core::randomized::RandomizedTracker;
use dsv_core::variability::Variability;
use dsv_gen::{DeltaGen, MonotoneGen, NearlyMonotoneGen, RoundRobin, WalkGen};
use dsv_net::Update;

fn workloads(n: u64, k: usize) -> Vec<(&'static str, Vec<Update>)> {
    vec![
        (
            "monotone",
            MonotoneGen::ones().updates(n, RoundRobin::new(k)),
        ),
        (
            "fair walk",
            WalkGen::fair(19).updates(n, RoundRobin::new(k)),
        ),
        (
            "biased 0.3",
            WalkGen::biased(23, 0.3).updates(n, RoundRobin::new(k)),
        ),
        (
            "nearly-mono b=2",
            NearlyMonotoneGen::new(29, 2.0, 0.45).updates(n, RoundRobin::new(k)),
        ),
    ]
}

fn main() {
    banner(
        "E6  (Section 3.4) — randomized tracker: P(err > eps·f) < 1/3, O((k+sqrt(k)/eps)·v) expected messages",
        "HYZ A+/A- estimators per block; p = min{1, 3/(eps·2^r·sqrt(k))}",
    );

    let n = 60_000u64;
    let trials = 24u64;
    let mut t = Table::new(&[
        "stream",
        "k",
        "eps",
        "v(n)",
        "viol rate",
        "E[msgs]",
        "msg std",
        "bound",
        "msgs/bound",
    ]);
    for k in [4usize, 16, 64] {
        for eps in [0.2f64, 0.05] {
            for (name, updates) in workloads(n, k) {
                let v = Variability::of_stream(updates.iter().map(|u| u.delta));
                let mut viols = 0u64;
                let mut msgs = Vec::new();
                let driver = Driver::new(eps).expect("valid eps");
                for seed in 0..trials {
                    let mut tracker = TrackerSpec::new(TrackerKind::Randomized)
                        .k(k)
                        .eps(eps)
                        .seed(5_000 + seed)
                        .deletions(true)
                        .build()
                        .expect("valid spec");
                    let report = driver
                        .run(&mut tracker, &updates)
                        .expect("randomized tracker accepts deletions");
                    viols += report.violations;
                    msgs.push(report.stats.total_messages() as f64);
                }
                let ms = Summary::of(&msgs);
                let rate = viols as f64 / (trials as f64 * n as f64);
                let bound = RandomizedTracker::message_bound(k, eps, v);
                t.row(vec![
                    name.to_string(),
                    k.to_string(),
                    f(eps),
                    f(v),
                    f(rate),
                    f(ms.mean),
                    f(ms.std),
                    f(bound),
                    f(ms.mean / bound),
                ]);
            }
        }
    }
    t.print();

    println!(
        "\nreading: the average per-timestep violation rate is far below the 1/3\n\
         the guarantee allows (Chebyshev gives 2/9; block ends resync exactly),\n\
         and expected messages stay within the O((k+sqrt(k)/eps)·v) bound."
    );
}
