//! E4 — §3.1 block-partitioning facts:
//! `⌈2^{r−1}⌉k ≤ |B_j| ≤ 2^r·k`; `|f|` confined inside blocks; exact sync
//! at every block end; ≤ 5k partition messages per block; per-block
//! variability gain ≥ 1/10 (the paper states 1/5 via the looser length
//! bound — we report the measured minimum).

use dsv_bench::table::f;
use dsv_bench::{banner, Table};
use dsv_core::blocks::{threshold_for, BlockOnlyCoord, BlockOnlySite};
use dsv_core::variability::VariabilityMeter;
use dsv_gen::{AdversarialGen, DeltaGen, MonotoneGen, NearlyMonotoneGen, WalkGen};
use dsv_net::StarSim;

fn run_case(name: &str, deltas: Vec<i64>, k: usize, t: &mut Table) {
    let mut sim = StarSim::with_k(k, |_| BlockOnlySite::new(), BlockOnlyCoord::new(k));
    let mut meter = VariabilityMeter::new();
    let mut v_series = Vec::with_capacity(deltas.len());
    let mut values = Vec::with_capacity(deltas.len());
    let mut per_block_msgs: Vec<u64> = Vec::new();
    let mut prev_stats = sim.stats().clone();
    let mut prev_blocks = 0usize;
    for (i, &d) in deltas.iter().enumerate() {
        meter.observe(d);
        v_series.push(meter.value());
        values.push(meter.f());
        sim.step(i % k, d);
        let nblocks = sim.coordinator().blocks().log().unwrap().len();
        if nblocks > prev_blocks {
            let now = sim.stats().clone();
            per_block_msgs.push(now.since(&prev_stats).total_messages());
            prev_stats = now;
            prev_blocks = nblocks;
        }
    }
    let log = sim.coordinator().blocks().log().unwrap();
    if log.is_empty() {
        return;
    }
    let mut len_ok = true;
    let mut sync_ok = true;
    let mut range_ok = true;
    let mut min_dv = f64::INFINITY;
    for b in log {
        let th = threshold_for(b.r);
        if b.len() < th * k as u64 || b.len() > (1u64 << b.r) * k as u64 {
            len_ok = false;
        }
        if b.f_end != values[(b.end - 1) as usize] {
            sync_ok = false;
        }
        for tt in b.start..b.end {
            let abs = values[tt as usize].unsigned_abs();
            let ok = if b.r == 0 {
                abs <= 5 * k as u64
            } else {
                abs >= (1u64 << b.r) * k as u64 && abs <= (1u64 << b.r) * 5 * k as u64
            };
            if !ok {
                range_ok = false;
            }
        }
        let v_start = if b.start == 0 {
            0.0
        } else {
            v_series[(b.start - 1) as usize]
        };
        min_dv = min_dv.min(v_series[(b.end - 1) as usize] - v_start);
    }
    let max_msgs = per_block_msgs.iter().copied().max().unwrap_or(0);
    let max_r = log.iter().map(|b| b.r).max().unwrap();
    t.row(vec![
        name.to_string(),
        k.to_string(),
        log.len().to_string(),
        max_r.to_string(),
        bool_mark(len_ok),
        bool_mark(sync_ok),
        bool_mark(range_ok),
        format!("{max_msgs} (<= {})", 5 * k),
        f(min_dv),
    ]);
}

fn bool_mark(ok: bool) -> String {
    if ok {
        "ok".into()
    } else {
        "VIOLATED".into()
    }
}

fn main() {
    banner(
        "E4  (Section 3.1) — block partitioning facts",
        "ceil(2^(r-1))k <= |B_j| <= 2^r k; exact sync at block ends; |f| range; <= 5k msgs/block; dv >= 1/10",
    );

    let n = 60_000u64;
    let mut t = Table::new(&[
        "stream",
        "k",
        "blocks",
        "max r",
        "len bounds",
        "exact sync",
        "f range",
        "max msgs/blk",
        "min dv/blk",
    ]);
    for k in [1usize, 4, 16, 64] {
        run_case("monotone", MonotoneGen::ones().deltas(n), k, &mut t);
        run_case("fair walk", WalkGen::fair(3).deltas(n), k, &mut t);
        run_case("biased 0.3", WalkGen::biased(5, 0.3).deltas(n), k, &mut t);
        run_case(
            "nearly-mono b=2",
            NearlyMonotoneGen::new(7, 2.0, 0.45).deltas(n),
            k,
            &mut t,
        );
        run_case(
            "sawtooth",
            AdversarialGen::sawtooth(64, 512).deltas(n),
            k,
            &mut t,
        );
    }
    t.print();

    println!(
        "\nreading: all three §3.1 facts hold on every stream/k combination;\n\
         the per-block message cost never exceeds 5k, and each completed\n\
         block gains at least 1/10 variability (paper states 1/5 using the\n\
         looser |B_j| >= 2^r k; measured minima sit between the two)."
    );
}
