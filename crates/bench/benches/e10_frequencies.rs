//! E10 — §5.1 / Appendix H: distributed item-frequency tracking.
//!
//! Every item is tracked to `±ε·F1(n)` — deterministically by the exact
//! and CR-precis variants, w.p. ≥ 8/9 per item by Count-Min — with
//! `O((k/ε)·v)` messages; the sketched variants shrink coordinator space
//! from `O(|U|)` to `O(poly(1/ε)·log|U|)` counters.

use dsv_bench::table::f;
use dsv_bench::{banner, Table};
use dsv_core::api::{ItemDriver, ItemRunReport, TrackerKind, TrackerSpec};
use dsv_gen::{ItemStreamGen, RoundRobin};
use dsv_net::ItemUpdate;

/// Build one frequency kind from the spec and audit it over `updates`.
fn audit(
    kind: TrackerKind,
    k: usize,
    eps: f64,
    universe: usize,
    audit_every: u64,
    updates: &[ItemUpdate],
) -> ItemRunReport {
    let mut tracker = TrackerSpec::new(kind)
        .k(k)
        .eps(eps)
        .seed(99)
        .universe(universe)
        .build_item()
        .expect("valid spec");
    ItemDriver::new(eps)
        .expect("valid eps")
        .with_item_audit(audit_every)
        .run_items(&mut tracker, updates)
        .expect("item streams fit every frequency kind")
}

fn main() {
    banner(
        "E10  (Section 5.1 / Appendix H) — distributed frequency tracking",
        "all item frequencies within eps·F1(n); exact/CR-precis deterministic, Count-Min w.p. >= 8/9; messages O((k/eps)·v)",
    );

    let n = 60_000u64;
    let universe = 10_000usize;
    let k = 4;
    let audit_every = 2_000;

    let mut t = Table::new(&[
        "variant",
        "eps",
        "audits",
        "viol rate",
        "max err/F1",
        "F1 viols",
        "messages",
        "coord space (words)",
    ]);

    for eps in [0.2f64, 0.1] {
        let updates = ItemStreamGen::new(77, universe, 1.1, 0.35, 1).updates(n, RoundRobin::new(k));

        for (label, kind) in [
            ("exact per-item", TrackerKind::ExactFreq),
            ("Count-Min", TrackerKind::CountMinFreq),
            ("CR-precis", TrackerKind::CrPrecisFreq),
        ] {
            let r = audit(kind, k, eps, universe, audit_every, &updates);
            t.row(vec![
                label.into(),
                f(eps),
                r.audits.to_string(),
                f(r.item_violation_rate()),
                f(r.max_err_over_f1),
                r.run.violations.to_string(),
                r.run.stats.total_messages().to_string(),
                r.coord_space_words.to_string(),
            ]);
        }
    }
    t.print();

    println!("\n-- message cost follows F1-variability (exact variant, eps = 0.2) --");
    let mut t = Table::new(&["workload", "final F1", "messages", "msgs/n"]);
    for (name, delete_prob) in [
        ("growing (5% deletes)", 0.05),
        ("balanced (35% deletes)", 0.35),
        ("churning (49.5% deletes)", 0.495),
    ] {
        let updates =
            ItemStreamGen::new(5, 1_000, 1.1, delete_prob, 1).updates(n, RoundRobin::new(k));
        let r = audit(TrackerKind::ExactFreq, k, 0.2, 1_000, n, &updates);
        t.row(vec![
            name.into(),
            r.run.final_f.to_string(),
            r.run.stats.total_messages().to_string(),
            f(r.run.stats.total_messages() as f64 / n as f64),
        ]);
    }
    t.print();

    println!(
        "\nreading: deterministic variants have violation rate 0; Count-Min's\n\
         audited rate stays below its 1/9 budget. Sketch coordinators use\n\
         orders of magnitude less space than |U| counters. Message cost drops\n\
         as the dataset grows (low F1-variability) and rises under churn —\n\
         the graceful degradation the framework promises."
    );
}
