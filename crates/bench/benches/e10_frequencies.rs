//! E10 — §5.1 / Appendix H: distributed item-frequency tracking.
//!
//! Every item is tracked to `±ε·F1(n)` — deterministically by the exact
//! and CR-precis variants, w.p. ≥ 8/9 per item by Count-Min — with
//! `O((k/ε)·v)` messages; the sketched variants shrink coordinator space
//! from `O(|U|)` to `O(poly(1/ε)·log|U|)` counters.

use dsv_bench::table::f;
use dsv_bench::{banner, Table};
use dsv_core::frequencies::{
    CountMinFreqTracker, CrPrecisFreqTracker, ExactFreqTracker, FreqRunner,
};
use dsv_gen::{ItemStreamGen, RoundRobin};

fn main() {
    banner(
        "E10  (Section 5.1 / Appendix H) — distributed frequency tracking",
        "all item frequencies within eps·F1(n); exact/CR-precis deterministic, Count-Min w.p. >= 8/9; messages O((k/eps)·v)",
    );

    let n = 60_000u64;
    let universe = 10_000usize;
    let k = 4;
    let audit_every = 2_000;

    let mut t = Table::new(&[
        "variant",
        "eps",
        "audits",
        "viol rate",
        "max err/F1",
        "F1 viols",
        "messages",
        "coord space (words)",
    ]);

    for eps in [0.2f64, 0.1] {
        let updates = ItemStreamGen::new(77, universe, 1.1, 0.35, 1).updates(n, RoundRobin::new(k));

        let mut exact = ExactFreqTracker::sim(k, eps, universe);
        let re = FreqRunner::new(eps, audit_every).run(&mut exact, &updates);
        t.row(vec![
            "exact per-item".into(),
            f(eps),
            re.audits.to_string(),
            f(re.item_violation_rate()),
            f(re.max_err_over_f1),
            re.f1_violations.to_string(),
            re.stats.total_messages().to_string(),
            re.coord_space_words.to_string(),
        ]);

        let mut cm = CountMinFreqTracker::sim(k, eps, 99);
        let rc = FreqRunner::new(eps, audit_every).run(&mut cm, &updates);
        t.row(vec![
            "Count-Min".into(),
            f(eps),
            rc.audits.to_string(),
            f(rc.item_violation_rate()),
            f(rc.max_err_over_f1),
            rc.f1_violations.to_string(),
            rc.stats.total_messages().to_string(),
            rc.coord_space_words.to_string(),
        ]);

        let mut cr = CrPrecisFreqTracker::sim(k, eps, universe as u64);
        let rr = FreqRunner::new(eps, audit_every).run(&mut cr, &updates);
        t.row(vec![
            "CR-precis".into(),
            f(eps),
            rr.audits.to_string(),
            f(rr.item_violation_rate()),
            f(rr.max_err_over_f1),
            rr.f1_violations.to_string(),
            rr.stats.total_messages().to_string(),
            rr.coord_space_words.to_string(),
        ]);
    }
    t.print();

    println!("\n-- message cost follows F1-variability (exact variant, eps = 0.2) --");
    let mut t = Table::new(&["workload", "final F1", "messages", "msgs/n"]);
    for (name, delete_prob) in [
        ("growing (5% deletes)", 0.05),
        ("balanced (35% deletes)", 0.35),
        ("churning (49.5% deletes)", 0.495),
    ] {
        let updates =
            ItemStreamGen::new(5, 1_000, 1.1, delete_prob, 1).updates(n, RoundRobin::new(k));
        let mut sim = ExactFreqTracker::sim(k, 0.2, 1_000);
        let r = FreqRunner::new(0.2, n).run(&mut sim, &updates);
        t.row(vec![
            name.into(),
            r.final_f1.to_string(),
            r.stats.total_messages().to_string(),
            f(r.stats.total_messages() as f64 / n as f64),
        ]);
    }
    t.print();

    println!(
        "\nreading: deterministic variants have violation rate 0; Count-Min's\n\
         audited rate stays below its 1/9 budget. Sketch coordinators use\n\
         orders of magnitude less space than |U| counters. Message cost drops\n\
         as the dataset grows (low F1-variability) and rises under churn —\n\
         the graceful degradation the framework promises."
    );
}
