//! E15 (extension) — the Appendix H open problem, measured.
//!
//! *"Whether it is also possible to probabilistically track item
//! frequencies over general update streams in O((√k/ε)·v(n)) messages
//! remains open."* We implement the natural candidate (per-counter A±
//! sampling inside blocks + deterministic block-end heavy reports, see
//! `dsv_core::frequencies_rand`) and decompose its message cost, showing:
//!
//! * the *sampled* in-block traffic does scale like √k (the HYZ part
//!   generalizes fine), but
//! * the *block-end heavy reporting* term — the exact term the paper
//!   flags — scales like `k·(1/ε)` per unit variability and dominates,
//!
//! so the candidate does **not** beat `O((k/ε)·v)` overall; empirical
//! support for why the problem is genuinely open.

use dsv_bench::table::f;
use dsv_bench::{banner, Table};
use dsv_core::api::{ItemDriver, ItemTracker, Tracker, TrackerKind, TrackerSpec};
use dsv_core::frequencies_rand::RandFreqTracker;
use dsv_gen::{ItemStreamGen, RoundRobin};

fn main() {
    banner(
        "E15 (extension) — Appendix H's open problem: randomized frequency tracking",
        "candidate: per-counter A± sampling + deterministic block-end reports; measure which term dominates",
    );

    let eps = 0.1;
    let universe = 500usize;
    let n = 60_000u64;

    let mut t = Table::new(&[
        "k",
        "det variant msgs",
        "rand total msgs",
        "sampled",
        "heavy (block-end)",
        "f1+partition",
        "heavy share",
    ]);
    for k in [4usize, 16, 64] {
        let updates = ItemStreamGen::new(61, universe, 1.1, 0.35, 1).updates(n, RoundRobin::new(k));

        let mut det = TrackerSpec::new(TrackerKind::ExactFreq)
            .k(k)
            .eps(eps)
            .universe(universe)
            .build_item()
            .expect("valid spec");
        let det_msgs = ItemDriver::new(eps)
            .expect("valid eps")
            .run_items(&mut det, &updates)
            .expect("item streams fit every frequency kind")
            .run
            .stats
            .total_messages();

        let mut sim = RandFreqTracker::sim_exact(k, eps, universe, 77);
        for u in &updates {
            sim.step(u.site, (u.item, u.delta));
        }
        let b = sim.coordinator().breakdown();
        let total = sim.stats().total_messages();
        t.row(vec![
            k.to_string(),
            det_msgs.to_string(),
            total.to_string(),
            b.sampled.to_string(),
            b.heavy.to_string(),
            (b.f1_drift + b.partition).to_string(),
            f(b.heavy as f64 / (b.sampled + b.heavy + b.f1_drift + b.partition) as f64),
        ]);
    }
    t.print();

    println!(
        "\nreading: as k grows, the sampled component stays ~flat (the 1/√k\n\
         per-site sampling rate offsets having k sites), but the block-end\n\
         heavy-report component — 'deterministically updating all of the\n\
         large f̂_il at the end of each block could incur O(1/eps) messages'\n\
         (Appendix H) — grows and dominates the budget. The natural\n\
         generalization therefore does NOT achieve O((sqrt(k)/eps)·v);\n\
         consistent with the paper leaving the problem open."
    );

    println!("\n-- accuracy of the candidate (should be usable despite the cost) --");
    let k = 8;
    let updates = ItemStreamGen::new(67, universe, 1.1, 0.35, 1).updates(n, RoundRobin::new(k));
    let mut tracker = TrackerSpec::new(TrackerKind::RandFreq)
        .k(k)
        .eps(eps)
        .universe(universe)
        .seed(99)
        .build_item()
        .expect("valid spec");
    // Audit the FULL universe at each checkpoint, not just items seen so
    // far (the ItemDriver's audit set): sampled drift misattributed to a
    // never-seen item must count against the candidate too, and the rate's
    // denominator stays comparable across runs.
    let mut truth = dsv_sketch::ExactCounts::new();
    use dsv_sketch::FreqSketch;
    let mut audits = 0u64;
    let mut violations = 0u64;
    for u in &updates {
        truth.update(u.item, u.delta);
        tracker.step(u.site, (u.item, u.delta));
        if u.time % 2_000 == 0 {
            let budget = eps * truth.f1() as f64;
            for item in 0..universe as u64 {
                audits += 1;
                if (tracker.estimate_item(item) - truth.estimate(item)).abs() as f64 > budget {
                    violations += 1;
                }
            }
        }
    }
    println!(
        "audited {audits} item queries: violation rate {:.4} (target < 2/9 per row)",
        violations as f64 / audits as f64
    );
}
