//! E17 — pipelined ingestion overlap (`ShardedEngine::run_pipelined`) vs
//! the synchronized per-round feeder (`run_parted` driven one round at a
//! time, the pre-pipeline execution model).
//!
//! Three scenarios over the same engine configuration:
//!
//! * **uniform** — every feed produces instantly; measures the transport
//!   overhead of the bounded queues when there is nothing to overlap.
//! * **slow-feed** — every site is rate-limited (its producer takes
//!   `d_i` to generate each round chunk) and one site is markedly slower
//!   than the rest. The synchronized model's single feeder loop collects
//!   the round's chunks **serially** — it waits `Σᵢ dᵢ` per round, the
//!   slow site stalling every shard, then computes. The pipelined engine
//!   lets all sites produce **concurrently** and shards absorb chunks as
//!   they arrive, so wall-clock approaches `max(R·max_i dᵢ, compute)`.
//!   **This is the gated row**: the overlap speedup on it must meet
//!   [`OVERLAP_GATE`], in smoke and full runs alike — production
//!   concurrency is sleep-dominated, so the win needs no second core and
//!   holds on a 1-CPU container.
//! * **skewed-feed** — one feed is 4× longer than the rest; shards with
//!   short feeds finish early and idle instead of gating anyone.
//!
//! Every scenario asserts the two modes land **bit-identically**
//! (estimates and tracker/merge ledgers) before any timing is reported —
//! the overlap win is only a win because the answer is unchanged.
//!
//! Results go to `BENCH_e17.json` (schema + gate re-enforced by the
//! `bench_schema` CI bin).
//!
//! ```sh
//! cargo bench -p dsv-bench --bench e17_pipeline            # full run
//! target/release/deps/e17_pipeline-* --smoke --out X.json  # CI smoke
//! ```

use dsv_bench::table::f;
use dsv_bench::{banner, Json, Table};
use dsv_core::api::{TrackerKind, TrackerSpec};
use dsv_engine::{EngineConfig, ShardedEngine};
use dsv_net::CommStats;
use std::time::{Duration, Instant};

const K: usize = 4;
const SHARDS: usize = 4;
const EPS: f64 = 0.1;
/// Minimum slow-feed overlap speedup (sync wall / pipelined wall). The
/// serial-collection baseline pays `Σᵢ dᵢ = 7 ms` of production per round
/// against the pipeline's `max_i dᵢ = 4 ms`, plus the compute it cannot
/// overlap — ~1.7× on this configuration. 1.25× leaves room for sleep
/// jitter, queue overhead, and noisy CI machines.
const OVERLAP_GATE: f64 = 1.25;

/// Per-round production time of the slow site.
const SLOW_SITE_DELAY: Duration = Duration::from_millis(4);
/// Per-round production time of every other (rate-limited) site.
const FAST_SITE_DELAY: Duration = Duration::from_millis(1);

fn spec() -> TrackerSpec {
    TrackerSpec::new(TrackerKind::Deterministic)
        .k(K)
        .eps(EPS)
        .deletions(true)
}

fn cfg(batch: usize) -> EngineConfig {
    EngineConfig::new(SHARDS, batch).eps(EPS).probe_every(0)
}

/// What a mode run leaves behind, compared across modes and reported.
struct ModeOutcome {
    wall: Duration,
    n: u64,
    estimate: i64,
    shard_estimates: Vec<i64>,
    tracker_stats: CommStats,
    merge_stats: CommStats,
    messages: u64,
    boundary_violations: u64,
    push_stalls: u64,
    pop_waits: u64,
    mean_occupancy: f64,
}

/// The synchronized execution model this PR retires: one feeder loop
/// that, every round, first waits for every feed's chunk to be produced
/// (the slow feed's sleep happens here, serially), then hands the round
/// to the engine. `delays[i]` is slept before feed `i`'s chunk of every
/// round becomes available.
fn run_sync(feeds: &[Vec<i64>], batch: usize, delays: &[Duration]) -> ModeOutcome {
    let mut engine = ShardedEngine::counters(spec(), cfg(batch)).expect("valid config");
    let rounds = feeds.iter().map(|d| d.len().div_ceil(batch)).max().unwrap();
    let started = Instant::now();
    let mut n = 0u64;
    let mut violations = 0u64;
    for round in 0..rounds {
        let mut this_round: Vec<(usize, &[i64])> = Vec::with_capacity(feeds.len());
        for (site, data) in feeds.iter().enumerate() {
            let lo = (round * batch).min(data.len());
            let hi = ((round + 1) * batch).min(data.len());
            if lo == hi {
                continue;
            }
            if delays[site] > Duration::ZERO {
                std::thread::sleep(delays[site]);
            }
            this_round.push((site, &data[lo..hi]));
        }
        let report = engine.run_parted(&this_round).expect("valid stream");
        n += report.n;
        violations += report.boundary_violations;
    }
    ModeOutcome {
        wall: started.elapsed(),
        n,
        estimate: engine.estimate(),
        shard_estimates: engine.shard_estimates(),
        tracker_stats: engine.tracker_stats(),
        merge_stats: engine.merge_stats().clone(),
        messages: engine.tracker_stats().total_messages() + engine.merge_stats().total_messages(),
        boundary_violations: violations,
        push_stalls: 0,
        pop_waits: 0,
        mean_occupancy: 0.0,
    }
}

/// The pipelined model: one producer thread per feed pushing round
/// chunks (sleeping its own delay per chunk), workers draining their own
/// queues, coordinator reconciling concurrently.
fn run_pipelined(feeds: &[Vec<i64>], batch: usize, delays: &[Duration]) -> ModeOutcome {
    let mut engine = ShardedEngine::counters(spec(), cfg(batch)).expect("valid config");
    let sites: Vec<usize> = (0..feeds.len()).collect();
    let started = Instant::now();
    let report = engine
        .run_pipelined(&sites, |handles| {
            std::thread::scope(|s| {
                for (mut handle, (data, &delay)) in
                    handles.into_iter().zip(feeds.iter().zip(delays))
                {
                    s.spawn(move || {
                        for chunk in data.chunks(batch) {
                            if delay > Duration::ZERO {
                                std::thread::sleep(delay);
                            }
                            handle.push_batch(chunk).expect("validated stream");
                        }
                    });
                }
            });
        })
        .expect("valid stream");
    ModeOutcome {
        wall: started.elapsed(),
        n: report.n,
        estimate: engine.estimate(),
        shard_estimates: engine.shard_estimates(),
        tracker_stats: engine.tracker_stats(),
        merge_stats: engine.merge_stats().clone(),
        messages: report.total_stats().total_messages(),
        boundary_violations: report.boundary_violations,
        push_stalls: report.ingest_stats.push_stalls,
        pop_waits: report.ingest_stats.pop_waits,
        mean_occupancy: report.ingest_stats.mean_occupancy(),
    }
}

/// A deterministic drift-dominated delta stream (mostly +1, every 7th -1)
/// so the deterministic tracker does real absorb work without violations.
fn deltas(len: usize, salt: usize) -> Vec<i64> {
    (0..len)
        .map(|i| if (i + salt) % 7 == 6 { -1 } else { 1 })
        .collect()
}

struct Scenario {
    name: &'static str,
    feeds: Vec<Vec<i64>>,
    delays: Vec<Duration>,
}

fn main() {
    let mut smoke = false;
    let mut out = String::from("BENCH_e17.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--out" => out = args.next().expect("--out needs a path"),
            "--bench" | "--test" => {} // harness-compat flags from `cargo bench`
            other => {
                eprintln!("e17_pipeline: unknown argument '{other}'");
                std::process::exit(2);
            }
        }
    }
    let (batch, rounds) = if smoke { (65_536, 8) } else { (65_536, 16) };
    let per_feed = batch * rounds;

    banner(
        "E17 — pipelined ingestion overlap",
        "run_pipelined overlaps feed production with shard absorption and \
         coordinator merging: a slow feed no longer stalls fast shards, with \
         estimates and ledgers bit-identical to the synchronized rounds",
    );
    println!(
        "k = {K}, shards = {SHARDS}, batch = {batch}, rounds/feed = {rounds}, eps = {EPS}{}",
        if smoke { "  [SMOKE]" } else { "" }
    );

    // Rate-limited sites: every producer takes FAST_SITE_DELAY to
    // generate a round chunk, the slow one SLOW_SITE_DELAY. The sleeps
    // dominate the per-round compute by construction, so the measured
    // overlap is production concurrency — deterministic, and independent
    // of core count and machine speed.
    let uniform_feeds: Vec<Vec<i64>> = (0..K).map(|s| deltas(per_feed, s)).collect();
    let no_delay = vec![Duration::ZERO; K];
    let mut slow_delays = vec![FAST_SITE_DELAY; K];
    slow_delays[0] = SLOW_SITE_DELAY;
    println!(
        "rate limits: site 0 produces a chunk every {:.0} ms, sites 1..{K} every {:.0} ms",
        SLOW_SITE_DELAY.as_secs_f64() * 1e3,
        FAST_SITE_DELAY.as_secs_f64() * 1e3,
    );
    let scenarios = vec![
        Scenario {
            name: "uniform",
            feeds: uniform_feeds.clone(),
            delays: no_delay.clone(),
        },
        Scenario {
            name: "slow-feed",
            feeds: uniform_feeds.clone(),
            delays: slow_delays,
        },
        Scenario {
            name: "skewed-feed",
            feeds: (0..K)
                .map(|s| deltas(if s == 0 { 4 * per_feed } else { per_feed }, s))
                .collect(),
            delays: no_delay,
        },
    ];

    let mut table = Table::new(&[
        "scenario",
        "mode",
        "wall-ms",
        "upd/s",
        "speedup",
        "stalls",
        "waits",
        "occupancy",
    ]);
    let mut scenario_docs = Vec::new();
    let mut total_n = 0u64;
    let mut gate_speedup = 0.0f64;

    for sc in &scenarios {
        let sync = run_sync(&sc.feeds, batch, &sc.delays);
        let piped = run_pipelined(&sc.feeds, batch, &sc.delays);

        // The overlap win is only a win because the answer is unchanged:
        // bit-identical estimates, replica states, and ledgers.
        assert_eq!(piped.n, sync.n, "{}: consumed counts diverged", sc.name);
        assert_eq!(
            piped.estimate, sync.estimate,
            "{}: estimates diverged",
            sc.name
        );
        assert_eq!(
            piped.shard_estimates, sync.shard_estimates,
            "{}: shard estimates diverged",
            sc.name
        );
        assert_eq!(
            piped.tracker_stats, sync.tracker_stats,
            "{}: tracker ledgers diverged",
            sc.name
        );
        assert_eq!(
            piped.merge_stats, sync.merge_stats,
            "{}: merge ledgers diverged",
            sc.name
        );

        let speedup = sync.wall.as_secs_f64() / piped.wall.as_secs_f64();
        if sc.name == "slow-feed" {
            gate_speedup = speedup;
        }
        total_n += sync.n;

        let mut rows_json = Vec::new();
        for (mode, o) in [("sync", &sync), ("pipelined", &piped)] {
            let wall_ms = o.wall.as_secs_f64() * 1e3;
            let ups = o.n as f64 / o.wall.as_secs_f64();
            table.row(vec![
                sc.name.to_string(),
                mode.to_string(),
                format!("{wall_ms:.1}"),
                format!("{ups:.3e}"),
                if mode == "sync" { f(1.0) } else { f(speedup) },
                o.push_stalls.to_string(),
                o.pop_waits.to_string(),
                format!("{:.1}", o.mean_occupancy),
            ]);
            rows_json.push(Json::obj(vec![
                ("mode", Json::str(mode)),
                ("wall_ms", Json::num(wall_ms)),
                ("updates_per_sec", Json::num(ups)),
                ("messages", Json::num(o.messages as f64)),
                (
                    "boundary_violations",
                    Json::num(o.boundary_violations as f64),
                ),
                ("push_stalls", Json::num(o.push_stalls as f64)),
                ("pop_waits", Json::num(o.pop_waits as f64)),
                ("mean_occupancy", Json::num(o.mean_occupancy)),
            ]));
        }
        scenario_docs.push(Json::obj(vec![
            ("scenario", Json::str(sc.name)),
            ("rows", Json::Arr(rows_json)),
            ("overlap_speedup", Json::num(speedup)),
        ]));
    }
    table.print();

    let doc = Json::obj(vec![
        ("experiment", Json::str("e17_pipeline")),
        ("smoke", Json::Bool(smoke)),
        ("n", Json::num(total_n as f64)),
        ("kind", Json::str("deterministic")),
        ("k", Json::num(K as f64)),
        ("shards", Json::num(SHARDS as f64)),
        ("batch", Json::num(batch as f64)),
        ("overlap_gate", Json::num(OVERLAP_GATE)),
        ("scenarios", Json::Arr(scenario_docs)),
    ]);
    std::fs::write(&out, format!("{doc}\n")).expect("write BENCH json");
    println!("\nwrote {out}");

    println!("\ngate: slow-feed overlap speedup = {gate_speedup:.2}x (target >= {OVERLAP_GATE}x)");
    // Enforced in smoke runs too: the overlap is sleep-vs-compute, which
    // needs no second core and is calibrated to this machine, so CI can
    // hold the line on every commit (unlike e16's full-run-only gate).
    if gate_speedup < OVERLAP_GATE {
        eprintln!(
            "e17_pipeline: GATE FAILED — slow-feed overlap speedup {gate_speedup:.2}x < {OVERLAP_GATE}x"
        );
        std::process::exit(1);
    }
    println!(
        "\nreading: 'sync' is the pre-pipeline model — one feeder loop collects\n\
         every rate-limited site's chunk serially (sum of the sites' production\n\
         times, the slow site stalling every shard) before any round may run.\n\
         'pipelined' gives each feed a bounded queue: sites produce\n\
         concurrently, workers absorb each chunk as it arrives, and the\n\
         coordinator merges the previous boundary meanwhile, so wall-clock\n\
         approaches max(slowest site's production, compute). Production\n\
         concurrency is sleep-dominated, so the win survives a 1-CPU host.\n\
         The uniform row shows the queues' transport overhead when there is\n\
         nothing to overlap; the skewed row shows short feeds finishing\n\
         early without gating the long one. Estimates and both CommStats\n\
         ledgers are asserted bit-identical between the modes before any\n\
         timing is reported."
    );
}
