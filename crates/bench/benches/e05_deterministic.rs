//! E5 — §3.3 deterministic tracker: the ε-guarantee holds at **every**
//! timestep and total messages are `O((k/ε)·v(n))`.

use dsv_bench::table::f;
use dsv_bench::{banner, Table};
use dsv_core::api::{Driver, TrackerKind, TrackerSpec};
use dsv_core::deterministic::DeterministicTracker;
use dsv_core::variability::Variability;
use dsv_gen::{AdversarialGen, DeltaGen, MonotoneGen, NearlyMonotoneGen, RoundRobin, WalkGen};
use dsv_net::Update;

fn workloads(n: u64, k: usize) -> Vec<(&'static str, Vec<Update>)> {
    vec![
        (
            "monotone",
            MonotoneGen::ones().updates(n, RoundRobin::new(k)),
        ),
        (
            "fair walk",
            WalkGen::fair(11).updates(n, RoundRobin::new(k)),
        ),
        (
            "biased 0.2",
            WalkGen::biased(13, 0.2).updates(n, RoundRobin::new(k)),
        ),
        (
            "nearly-mono b=2",
            NearlyMonotoneGen::new(17, 2.0, 0.45).updates(n, RoundRobin::new(k)),
        ),
        (
            "hover 100",
            AdversarialGen::hover(100).updates(n, RoundRobin::new(k)),
        ),
    ]
}

fn main() {
    banner(
        "E5  (Section 3.3) — deterministic tracker: correctness and O((k/eps)·v) messages",
        "|f - fhat| <= eps·|f| at every t; messages <= partition(50kv+5k) + inblock(20kv/eps + 2k/eps)",
    );

    let n = 100_000u64;
    let mut t = Table::new(&[
        "stream",
        "k",
        "eps",
        "v(n)",
        "violations",
        "max err/eps",
        "messages",
        "bound",
        "msgs/bound",
        "msgs/n",
    ]);
    for k in [1usize, 4, 16] {
        for eps in [0.2f64, 0.05] {
            for (name, updates) in workloads(n, k) {
                let v = Variability::of_stream(updates.iter().map(|u| u.delta));
                let mut tracker = TrackerSpec::new(TrackerKind::Deterministic)
                    .k(k)
                    .eps(eps)
                    .deletions(true)
                    .build()
                    .expect("valid spec");
                let report = Driver::new(eps)
                    .expect("valid eps")
                    .run(&mut tracker, &updates)
                    .expect("deterministic tracker accepts deletions");
                let bound = DeterministicTracker::message_bound(k, eps, v);
                let msgs = report.stats.total_messages();
                t.row(vec![
                    name.to_string(),
                    k.to_string(),
                    f(eps),
                    f(v),
                    report.violations.to_string(),
                    f(report.max_rel_err / eps),
                    msgs.to_string(),
                    f(bound),
                    f(msgs as f64 / bound),
                    f(msgs as f64 / n as f64),
                ]);
            }
        }
    }
    t.print();

    println!(
        "\nreading: violations = 0 on every row (the deterministic guarantee is\n\
         unconditional); msgs/bound < 1 everywhere confirms the O((k/eps)·v)\n\
         cost; msgs/n << 1 on low-variability streams shows the win over the\n\
         naive Theta(n) baseline, degrading gracefully as v grows."
    );
}
