//! E9 — Lemmas 4.3/4.4: the randomized hard family.
//!
//! Sequences switch between `m = 1/ε` and `m+3` independently with
//! probability `p = v/(6εn)`. The lemma needs: (1) two independent samples
//! *match* (≥ 6n/10 overlaps) only with small probability, and (2) most
//! samples have variability ≤ v. Both are verified empirically, along
//! with the Markov-chain quantities (mixing-time bound, expected
//! switches) the Chung–Lam–Liu–Mitzenmacher argument uses.

use dsv_bench::table::f;
use dsv_bench::{banner, Summary, Table};
use dsv_core::lower_bound::RandSwitchFamily;

fn main() {
    banner(
        "E9  (Lemmas 4.3/4.4) — randomized hard family",
        "independent m <-> m+3 switching (p = v/6·eps·n): no two samples should match; variability concentrated <= v",
    );

    let pairs = 200u64;
    let mut t = Table::new(&[
        "eps",
        "v budget",
        "n",
        "p switch",
        "E[switch] thy",
        "switches meas",
        "overlap frac mean",
        "overlap frac max",
        "matches",
        "frac v<=budget",
    ]);
    for (eps, v, n) in [
        (0.25f64, 60.0f64, 10_000u64),
        (0.25, 120.0, 10_000),
        (0.125, 120.0, 20_000),
        (0.5, 200.0, 20_000),
    ] {
        let fam = RandSwitchFamily::new(eps, v, n);
        let mut overlaps = Vec::new();
        let mut matches = 0u64;
        let mut switch_counts = Vec::new();
        let mut within_budget = 0u64;
        for i in 0..pairs {
            let a = fam.sample(2 * i);
            let b = fam.sample(2 * i + 1);
            let o = a.overlaps(&b, eps) as f64 / n as f64;
            overlaps.push(o);
            if a.matches(&b, eps) {
                matches += 1;
            }
            switch_counts.push(a.flips().len() as f64);
            if a.variability() <= v {
                within_budget += 1;
            }
        }
        let os = Summary::of(&overlaps);
        let ss = Summary::of(&switch_counts);
        t.row(vec![
            f(eps),
            f(v),
            n.to_string(),
            f(fam.switch_prob()),
            f(fam.expected_switches()),
            f(ss.mean),
            f(os.mean),
            f(os.max),
            matches.to_string(),
            f(within_budget as f64 / pairs as f64),
        ]);
    }
    t.print();

    println!("\n-- lemma quantities --");
    let fam = RandSwitchFamily::new(0.25, 120.0, 10_000);
    println!(
        "mixing-time bound T <= 3/(2p) = {:.1} steps; match-probability exponent v/(32400·eps) = {:.4};\n\
         ln target family size = {:.4}",
        fam.mixing_time_bound(),
        fam.match_prob_exponent(),
        fam.ln_family_size()
    );

    println!(
        "\nreading: overlap fractions concentrate near 1/2 (the Markov chain's\n\
         stationary agreement rate). Match counts drop to 0 as the number of\n\
         switches v/(6·eps) grows — with few switches the overlap has heavy\n\
         tails and occasional matches appear, which is exactly why Lemma 4.4\n\
         requires the (enormous) threshold v >= 32400·eps·ln C before the\n\
         Chung–Lam–Liu–Mitzenmacher bound kicks in; the measured trend\n\
         confirms the mechanism at laptop-scale parameters. All samples stay\n\
         within the variability budget (Lemma 4.4's Chernoff step)."
    );
}
