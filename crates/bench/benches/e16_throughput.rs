//! E16 — throughput of the batched, sharded engine (`dsv-engine`) vs the
//! sequential per-update `Driver` loop.
//!
//! Sweeps shards × batch sizes over a ≥10M-update stream (400k in
//! `--smoke` mode) for three stream classes, and writes the results as
//! machine-readable JSON (default `BENCH_e16.json`, schema enforced by
//! the `bench_schema` CI gate) so the perf trajectory is diffable across
//! commits.
//!
//! ```sh
//! cargo bench -p dsv-bench --bench e16_throughput            # full run
//! target/release/deps/e16_throughput-* --smoke --out X.json  # CI smoke
//! ```
//!
//! Acceptance target (ISSUE 3): at `S = 8` the engine sustains ≥ 5× the
//! sequential Driver's updates/sec on the 10M-update stream.
//!
//! Acceptance target (ISSUE 8): batch consolidation (`consolidated` mode
//! = `parted` + `EngineConfig::consolidate`) sustains ≥ 1.3× the
//! unconsolidated `parted` throughput at `S = 8` on the monotone stream
//! — enforced here on full runs before the JSON is written, and
//! re-enforced on the committed artifact by `bench_schema`.

use dsv_bench::table::f;
use dsv_bench::{banner, Json, Table};
use dsv_core::api::{Driver, TrackerKind, TrackerSpec};
use dsv_engine::{EngineConfig, ShardedEngine};
use dsv_gen::{DeltaGen, MonotoneGen, RoundRobin, WalkGen};
use dsv_net::Update;
use std::time::Instant;

const K: usize = 8;
const EPS: f64 = 0.1;
const SHARD_AXIS: [usize; 4] = [1, 2, 4, 8];
const BATCH_AXIS: [usize; 3] = [4_096, 32_768, 262_144];
/// Floor on `consolidated` / `parted` throughput at `S = 8` on the
/// monotone stream (full runs; re-enforced by `bench_schema` on the
/// committed artifact).
const CONSOLIDATE_GATE: f64 = 1.3;

fn spec() -> TrackerSpec {
    TrackerSpec::new(TrackerKind::Deterministic)
        .k(K)
        .eps(EPS)
        .deletions(true)
}

/// Sequential baseline: the audited per-update Driver loop.
fn baseline_updates_per_sec(updates: &[Update]) -> (f64, u64) {
    let mut tracker = spec().build().expect("valid spec");
    let driver = Driver::new(EPS).expect("valid eps");
    let started = Instant::now();
    let report = driver.run(&mut tracker, updates).expect("stream fits kind");
    let secs = started.elapsed().as_secs_f64();
    (updates.len() as f64 / secs, report.stats.total_messages())
}

struct Row {
    mode: &'static str,
    shards: usize,
    batch: usize,
    updates_per_sec: f64,
    speedup: f64,
    boundary_violations: u64,
    messages: u64,
}

/// Central-router ingestion: the engine receives the globally interleaved
/// stream and routes it to shards itself.
fn routed_row(updates: &[Update], shards: usize, batch: usize, baseline: f64) -> Row {
    let cfg = EngineConfig::new(shards, batch).eps(EPS).probe_every(0);
    let mut engine = ShardedEngine::counters(spec(), cfg).expect("valid config");
    let report = engine.run(updates).expect("stream fits kind");
    let ups = report.updates_per_sec();
    Row {
        mode: "routed",
        shards,
        batch,
        updates_per_sec: ups,
        speedup: ups / baseline,
        boundary_violations: report.boundary_violations,
        messages: report.total_stats().total_messages(),
    }
}

/// Distributed ingestion: per-site feeds arrive pre-parted (every site
/// streams on its own queue — no central router exists), zero-copy into
/// the shard workers. Feed construction is outside the timed region, the
/// same way the baseline's `Vec<Update>` construction is.
fn parted_row(feeds: &[(usize, &[i64])], shards: usize, batch: usize, baseline: f64) -> Row {
    let cfg = EngineConfig::new(shards, batch).eps(EPS).probe_every(0);
    let mut engine = ShardedEngine::counters(spec(), cfg).expect("valid config");
    let report = engine.run_parted(feeds).expect("stream fits kind");
    let ups = report.updates_per_sec();
    Row {
        mode: "parted",
        shards,
        batch,
        updates_per_sec: ups,
        speedup: ups / baseline,
        boundary_violations: report.boundary_violations,
        messages: report.total_stats().total_messages(),
    }
}

/// `parted` ingestion with batch consolidation on: each worker RLEs its
/// run and drives the O(1)-per-segment `absorb_quiet_run` kernels
/// (bit-identical estimates and ledgers — `tests/consolidation_equivalence.rs`).
fn consolidated_row(feeds: &[(usize, &[i64])], shards: usize, batch: usize, baseline: f64) -> Row {
    let cfg = EngineConfig::new(shards, batch)
        .eps(EPS)
        .probe_every(0)
        .consolidate(true);
    let mut engine = ShardedEngine::counters(spec(), cfg).expect("valid config");
    let report = engine.run_parted(feeds).expect("stream fits kind");
    let ups = report.updates_per_sec();
    Row {
        mode: "consolidated",
        shards,
        batch,
        updates_per_sec: ups,
        speedup: ups / baseline,
        boundary_violations: report.boundary_violations,
        messages: report.total_stats().total_messages(),
    }
}

fn main() {
    let mut smoke = false;
    let mut out = String::from("BENCH_e16.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--out" => out = args.next().expect("--out needs a path"),
            "--bench" | "--test" => {} // harness-compat flags from `cargo bench`
            other => {
                eprintln!("e16_throughput: unknown argument '{other}'");
                std::process::exit(2);
            }
        }
    }
    let n: u64 = if smoke { 400_000 } else { 10_000_000 };

    banner(
        "E16 — batched sharded engine throughput",
        "ShardedEngine sustains >= 5x the sequential Driver's updates/sec at S = 8 \
         on a 10M-update stream, with boundary-audited estimates",
    );
    println!(
        "n = {n}, k = {K}, eps = {EPS}, kind = deterministic{}",
        if smoke { "  [SMOKE]" } else { "" }
    );

    let streams: Vec<(&str, Vec<i64>)> = vec![
        ("monotone", MonotoneGen::ones().deltas(n)),
        ("biased-walk-0.05", WalkGen::biased(9, 0.05).deltas(n)),
        ("fair-walk", WalkGen::fair(11).deltas(n)),
    ];

    let mut table = Table::new(&[
        "stream",
        "mode",
        "shards",
        "batch",
        "upd/s",
        "speedup",
        "boundary-viol",
        "messages",
    ]);
    let mut stream_docs = Vec::new();
    let mut gate_best = 0.0f64;
    // Best monotone S=8 updates/sec per mode, for the consolidation gate.
    let mut gate_parted_ups = 0.0f64;
    let mut gate_cons_ups = 0.0f64;

    for (name, deltas) in &streams {
        let updates = dsv_gen::assign_updates(deltas, RoundRobin::new(K));
        // Per-site feeds for the distributed-ingest mode (untimed, like
        // the baseline's update vector construction).
        let mut feeds: Vec<(usize, Vec<i64>)> = (0..K).map(|s| (s, Vec::new())).collect();
        for u in &updates {
            feeds[u.site].1.push(u.delta);
        }
        let feed_slices: Vec<(usize, &[i64])> =
            feeds.iter().map(|(s, v)| (*s, v.as_slice())).collect();

        let (baseline, base_msgs) = baseline_updates_per_sec(&updates);
        table.row(vec![
            name.to_string(),
            "seq".into(),
            "-".into(),
            "-".into(),
            format!("{:.3e}", baseline),
            f(1.0),
            "0".into(),
            base_msgs.to_string(),
        ]);

        let mut rows_json = Vec::new();
        for shards in SHARD_AXIS {
            for batch in BATCH_AXIS {
                for row in [
                    routed_row(&updates, shards, batch, baseline),
                    parted_row(&feed_slices, shards, batch, baseline),
                    consolidated_row(&feed_slices, shards, batch, baseline),
                ] {
                    if *name == "monotone" && shards == 8 {
                        match row.mode {
                            "parted" => {
                                gate_best = gate_best.max(row.speedup);
                                gate_parted_ups = gate_parted_ups.max(row.updates_per_sec);
                            }
                            "consolidated" => {
                                gate_cons_ups = gate_cons_ups.max(row.updates_per_sec);
                            }
                            _ => {}
                        }
                    }
                    table.row(vec![
                        name.to_string(),
                        row.mode.to_string(),
                        row.shards.to_string(),
                        row.batch.to_string(),
                        format!("{:.3e}", row.updates_per_sec),
                        f(row.speedup),
                        row.boundary_violations.to_string(),
                        row.messages.to_string(),
                    ]);
                    rows_json.push(Json::obj(vec![
                        ("mode", Json::str(row.mode)),
                        ("shards", Json::num(row.shards as f64)),
                        ("batch", Json::num(row.batch as f64)),
                        ("updates_per_sec", Json::num(row.updates_per_sec)),
                        ("speedup", Json::num(row.speedup)),
                        (
                            "boundary_violations",
                            Json::num(row.boundary_violations as f64),
                        ),
                        ("messages", Json::num(row.messages as f64)),
                    ]));
                }
            }
        }
        stream_docs.push(Json::obj(vec![
            ("stream", Json::str(*name)),
            ("baseline_updates_per_sec", Json::num(baseline)),
            ("rows", Json::Arr(rows_json)),
        ]));
    }
    table.print();

    let consolidation_speedup = gate_cons_ups / gate_parted_ups;
    println!(
        "\nconsolidation: best S=8 monotone consolidated/parted = {consolidation_speedup:.2}x \
         (target >= {CONSOLIDATE_GATE}x on the full run)"
    );
    // The consolidation gate binds *before* the JSON is written: a full
    // run that regresses below the floor leaves no artifact to commit.
    // Smoke runs skip it (400k updates barely amortize worker startup)
    // but still record the ratio for bench_schema's shape checks.
    if !smoke && consolidation_speedup < CONSOLIDATE_GATE {
        eprintln!(
            "e16_throughput: GATE FAILED — S=8 monotone consolidated/parted \
             {consolidation_speedup:.2}x < {CONSOLIDATE_GATE}x"
        );
        std::process::exit(1);
    }

    let doc = Json::obj(vec![
        ("experiment", Json::str("e16_throughput")),
        ("smoke", Json::Bool(smoke)),
        ("n", Json::num(n as f64)),
        ("kind", Json::str("deterministic")),
        ("k", Json::num(K as f64)),
        ("eps", Json::num(EPS)),
        ("consolidate_gate", Json::num(CONSOLIDATE_GATE)),
        ("consolidation_speedup", Json::num(consolidation_speedup)),
        ("streams", Json::Arr(stream_docs)),
    ]);
    std::fs::write(&out, format!("{doc}\n")).expect("write BENCH json");
    println!("\nwrote {out}");

    println!(
        "\ngate: best S=8 parted speedup on the monotone stream = {:.2}x (target >= 5x on the full run)",
        gate_best
    );
    // The acceptance gate is enforced, not just printed: a full run that
    // regresses below 5x exits nonzero. Smoke runs skip it (CI machines
    // are noisy and 400k updates barely amortize worker startup); CI
    // still schema-validates the smoke artifact via bench_schema.
    if !smoke && gate_best < 5.0 {
        eprintln!("e16_throughput: GATE FAILED — best S=8 parted speedup {gate_best:.2}x < 5x");
        std::process::exit(1);
    }
    println!(
        "\nreading: 'routed' feeds the engine the globally interleaved stream\n\
         (its central router pays one extra read+scatter pass over every\n\
         update — on this box that pass alone costs more than the absorb\n\
         kernels); 'parted' ingests per-site feeds the way a deployed system\n\
         receives them (no router exists), zero-copy into the absorb_quiet\n\
         kernels, which is where the >= 5x gate lives; 'consolidated' is\n\
         'parted' plus per-worker batch consolidation (RLE into the O(1)\n\
         absorb_quiet_run kernels), which is where the >= 1.3x gate lives.\n\
         Boundary violations on the fair walk are expected: near f = 0 the\n\
         merged bound eps*sum|f_s| exceeds eps*|f| (DESIGN 5)."
    );
}
