//! E14 (ablation) — the §3.4 sampling constant.
//!
//! The paper fixes `p = min{1, 3/(ε·2^r·√k)}`; the 3 comes from making
//! Chebyshev's failure bound `2/c² = 2/9 < 1/3`. This ablation sweeps the
//! constant `c` and measures the real failure-probability/message
//! trade-off, showing how much slack the Chebyshev analysis leaves.

use dsv_bench::table::f;
use dsv_bench::{banner, Summary, Table};
use dsv_core::api::{Driver, TrackerKind, TrackerSpec};
use dsv_core::variability::Variability;
use dsv_gen::{DeltaGen, RoundRobin, WalkGen};

fn main() {
    banner(
        "E14 (ablation) — sampling constant c in p = min{1, c/(eps·2^r·sqrt(k))}",
        "paper picks c = 3 (Chebyshev failure 2/9); measure the real failure/messages trade-off",
    );

    let k = 16;
    let eps = 0.1;
    let n = 60_000u64;
    let trials = 24u64;
    let updates = WalkGen::biased(55, 0.4).updates(n, RoundRobin::new(k));
    let v = Variability::of_stream(updates.iter().map(|u| u.delta));
    println!("\nworkload: biased walk (mu=0.4), n = {n}, k = {k}, eps = {eps}, v = {v:.1}\n");

    let mut t = Table::new(&[
        "c",
        "cheby bound 2/c^2",
        "measured viol rate",
        "E[msgs]",
        "msgs vs c=3",
    ]);
    let mut base_msgs = 0.0f64;
    for c in [0.5f64, 1.0, 2.0, 3.0, 6.0, 12.0] {
        let mut viol = 0u64;
        let mut msgs = Vec::new();
        let driver = Driver::new(eps).expect("valid eps");
        for seed in 0..trials {
            let mut tracker = TrackerSpec::new(TrackerKind::Randomized)
                .k(k)
                .eps(eps)
                .seed(7_000 + seed)
                .sample_const(c)
                .deletions(true)
                .build()
                .expect("valid spec");
            let report = driver
                .run(&mut tracker, &updates)
                .expect("randomized tracker accepts deletions");
            viol += report.violations;
            msgs.push(report.stats.total_messages() as f64);
        }
        let ms = Summary::of(&msgs);
        if (c - 3.0).abs() < 1e-9 {
            base_msgs = ms.mean;
        }
        t.row(vec![
            f(c),
            f((2.0 / (c * c)).min(1.0)),
            f(viol as f64 / (trials as f64 * n as f64)),
            f(ms.mean),
            if base_msgs > 0.0 {
                f(ms.mean / base_msgs)
            } else {
                "-".into()
            },
        ]);
    }
    t.print();

    println!(
        "\nreading: the guarantee degrades exactly where theory predicts —\n\
         c < 2 shows measurable violations while c = 3 is already clean,\n\
         because block-end resyncs make real behavior better than Chebyshev's\n\
         worst case. Message cost grows ~linearly in c, so the paper's c = 3\n\
         sits at the knee: the cheapest constant whose failure bound clears\n\
         1/3 with margin. (Columns after c = 3 are relative to its cost.)"
    );
}
