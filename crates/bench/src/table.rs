//! Minimal aligned-column table printer for experiment output.

/// An aligned text table.
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row; must have as many cells as there are headers.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width mismatch: {} cells vs {} headers",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render to a string with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for i in 0..ncols {
                if i > 0 {
                    line.push_str("  ");
                }
                let w = widths[i];
                line.push_str(&format!("{:>w$}", cells[i]));
            }
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Compact float formatting: 4 significant digits, scientific for extremes.
pub fn f(x: f64) -> String {
    if x == 0.0 {
        "0".to_string()
    } else if x.is_infinite() {
        "inf".to_string()
    } else if x.abs() >= 1e7 || x.abs() < 1e-3 {
        format!("{x:.3e}")
    } else if x.abs() >= 100.0 {
        format!("{x:.1}")
    } else {
        format!("{x:.4}")
    }
}

/// Integer formatting with thousands separators.
pub fn n(x: u64) -> String {
    let s = x.to_string();
    let mut out = String::new();
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push('_');
        }
        out.push(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["a", "bbbb", "c"]);
        t.row(vec!["1".into(), "2".into(), "3".into()]);
        t.row(vec!["100".into(), "2".into(), "longer".into()]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 4);
        // All lines same width.
        assert_eq!(lines[0].len(), lines[2].len());
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn float_formats() {
        assert_eq!(f(0.0), "0");
        assert_eq!(f(4.24242), "4.2424");
        assert_eq!(f(1234.5), "1234.5");
        assert_eq!(f(1e9), "1.000e9");
        assert_eq!(f(f64::INFINITY), "inf");
    }

    #[test]
    fn int_separators() {
        assert_eq!(n(0), "0");
        assert_eq!(n(999), "999");
        assert_eq!(n(1000), "1_000");
        assert_eq!(n(1234567), "1_234_567");
    }
}
