//! # dsv-bench — experiment harness
//!
//! One bench target per evaluation claim of the paper, plus the `e16`
//! engine-throughput gate (see `EXPERIMENTS.md` for the index and
//! recorded results). Each target is a plain `harness = false` binary
//! that prints an aligned table, so `cargo bench --workspace`
//! regenerates every "table/figure" of the reproduction; the systems
//! gates (`e16`, `e17`, `e18_fleet`, `e19_checkpoint`) also emit machine-readable
//! `BENCH_*.json` artifacts validated — gates re-enforced — by the
//! `bench_schema` bin ([`json`]). Two additional criterion targets
//! (`micro_sketch`, `micro_tracker`) measure hot-path throughput.

#![warn(missing_docs)]

pub mod json;
pub mod stats;
pub mod table;

pub use json::{
    validate_bench_doc, validate_e16, validate_e17, validate_e18, validate_e19, Json, JsonError,
};
pub use stats::Summary;
pub use table::Table;

/// Print the standard experiment banner.
pub fn banner(id: &str, claim: &str) {
    println!("\n==========================================================================");
    println!("{id}");
    println!("claim: {claim}");
    println!("==========================================================================");
}

#[cfg(test)]
mod tests {
    #[test]
    fn banner_does_not_panic() {
        super::banner("E0", "smoke");
    }
}
