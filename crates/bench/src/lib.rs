//! # dsv-bench — experiment harness
//!
//! One bench target per evaluation claim of the paper (see `DESIGN.md` §4
//! for the experiment index E1–E13 and `EXPERIMENTS.md` for recorded
//! results). Each target is a plain `harness = false` binary that prints
//! an aligned table, so `cargo bench --workspace` regenerates every
//! "table/figure" of the reproduction. Two additional criterion targets
//! (`micro_sketch`, `micro_tracker`) measure hot-path throughput.

#![warn(missing_docs)]

pub mod stats;
pub mod table;

pub use stats::Summary;
pub use table::Table;

/// Print the standard experiment banner.
pub fn banner(id: &str, claim: &str) {
    println!("\n==========================================================================");
    println!("{id}");
    println!("claim: {claim}");
    println!("==========================================================================");
}

#[cfg(test)]
mod tests {
    #[test]
    fn banner_does_not_panic() {
        super::banner("E0", "smoke");
    }
}
