//! Tiny summary statistics over repeated trials.

/// Mean / standard deviation / min / max of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (n − 1 denominator; 0 for n ≤ 1).
    pub std: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Sample size.
    pub n: usize,
}

impl Summary {
    /// Summarize a sample (must be non-empty).
    pub fn of(xs: &[f64]) -> Self {
        assert!(!xs.is_empty());
        let n = xs.len();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        Summary {
            mean,
            std: var.sqrt(),
            min: xs.iter().copied().fold(f64::INFINITY, f64::min),
            max: xs.iter().copied().fold(f64::NEG_INFINITY, f64::max),
            n,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_constant_sample() {
        let s = Summary::of(&[5.0; 10]);
        assert_eq!(s.mean, 5.0);
        assert_eq!(s.std, 0.0);
        assert_eq!(s.min, 5.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.n, 10);
    }

    #[test]
    fn summary_matches_hand_computation() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        assert!((s.mean - 2.5).abs() < 1e-12);
        // var = (2.25+0.25+0.25+2.25)/3 = 5/3
        assert!((s.std - (5.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
    }

    #[test]
    #[should_panic]
    fn empty_sample_rejected() {
        Summary::of(&[]);
    }
}
