//! CI gate over machine-readable benchmark artifacts.
//!
//! ```sh
//! cargo run --release -p dsv-bench --bin bench_schema -- BENCH_e16.json BENCH_e17.json
//! cargo run --release -p dsv-bench --bin bench_schema -- --all   # every committed BENCH_*.json
//! ```
//!
//! Parses each argument as JSON and checks it against the schema its
//! `experiment` tag names (`dsv_bench::validate_bench_doc`): non-empty
//! stream/scenario/phase tables, finite positive throughput numbers, and
//! the recorded acceptance gates re-enforced on the recorded numbers —
//! `e16_throughput`'s consolidation speedup, `e17_pipeline`'s overlap
//! speedup on the slow-feed row, `e18_fleet`'s keys × throughput floor
//! on full runs. Exits non-zero on the first failure, so a bench that
//! crashed mid-run, emitted NaNs, silently produced an empty sweep, or
//! regressed below its own gate fails the pipeline instead of polluting
//! the trajectory.
//!
//! `--all` globs `BENCH_*.json` in the current directory (the committed
//! artifacts at the repo root) so a newly added experiment is validated
//! the moment its artifact lands, with no ci.sh edit to forget; it fails
//! if no artifact matches, so an accidental `--all` from the wrong
//! directory cannot pass vacuously.

use dsv_bench::{validate_bench_doc, Json};
use std::process::ExitCode;

fn check(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: cannot read: {e}"))?;
    if text.trim().is_empty() {
        return Err(format!("{path}: file is empty"));
    }
    let doc = Json::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    let schema = validate_bench_doc(&doc).map_err(|e| format!("{path}: schema violation: {e}"))?;
    let n = doc.get("n").and_then(Json::as_f64).unwrap_or(0.0);
    let tables = doc
        .get("streams")
        .or_else(|| doc.get("scenarios"))
        .or_else(|| doc.get("phases"))
        .and_then(Json::as_array)
        .unwrap_or(&[]);
    println!(
        "{path}: ok — {} table(s), n = {n}, schema {schema}",
        tables.len()
    );
    Ok(())
}

/// Every `BENCH_*.json` in the current directory, sorted for stable CI
/// logs. No glob crate: the pattern is a fixed prefix + suffix test.
fn committed_artifacts() -> Result<Vec<String>, String> {
    let mut paths: Vec<String> = std::fs::read_dir(".")
        .map_err(|e| format!("--all: cannot read current directory: {e}"))?
        .filter_map(|entry| entry.ok())
        .filter_map(|entry| entry.file_name().into_string().ok())
        .filter(|name| name.starts_with("BENCH_") && name.ends_with(".json"))
        .collect();
    paths.sort();
    if paths.is_empty() {
        return Err("--all: no BENCH_*.json found in the current directory".into());
    }
    Ok(paths)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("usage: bench_schema <BENCH_*.json> [more.json ...] | --all");
        return ExitCode::FAILURE;
    }
    let paths = if args.iter().any(|a| a == "--all") {
        if args.len() > 1 {
            eprintln!("bench_schema: --all takes no other arguments");
            return ExitCode::FAILURE;
        }
        match committed_artifacts() {
            Ok(paths) => paths,
            Err(e) => {
                eprintln!("bench_schema: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        args
    };
    for path in &paths {
        if let Err(e) = check(path) {
            eprintln!("bench_schema: {e}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
