//! Minimal JSON support for machine-readable benchmark artifacts.
//!
//! The throughput experiments emit `BENCH_*.json` files that CI validates
//! and the repo tracks over time (the perf trajectory). The container
//! builds offline, so instead of `serde_json` this module implements the
//! small JSON subset those artifacts need: a value tree ([`Json`]), a
//! pretty writer that refuses non-finite numbers, a strict
//! recursive-descent parser, and the schema validators CI runs
//! ([`validate_e16`], [`validate_e17`], [`validate_e18`],
//! [`validate_e19`]) — the `bench_schema` bin dispatches on each
//! document's `experiment` tag.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number (the writer asserts finiteness).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// A number value; panics on NaN/infinite input (JSON cannot carry
    /// them, and a benchmark emitting one is a bug worth failing loudly).
    pub fn num(v: f64) -> Json {
        assert!(v.is_finite(), "JSON numbers must be finite, got {v}");
        Json::Num(v)
    }

    /// A string value.
    pub fn str(v: impl Into<String>) -> Json {
        Json::Str(v.into())
    }

    /// An object from `(key, value)` pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The bool, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Parse a JSON document (strict: one value, nothing trailing).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after the document"));
        }
        Ok(value)
    }

    fn write_indented(&self, out: &mut fmt::Formatter<'_>, depth: usize) -> fmt::Result {
        const INDENT: &str = "  ";
        match self {
            Json::Null => write!(out, "null"),
            Json::Bool(b) => write!(out, "{b}"),
            Json::Num(v) => {
                assert!(v.is_finite(), "JSON numbers must be finite, got {v}");
                if *v == v.trunc() && v.abs() < 1e15 {
                    write!(out, "{}", *v as i64)
                } else {
                    write!(out, "{v}")
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    return write!(out, "[]");
                }
                writeln!(out, "[")?;
                for (i, item) in items.iter().enumerate() {
                    write!(out, "{}", INDENT.repeat(depth + 1))?;
                    item.write_indented(out, depth + 1)?;
                    writeln!(out, "{}", if i + 1 < items.len() { "," } else { "" })?;
                }
                write!(out, "{}]", INDENT.repeat(depth))
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    return write!(out, "{{}}");
                }
                writeln!(out, "{{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    write!(out, "{}", INDENT.repeat(depth + 1))?;
                    write_escaped(out, k)?;
                    write!(out, ": ")?;
                    v.write_indented(out, depth + 1)?;
                    writeln!(out, "{}", if i + 1 < pairs.len() { "," } else { "" })?;
                }
                write!(out, "{}}}", INDENT.repeat(depth))
            }
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, out: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.write_indented(out, 0)
    }
}

fn write_escaped(out: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    write!(out, "\"")?;
    for c in s.chars() {
        match c {
            '"' => write!(out, "\\\"")?,
            '\\' => write!(out, "\\\\")?,
            '\n' => write!(out, "\\n")?,
            '\r' => write!(out, "\\r")?,
            '\t' => write!(out, "\\t")?,
            c if (c as u32) < 0x20 => write!(out, "\\u{:04x}", c as u32)?,
            c => write!(out, "{c}")?,
        }
    }
    write!(out, "\"")
}

/// A malformed JSON document, with the byte offset of the problem.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset where parsing failed.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, out: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            out,
            "invalid JSON at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        let v: f64 = text
            .parse()
            .map_err(|_| self.err(format!("bad number '{text}'")))?;
        if !v.is_finite() {
            return Err(self.err(format!("non-finite number '{text}'")));
        }
        Ok(Json::Num(v))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 4 >= self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Copy one UTF-8 character verbatim.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("peeked non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

// ---------------------------------------------------------------------------
// The BENCH schema gates. The field helpers are shared by every
// experiment validator so their semantics (and error wording) cannot
// drift between schemas.
// ---------------------------------------------------------------------------

/// Object field lookup that errors on absence.
fn field(j: &Json, key: &str) -> Result<Json, String> {
    j.get(key).cloned().ok_or(format!("missing field '{key}'"))
}

/// A required finite number > 0.
fn pos_num(j: &Json, key: &str) -> Result<f64, String> {
    let v = field(j, key)?
        .as_f64()
        .ok_or(format!("field '{key}' must be a number"))?;
    if !(v.is_finite() && v > 0.0) {
        return Err(format!("field '{key}' must be finite and > 0, got {v}"));
    }
    Ok(v)
}

/// A required finite number ≥ 0 (a count).
fn count(j: &Json, key: &str) -> Result<f64, String> {
    let v = field(j, key)?
        .as_f64()
        .ok_or(format!("field '{key}' must be a number"))?;
    if !(v.is_finite() && v >= 0.0) {
        return Err(format!("field '{key}' must be finite and >= 0, got {v}"));
    }
    Ok(v)
}

/// Validate a `BENCH_e16.json` document: the schema CI enforces so perf
/// regressions stay visible in the benchmark trajectory. Beyond shape
/// and finiteness, the validator re-enforces the consolidation gate on
/// the recorded numbers of full runs: `consolidation_speedup` must meet
/// the document's `consolidate_gate`, and the gate itself cannot be
/// weakened below 1.3× — so the committed artifact can neither regress
/// nor quietly lower its own floor.
///
/// Required shape:
///
/// ```json
/// {
///   "experiment": "e16_throughput",
///   "smoke": bool, "n": > 0, "kind": str, "k": > 0, "eps": (0,1),
///   "consolidate_gate": ≥ 1.3, "consolidation_speedup": finite > 0
///     (≥ consolidate_gate when smoke is false),
///   "streams": [ non-empty, each:
///     { "stream": str, "baseline_updates_per_sec": finite > 0,
///       "rows": [ non-empty, each:
///         { "mode": "routed" | "parted" | "consolidated", "shards" ≥ 1,
///           "batch" ≥ 1, "updates_per_sec" finite > 0, "speedup" finite > 0,
///           "boundary_violations" ≥ 0, "messages" ≥ 0 } ] } ]
/// }
/// ```
pub fn validate_e16(doc: &Json) -> Result<(), String> {
    if field(doc, "experiment")?.as_str() != Some("e16_throughput") {
        return Err("field 'experiment' must be \"e16_throughput\"".into());
    }
    let smoke = field(doc, "smoke")?
        .as_bool()
        .ok_or("field 'smoke' must be a bool")?;
    pos_num(doc, "n")?;
    field(doc, "kind")?
        .as_str()
        .ok_or("field 'kind' must be a string")?;
    pos_num(doc, "k")?;
    let eps = pos_num(doc, "eps")?;
    if eps >= 1.0 {
        return Err(format!("field 'eps' must be < 1, got {eps}"));
    }
    let gate = pos_num(doc, "consolidate_gate")?;
    if gate < 1.3 {
        return Err(format!(
            "field 'consolidate_gate' must be at least 1.3 (the consolidation floor), got {gate}"
        ));
    }
    let cons_speedup = pos_num(doc, "consolidation_speedup")?;
    if !smoke && cons_speedup < gate {
        return Err(format!(
            "full-run consolidation_speedup {cons_speedup:.2} is below the gate {gate:.2}"
        ));
    }

    let streams_field = field(doc, "streams")?;
    let streams = streams_field
        .as_array()
        .ok_or("field 'streams' must be an array")?;
    if streams.is_empty() {
        return Err("'streams' must be non-empty".into());
    }
    for (i, stream) in streams.iter().enumerate() {
        let ctx = |e: String| format!("streams[{i}]: {e}");
        field(stream, "stream")
            .map_err(ctx)?
            .as_str()
            .ok_or_else(|| ctx("field 'stream' must be a string".into()))?;
        pos_num(stream, "baseline_updates_per_sec").map_err(ctx)?;
        let rows_field = field(stream, "rows").map_err(ctx)?;
        let rows = rows_field
            .as_array()
            .ok_or_else(|| ctx("field 'rows' must be an array".into()))?;
        if rows.is_empty() {
            return Err(ctx("'rows' must be non-empty".into()));
        }
        for (j, row) in rows.iter().enumerate() {
            let ctx = |e: String| format!("streams[{i}].rows[{j}]: {e}");
            let mode = field(row, "mode")
                .map_err(ctx)?
                .as_str()
                .map(str::to_owned)
                .ok_or_else(|| ctx("field 'mode' must be a string".into()))?;
            if mode != "routed" && mode != "parted" && mode != "consolidated" {
                return Err(ctx(format!(
                    "field 'mode' must be \"routed\", \"parted\", or \"consolidated\", got \"{mode}\""
                )));
            }
            pos_num(row, "shards").map_err(ctx)?;
            pos_num(row, "batch").map_err(ctx)?;
            pos_num(row, "updates_per_sec").map_err(ctx)?;
            pos_num(row, "speedup").map_err(ctx)?;
            count(row, "boundary_violations").map_err(ctx)?;
            count(row, "messages").map_err(ctx)?;
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// The E17 schema gate.
// ---------------------------------------------------------------------------

/// Validate a `BENCH_e17.json` document: the pipelined-ingestion overlap
/// experiment. Beyond shape and finiteness, the validator re-enforces the
/// experiment's acceptance gate on the recorded numbers: the `slow-feed`
/// scenario's `overlap_speedup` must meet the document's `overlap_gate`,
/// so a committed artifact that regressed below the gate fails CI even
/// without re-running the bench.
///
/// Required shape:
///
/// ```json
/// {
///   "experiment": "e17_pipeline",
///   "smoke": bool, "n": > 0, "kind": str, "k": > 0, "shards": > 0,
///   "batch": > 0, "overlap_gate": > 1,
///   "scenarios": [ non-empty, each:
///     { "scenario": str, "overlap_speedup": finite > 0,
///       "rows": [ non-empty, each:
///         { "mode": "sync" | "pipelined", "wall_ms" > 0,
///           "updates_per_sec" > 0, "messages" ≥ 0,
///           "boundary_violations" ≥ 0, "push_stalls" ≥ 0,
///           "pop_waits" ≥ 0, "mean_occupancy" ≥ 0 } ] } ]
/// }
/// ```
pub fn validate_e17(doc: &Json) -> Result<(), String> {
    if field(doc, "experiment")?.as_str() != Some("e17_pipeline") {
        return Err("field 'experiment' must be \"e17_pipeline\"".into());
    }
    field(doc, "smoke")?
        .as_bool()
        .ok_or("field 'smoke' must be a bool")?;
    pos_num(doc, "n")?;
    field(doc, "kind")?
        .as_str()
        .ok_or("field 'kind' must be a string")?;
    pos_num(doc, "k")?;
    pos_num(doc, "shards")?;
    pos_num(doc, "batch")?;
    let gate = pos_num(doc, "overlap_gate")?;
    if gate <= 1.0 {
        return Err(format!(
            "field 'overlap_gate' must exceed 1 (a no-op pipeline passes anything else), got {gate}"
        ));
    }

    let scenarios_field = field(doc, "scenarios")?;
    let scenarios = scenarios_field
        .as_array()
        .ok_or("field 'scenarios' must be an array")?;
    if scenarios.is_empty() {
        return Err("'scenarios' must be non-empty".into());
    }
    let mut saw_slow_feed = false;
    for (i, scenario) in scenarios.iter().enumerate() {
        let ctx = |e: String| format!("scenarios[{i}]: {e}");
        let name = field(scenario, "scenario")
            .map_err(ctx)?
            .as_str()
            .map(str::to_owned)
            .ok_or_else(|| ctx("field 'scenario' must be a string".into()))?;
        let speedup = pos_num(scenario, "overlap_speedup").map_err(ctx)?;
        if name == "slow-feed" {
            saw_slow_feed = true;
            if speedup < gate {
                return Err(ctx(format!(
                    "slow-feed overlap_speedup {speedup:.2} is below the gate {gate:.2}"
                )));
            }
        }
        let rows_field = field(scenario, "rows").map_err(ctx)?;
        let rows = rows_field
            .as_array()
            .ok_or_else(|| ctx("field 'rows' must be an array".into()))?;
        if rows.is_empty() {
            return Err(ctx("'rows' must be non-empty".into()));
        }
        for (j, row) in rows.iter().enumerate() {
            let ctx = |e: String| format!("scenarios[{i}].rows[{j}]: {e}");
            let mode = field(row, "mode")
                .map_err(ctx)?
                .as_str()
                .map(str::to_owned)
                .ok_or_else(|| ctx("field 'mode' must be a string".into()))?;
            if mode != "sync" && mode != "pipelined" {
                return Err(ctx(format!(
                    "field 'mode' must be \"sync\" or \"pipelined\", got \"{mode}\""
                )));
            }
            pos_num(row, "wall_ms").map_err(ctx)?;
            pos_num(row, "updates_per_sec").map_err(ctx)?;
            count(row, "messages").map_err(ctx)?;
            count(row, "boundary_violations").map_err(ctx)?;
            count(row, "push_stalls").map_err(ctx)?;
            count(row, "pop_waits").map_err(ctx)?;
            count(row, "mean_occupancy").map_err(ctx)?;
        }
    }
    if !saw_slow_feed {
        return Err("'scenarios' must include the gated \"slow-feed\" scenario".into());
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// The E18 schema gate.
// ---------------------------------------------------------------------------

/// Validate a `BENCH_e18.json` document: the keyed-fleet scale
/// experiment. Beyond shape and finiteness, the validator re-enforces
/// the keys × throughput acceptance gate on the recorded numbers of
/// **full** runs: `live_keys ≥ keys_gate` and `steady_updates_per_sec ≥
/// rate_gate` — and refuses documents whose recorded gates have been
/// weakened below the experiment's floors (1M keys, 1e7 updates/sec),
/// so a committed artifact can neither regress nor move its own
/// goalposts without failing CI.
///
/// Required shape:
///
/// ```json
/// {
///   "experiment": "e18_fleet",
///   "smoke": bool, "n": > 0, "kind": str, "k": > 0, "eps": (0,1),
///   "shards": > 0, "batch": > 0, "fleet_cache": > 0,
///   "keys_gate": ≥ 1e6, "rate_gate": ≥ 1e7,
///   "live_keys": > 0, "steady_updates_per_sec": > 0,
///   "total_bytes": > 0, "key_violations": ≥ 0,
///   "phases": [ non-empty, must include "steady", each:
///     { "phase": str, "updates" > 0, "wall_s" > 0,
///       "updates_per_sec" > 0, "boundaries" ≥ 0, "key_violations" ≥ 0 } ]
/// }
/// ```
pub fn validate_e18(doc: &Json) -> Result<(), String> {
    if field(doc, "experiment")?.as_str() != Some("e18_fleet") {
        return Err("field 'experiment' must be \"e18_fleet\"".into());
    }
    let smoke = field(doc, "smoke")?
        .as_bool()
        .ok_or("field 'smoke' must be a bool")?;
    pos_num(doc, "n")?;
    field(doc, "kind")?
        .as_str()
        .ok_or("field 'kind' must be a string")?;
    pos_num(doc, "k")?;
    let eps = pos_num(doc, "eps")?;
    if eps >= 1.0 {
        return Err(format!("field 'eps' must be < 1, got {eps}"));
    }
    pos_num(doc, "shards")?;
    pos_num(doc, "batch")?;
    pos_num(doc, "fleet_cache")?;
    let keys_gate = pos_num(doc, "keys_gate")?;
    if keys_gate < 1.0e6 {
        return Err(format!(
            "field 'keys_gate' must be at least 1e6 (the fleet-scale floor), got {keys_gate}"
        ));
    }
    let rate_gate = pos_num(doc, "rate_gate")?;
    if rate_gate < 1.0e7 {
        return Err(format!(
            "field 'rate_gate' must be at least 1e7 updates/sec, got {rate_gate}"
        ));
    }
    let live_keys = pos_num(doc, "live_keys")?;
    let steady = pos_num(doc, "steady_updates_per_sec")?;
    pos_num(doc, "total_bytes")?;
    count(doc, "key_violations")?;
    if !smoke {
        if live_keys < keys_gate {
            return Err(format!(
                "full-run live_keys {live_keys} is below the gate {keys_gate}"
            ));
        }
        if steady < rate_gate {
            return Err(format!(
                "full-run steady_updates_per_sec {steady:.3e} is below the gate {rate_gate:.1e}"
            ));
        }
    }

    let phases_field = field(doc, "phases")?;
    let phases = phases_field
        .as_array()
        .ok_or("field 'phases' must be an array")?;
    if phases.is_empty() {
        return Err("'phases' must be non-empty".into());
    }
    let mut saw_steady = false;
    for (i, phase) in phases.iter().enumerate() {
        let ctx = |e: String| format!("phases[{i}]: {e}");
        let name = field(phase, "phase")
            .map_err(ctx)?
            .as_str()
            .map(str::to_owned)
            .ok_or_else(|| ctx("field 'phase' must be a string".into()))?;
        if name == "steady" {
            saw_steady = true;
        }
        pos_num(phase, "updates").map_err(ctx)?;
        pos_num(phase, "wall_s").map_err(ctx)?;
        pos_num(phase, "updates_per_sec").map_err(ctx)?;
        count(phase, "boundaries").map_err(ctx)?;
        count(phase, "key_violations").map_err(ctx)?;
    }
    if !saw_steady {
        return Err("'phases' must include the gated \"steady\" phase".into());
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// The E19 schema gate.
// ---------------------------------------------------------------------------

/// Validate a `BENCH_e19.json` document: the incremental-checkpoint
/// bytes experiment. Beyond shape and finiteness, the validator
/// re-enforces the quiet-stream shrink gate on the recorded numbers —
/// `quiet_shrink ≥ shrink_gate` — and refuses documents whose recorded
/// gate has been weakened below the experiment's 10× floor. The shrink
/// ratio is a property of the delta encoding, not of machine speed, so
/// unlike the throughput gates it binds on smoke artifacts too.
///
/// Required shape:
///
/// ```json
/// {
///   "experiment": "e19_checkpoint",
///   "smoke": bool, "n": > 0, "kind": str, "k": > 0, "eps": (0,1),
///   "shards": > 0, "batch": > 0, "rebase": ≥ 0,
///   "shrink_gate": ≥ 10, "quiet_shrink": ≥ shrink_gate, "loud_shrink": > 0,
///   "scenarios": [ non-empty, must include "quiet" and "loud", each:
///     { "scenario": str, "updates" > 0, "boundaries" > 0, "bases" > 0,
///       "identity_links" ≥ 0, "full_bytes" > 0, "delta_bytes" > 0,
///       "full_bytes_per_boundary" > 0, "delta_bytes_per_boundary" > 0,
///       "shrink" > 0 } ]
/// }
/// ```
pub fn validate_e19(doc: &Json) -> Result<(), String> {
    if field(doc, "experiment")?.as_str() != Some("e19_checkpoint") {
        return Err("field 'experiment' must be \"e19_checkpoint\"".into());
    }
    field(doc, "smoke")?
        .as_bool()
        .ok_or("field 'smoke' must be a bool")?;
    pos_num(doc, "n")?;
    field(doc, "kind")?
        .as_str()
        .ok_or("field 'kind' must be a string")?;
    pos_num(doc, "k")?;
    let eps = pos_num(doc, "eps")?;
    if eps >= 1.0 {
        return Err(format!("field 'eps' must be < 1, got {eps}"));
    }
    pos_num(doc, "shards")?;
    pos_num(doc, "batch")?;
    count(doc, "rebase")?;
    let gate = pos_num(doc, "shrink_gate")?;
    if gate < 10.0 {
        return Err(format!(
            "field 'shrink_gate' must be at least 10 (the quiet-stream floor), got {gate}"
        ));
    }
    let quiet_shrink = pos_num(doc, "quiet_shrink")?;
    // Structural gate: binds regardless of the smoke flag.
    if quiet_shrink < gate {
        return Err(format!(
            "quiet_shrink {quiet_shrink:.2} is below the gate {gate:.2}"
        ));
    }
    pos_num(doc, "loud_shrink")?;

    let scenarios_field = field(doc, "scenarios")?;
    let scenarios = scenarios_field
        .as_array()
        .ok_or("field 'scenarios' must be an array")?;
    if scenarios.is_empty() {
        return Err("'scenarios' must be non-empty".into());
    }
    let mut saw = (false, false);
    for (i, sc) in scenarios.iter().enumerate() {
        let ctx = |e: String| format!("scenarios[{i}]: {e}");
        let name = field(sc, "scenario")
            .map_err(ctx)?
            .as_str()
            .map(str::to_owned)
            .ok_or_else(|| ctx("field 'scenario' must be a string".into()))?;
        match name.as_str() {
            "quiet" => saw.0 = true,
            "loud" => saw.1 = true,
            _ => {}
        }
        pos_num(sc, "updates").map_err(ctx)?;
        pos_num(sc, "boundaries").map_err(ctx)?;
        pos_num(sc, "bases").map_err(ctx)?;
        count(sc, "identity_links").map_err(ctx)?;
        pos_num(sc, "full_bytes").map_err(ctx)?;
        pos_num(sc, "delta_bytes").map_err(ctx)?;
        pos_num(sc, "full_bytes_per_boundary").map_err(ctx)?;
        pos_num(sc, "delta_bytes_per_boundary").map_err(ctx)?;
        let shrink = pos_num(sc, "shrink").map_err(ctx)?;
        if name == "quiet" && shrink < gate {
            return Err(ctx(format!(
                "quiet scenario shrink {shrink:.2} is below the gate {gate:.2}"
            )));
        }
    }
    if !saw.0 {
        return Err("'scenarios' must include the gated \"quiet\" scenario".into());
    }
    if !saw.1 {
        return Err("'scenarios' must include the \"loud\" scenario".into());
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// The E20 schema gate.
// ---------------------------------------------------------------------------

/// Validate a `BENCH_e20.json` document: the remote-ingestion socket-tax
/// experiment. Beyond shape and finiteness, the validator re-enforces
/// the pipelining gate on the recorded numbers — `gate_speedup` must
/// meet the document's `speedup_gate`, which itself cannot be weakened
/// below the 1.3× floor — and checks the structural signature of frame
/// batching: within every combo, `frames_sent` must strictly fall as
/// `rounds_per_frame` rises (the amortization the experiment exists to
/// demonstrate). The speedup is protocol-structural (round-trips
/// eliminated, not cycles saved), so the gate binds on smoke artifacts
/// too.
///
/// Required shape:
///
/// ```json
/// {
///   "experiment": "e20_remote",
///   "smoke": bool, "n": > 0, "kind": str, "k": > 0, "eps": (0,1),
///   "shards": > 0, "workers": > 0, "batch": > 0,
///   "speedup_gate": ≥ 1.3, "gate_combo": str,
///   "gate_speedup": ≥ speedup_gate, "local_updates_per_sec": > 0,
///   "combos": [ non-empty, must include the gate_combo, each:
///     { "transport": "uds" | "tcp", "spawn": "threads" | "processes",
///       "rows": [ covering rounds_per_frame 1, 4, and 16, each:
///         { "rounds_per_frame": 1 | 4 | 16, "wall_s" > 0,
///           "updates_per_sec" > 0, "speedup_vs_sync" > 0, "vs_local" > 0,
///           "frames_sent" > 0 (strictly falling across the rows),
///           "frames_received" > 0, "bytes_sent" > 0,
///           "bytes_received" > 0 } ] } ]
/// }
/// ```
pub fn validate_e20(doc: &Json) -> Result<(), String> {
    if field(doc, "experiment")?.as_str() != Some("e20_remote") {
        return Err("field 'experiment' must be \"e20_remote\"".into());
    }
    field(doc, "smoke")?
        .as_bool()
        .ok_or("field 'smoke' must be a bool")?;
    pos_num(doc, "n")?;
    field(doc, "kind")?
        .as_str()
        .ok_or("field 'kind' must be a string")?;
    pos_num(doc, "k")?;
    let eps = pos_num(doc, "eps")?;
    if eps >= 1.0 {
        return Err(format!("field 'eps' must be < 1, got {eps}"));
    }
    pos_num(doc, "shards")?;
    pos_num(doc, "workers")?;
    pos_num(doc, "batch")?;
    let gate = pos_num(doc, "speedup_gate")?;
    if gate < 1.3 {
        return Err(format!(
            "field 'speedup_gate' must be at least 1.3 (the pipelining floor), got {gate}"
        ));
    }
    let gate_combo = field(doc, "gate_combo")?
        .as_str()
        .map(str::to_owned)
        .ok_or("field 'gate_combo' must be a string")?;
    let gate_speedup = pos_num(doc, "gate_speedup")?;
    // Structural gate: binds regardless of the smoke flag.
    if gate_speedup < gate {
        return Err(format!(
            "gate_speedup {gate_speedup:.2} is below the gate {gate:.2}"
        ));
    }
    pos_num(doc, "local_updates_per_sec")?;

    let combos_field = field(doc, "combos")?;
    let combos = combos_field
        .as_array()
        .ok_or("field 'combos' must be an array")?;
    if combos.is_empty() {
        return Err("'combos' must be non-empty".into());
    }
    let mut saw_gate_combo = false;
    for (i, combo) in combos.iter().enumerate() {
        let ctx = |e: String| format!("combos[{i}]: {e}");
        let transport = field(combo, "transport")
            .map_err(ctx)?
            .as_str()
            .map(str::to_owned)
            .ok_or_else(|| ctx("field 'transport' must be a string".into()))?;
        if transport != "uds" && transport != "tcp" {
            return Err(ctx(format!(
                "field 'transport' must be \"uds\" or \"tcp\", got \"{transport}\""
            )));
        }
        let spawn = field(combo, "spawn")
            .map_err(ctx)?
            .as_str()
            .map(str::to_owned)
            .ok_or_else(|| ctx("field 'spawn' must be a string".into()))?;
        if spawn != "threads" && spawn != "processes" {
            return Err(ctx(format!(
                "field 'spawn' must be \"threads\" or \"processes\", got \"{spawn}\""
            )));
        }
        if format!("{transport}/{spawn}") == gate_combo {
            saw_gate_combo = true;
        }
        let rows_field = field(combo, "rows").map_err(ctx)?;
        let rows = rows_field
            .as_array()
            .ok_or_else(|| ctx("field 'rows' must be an array".into()))?;
        if rows.is_empty() {
            return Err(ctx("'rows' must be non-empty".into()));
        }
        let mut saw_rpf = (false, false, false);
        let mut prev_frames = f64::INFINITY;
        for (j, row) in rows.iter().enumerate() {
            let ctx = |e: String| format!("combos[{i}].rows[{j}]: {e}");
            let rpf = pos_num(row, "rounds_per_frame").map_err(ctx)?;
            match rpf as u64 {
                1 => saw_rpf.0 = true,
                4 => saw_rpf.1 = true,
                16 => saw_rpf.2 = true,
                _ => {
                    return Err(ctx(format!(
                        "field 'rounds_per_frame' must be 1, 4, or 16, got {rpf}"
                    )))
                }
            }
            pos_num(row, "wall_s").map_err(ctx)?;
            pos_num(row, "updates_per_sec").map_err(ctx)?;
            pos_num(row, "speedup_vs_sync").map_err(ctx)?;
            pos_num(row, "vs_local").map_err(ctx)?;
            let frames = pos_num(row, "frames_sent").map_err(ctx)?;
            // The amortization signature: wider frames, strictly fewer of
            // them. This is deterministic framing, not a timing artifact.
            if frames >= prev_frames {
                return Err(ctx(format!(
                    "'frames_sent' must strictly fall as rounds_per_frame rises \
                     (got {frames} after {prev_frames})"
                )));
            }
            prev_frames = frames;
            pos_num(row, "frames_received").map_err(ctx)?;
            pos_num(row, "bytes_sent").map_err(ctx)?;
            pos_num(row, "bytes_received").map_err(ctx)?;
        }
        if !(saw_rpf.0 && saw_rpf.1 && saw_rpf.2) {
            return Err(ctx("'rows' must cover rounds_per_frame 1, 4, and 16".into()));
        }
    }
    if !saw_gate_combo {
        return Err(format!(
            "'combos' must include the gated combo \"{gate_combo}\""
        ));
    }
    Ok(())
}

/// Validate any known `BENCH_*.json` document by its `experiment` tag
/// (the dispatch the `bench_schema` bin uses).
pub fn validate_bench_doc(doc: &Json) -> Result<&'static str, String> {
    match doc.get("experiment").and_then(Json::as_str) {
        Some("e16_throughput") => validate_e16(doc).map(|()| "e16_throughput"),
        Some("e17_pipeline") => validate_e17(doc).map(|()| "e17_pipeline"),
        Some("e18_fleet") => validate_e18(doc).map(|()| "e18_fleet"),
        Some("e19_checkpoint") => validate_e19(doc).map(|()| "e19_checkpoint"),
        Some("e20_remote") => validate_e20(doc).map(|()| "e20_remote"),
        Some(other) => Err(format!("unknown experiment tag \"{other}\"")),
        None => Err("missing string field 'experiment'".into()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_through_writer_and_parser() {
        let doc = Json::obj(vec![
            ("name", Json::str("e16 \"quoted\"\nline")),
            ("count", Json::num(42.0)),
            ("rate", Json::num(1.5e6)),
            ("neg", Json::num(-0.25)),
            ("flag", Json::Bool(true)),
            ("nothing", Json::Null),
            (
                "rows",
                Json::Arr(vec![Json::num(1.0), Json::str("x"), Json::Arr(vec![])]),
            ),
            ("empty", Json::obj(vec![])),
        ]);
        let text = doc.to_string();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back, doc);
        assert_eq!(back.get("count").unwrap().as_f64(), Some(42.0));
        assert_eq!(
            back.get("name").unwrap().as_str().unwrap(),
            "e16 \"quoted\"\nline"
        );
    }

    #[test]
    fn integers_print_without_decimal_point() {
        assert_eq!(Json::num(42.0).to_string(), "42");
        assert_eq!(Json::num(-7.0).to_string(), "-7");
        assert_eq!(Json::num(0.5).to_string(), "0.5");
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn non_finite_numbers_are_rejected_at_construction() {
        let _ = Json::num(f64::NAN);
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\" 1}",
            "tru",
            "1 2",
            "\"unterminated",
            "{\"a\": NaN}",
            "[01x]",
            "{\"a\":}",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted: {bad:?}");
        }
    }

    #[test]
    fn parser_handles_escapes_and_nesting() {
        let doc = Json::parse(r#"{"a": [1, -2.5e3, "xA\n"], "b": {"c": null}}"#).unwrap();
        let arr = doc.get("a").unwrap().as_array().unwrap();
        assert_eq!(arr[1].as_f64(), Some(-2500.0));
        assert_eq!(arr[2].as_str(), Some("xA\n"));
        assert_eq!(doc.get("b").unwrap().get("c"), Some(&Json::Null));
    }

    fn valid_doc() -> Json {
        let row = |mode: &str, ups: f64| {
            Json::obj(vec![
                ("mode", Json::str(mode)),
                ("shards", Json::num(8.0)),
                ("batch", Json::num(65_536.0)),
                ("updates_per_sec", Json::num(ups)),
                ("speedup", Json::num(ups / 5.0e6)),
                ("boundary_violations", Json::num(0.0)),
                ("messages", Json::num(1234.0)),
            ])
        };
        Json::obj(vec![
            ("experiment", Json::str("e16_throughput")),
            ("smoke", Json::Bool(true)),
            ("n", Json::num(400_000.0)),
            ("kind", Json::str("deterministic")),
            ("k", Json::num(8.0)),
            ("eps", Json::num(0.1)),
            ("consolidate_gate", Json::num(1.3)),
            ("consolidation_speedup", Json::num(1.9)),
            (
                "streams",
                Json::Arr(vec![Json::obj(vec![
                    ("stream", Json::str("monotone")),
                    ("baseline_updates_per_sec", Json::num(5.0e6)),
                    (
                        "rows",
                        Json::Arr(vec![row("parted", 4.1e7), row("consolidated", 7.8e7)]),
                    ),
                ])]),
            ),
        ])
    }

    #[test]
    fn e16_schema_accepts_the_emitted_shape() {
        assert_eq!(validate_e16(&valid_doc()), Ok(()));
    }

    #[test]
    fn e16_schema_enforces_the_consolidation_gate_on_full_runs() {
        // A smoke artifact may sit below the gate; a full run may not.
        let below = valid_doc().to_string().replace(
            "\"consolidation_speedup\": 1.9",
            "\"consolidation_speedup\": 1.1",
        );
        let doc = Json::parse(&below).unwrap();
        assert_eq!(validate_e16(&doc), Ok(()));
        let full = below.replace("\"smoke\": true", "\"smoke\": false");
        let doc = Json::parse(&full).unwrap();
        assert!(validate_e16(&doc).unwrap_err().contains("below the gate"));

        // The artifact cannot weaken its own floor either.
        let weak = valid_doc()
            .to_string()
            .replace("\"consolidate_gate\": 1.3", "\"consolidate_gate\": 1.05");
        let doc = Json::parse(&weak).unwrap();
        assert!(validate_e16(&doc).unwrap_err().contains("at least 1.3"));

        // And unknown modes stay rejected.
        let bad = valid_doc()
            .to_string()
            .replace("\"mode\": \"consolidated\"", "\"mode\": \"turbo\"");
        let doc = Json::parse(&bad).unwrap();
        assert!(validate_e16(&doc).unwrap_err().contains("turbo"));
    }

    #[test]
    fn e16_schema_rejects_missing_and_degenerate_fields() {
        let mut doc = valid_doc();
        if let Json::Obj(pairs) = &mut doc {
            pairs.retain(|(k, _)| k != "streams");
        }
        assert!(validate_e16(&doc).unwrap_err().contains("streams"));

        let mut doc = valid_doc();
        if let Json::Obj(pairs) = &mut doc {
            for (k, v) in pairs.iter_mut() {
                if k == "streams" {
                    *v = Json::Arr(vec![]);
                }
            }
        }
        assert!(validate_e16(&doc).unwrap_err().contains("non-empty"));

        // A zero throughput (the "bench crashed instantly" signature).
        let text = valid_doc()
            .to_string()
            .replace("\"updates_per_sec\": 41000000", "\"updates_per_sec\": 0");
        let doc = Json::parse(&text).unwrap();
        assert!(validate_e16(&doc).unwrap_err().contains("updates_per_sec"));
    }

    fn valid_e17_doc() -> Json {
        let row = |mode: &str, wall: f64| {
            Json::obj(vec![
                ("mode", Json::str(mode)),
                ("wall_ms", Json::num(wall)),
                ("updates_per_sec", Json::num(2.0e7)),
                ("messages", Json::num(900.0)),
                ("boundary_violations", Json::num(0.0)),
                (
                    "push_stalls",
                    Json::num(if mode == "sync" { 0.0 } else { 3.0 }),
                ),
                (
                    "pop_waits",
                    Json::num(if mode == "sync" { 0.0 } else { 17.0 }),
                ),
                ("mean_occupancy", Json::num(41.5)),
            ])
        };
        let scenario = |name: &str, speedup: f64| {
            Json::obj(vec![
                ("scenario", Json::str(name)),
                (
                    "rows",
                    Json::Arr(vec![row("sync", 200.0), row("pipelined", 110.0)]),
                ),
                ("overlap_speedup", Json::num(speedup)),
            ])
        };
        Json::obj(vec![
            ("experiment", Json::str("e17_pipeline")),
            ("smoke", Json::Bool(true)),
            ("n", Json::num(2.0e6)),
            ("kind", Json::str("deterministic")),
            ("k", Json::num(4.0)),
            ("shards", Json::num(4.0)),
            ("batch", Json::num(32_768.0)),
            ("overlap_gate", Json::num(1.25)),
            (
                "scenarios",
                Json::Arr(vec![
                    scenario("uniform", 1.02),
                    scenario("slow-feed", 1.81),
                    scenario("skewed-feed", 1.05),
                ]),
            ),
        ])
    }

    #[test]
    fn e17_schema_accepts_the_emitted_shape_and_dispatches() {
        assert_eq!(validate_e17(&valid_e17_doc()), Ok(()));
        assert_eq!(validate_bench_doc(&valid_e17_doc()), Ok("e17_pipeline"));
        assert_eq!(validate_bench_doc(&valid_doc()), Ok("e16_throughput"));
        let unknown = Json::obj(vec![("experiment", Json::str("e99_mystery"))]);
        assert!(validate_bench_doc(&unknown)
            .unwrap_err()
            .contains("e99_mystery"));
        assert!(validate_bench_doc(&Json::obj(vec![])).is_err());
    }

    #[test]
    fn e17_schema_enforces_the_overlap_gate_on_recorded_numbers() {
        // A slow-feed speedup below the document's own gate is a schema
        // failure: the committed artifact cannot regress silently.
        let text = valid_e17_doc()
            .to_string()
            .replace("\"overlap_speedup\": 1.81", "\"overlap_speedup\": 1.1");
        let doc = Json::parse(&text).unwrap();
        let err = validate_e17(&doc).unwrap_err();
        assert!(err.contains("below the gate"), "{err}");

        // Dropping the gated scenario entirely is also a failure.
        let text = valid_e17_doc()
            .to_string()
            .replace("\"scenario\": \"slow-feed\"", "\"scenario\": \"slow-ish\"");
        let doc = Json::parse(&text).unwrap();
        assert!(validate_e17(&doc).unwrap_err().contains("slow-feed"));

        // Degenerate gate values are rejected.
        let text = valid_e17_doc()
            .to_string()
            .replace("\"overlap_gate\": 1.25", "\"overlap_gate\": 1");
        let doc = Json::parse(&text).unwrap();
        assert!(validate_e17(&doc).unwrap_err().contains("overlap_gate"));

        // Bad mode string.
        let text = valid_e17_doc()
            .to_string()
            .replace("\"mode\": \"pipelined\"", "\"mode\": \"overlapped\"");
        let doc = Json::parse(&text).unwrap();
        assert!(validate_e17(&doc).unwrap_err().contains("mode"));
    }

    fn valid_e18_doc(smoke: bool) -> Json {
        let phase = |name: &str, updates: f64, rate: f64| {
            Json::obj(vec![
                ("phase", Json::str(name)),
                ("updates", Json::num(updates)),
                ("wall_s", Json::num(updates / rate)),
                ("updates_per_sec", Json::num(rate)),
                ("boundaries", Json::num(16.0)),
                ("key_violations", Json::num(0.0)),
            ])
        };
        Json::obj(vec![
            ("experiment", Json::str("e18_fleet")),
            ("smoke", Json::Bool(smoke)),
            ("n", Json::num(41_048_576.0)),
            ("kind", Json::str("deterministic")),
            ("k", Json::num(1.0)),
            ("eps", Json::num(0.1)),
            ("shards", Json::num(64.0)),
            ("batch", Json::num(65_536.0)),
            ("fleet_cache", Json::num(4_096.0)),
            ("keys_gate", Json::num(1.0e6)),
            ("rate_gate", Json::num(1.0e7)),
            ("live_keys", Json::num(1_048_576.0)),
            ("steady_updates_per_sec", Json::num(1.1e7)),
            ("total_bytes", Json::num(3.6e8)),
            ("key_violations", Json::num(0.0)),
            (
                "phases",
                Json::Arr(vec![
                    phase("cold-insert", 1_048_576.0, 3.2e5),
                    phase("steady", 40_000_000.0, 1.1e7),
                ]),
            ),
        ])
    }

    #[test]
    fn e18_schema_accepts_the_emitted_shape_and_dispatches() {
        assert_eq!(validate_e18(&valid_e18_doc(false)), Ok(()));
        assert_eq!(validate_e18(&valid_e18_doc(true)), Ok(()));
        assert_eq!(validate_bench_doc(&valid_e18_doc(false)), Ok("e18_fleet"));
    }

    #[test]
    fn e18_schema_enforces_the_keys_and_rate_gates_on_full_runs() {
        // A full run below either gate is a schema failure; the same
        // numbers pass as a smoke run (smoke is shape-checked only).
        let starved = valid_e18_doc(false)
            .to_string()
            .replace("\"live_keys\": 1048576", "\"live_keys\": 900000");
        let doc = Json::parse(&starved).unwrap();
        assert!(validate_e18(&doc).unwrap_err().contains("live_keys"));
        let slow = valid_e18_doc(false).to_string().replace(
            "\"steady_updates_per_sec\": 11000000",
            "\"steady_updates_per_sec\": 9000000",
        );
        let doc = Json::parse(&slow).unwrap();
        assert!(validate_e18(&doc).unwrap_err().contains("below the gate"));
        let doc = Json::parse(&slow.replace("\"smoke\": false", "\"smoke\": true")).unwrap();
        assert_eq!(validate_e18(&doc), Ok(()));

        // The recorded gates cannot be weakened below the floors.
        let moved = valid_e18_doc(false)
            .to_string()
            .replace("\"rate_gate\": 10000000", "\"rate_gate\": 5000000")
            .replace(
                "\"steady_updates_per_sec\": 11000000",
                "\"steady_updates_per_sec\": 6000000",
            );
        let doc = Json::parse(&moved).unwrap();
        assert!(validate_e18(&doc).unwrap_err().contains("rate_gate"));
        let moved = valid_e18_doc(false)
            .to_string()
            .replace("\"keys_gate\": 1000000", "\"keys_gate\": 1000");
        let doc = Json::parse(&moved).unwrap();
        assert!(validate_e18(&doc).unwrap_err().contains("keys_gate"));

        // Dropping the gated phase is also a failure.
        let text = valid_e18_doc(true)
            .to_string()
            .replace("\"phase\": \"steady\"", "\"phase\": \"steadyish\"");
        let doc = Json::parse(&text).unwrap();
        assert!(validate_e18(&doc).unwrap_err().contains("steady"));
    }

    fn valid_e19_doc(smoke: bool) -> Json {
        let scenario = |name: &str, shrink: f64| {
            Json::obj(vec![
                ("scenario", Json::str(name)),
                ("updates", Json::num(3_840_000.0)),
                ("boundaries", Json::num(96.0)),
                ("bases", Json::num(3.0)),
                ("identity_links", Json::num(1_395.0)),
                ("full_bytes", Json::num(1.07e8)),
                ("delta_bytes", Json::num(1.07e8 / shrink)),
                ("full_bytes_per_boundary", Json::num(1.1e6)),
                ("delta_bytes_per_boundary", Json::num(1.1e6 / shrink)),
                ("shrink", Json::num(shrink)),
            ])
        };
        Json::obj(vec![
            ("experiment", Json::str("e19_checkpoint")),
            ("smoke", Json::Bool(smoke)),
            ("n", Json::num(7_680_000.0)),
            ("kind", Json::str("deterministic")),
            ("k", Json::num(64.0)),
            ("eps", Json::num(0.1)),
            ("shards", Json::num(16.0)),
            ("batch", Json::num(4_096.0)),
            ("rebase", Json::num(32.0)),
            ("shrink_gate", Json::num(10.0)),
            ("quiet_shrink", Json::num(19.2)),
            ("loud_shrink", Json::num(16.6)),
            (
                "scenarios",
                Json::Arr(vec![scenario("quiet", 19.2), scenario("loud", 16.6)]),
            ),
        ])
    }

    #[test]
    fn e19_schema_accepts_the_emitted_shape_and_dispatches() {
        assert_eq!(validate_e19(&valid_e19_doc(false)), Ok(()));
        assert_eq!(validate_e19(&valid_e19_doc(true)), Ok(()));
        assert_eq!(
            validate_bench_doc(&valid_e19_doc(false)),
            Ok("e19_checkpoint")
        );
    }

    #[test]
    fn e19_schema_enforces_the_shrink_gate_even_on_smoke_runs() {
        // The shrink gate is structural, so it binds regardless of the
        // smoke flag — unlike the e16/e18 machine-speed gates.
        for smoke in [false, true] {
            let starved = valid_e19_doc(smoke)
                .to_string()
                .replace("\"quiet_shrink\": 19.2", "\"quiet_shrink\": 8.5");
            let doc = Json::parse(&starved).unwrap();
            assert!(validate_e19(&doc).unwrap_err().contains("below the gate"));
        }

        // The recorded gate cannot be weakened below the 10x floor.
        let moved = valid_e19_doc(false)
            .to_string()
            .replace("\"shrink_gate\": 10", "\"shrink_gate\": 2")
            .replace("\"quiet_shrink\": 19.2", "\"quiet_shrink\": 3");
        let doc = Json::parse(&moved).unwrap();
        assert!(validate_e19(&doc).unwrap_err().contains("shrink_gate"));

        // The per-scenario shrink is cross-checked against the gate too,
        // and both named scenarios must be present.
        let padded =
            valid_e19_doc(false)
                .to_string()
                .replacen("\"shrink\": 19.2", "\"shrink\": 4", 1);
        let doc = Json::parse(&padded).unwrap();
        assert!(validate_e19(&doc).unwrap_err().contains("quiet scenario"));
        let text = valid_e19_doc(true)
            .to_string()
            .replace("\"scenario\": \"quiet\"", "\"scenario\": \"quietish\"");
        let doc = Json::parse(&text).unwrap();
        assert!(validate_e19(&doc).unwrap_err().contains("quiet"));
        let text = valid_e19_doc(true)
            .to_string()
            .replace("\"scenario\": \"loud\"", "\"scenario\": \"loudish\"");
        let doc = Json::parse(&text).unwrap();
        assert!(validate_e19(&doc).unwrap_err().contains("loud"));
    }

    fn valid_e20_doc(smoke: bool) -> Json {
        let row = |rpf: f64, ups: f64, speedup: f64, frames: f64| {
            Json::obj(vec![
                ("rounds_per_frame", Json::num(rpf)),
                ("wall_s", Json::num(2_000_000.0 / ups)),
                ("updates_per_sec", Json::num(ups)),
                ("speedup_vs_sync", Json::num(speedup)),
                ("vs_local", Json::num(ups / 4.0e7)),
                ("frames_sent", Json::num(frames)),
                ("frames_received", Json::num(frames + 900.0)),
                ("bytes_sent", Json::num(8.0e6)),
                ("bytes_received", Json::num(2.4e5)),
            ])
        };
        let combo = |transport: &str, spawn: &str, sync_ups: f64| {
            Json::obj(vec![
                ("transport", Json::str(transport)),
                ("spawn", Json::str(spawn)),
                (
                    "rows",
                    Json::Arr(vec![
                        row(1.0, sync_ups, 1.0, 2004.0),
                        row(4.0, sync_ups * 6.8, 6.8, 504.0),
                        row(16.0, sync_ups * 40.7, 40.7, 130.0),
                    ]),
                ),
            ])
        };
        Json::obj(vec![
            ("experiment", Json::str("e20_remote")),
            ("smoke", Json::Bool(smoke)),
            ("n", Json::num(2_000_000.0)),
            ("kind", Json::str("deterministic")),
            ("k", Json::num(4.0)),
            ("eps", Json::num(0.1)),
            ("shards", Json::num(4.0)),
            ("workers", Json::num(2.0)),
            ("batch", Json::num(1_000.0)),
            ("speedup_gate", Json::num(1.3)),
            ("gate_combo", Json::str("tcp/processes")),
            ("gate_speedup", Json::num(40.7)),
            ("local_updates_per_sec", Json::num(4.0e7)),
            (
                "combos",
                Json::Arr(vec![
                    combo("uds", "processes", 2.4e7),
                    combo("tcp", "threads", 1.1e4),
                    combo("tcp", "processes", 1.1e4),
                ]),
            ),
        ])
    }

    #[test]
    fn e20_schema_accepts_the_emitted_shape_and_dispatches() {
        assert_eq!(validate_e20(&valid_e20_doc(false)), Ok(()));
        assert_eq!(validate_e20(&valid_e20_doc(true)), Ok(()));
        assert_eq!(validate_bench_doc(&valid_e20_doc(false)), Ok("e20_remote"));
    }

    #[test]
    fn e20_schema_enforces_the_pipelining_gate_even_on_smoke_runs() {
        // Round-trip elimination is protocol-structural, so the gate
        // binds regardless of the smoke flag.
        for smoke in [false, true] {
            let slow = valid_e20_doc(smoke)
                .to_string()
                .replace("\"gate_speedup\": 40.7", "\"gate_speedup\": 1.1");
            let doc = Json::parse(&slow).unwrap();
            assert!(validate_e20(&doc).unwrap_err().contains("below the gate"));
        }

        // The recorded gate cannot be weakened below the 1.3x floor.
        let moved = valid_e20_doc(false)
            .to_string()
            .replace("\"speedup_gate\": 1.3", "\"speedup_gate\": 1.01")
            .replace("\"gate_speedup\": 40.7", "\"gate_speedup\": 1.05");
        let doc = Json::parse(&moved).unwrap();
        assert!(validate_e20(&doc).unwrap_err().contains("speedup_gate"));

        // The gated combo must actually be among the recorded combos.
        let text = valid_e20_doc(false).to_string().replace(
            "\"gate_combo\": \"tcp/processes\"",
            "\"gate_combo\": \"tcp/fibers\"",
        );
        let doc = Json::parse(&text).unwrap();
        assert!(validate_e20(&doc).unwrap_err().contains("tcp/fibers"));
    }

    #[test]
    fn e20_schema_enforces_the_frame_amortization_signature() {
        // Wider frames must mean strictly fewer of them: a document where
        // frames_sent fails to fall as rounds_per_frame rises is refused
        // even if every throughput gate passes.
        let flat = valid_e20_doc(false)
            .to_string()
            .replace("\"frames_sent\": 504", "\"frames_sent\": 2004");
        let doc = Json::parse(&flat).unwrap();
        assert!(validate_e20(&doc)
            .unwrap_err()
            .contains("must strictly fall"));

        // And every combo must cover the full rpf sweep.
        let partial = valid_e20_doc(false)
            .to_string()
            .replace("\"rounds_per_frame\": 16", "\"rounds_per_frame\": 4");
        let doc = Json::parse(&partial).unwrap();
        assert!(validate_e20(&doc).unwrap_err().contains("16"));
    }
}
