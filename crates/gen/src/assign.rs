//! Site-assignment policies: which site observes the update at time `t`.
//!
//! The distributed monitoring model places each update at a single site
//! `i(n)`; the choice of `i(n)` is adversarial in the worst case. These
//! policies cover the spectrum used by the experiments: round-robin
//! (balanced), uniform random, hashed (deterministic but scattered), and
//! single-site (fully skewed).

use dsv_net::{SiteId, Time};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A policy mapping timesteps to sites.
pub trait SiteAssign {
    /// The site observing the update at time `t`.
    fn site_for(&mut self, t: Time) -> SiteId;
    /// Number of sites `k` this policy spreads over.
    fn k(&self) -> usize;
}

/// Cycles through sites `0, 1, ..., k-1, 0, ...`.
#[derive(Debug, Clone)]
pub struct RoundRobin {
    k: usize,
    next: usize,
}

impl RoundRobin {
    /// Round-robin over `k` sites.
    pub fn new(k: usize) -> Self {
        assert!(k >= 1);
        RoundRobin { k, next: 0 }
    }
}

impl SiteAssign for RoundRobin {
    fn site_for(&mut self, _t: Time) -> SiteId {
        let s = self.next;
        self.next = (self.next + 1) % self.k;
        s
    }
    fn k(&self) -> usize {
        self.k
    }
}

/// Uniformly random site per update (seedable).
#[derive(Debug, Clone)]
pub struct RandomAssign {
    k: usize,
    rng: SmallRng,
}

impl RandomAssign {
    /// Uniform assignment over `k` sites with the given seed.
    pub fn new(k: usize, seed: u64) -> Self {
        assert!(k >= 1);
        RandomAssign {
            k,
            rng: SmallRng::seed_from_u64(seed),
        }
    }
}

impl SiteAssign for RandomAssign {
    fn site_for(&mut self, _t: Time) -> SiteId {
        self.rng.gen_range(0..self.k)
    }
    fn k(&self) -> usize {
        self.k
    }
}

/// Deterministic scattered assignment via a multiplicative hash of `t`.
/// Unlike [`RandomAssign`] it is stateless, so re-running a stream segment
/// yields the same placement.
#[derive(Debug, Clone)]
pub struct HashAssign {
    k: usize,
}

impl HashAssign {
    /// Hashed assignment over `k` sites.
    pub fn new(k: usize) -> Self {
        assert!(k >= 1);
        HashAssign { k }
    }
}

impl SiteAssign for HashAssign {
    fn site_for(&mut self, t: Time) -> SiteId {
        // Fibonacci hashing; good scatter for sequential t.
        let h = t.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        (h >> 32) as usize % self.k
    }
    fn k(&self) -> usize {
        self.k
    }
}

/// Sends every update to one fixed site — the fully-skewed placement, and
/// the natural model for the single-site algorithms of §5.2.
#[derive(Debug, Clone)]
pub struct SingleSite {
    k: usize,
    site: SiteId,
}

impl SingleSite {
    /// All updates to `site`, out of `k` sites total.
    pub fn new(k: usize, site: SiteId) -> Self {
        assert!(site < k);
        SingleSite { k, site }
    }

    /// The `k = 1` special case.
    pub fn solo() -> Self {
        SingleSite { k: 1, site: 0 }
    }
}

impl SiteAssign for SingleSite {
    fn site_for(&mut self, _t: Time) -> SiteId {
        self.site
    }
    fn k(&self) -> usize {
        self.k
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_cycles() {
        let mut rr = RoundRobin::new(3);
        let sites: Vec<SiteId> = (1..=7).map(|t| rr.site_for(t)).collect();
        assert_eq!(sites, vec![0, 1, 2, 0, 1, 2, 0]);
        assert_eq!(rr.k(), 3);
    }

    #[test]
    fn random_assign_is_seed_deterministic_and_in_range() {
        let mut a = RandomAssign::new(5, 99);
        let mut b = RandomAssign::new(5, 99);
        for t in 1..=1000 {
            let sa = a.site_for(t);
            assert_eq!(sa, b.site_for(t));
            assert!(sa < 5);
        }
    }

    #[test]
    fn random_assign_covers_all_sites() {
        let mut a = RandomAssign::new(8, 7);
        let mut seen = [false; 8];
        for t in 1..=1000 {
            seen[a.site_for(t)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn hash_assign_is_stateless_and_spread() {
        let mut h1 = HashAssign::new(4);
        let mut h2 = HashAssign::new(4);
        let mut counts = [0u32; 4];
        for t in 1..=4000 {
            let s = h1.site_for(t);
            assert_eq!(s, h2.site_for(t));
            counts[s] += 1;
        }
        // Roughly balanced: every site gets between 15% and 35%.
        for &c in &counts {
            assert!((600..=1400).contains(&c), "imbalanced: {counts:?}");
        }
    }

    #[test]
    fn single_site_is_constant() {
        let mut s = SingleSite::new(4, 2);
        assert!(((1..=100).map(|t| s.site_for(t))).all(|x| x == 2));
        assert_eq!(SingleSite::solo().k(), 1);
    }

    #[test]
    #[should_panic]
    fn single_site_validates_range() {
        SingleSite::new(2, 5);
    }
}
