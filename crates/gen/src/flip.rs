//! Flip streams: value trajectories that alternate between `m` and `m + 3`.
//!
//! Section 4's lower-bound families are built from sequences that take only
//! the values `m = 1/ε` and `m + 3`, flipping at chosen timesteps. Each
//! flip contributes `3/(m+3)` or `3/m` to the variability, so `r` flips
//! give `v = (6m+9)/(2m+6) · ε·r` exactly (Theorem 4.1).
//!
//! [`FlipFamilyGen`] turns such a trajectory into a stream: a climb prefix
//! `0 → m` (the paper starts at `f(0) = m`; a delta stream must reach it),
//! followed by ±3 jumps at the flip times. Combine with
//! `dsv-core::expand` to obtain a ±1 stream.

use crate::DeltaGen;
use dsv_net::Time;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Generator for an `m ↔ m+3` flip trajectory.
#[derive(Debug, Clone)]
pub struct FlipFamilyGen {
    m: i64,
    /// Sorted flip times, 1-based, indexing the post-climb phase.
    flips: Vec<Time>,
    /// Position in `flips` of the next flip to apply.
    next_flip: usize,
    /// Steps emitted so far.
    t: u64,
    /// Current value (post-climb): m or m+3.
    value: i64,
}

impl FlipFamilyGen {
    /// Build from `m ≥ 2` and a sorted list of distinct flip times (these
    /// index the *post-climb* stream: flip time 1 is the first step after
    /// the value first reaches `m`).
    pub fn new(m: i64, flips: Vec<Time>) -> Self {
        assert!(m >= 2, "theorem 4.1 requires m = 1/ε ≥ 2");
        assert!(
            flips.windows(2).all(|w| w[0] < w[1]),
            "flip times must be sorted and distinct"
        );
        assert!(flips.first().is_none_or(|&f| f >= 1));
        FlipFamilyGen {
            m,
            flips,
            next_flip: 0,
            t: 0,
            value: 0,
        }
    }

    /// Choose `r` distinct flip times uniformly from `1..=n` (seedable) —
    /// one member of the Theorem 4.1 family with parameters `(m, n, r)`.
    pub fn random(m: i64, n: u64, r: usize, seed: u64) -> Self {
        assert!(r as u64 <= n);
        let mut rng = SmallRng::seed_from_u64(seed);
        // Floyd's algorithm for a uniform r-subset of {1..n}.
        let mut chosen = std::collections::BTreeSet::new();
        for j in (n - r as u64 + 1)..=n {
            let x = rng.gen_range(1..=j);
            if !chosen.insert(x) {
                chosen.insert(j);
            }
        }
        Self::new(m, chosen.into_iter().collect())
    }

    /// The base level `m`.
    pub fn m(&self) -> i64 {
        self.m
    }

    /// The flip times.
    pub fn flips(&self) -> &[Time] {
        &self.flips
    }

    /// The value trajectory of the *post-climb* sequence at post-climb time
    /// `t ≥ 0` (t = 0 is the moment the climb finishes): `m` or `m+3`.
    pub fn value_at(&self, t: Time) -> i64 {
        let nflips = self.flips.partition_point(|&ft| ft <= t);
        if nflips % 2 == 0 {
            self.m
        } else {
            self.m + 3
        }
    }
}

impl DeltaGen for FlipFamilyGen {
    fn next_delta(&mut self) -> i64 {
        self.t += 1;
        if self.value < self.m {
            // Climb prefix 0 → m.
            self.value += 1;
            return 1;
        }
        let post_climb_t = self.t - self.m as u64;
        if self.next_flip < self.flips.len() && self.flips[self.next_flip] == post_climb_t {
            self.next_flip += 1;
            let d = if self.value == self.m { 3 } else { -3 };
            self.value += d;
            d
        } else {
            0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prefix_values;

    #[test]
    fn climb_then_flip_trajectory() {
        let mut g = FlipFamilyGen::new(4, vec![2, 5]);
        // climb: 4 steps of +1; then post-climb times 1..: flips at 2 and 5.
        let deltas = g.deltas(10);
        assert_eq!(deltas, vec![1, 1, 1, 1, 0, 3, 0, 0, -3, 0]);
        let values = prefix_values(&deltas);
        assert_eq!(values, vec![1, 2, 3, 4, 4, 7, 7, 7, 4, 4]);
    }

    #[test]
    fn value_at_matches_emitted_stream() {
        let g0 = FlipFamilyGen::new(5, vec![1, 4, 9, 10]);
        let mut g = g0.clone();
        let deltas = g.deltas(20);
        let values = prefix_values(&deltas);
        // Climb takes m = 5 steps, so the value at post-climb time p is the
        // prefix value after 5 + p stream steps, i.e. values[4 + p].
        for post_t in 0..15u64 {
            assert_eq!(
                values[4 + post_t as usize],
                g0.value_at(post_t),
                "mismatch at post-climb t = {post_t}"
            );
        }
    }

    #[test]
    fn random_family_member_has_r_flips_in_range() {
        let g = FlipFamilyGen::random(8, 1000, 40, 123);
        assert_eq!(g.flips().len(), 40);
        assert!(g.flips().iter().all(|&t| (1..=1000).contains(&t)));
        // Sorted & distinct is enforced by the constructor.
    }

    #[test]
    fn random_is_seed_deterministic_and_seed_sensitive() {
        let a = FlipFamilyGen::random(4, 500, 20, 7);
        let b = FlipFamilyGen::random(4, 500, 20, 7);
        let c = FlipFamilyGen::random(4, 500, 20, 8);
        assert_eq!(a.flips(), b.flips());
        assert_ne!(a.flips(), c.flips());
    }

    #[test]
    fn values_only_m_or_m_plus_3_after_climb() {
        let mut g = FlipFamilyGen::random(6, 300, 30, 5);
        let values = prefix_values(&g.deltas(306));
        assert!(values[6..].iter().all(|&v| v == 6 || v == 9));
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn unsorted_flips_rejected() {
        FlipFamilyGen::new(4, vec![5, 2]);
    }
}
