//! Monotone (insert-only) streams — the classic distributed counting
//! setting of Cormode et al. and Huang et al., for which the paper proves
//! `v(n) = O(log f(n))` (Theorem 2.1 with β = 1) and to which its
//! algorithms' bounds specialize.

use crate::DeltaGen;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A non-decreasing stream generator.
#[derive(Debug, Clone)]
pub struct MonotoneGen {
    mode: Mode,
}

#[derive(Debug, Clone)]
enum Mode {
    /// `f'(t) = 1` always: the pure counter.
    Ones,
    /// `f'(t)` uniform in `1..=max_jump` — used by the Appendix C expansion
    /// experiments (jumps must be simulated by ±1 arrivals).
    Jumps { rng: SmallRng, max_jump: i64 },
    /// Bursty: alternate quiet phases (`f' = 1`) and bursts
    /// (`f' = burst_size`), switching phase every `period` steps.
    Bursty {
        period: u64,
        burst_size: i64,
        t: u64,
    },
}

impl MonotoneGen {
    /// The pure counter: `f(t) = t`.
    pub fn ones() -> Self {
        MonotoneGen { mode: Mode::Ones }
    }

    /// Positive jumps uniform in `1..=max_jump`.
    pub fn jumps(seed: u64, max_jump: i64) -> Self {
        assert!(max_jump >= 1);
        MonotoneGen {
            mode: Mode::Jumps {
                rng: SmallRng::seed_from_u64(seed),
                max_jump,
            },
        }
    }

    /// Bursty increments: `period` steps of `+1` then `period` steps of
    /// `+burst_size`, repeating.
    pub fn bursty(period: u64, burst_size: i64) -> Self {
        assert!(period >= 1 && burst_size >= 1);
        MonotoneGen {
            mode: Mode::Bursty {
                period,
                burst_size,
                t: 0,
            },
        }
    }
}

impl DeltaGen for MonotoneGen {
    fn next_delta(&mut self) -> i64 {
        match &mut self.mode {
            Mode::Ones => 1,
            Mode::Jumps { rng, max_jump } => rng.gen_range(1..=*max_jump),
            Mode::Bursty {
                period,
                burst_size,
                t,
            } => {
                let phase = (*t / *period) % 2;
                *t += 1;
                if phase == 0 {
                    1
                } else {
                    *burst_size
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prefix_values;

    #[test]
    fn ones_is_the_identity_counter() {
        let mut g = MonotoneGen::ones();
        let values = prefix_values(&g.deltas(100));
        assert_eq!(values, (1..=100).collect::<Vec<i64>>());
    }

    #[test]
    fn jumps_stay_positive_and_bounded() {
        let mut g = MonotoneGen::jumps(5, 16);
        let d = g.deltas(10_000);
        assert!(d.iter().all(|&x| (1..=16).contains(&x)));
        // All jump sizes should appear over 10k draws.
        for j in 1..=16i64 {
            assert!(d.contains(&j), "jump size {j} never drawn");
        }
    }

    #[test]
    fn bursty_alternates_phases() {
        let mut g = MonotoneGen::bursty(3, 10);
        assert_eq!(g.deltas(12), vec![1, 1, 1, 10, 10, 10, 1, 1, 1, 10, 10, 10]);
    }

    #[test]
    fn monotone_streams_never_decrease() {
        for mut g in [
            MonotoneGen::ones(),
            MonotoneGen::jumps(1, 100),
            MonotoneGen::bursty(7, 3),
        ] {
            let values = prefix_values(&g.deltas(1000));
            assert!(values.windows(2).all(|w| w[0] <= w[1]));
        }
    }
}
