//! # dsv-gen — workload generators
//!
//! Stream generators for every input class the paper analyzes or uses:
//!
//! * [`WalkGen`] — ±1 random walks: fair coins (Thm 2.2), biased coins with
//!   drift μ (Thm 2.4), and lazy walks.
//! * [`MonotoneGen`] — insert-only streams (the classic CMY/HYZ setting),
//!   optionally with jumps `> 1` for the Appendix C expansion experiments.
//! * [`NearlyMonotoneGen`] — streams whose total deletions stay within
//!   `β·f(n)`, the hypothesis of Theorem 2.1.
//! * [`AdversarialGen`] — high-variability adversaries: hovering near a
//!   level, sawtooth waves, and zero-crossing oscillations (the inputs that
//!   force the Ω(n) lower bounds of the unrestricted model).
//! * [`FlipFamilyGen`] — streams that alternate between `m` and `m+3` at
//!   chosen flip times, the value-trajectory used by §4's hard families.
//! * [`ItemStreamGen`] — Zipf-distributed insert/delete item streams for the
//!   frequency-tracking problem (§5.1 / Appendix H).
//!
//! All generators are deterministic given their seed, implement the common
//! [`DeltaGen`] trait, and pair with a [`SiteAssign`] policy to produce the
//! `(time, site, delta)` triples the distributed model consumes.

#![warn(missing_docs)]

mod adversarial;
mod assign;
mod flip;
mod items;
mod monotone;
mod nearly;
mod walk;

pub use adversarial::AdversarialGen;
pub use assign::{HashAssign, RandomAssign, RoundRobin, SingleSite, SiteAssign};
pub use flip::FlipFamilyGen;
pub use items::{ItemStreamGen, ZipfSampler};
pub use monotone::MonotoneGen;
pub use nearly::NearlyMonotoneGen;
pub use walk::WalkGen;

use dsv_net::{Time, Update};

/// A stateful generator of stream increments `f'(t)`.
///
/// Generators are infinite: `next_delta` may be called any number of times.
/// The convenience methods materialize prefixes as vectors for the
/// experiment harness.
pub trait DeltaGen {
    /// Produce the next increment `f'(t)`.
    fn next_delta(&mut self) -> i64;

    /// Materialize the next `n` increments.
    fn deltas(&mut self, n: u64) -> Vec<i64>
    where
        Self: Sized,
    {
        (0..n).map(|_| self.next_delta()).collect()
    }

    /// Materialize the next `n` increments as distributed updates, assigning
    /// each timestep to a site via `assign`. Timesteps are 1-based.
    fn updates<A: SiteAssign>(&mut self, n: u64, mut assign: A) -> Vec<Update>
    where
        Self: Sized,
    {
        (1..=n)
            .map(|t| Update::new(t, assign.site_for(t), self.next_delta()))
            .collect()
    }
}

/// Prefix sums of a delta stream: the tracked function `f(1..=n)`.
pub fn prefix_values(deltas: &[i64]) -> Vec<i64> {
    let mut f = 0i64;
    deltas
        .iter()
        .map(|d| {
            f += d;
            f
        })
        .collect()
}

/// Turn a value trajectory `f(1), f(2), ...` (with `f(0) = 0`) back into the
/// delta stream that produces it.
pub fn values_to_deltas(values: &[i64]) -> Vec<i64> {
    let mut prev = 0i64;
    values
        .iter()
        .map(|&v| {
            let d = v - prev;
            prev = v;
            d
        })
        .collect()
}

/// Assign every update in `deltas` a site and a 1-based timestep.
pub fn assign_updates<A: SiteAssign>(deltas: &[i64], mut assign: A) -> Vec<Update> {
    deltas
        .iter()
        .enumerate()
        .map(|(i, &d)| {
            let t = (i + 1) as Time;
            Update::new(t, assign.site_for(t), d)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefix_and_deltas_roundtrip() {
        let deltas = vec![1, 1, -1, 3, -2, 0, 1];
        let values = prefix_values(&deltas);
        assert_eq!(values, vec![1, 2, 1, 4, 2, 2, 3]);
        assert_eq!(values_to_deltas(&values), deltas);
    }

    #[test]
    fn assign_updates_is_one_based_and_in_range() {
        let deltas = vec![1i64; 10];
        let ups = assign_updates(&deltas, RoundRobin::new(3));
        assert_eq!(ups.len(), 10);
        assert_eq!(ups[0].time, 1);
        assert_eq!(ups[9].time, 10);
        assert!(ups.iter().all(|u| u.site < 3));
    }
}
