//! Random-walk streams: the input classes of Theorems 2.2 and 2.4.
//!
//! * **Fair walk** — `f'(t)` i.i.d. uniform ±1. Theorem 2.2 proves
//!   `E[v(n)] = O(√n log n)`; Liu et al. study the same class.
//! * **Biased walk** — `P(f'(t) = +1) = (1+μ)/2` for drift `μ ∈ (0, 1)`.
//!   Theorem 2.4 proves `E[v(n)] = O(log(n)/μ)`.
//! * **Lazy walk** — with probability `1 − p_move` the step is repeated as a
//!   zero-effect pair later; implemented here simply as ±1 with holding
//!   probability, useful for slowly-varying workloads.

use crate::DeltaGen;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A seedable ±1 random-walk generator.
#[derive(Debug, Clone)]
pub struct WalkGen {
    rng: SmallRng,
    /// Probability that a *moving* step is +1.
    p_up: f64,
    /// Probability that the walk moves at all this step (else emits 0).
    p_move: f64,
}

impl WalkGen {
    /// Fair coin flips: `P(+1) = P(-1) = 1/2` (Theorem 2.2's class).
    pub fn fair(seed: u64) -> Self {
        WalkGen {
            rng: SmallRng::seed_from_u64(seed),
            p_up: 0.5,
            p_move: 1.0,
        }
    }

    /// Biased coin flips with drift `mu`: `P(+1) = (1 + mu)/2`
    /// (Theorem 2.4's class). `mu` may be negative; the paper notes the
    /// `μ < 0` case is symmetric.
    pub fn biased(seed: u64, mu: f64) -> Self {
        assert!(
            (-1.0..=1.0).contains(&mu),
            "drift must lie in [-1, 1], got {mu}"
        );
        WalkGen {
            rng: SmallRng::seed_from_u64(seed),
            p_up: (1.0 + mu) / 2.0,
            p_move: 1.0,
        }
    }

    /// Lazy walk: moves (fairly) only with probability `p_move`, else emits
    /// a zero increment.
    pub fn lazy(seed: u64, p_move: f64) -> Self {
        assert!((0.0..=1.0).contains(&p_move));
        WalkGen {
            rng: SmallRng::seed_from_u64(seed),
            p_up: 0.5,
            p_move,
        }
    }

    /// The drift `μ = 2·p_up − 1` of this walk.
    pub fn drift(&self) -> f64 {
        2.0 * self.p_up - 1.0
    }
}

impl DeltaGen for WalkGen {
    fn next_delta(&mut self) -> i64 {
        if self.p_move < 1.0 && !self.rng.gen_bool(self.p_move) {
            return 0;
        }
        if self.rng.gen_bool(self.p_up) {
            1
        } else {
            -1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prefix_values;

    #[test]
    fn fair_walk_is_pm_one_and_seed_deterministic() {
        let mut a = WalkGen::fair(1);
        let mut b = WalkGen::fair(1);
        let da = a.deltas(1000);
        let db = b.deltas(1000);
        assert_eq!(da, db);
        assert!(da.iter().all(|&d| d == 1 || d == -1));
    }

    #[test]
    fn fair_walk_is_roughly_balanced() {
        let mut g = WalkGen::fair(7);
        let sum: i64 = g.deltas(100_000).iter().sum();
        // 5σ ≈ 1581 for n = 100k.
        assert!(sum.abs() < 1600, "sum = {sum}");
    }

    #[test]
    fn biased_walk_drifts() {
        let mu = 0.2;
        let mut g = WalkGen::biased(11, mu);
        assert!((g.drift() - mu).abs() < 1e-12);
        let n = 100_000u64;
        let f = *prefix_values(&g.deltas(n)).last().unwrap();
        let expected = (mu * n as f64) as i64;
        assert!(
            (f - expected).abs() < 2_000,
            "f = {f}, expected ≈ {expected}"
        );
    }

    #[test]
    fn negative_drift_is_symmetric() {
        let mut g = WalkGen::biased(11, -0.3);
        let sum: i64 = g.deltas(50_000).iter().sum();
        assert!(sum < -10_000, "sum = {sum}");
    }

    #[test]
    fn lazy_walk_emits_zeros() {
        let mut g = WalkGen::lazy(3, 0.25);
        let d = g.deltas(10_000);
        let zeros = d.iter().filter(|&&x| x == 0).count();
        assert!(
            (6_500..=8_500).contains(&zeros),
            "zeros = {zeros}, expected ≈ 7500"
        );
    }

    #[test]
    #[should_panic(expected = "drift must lie")]
    fn biased_rejects_bad_mu() {
        WalkGen::biased(0, 1.5);
    }
}
