//! Nearly-monotone streams — the hypothesis class of Theorem 2.1.
//!
//! Theorem 2.1 assumes a nondecreasing function `β(t) ≥ 1` and a constant
//! `t₀` such that for all `n ≥ t₀` the total deletions satisfy
//! `f⁻(n) ≤ β(n)·f(n)`; it concludes `v(n) = O(β(n)·log(β(n)·f(n)))`.
//!
//! [`NearlyMonotoneGen`] generates ±1 streams that satisfy this constraint
//! *by construction* for a constant β: it emits a deletion only when doing
//! so keeps `f⁻(n) ≤ β·f(n)`, otherwise an insertion. A target deletion
//! probability controls how aggressively it tries to delete.

use crate::DeltaGen;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// ±1 stream with total deletions bounded by `β · f(n)` at all times.
#[derive(Debug, Clone)]
pub struct NearlyMonotoneGen {
    rng: SmallRng,
    beta: f64,
    delete_prob: f64,
    /// Current value f(t).
    f: i64,
    /// Total deletions f⁻(t).
    f_minus: i64,
}

impl NearlyMonotoneGen {
    /// Create a generator with deletion budget `beta ≥ 1` and per-step
    /// deletion attempt probability `delete_prob`.
    pub fn new(seed: u64, beta: f64, delete_prob: f64) -> Self {
        assert!(beta >= 1.0, "theorem 2.1 requires β ≥ 1");
        assert!((0.0..1.0).contains(&delete_prob));
        NearlyMonotoneGen {
            rng: SmallRng::seed_from_u64(seed),
            beta,
            delete_prob,
            f: 0,
            f_minus: 0,
        }
    }

    /// The deletion budget β.
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// Current `f(t)` (for tests/diagnostics).
    pub fn current(&self) -> i64 {
        self.f
    }

    /// Current total deletions `f⁻(t)`.
    pub fn total_deletions(&self) -> i64 {
        self.f_minus
    }

    /// Whether emitting a deletion now would keep the constraint
    /// `f⁻ ≤ β·f` satisfied after the step.
    fn deletion_allowed(&self) -> bool {
        // After deleting: f⁻ + 1 ≤ β · (f − 1). Also keep f ≥ 1.
        self.f >= 2 && (self.f_minus + 1) as f64 <= self.beta * (self.f - 1) as f64
    }
}

impl DeltaGen for NearlyMonotoneGen {
    fn next_delta(&mut self) -> i64 {
        let want_delete = self.rng.gen_bool(self.delete_prob);
        if want_delete && self.deletion_allowed() {
            self.f -= 1;
            self.f_minus += 1;
            -1
        } else {
            self.f += 1;
            1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prefix_values;

    #[test]
    fn constraint_holds_at_every_step() {
        for beta in [1.0, 2.0, 4.0] {
            let mut g = NearlyMonotoneGen::new(42, beta, 0.45);
            let deltas = g.deltas(50_000);
            let mut f = 0i64;
            let mut f_minus = 0i64;
            for &d in &deltas {
                f += d;
                if d < 0 {
                    f_minus += -d;
                }
                assert!(
                    f_minus as f64 <= beta * f as f64,
                    "constraint violated: f⁻ = {f_minus}, β·f = {}",
                    beta * f as f64
                );
            }
        }
    }

    #[test]
    fn values_stay_positive() {
        let mut g = NearlyMonotoneGen::new(3, 1.5, 0.49);
        let values = prefix_values(&g.deltas(20_000));
        assert!(values.iter().all(|&v| v >= 1));
    }

    #[test]
    fn deletions_actually_happen_with_large_beta() {
        let mut g = NearlyMonotoneGen::new(9, 8.0, 0.45);
        let deltas = g.deltas(20_000);
        let dels = deltas.iter().filter(|&&d| d < 0).count();
        assert!(dels > 4_000, "only {dels} deletions");
    }

    #[test]
    fn zero_delete_prob_reduces_to_monotone() {
        let mut g = NearlyMonotoneGen::new(1, 2.0, 0.0);
        assert!(g.deltas(1000).iter().all(|&d| d == 1));
    }

    #[test]
    fn seed_determinism() {
        let mut a = NearlyMonotoneGen::new(5, 2.0, 0.4);
        let mut b = NearlyMonotoneGen::new(5, 2.0, 0.4);
        assert_eq!(a.deltas(5000), b.deltas(5000));
    }
}
