//! Item streams for the frequency-tracking problem (§5.1 / Appendix H).
//!
//! A dataset `D(t)` over a universe `U = {0, ..., |U|−1}` evolves by
//! single-item insertions and deletions; the trackers must maintain every
//! item frequency `f_ℓ(t)` to within `±ε·F1(t)` where `F1(t) = |D(t)|`.
//!
//! [`ItemStreamGen`] draws inserted items from a Zipf distribution (the
//! standard skewed workload for frequency estimation) and deletes uniformly
//! from the current multiset with a configurable probability, while keeping
//! the dataset size positive.

use dsv_net::{ItemUpdate, Time};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::SiteAssign;

/// Zipf(s) sampler over `{0, ..., u-1}` via inverse-CDF binary search.
///
/// Item `i` has probability proportional to `1 / (i+1)^s`. `s = 0` is
/// uniform. Construction is `O(u)`, sampling is `O(log u)`.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// Build a sampler over a universe of `u ≥ 1` items with exponent `s ≥ 0`.
    pub fn new(u: usize, s: f64) -> Self {
        assert!(u >= 1);
        assert!(s >= 0.0);
        let mut cdf = Vec::with_capacity(u);
        let mut acc = 0.0f64;
        for i in 0..u {
            acc += 1.0 / ((i + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = *cdf.last().unwrap();
        for c in &mut cdf {
            *c /= total;
        }
        ZipfSampler { cdf }
    }

    /// Universe size.
    pub fn universe(&self) -> usize {
        self.cdf.len()
    }

    /// Draw one item.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> u64 {
        let x: f64 = rng.gen::<f64>();
        self.cdf.partition_point(|&c| c < x) as u64
    }

    /// Probability mass of item `i`.
    pub fn pmf(&self, i: usize) -> f64 {
        assert!(i < self.cdf.len());
        if i == 0 {
            self.cdf[0]
        } else {
            self.cdf[i] - self.cdf[i - 1]
        }
    }
}

/// Insert/delete item-stream generator.
#[derive(Debug, Clone)]
pub struct ItemStreamGen {
    rng: SmallRng,
    zipf: ZipfSampler,
    delete_prob: f64,
    /// Multiset of live items (positions are arbitrary; deletion swaps).
    live: Vec<u64>,
    /// Minimum dataset size below which deletions are suppressed.
    floor: usize,
}

impl ItemStreamGen {
    /// Create a generator over a `universe`-sized item space with Zipf
    /// exponent `s`, per-step deletion probability `delete_prob`, and a
    /// dataset-size floor (deletions are suppressed when `F1` would drop
    /// below `floor`, keeping F1-variability finite).
    pub fn new(seed: u64, universe: usize, s: f64, delete_prob: f64, floor: usize) -> Self {
        assert!((0.0..1.0).contains(&delete_prob));
        ItemStreamGen {
            rng: SmallRng::seed_from_u64(seed),
            zipf: ZipfSampler::new(universe, s),
            delete_prob,
            live: Vec::new(),
            floor: floor.max(1),
        }
    }

    /// Current dataset size `F1(t)`.
    pub fn f1(&self) -> usize {
        self.live.len()
    }

    /// Produce the next update (without site assignment).
    pub fn next_item_delta(&mut self) -> (u64, i64) {
        let can_delete = self.live.len() > self.floor;
        if can_delete && self.rng.gen_bool(self.delete_prob) {
            let pos = self.rng.gen_range(0..self.live.len());
            let item = self.live.swap_remove(pos);
            (item, -1)
        } else {
            let item = self.zipf.sample(&mut self.rng);
            self.live.push(item);
            (item, 1)
        }
    }

    /// Materialize `n` updates with 1-based timesteps and a site policy.
    pub fn updates<A: SiteAssign>(&mut self, n: u64, mut assign: A) -> Vec<ItemUpdate> {
        (1..=n)
            .map(|t: Time| {
                let (item, delta) = self.next_item_delta();
                ItemUpdate::new(t, assign.site_for(t), item, delta)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RoundRobin;
    use std::collections::HashMap;

    #[test]
    fn zipf_masses_sum_to_one_and_decrease() {
        let z = ZipfSampler::new(100, 1.1);
        let total: f64 = (0..100).map(|i| z.pmf(i)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        for i in 1..100 {
            assert!(z.pmf(i) <= z.pmf(i - 1) + 1e-12);
        }
    }

    #[test]
    fn zipf_zero_exponent_is_uniform() {
        let z = ZipfSampler::new(10, 0.0);
        for i in 0..10 {
            assert!((z.pmf(i) - 0.1).abs() < 1e-9);
        }
    }

    #[test]
    fn zipf_sampling_matches_pmf_roughly() {
        let z = ZipfSampler::new(50, 1.0);
        let mut rng = SmallRng::seed_from_u64(77);
        let n = 200_000usize;
        let mut counts = vec![0u64; 50];
        for _ in 0..n {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        // Head item frequency within 10% of expectation.
        let expected0 = z.pmf(0) * n as f64;
        assert!(
            (counts[0] as f64 - expected0).abs() < 0.1 * expected0,
            "head count {} vs expected {expected0}",
            counts[0]
        );
    }

    #[test]
    fn item_stream_never_deletes_missing_items() {
        let mut g = ItemStreamGen::new(5, 100, 1.1, 0.45, 1);
        let mut counts: HashMap<u64, i64> = HashMap::new();
        let mut f1 = 0i64;
        for _ in 0..50_000 {
            let (item, delta) = g.next_item_delta();
            let c = counts.entry(item).or_insert(0);
            *c += delta;
            f1 += delta;
            assert!(*c >= 0, "negative frequency for item {item}");
            assert!(f1 >= 1, "dataset emptied");
        }
        assert_eq!(f1 as usize, g.f1());
    }

    #[test]
    fn floor_suppresses_deletions() {
        let mut g = ItemStreamGen::new(5, 10, 0.0, 0.9, 50);
        for _ in 0..1000 {
            g.next_item_delta();
        }
        assert!(g.f1() >= 50);
    }

    #[test]
    fn updates_have_site_and_time() {
        let mut g = ItemStreamGen::new(1, 20, 1.0, 0.3, 1);
        let ups = g.updates(100, RoundRobin::new(4));
        assert_eq!(ups.len(), 100);
        assert!(ups.iter().all(|u| u.site < 4));
        assert_eq!(ups[0].time, 1);
        assert!(ups.iter().all(|u| u.delta == 1 || u.delta == -1));
    }

    #[test]
    fn seed_determinism() {
        let mut a = ItemStreamGen::new(9, 30, 1.2, 0.4, 1);
        let mut b = ItemStreamGen::new(9, 30, 1.2, 0.4, 1);
        for _ in 0..1000 {
            assert_eq!(a.next_item_delta(), b.next_item_delta());
        }
    }
}
