//! Adversarial high-variability streams.
//!
//! These are the inputs that make unrestricted non-monotonic tracking cost
//! `Ω(n)`: streams that keep `|f(t)|` small while changing constantly, so
//! that `v'(t) = min{1, |f'(t)/f(t)|}` stays bounded away from zero.
//!
//! * [`AdversarialGen::hover`] — climb to a level `L`, then alternate ±1
//!   forever: `v(n) ≈ n / L`, a direct dial from benign (`L` large) to
//!   worst-case (`L = 1`).
//! * [`AdversarialGen::sawtooth`] — rise `swing` steps, fall `swing` steps
//!   around a base level.
//! * [`AdversarialGen::zero_crossing`] — oscillate between `+amp` and
//!   `−amp`, crossing `f = 0` every half-period (each crossing contributes
//!   `v' = 1`).

use crate::DeltaGen;

/// Deterministic adversarial stream generator.
#[derive(Debug, Clone)]
pub struct AdversarialGen {
    kind: Kind,
    /// Current value of f (mirrors the emitted prefix sum).
    f: i64,
    /// Steps emitted so far.
    t: u64,
    /// Current direction for the oscillating phases.
    dir: i64,
}

#[derive(Debug, Clone)]
enum Kind {
    Hover { level: i64 },
    Sawtooth { base: i64, swing: i64 },
    ZeroCrossing { amp: i64 },
}

impl AdversarialGen {
    /// Climb to `level ≥ 1`, then alternate −1/+1 forever so `f` hovers in
    /// `{level − 1, level}`. Asymptotic variability `v(n) ≈ n / level`.
    pub fn hover(level: i64) -> Self {
        assert!(level >= 1);
        AdversarialGen {
            kind: Kind::Hover { level },
            f: 0,
            t: 0,
            dir: -1,
        }
    }

    /// Climb to `base + swing`, then repeatedly descend to `base` and climb
    /// back. Requires `base ≥ 1` so `f` never reaches 0.
    pub fn sawtooth(base: i64, swing: i64) -> Self {
        assert!(base >= 1 && swing >= 1);
        AdversarialGen {
            kind: Kind::Sawtooth { base, swing },
            f: 0,
            t: 0,
            dir: -1,
        }
    }

    /// Oscillate between `+amp` and `−amp` (crossing zero repeatedly) —
    /// the hardest regime, with `v' = 1` at every zero/sign-change step.
    pub fn zero_crossing(amp: i64) -> Self {
        assert!(amp >= 1);
        AdversarialGen {
            kind: Kind::ZeroCrossing { amp },
            f: 0,
            t: 0,
            dir: 1,
        }
    }
}

impl DeltaGen for AdversarialGen {
    fn next_delta(&mut self) -> i64 {
        self.t += 1;
        let d = match self.kind {
            Kind::Hover { level } => {
                // Climb while below the level; at the level, step down. The
                // next step climbs back, so f alternates level−1, level, ...
                if self.f < level {
                    1
                } else {
                    -1
                }
            }
            Kind::Sawtooth { base, swing } => {
                let top = base + swing;
                if self.t <= top as u64 {
                    1 // initial climb
                } else {
                    if self.f <= base {
                        self.dir = 1;
                    } else if self.f >= top {
                        self.dir = -1;
                    }
                    self.dir
                }
            }
            Kind::ZeroCrossing { amp } => {
                if self.f >= amp {
                    self.dir = -1;
                } else if self.f <= -amp {
                    self.dir = 1;
                }
                self.dir
            }
        };
        self.f += d;
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prefix_values;

    #[test]
    fn hover_stays_near_level() {
        let mut g = AdversarialGen::hover(10);
        let values = prefix_values(&g.deltas(100));
        // First 10 steps climb; afterwards value ∈ {9, 10}.
        assert_eq!(values[9], 10);
        assert!(values[10..].iter().all(|&v| v == 9 || v == 10));
    }

    #[test]
    fn hover_level_one_is_worst_case() {
        let mut g = AdversarialGen::hover(1);
        let values = prefix_values(&g.deltas(50));
        assert!(values.iter().all(|&v| v == 0 || v == 1));
        // Hits zero repeatedly → maximal per-step variability.
        assert!(values.iter().filter(|&&v| v == 0).count() > 10);
    }

    #[test]
    fn sawtooth_oscillates_between_levels() {
        let mut g = AdversarialGen::sawtooth(5, 10);
        let values = prefix_values(&g.deltas(200));
        let after_climb = &values[15..];
        assert!(after_climb.iter().all(|&v| (5..=15).contains(&v)));
        assert!(after_climb.contains(&5));
        assert!(after_climb.contains(&15));
        // Never touches zero.
        assert!(values.iter().all(|&v| v >= 1));
    }

    #[test]
    fn zero_crossing_spans_both_signs() {
        let mut g = AdversarialGen::zero_crossing(4);
        let values = prefix_values(&g.deltas(100));
        assert!(values.contains(&4));
        assert!(values.contains(&-4));
        assert!(values.iter().all(|&v| (-4..=4).contains(&v)));
        let crossings = values
            .windows(2)
            .filter(|w| w[0] == 0 || w[0].signum() != w[1].signum())
            .count();
        assert!(crossings >= 10, "crossings = {crossings}");
    }

    #[test]
    fn all_adversaries_emit_pm_one() {
        for mut g in [
            AdversarialGen::hover(3),
            AdversarialGen::sawtooth(2, 7),
            AdversarialGen::zero_crossing(5),
        ] {
            assert!(g.deltas(500).iter().all(|&d| d == 1 || d == -1));
        }
    }
}
