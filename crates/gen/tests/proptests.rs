//! Property-based tests for the workload generators.

use dsv_gen::{
    assign_updates, prefix_values, values_to_deltas, AdversarialGen, DeltaGen, FlipFamilyGen,
    HashAssign, MonotoneGen, NearlyMonotoneGen, RandomAssign, RoundRobin, SiteAssign, WalkGen,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// prefix_values and values_to_deltas are inverse bijections.
    #[test]
    fn prefix_roundtrip(deltas in prop::collection::vec(-1000i64..1000, 0..200)) {
        let values = prefix_values(&deltas);
        prop_assert_eq!(values_to_deltas(&values), deltas);
    }

    /// Walks emit only the advertised support and are seed-deterministic.
    #[test]
    fn walks_have_correct_support(seed in 0u64..10_000, n in 1u64..2_000) {
        let fair = WalkGen::fair(seed).deltas(n);
        prop_assert!(fair.iter().all(|&d| d == 1 || d == -1));
        let lazy = WalkGen::lazy(seed, 0.5).deltas(n);
        prop_assert!(lazy.iter().all(|&d| (-1..=1).contains(&d)));
        prop_assert_eq!(WalkGen::fair(seed).deltas(n), fair);
    }

    /// Biased walks have empirical mean within 5σ of μ.
    #[test]
    fn biased_walk_mean(seed in 0u64..1000, mu_pct in -80i32..80) {
        let mu = mu_pct as f64 / 100.0;
        let n = 20_000u64;
        let sum: i64 = WalkGen::biased(seed, mu).deltas(n).iter().sum();
        let sigma = (n as f64).sqrt(); // ≥ per-step std
        prop_assert!(
            (sum as f64 - mu * n as f64).abs() < 5.0 * sigma + 1.0,
            "sum {sum} vs expectation {}", mu * n as f64
        );
    }

    /// Nearly-monotone streams satisfy their defining constraint for any
    /// parameters.
    #[test]
    fn nearly_monotone_constraint(
        seed in 0u64..5_000,
        beta10 in 10u32..80,
        dp_pct in 0u32..50,
        n in 1u64..5_000,
    ) {
        let beta = beta10 as f64 / 10.0;
        let mut g = NearlyMonotoneGen::new(seed, beta, dp_pct as f64 / 100.0);
        let deltas = g.deltas(n);
        let mut f = 0i64;
        let mut f_minus = 0i64;
        for &d in &deltas {
            f += d;
            if d < 0 {
                f_minus -= d;
            }
            prop_assert!(f_minus as f64 <= beta * f as f64 + 1e-9);
            prop_assert!(f >= 0);
        }
    }

    /// Adversarial streams respect their envelopes.
    #[test]
    fn adversaries_respect_envelopes(n in 10u64..3_000, level in 1i64..50, amp in 1i64..50) {
        let hv = prefix_values(&AdversarialGen::hover(level).deltas(n));
        prop_assert!(hv.iter().all(|&v| v >= 0 && v <= level));
        let zc = prefix_values(&AdversarialGen::zero_crossing(amp).deltas(n));
        prop_assert!(zc.iter().all(|&v| v.abs() <= amp));
        let st = prefix_values(&AdversarialGen::sawtooth(level, amp).deltas(n));
        prop_assert!(st.iter().all(|&v| v >= 0 && v <= level + amp));
    }

    /// Site assignments stay in range for every policy.
    #[test]
    fn assignments_in_range(k in 1usize..12, seed in 0u64..1000, n in 1u64..500) {
        let mut policies: Vec<Box<dyn SiteAssign>> = vec![
            Box::new(RoundRobin::new(k)),
            Box::new(RandomAssign::new(k, seed)),
            Box::new(HashAssign::new(k)),
        ];
        for p in &mut policies {
            for t in 1..=n {
                prop_assert!(p.site_for(t) < k);
            }
        }
        let deltas = vec![1i64; n as usize];
        let ups = assign_updates(&deltas, RoundRobin::new(k));
        prop_assert!(ups.iter().all(|u| u.site < k));
        prop_assert!(ups.iter().enumerate().all(|(i, u)| u.time == (i + 1) as u64));
    }

    /// Flip-family streams: after the climb, values alternate between m
    /// and m+3 and match value_at.
    #[test]
    fn flip_gen_consistency(m in 2i64..12, n in 20u64..500, r in 0usize..10, seed in 0u64..1000) {
        let r = r.min(n as usize / 2);
        let g0 = FlipFamilyGen::random(m, n, r, seed);
        let mut g = g0.clone();
        let total = m as u64 + n;
        let values = prefix_values(&g.deltas(total));
        for post_t in 0..n {
            prop_assert_eq!(
                values[(m as u64 + post_t) as usize - 1],
                g0.value_at(post_t),
                "post_t = {}", post_t
            );
        }
    }

    /// Monotone generators never decrease.
    #[test]
    fn monotone_never_decreases(seed in 0u64..1000, maxj in 1i64..100, n in 1u64..2_000) {
        for mut g in [MonotoneGen::ones(), MonotoneGen::jumps(seed, maxj)] {
            let values = prefix_values(&g.deltas(n));
            prop_assert!(values.windows(2).all(|w| w[0] <= w[1]));
        }
    }
}
