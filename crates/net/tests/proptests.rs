//! Property-based tests for the network substrate.

use dsv_net::message::{bits_per_word, MsgKind};
use dsv_net::{
    CommStats, CoordOutbox, CoordinatorNode, Outbox, SiteNode, StarSim, Time, TrackerRunner, Update,
};
use proptest::prelude::*;

/// Exact forwarding protocol used as the reference semantics.
struct FwdSite;
struct FwdCoord {
    sum: i64,
}
impl SiteNode for FwdSite {
    type In = i64;
    type Up = i64;
    type Down = ();
    fn on_update(&mut self, _t: Time, d: i64, out: &mut Outbox<i64>) {
        out.send(d);
    }
    fn on_down(&mut self, _t: Time, _m: &(), _r: bool, _o: &mut Outbox<i64>) {}
}
impl CoordinatorNode for FwdCoord {
    type Up = i64;
    type Down = ();
    fn on_up(&mut self, _t: Time, _s: usize, m: i64, _o: &mut CoordOutbox<()>) {
        self.sum += m;
    }
    fn estimate(&self) -> i64 {
        self.sum
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The simulator delivers every update exactly once, in order, and
    /// accounting matches the message count.
    #[test]
    fn forwarding_is_exact_and_fully_charged(
        deltas in prop::collection::vec(-100i64..100, 0..300),
        k in 1usize..8,
    ) {
        let mut sim = StarSim::with_k(k, |_| FwdSite, FwdCoord { sum: 0 });
        let mut f = 0i64;
        for (i, &d) in deltas.iter().enumerate() {
            f += d;
            let est = sim.step(i % k, d);
            prop_assert_eq!(est, f);
        }
        prop_assert_eq!(sim.stats().total_messages(), deltas.len() as u64);
        prop_assert_eq!(sim.stats().upward_messages(), deltas.len() as u64);
        prop_assert_eq!(sim.time(), deltas.len() as u64);
    }

    /// The runner's violation counting is consistent with the recorded
    /// max relative error.
    #[test]
    fn runner_report_consistency(
        deltas in prop::collection::vec(prop_oneof![Just(1i64), Just(-1i64)], 1..300),
        eps in 0.05f64..0.9,
    ) {
        let updates: Vec<Update> = deltas
            .iter()
            .enumerate()
            .map(|(i, &d)| Update::new((i + 1) as u64, 0, d))
            .collect();
        let mut sim = StarSim::with_k(1, |_| FwdSite, FwdCoord { sum: 0 });
        let report = TrackerRunner::new(eps).run(&mut sim, &updates);
        // Exact tracker: no violations, no error, estimate == truth.
        prop_assert_eq!(report.violations, 0);
        prop_assert_eq!(report.max_rel_err, 0.0);
        prop_assert_eq!(report.final_f, report.final_estimate);
        prop_assert_eq!(report.n, updates.len() as u64);
    }

    /// CommStats algebra: merge(a, since(b, a)) == b for prefix pairs, and
    /// totals are consistent sums of the per-kind counters.
    #[test]
    fn stats_algebra(
        ups in 0u64..50, replies in 0u64..50, unicasts in 0u64..50,
        bcasts in 0u64..10, reqs in 0u64..10, k in 1usize..8,
    ) {
        let mut s = CommStats::new();
        for _ in 0..ups { s.charge(MsgKind::Up, 1); }
        let snapshot = s.clone();
        for _ in 0..replies { s.charge(MsgKind::Reply, 2); }
        for _ in 0..unicasts { s.charge(MsgKind::Unicast, 1); }
        for _ in 0..bcasts { s.charge_fanout(MsgKind::Broadcast, k, 1); }
        for _ in 0..reqs { s.charge_fanout(MsgKind::Request, k, 1); }
        let delta = s.since(&snapshot);
        let mut rebuilt = snapshot.clone();
        rebuilt.merge(&delta);
        prop_assert_eq!(rebuilt, s.clone());
        prop_assert_eq!(
            s.total_messages(),
            ups + replies + unicasts + (bcasts + reqs) * k as u64
        );
        prop_assert_eq!(s.broadcast_ops(), bcasts);
        prop_assert_eq!(s.request_ops(), reqs);
        prop_assert_eq!(
            s.upward_messages() + s.downward_messages(),
            s.total_messages()
        );
    }

    /// bits_per_word is monotone and logarithmic.
    #[test]
    fn bits_per_word_monotone(a in 0u64..u64::MAX / 4) {
        prop_assert!(bits_per_word(a) <= bits_per_word(a + 1));
        prop_assert!(bits_per_word(a) <= 66);
        if a > 0 {
            prop_assert_eq!(bits_per_word(2 * a), bits_per_word(a) + 1);
        }
    }

    /// Transcripts record exactly the charged traffic.
    #[test]
    fn transcript_matches_ledger(
        deltas in prop::collection::vec(1i64..5, 1..100),
        k in 1usize..5,
    ) {
        let mut sim = StarSim::with_k(k, |_| FwdSite, FwdCoord { sum: 0 });
        sim.enable_transcript();
        for (i, &d) in deltas.iter().enumerate() {
            sim.step(i % k, d);
        }
        let transcript = sim.transcript().unwrap();
        prop_assert_eq!(transcript.len(), deltas.len());
        let words: usize = transcript.iter().map(|m| m.words).sum();
        prop_assert_eq!(words as u64, sim.stats().total_words());
    }
}
