//! Driving a tracker over a stream and auditing its guarantees.
//!
//! [`TrackerRunner`] feeds a sequence of [`Update`]s to a [`StarSim`],
//! maintains the ground-truth `f(n)`, and checks the paper's correctness
//! requirement after **every** timestep:
//!
//! * deterministic algorithms: `|f(n) − f̂(n)| ≤ ε·|f(n)|` must always hold
//!   (with the convention that `f(n) = 0` requires `f̂(n) = 0`);
//! * randomized algorithms: the same event must hold with probability ≥ 2/3
//!   at each fixed `n`, so the runner reports the *fraction* of violated
//!   timesteps instead of failing.
//!
//! By default the audit uses [`relative_error`]'s exact-zero convention
//! (no `q`-floor); [`relative_error_floored`] implements the paper's
//! `max(|f|, q)` denominator for callers that want it. `TrackerRunner` is
//! the low-level, `In = i64` engine for concrete simulators; the unified,
//! object-safe front door over *all* trackers (counting and item-frequency
//! alike, with the floor as a config knob) is `dsv-core`'s `api::Driver`.

use crate::protocol::{CoordinatorNode, SiteNode};
use crate::sim::StarSim;
use crate::stats::CommStats;
use crate::{Time, Update};

/// A runner/driver configuration that cannot be used.
///
/// Returned by the checked constructors ([`TrackerRunner::try_new`] and the
/// higher-level driver in `dsv-core`) instead of panicking, so callers that
/// assemble configurations from user input get a typed, displayable error.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ConfigError {
    /// The audited relative error must lie strictly inside `(0, 1)`.
    EpsOutOfRange {
        /// The rejected value.
        eps: f64,
    },
    /// The `q`-floor for small-value auditing must be finite and positive.
    FloorNotPositive {
        /// The rejected value.
        q: f64,
    },
    /// A star network needs at least one site.
    ZeroSites,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, fm: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::EpsOutOfRange { eps } => {
                write!(fm, "eps must be in (0, 1), got {eps}")
            }
            ConfigError::FloorNotPositive { q } => {
                write!(fm, "the q-floor must be finite and > 0, got {q}")
            }
            ConfigError::ZeroSites => write!(fm, "need at least one site"),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Relative error of an estimate, with the `f = 0` convention: zero error
/// iff the estimate is also zero, otherwise infinite.
pub fn relative_error(f: i64, fhat: i64) -> f64 {
    if f == 0 {
        if fhat == 0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        (f - fhat).unsigned_abs() as f64 / f.unsigned_abs() as f64
    }
}

/// Relative error with the paper's `q`-floor: `|f − f̂| / max(|f|, q)`.
///
/// The variability definition (§2) floors every denominator at a constant
/// `q ≥ 1` so that steps taken while `|f|` is tiny are not charged an
/// unbounded amount; the same floor makes sense when *auditing* a tracker
/// near zero, where [`relative_error`]'s exact-zero convention is stricter
/// than the paper requires. With `q > 0` the result is always finite.
pub fn relative_error_floored(f: i64, fhat: i64, q: f64) -> f64 {
    debug_assert!(q > 0.0, "use relative_error for the exact q = 0 convention");
    (f - fhat).unsigned_abs() as f64 / (f.unsigned_abs() as f64).max(q)
}

/// A sampled point of the tracked trajectory.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorProbe {
    /// Timestep of the sample.
    pub time: Time,
    /// Ground truth `f(t)`.
    pub f: i64,
    /// Coordinator estimate `f̂(t)`.
    pub fhat: i64,
    /// Relative error at the sample.
    pub rel_err: f64,
}

/// Outcome of running a tracker over a whole stream.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Stream length consumed.
    pub n: u64,
    /// Ground-truth final value `f(n)`.
    pub final_f: i64,
    /// Final coordinator estimate.
    pub final_estimate: i64,
    /// Largest relative error observed at any timestep (∞ if `f(t) = 0`
    /// was ever mis-estimated).
    pub max_rel_err: f64,
    /// Number of timesteps where the ε-guarantee was violated.
    pub violations: u64,
    /// Number of timesteps where the estimate changed at the coordinator.
    pub estimate_changes: u64,
    /// Final communication ledger.
    pub stats: CommStats,
    /// Optional sampled trajectory (when `sample_every > 0`).
    pub probes: Vec<ErrorProbe>,
}

impl RunReport {
    /// Fraction of timesteps violating the ε-guarantee.
    pub fn violation_rate(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.violations as f64 / self.n as f64
        }
    }
}

/// Feeds updates into a simulator and audits the ε-guarantee.
#[derive(Debug)]
pub struct TrackerRunner {
    eps: f64,
    sample_every: u64,
}

impl TrackerRunner {
    /// Create a runner that audits against relative error `eps`.
    ///
    /// Panics if `eps` is outside `(0, 1)`; use [`TrackerRunner::try_new`]
    /// for a typed error instead.
    pub fn new(eps: f64) -> Self {
        Self::try_new(eps).expect("eps must be in (0,1)")
    }

    /// Checked constructor: `eps` must lie strictly inside `(0, 1)`.
    pub fn try_new(eps: f64) -> Result<Self, ConfigError> {
        if !(eps > 0.0 && eps < 1.0) {
            return Err(ConfigError::EpsOutOfRange { eps });
        }
        Ok(TrackerRunner {
            eps,
            sample_every: 0,
        })
    }

    /// Also record a trajectory sample every `every` timesteps (0 = never).
    pub fn with_sampling(mut self, every: u64) -> Self {
        self.sample_every = every;
        self
    }

    /// The audited ε.
    pub fn eps(&self) -> f64 {
        self.eps
    }

    /// Run `sim` over `updates`, checking the guarantee after every step.
    ///
    /// NOTE: `dsv-core::api::Driver::run_with` is the **authoritative**
    /// copy of this audit loop (violation accounting, the `1e-12` slack,
    /// probe sampling, estimate-change counting). This method must stay a
    /// bit-identical mirror of it for `In = i64` — guarded by the
    /// `driver_matches_tracker_runner_accounting` test in `dsv-core` and
    /// `tests/api_equivalence.rs` in the facade. Change the Driver first,
    /// then port the change here.
    pub fn run<S, C>(&self, sim: &mut StarSim<S, C>, updates: &[Update]) -> RunReport
    where
        S: SiteNode<In = i64>,
        C: CoordinatorNode<Up = S::Up, Down = S::Down>,
    {
        let mut f = 0i64;
        let mut max_rel_err = 0.0f64;
        let mut violations = 0u64;
        let mut estimate_changes = 0u64;
        let mut last_estimate = sim.estimate();
        let mut probes = Vec::new();

        for u in updates {
            f += u.delta;
            let fhat = sim.step(u.site, u.delta);
            if fhat != last_estimate {
                estimate_changes += 1;
                last_estimate = fhat;
            }
            let err = relative_error(f, fhat);
            if err > max_rel_err {
                max_rel_err = err;
            }
            // Use a tiny slack for the ≤ comparison to avoid counting
            // floating-point round-off as a violation of an exact bound.
            if err > self.eps * (1.0 + 1e-12) {
                violations += 1;
            }
            if self.sample_every > 0 && u.time % self.sample_every == 0 {
                probes.push(ErrorProbe {
                    time: u.time,
                    f,
                    fhat,
                    rel_err: err,
                });
            }
        }

        RunReport {
            n: updates.len() as u64,
            final_f: f,
            final_estimate: sim.estimate(),
            max_rel_err,
            violations,
            estimate_changes,
            stats: sim.stats().clone(),
            probes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{CoordOutbox, Outbox};
    use crate::SiteId;

    #[test]
    fn relative_error_conventions() {
        assert_eq!(relative_error(0, 0), 0.0);
        assert!(relative_error(0, 1).is_infinite());
        assert!((relative_error(10, 9) - 0.1).abs() < 1e-12);
        assert!((relative_error(-10, -9) - 0.1).abs() < 1e-12);
        assert!((relative_error(-10, -11) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn floored_relative_error_is_finite_near_zero() {
        // Below the floor the denominator is q, not |f|.
        assert_eq!(relative_error_floored(0, 3, 10.0), 0.3);
        assert_eq!(relative_error_floored(2, 4, 10.0), 0.2);
        // Above the floor it coincides with the plain relative error.
        assert!((relative_error_floored(100, 90, 10.0) - relative_error(100, 90)).abs() < 1e-12);
        assert!((relative_error_floored(-100, -90, 10.0) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn runner_config_errors_are_typed() {
        assert!(TrackerRunner::try_new(0.5).is_ok());
        for eps in [0.0, 1.0, -0.1, 1.5, f64::NAN] {
            let err = TrackerRunner::try_new(eps).unwrap_err();
            assert!(matches!(err, ConfigError::EpsOutOfRange { .. }));
            assert!(!err.to_string().is_empty());
        }
    }

    /// Exact forwarding protocol for runner auditing.
    struct FwdSite;
    struct FwdCoord {
        sum: i64,
    }
    impl crate::protocol::SiteNode for FwdSite {
        type In = i64;
        type Up = i64;
        type Down = ();
        fn on_update(&mut self, _t: Time, d: i64, out: &mut Outbox<i64>) {
            out.send(d);
        }
        fn on_down(&mut self, _t: Time, _m: &(), _r: bool, _o: &mut Outbox<i64>) {}
    }
    impl crate::protocol::CoordinatorNode for FwdCoord {
        type Up = i64;
        type Down = ();
        fn on_up(&mut self, _t: Time, _s: SiteId, m: i64, _o: &mut CoordOutbox<()>) {
            self.sum += m;
        }
        fn estimate(&self) -> i64 {
            self.sum
        }
    }

    fn walk_updates(n: u64, k: usize) -> Vec<Update> {
        (1..=n)
            .map(|t| Update::new(t, (t as usize * 7 + 3) % k, if t % 2 == 0 { 1 } else { -1 }))
            .collect()
    }

    #[test]
    fn exact_tracker_never_violates() {
        let updates = walk_updates(500, 4);
        let mut sim = StarSim::with_k(4, |_| FwdSite, FwdCoord { sum: 0 });
        let report = TrackerRunner::new(0.1)
            .with_sampling(100)
            .run(&mut sim, &updates);
        assert_eq!(report.n, 500);
        assert_eq!(report.violations, 0);
        assert_eq!(report.max_rel_err, 0.0);
        assert_eq!(report.final_f, report.final_estimate);
        assert_eq!(report.probes.len(), 5);
        assert_eq!(report.stats.total_messages(), 500);
        assert_eq!(report.violation_rate(), 0.0);
    }

    /// A coordinator that never updates (estimate stuck at 0) must rack up
    /// violations once f departs from 0.
    struct DeafCoord;
    impl crate::protocol::CoordinatorNode for DeafCoord {
        type Up = i64;
        type Down = ();
        fn on_up(&mut self, _t: Time, _s: SiteId, _m: i64, _o: &mut CoordOutbox<()>) {}
        fn estimate(&self) -> i64 {
            0
        }
    }

    #[test]
    fn stuck_tracker_is_flagged() {
        // Monotone stream: f(t) = t, estimate stays 0 → violation at every t.
        let updates: Vec<Update> = (1..=100).map(|t| Update::new(t, 0, 1)).collect();
        let mut sim = StarSim::with_k(1, |_| FwdSite, DeafCoord);
        let report = TrackerRunner::new(0.5).run(&mut sim, &updates);
        assert_eq!(report.violations, 100);
        assert!(report.max_rel_err >= 1.0);
        assert_eq!(report.violation_rate(), 1.0);
    }
}
