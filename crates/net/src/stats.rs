//! Communication accounting.
//!
//! Every message that crosses the star network is charged here. The paper's
//! bounds are stated in *messages* (each of `O(log n)` bits); we track both
//! message counts (per kind) and total words so experiments can report
//! either unit.

use crate::codec::{CodecError, Dec, Enc};
use crate::message::{bits_per_word, MsgKind};

/// Ledger of all communication charged during a simulation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CommStats {
    /// Messages by kind: `[Up, Reply, Unicast, Broadcast, Request]`,
    /// indexed via [`kind_index`]. Broadcast/Request entries already count
    /// `k` messages per broadcast (one per recipient).
    msgs: [u64; 5],
    /// Total payload words across all charged messages (a broadcast of `w`
    /// words to `k` sites charges `k*w` words).
    words: u64,
    /// Number of broadcast *operations* (each charged as `k` messages).
    broadcast_ops: u64,
    /// Number of request *operations* (each charged as `k` messages).
    request_ops: u64,
}

fn kind_index(kind: MsgKind) -> usize {
    match kind {
        MsgKind::Up => 0,
        MsgKind::Reply => 1,
        MsgKind::Unicast => 2,
        MsgKind::Broadcast => 3,
        MsgKind::Request => 4,
    }
}

impl CommStats {
    /// Fresh, empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Charge one point-to-point message of `words` payload words.
    pub fn charge(&mut self, kind: MsgKind, words: usize) {
        debug_assert!(
            !matches!(kind, MsgKind::Broadcast | MsgKind::Request),
            "use charge_fanout for broadcast/request"
        );
        self.msgs[kind_index(kind)] += 1;
        self.words += words as u64;
    }

    /// Charge a fan-out operation (broadcast or request) to `k` sites with
    /// `words` payload words per recipient. Charged as `k` messages, per the
    /// paper's accounting in §3.1 ("k broadcast at n_{j+1}").
    pub fn charge_fanout(&mut self, kind: MsgKind, k: usize, words: usize) {
        debug_assert!(
            matches!(kind, MsgKind::Broadcast | MsgKind::Request),
            "charge_fanout is only for broadcast/request"
        );
        self.msgs[kind_index(kind)] += k as u64;
        self.words += (k * words) as u64;
        match kind {
            MsgKind::Broadcast => self.broadcast_ops += 1,
            MsgKind::Request => self.request_ops += 1,
            _ => unreachable!(),
        }
    }

    /// Messages of a particular kind (fan-outs count `k` each).
    pub fn messages_of(&self, kind: MsgKind) -> u64 {
        self.msgs[kind_index(kind)]
    }

    /// Total messages across all kinds.
    pub fn total_messages(&self) -> u64 {
        self.msgs.iter().sum()
    }

    /// Total payload words.
    pub fn total_words(&self) -> u64 {
        self.words
    }

    /// Total bits if every word costs `O(log n)` bits for stream length `n`.
    pub fn total_bits(&self, n: u64) -> u64 {
        self.words * bits_per_word(n)
    }

    /// Number of broadcast operations performed (not messages).
    pub fn broadcast_ops(&self) -> u64 {
        self.broadcast_ops
    }

    /// Number of request operations performed (not messages).
    pub fn request_ops(&self) -> u64 {
        self.request_ops
    }

    /// Messages sent from sites to the coordinator (Up + Reply).
    pub fn upward_messages(&self) -> u64 {
        self.messages_of(MsgKind::Up) + self.messages_of(MsgKind::Reply)
    }

    /// Messages sent from the coordinator to sites
    /// (Unicast + Broadcast + Request).
    pub fn downward_messages(&self) -> u64 {
        self.messages_of(MsgKind::Unicast)
            + self.messages_of(MsgKind::Broadcast)
            + self.messages_of(MsgKind::Request)
    }

    /// Absorb another ledger (used when composing sub-protocols).
    pub fn merge(&mut self, other: &CommStats) {
        for i in 0..self.msgs.len() {
            self.msgs[i] += other.msgs[i];
        }
        self.words += other.words;
        self.broadcast_ops += other.broadcast_ops;
        self.request_ops += other.request_ops;
    }

    /// Serialize the ledger for the snapshot/restore seam.
    pub fn encode(&self, enc: &mut Enc) {
        for &m in &self.msgs {
            enc.u64(m);
        }
        enc.u64(self.words);
        enc.u64(self.broadcast_ops);
        enc.u64(self.request_ops);
    }

    /// Decode a ledger written by [`encode`](Self::encode).
    pub fn decode(dec: &mut Dec) -> Result<Self, CodecError> {
        let mut out = CommStats::default();
        for m in &mut out.msgs {
            *m = dec.u64()?;
        }
        out.words = dec.u64()?;
        out.broadcast_ops = dec.u64()?;
        out.request_ops = dec.u64()?;
        Ok(out)
    }

    /// Difference `self - earlier`, for per-phase accounting. Panics in
    /// debug builds if `earlier` is not a prefix of `self`.
    pub fn since(&self, earlier: &CommStats) -> CommStats {
        let mut out = CommStats::default();
        for i in 0..self.msgs.len() {
            debug_assert!(self.msgs[i] >= earlier.msgs[i]);
            out.msgs[i] = self.msgs[i] - earlier.msgs[i];
        }
        debug_assert!(self.words >= earlier.words);
        out.words = self.words - earlier.words;
        out.broadcast_ops = self.broadcast_ops - earlier.broadcast_ops;
        out.request_ops = self.request_ops - earlier.request_ops;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_to_point_charges_accumulate() {
        let mut s = CommStats::new();
        s.charge(MsgKind::Up, 1);
        s.charge(MsgKind::Up, 2);
        s.charge(MsgKind::Reply, 3);
        s.charge(MsgKind::Unicast, 1);
        assert_eq!(s.messages_of(MsgKind::Up), 2);
        assert_eq!(s.messages_of(MsgKind::Reply), 1);
        assert_eq!(s.messages_of(MsgKind::Unicast), 1);
        assert_eq!(s.total_messages(), 4);
        assert_eq!(s.total_words(), 7);
        assert_eq!(s.upward_messages(), 3);
        assert_eq!(s.downward_messages(), 1);
    }

    #[test]
    fn fanout_charges_k_messages() {
        let mut s = CommStats::new();
        s.charge_fanout(MsgKind::Broadcast, 8, 1);
        s.charge_fanout(MsgKind::Request, 8, 0);
        assert_eq!(s.messages_of(MsgKind::Broadcast), 8);
        assert_eq!(s.messages_of(MsgKind::Request), 8);
        assert_eq!(s.total_messages(), 16);
        assert_eq!(s.total_words(), 8);
        assert_eq!(s.broadcast_ops(), 1);
        assert_eq!(s.request_ops(), 1);
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)]
    fn fanout_rejects_point_to_point_kinds() {
        let mut s = CommStats::new();
        s.charge_fanout(MsgKind::Up, 4, 1);
    }

    #[test]
    fn merge_and_since_are_inverse() {
        let mut a = CommStats::new();
        a.charge(MsgKind::Up, 2);
        a.charge_fanout(MsgKind::Broadcast, 4, 1);
        let snapshot = a.clone();
        a.charge(MsgKind::Reply, 1);
        a.charge_fanout(MsgKind::Request, 4, 0);
        let delta = a.since(&snapshot);
        assert_eq!(delta.messages_of(MsgKind::Reply), 1);
        assert_eq!(delta.messages_of(MsgKind::Request), 4);
        assert_eq!(delta.messages_of(MsgKind::Up), 0);
        let mut rebuilt = snapshot.clone();
        rebuilt.merge(&delta);
        assert_eq!(rebuilt, a);
    }

    #[test]
    fn total_bits_scales_with_log_n() {
        let mut s = CommStats::new();
        s.charge(MsgKind::Up, 10);
        assert_eq!(s.total_bits(1023), 10 * 12);
        assert_eq!(s.total_bits(u64::MAX / 2), 10 * 65);
    }
}
