//! # dsv-net — distributed monitoring substrate
//!
//! This crate implements the *distributed monitoring model* of Cormode,
//! Muthukrishnan, and Yi that the paper ["Variability in Data
//! Streams"](https://arxiv.org/abs/1502.07027) (Felber & Ostrovsky, PODS
//! 2016) builds on:
//!
//! * a single **coordinator** and `k` **sites** arranged in a star topology;
//! * time proceeds in discrete steps; at each step one stream update
//!   `f'(n) = ±δ` arrives at exactly one site `i(n)`;
//! * sites may send messages *up* to the coordinator; the coordinator may
//!   send unicast messages or *broadcasts* down to the sites (a broadcast is
//!   charged as `k` messages, matching the paper's accounting);
//! * all communication is charged to a [`stats::CommStats`] ledger, in both
//!   message and word counts, so algorithms can be compared against the
//!   paper's bounds.
//!
//! The substrate is deliberately **synchronous and deterministic**: messages
//! triggered by an update are delivered within the same timestep in rounds
//! until the network quiesces. This matches the model in the paper (instant
//! delivery, no failures) and makes every experiment reproducible bit-for-bit.
//!
//! The actual tracking algorithms live in `dsv-core`; they are expressed as
//! implementations of [`protocol::SiteNode`] and [`protocol::CoordinatorNode`]
//! and executed by [`sim::StarSim`].

#![warn(missing_docs)]

pub mod codec;
pub mod delta;
pub mod ingest;
pub mod message;
pub mod protocol;
pub mod runner;
pub mod shard;
pub mod sim;
pub mod stats;
pub mod transport;

pub use codec::{CodecError, Dec, Enc};
pub use delta::{fingerprint, StateDelta, DELTA_MAGIC, DELTA_SECTION, DELTA_VERSION};
pub use ingest::{FeedFrame, IngestStats};
pub use message::{MsgKind, MsgRecord, WireSize};
pub use protocol::{CoordOutbox, CoordinatorNode, DownMsg, MergedEntry, Outbox, SiteNode};
pub use runner::{
    relative_error, relative_error_floored, ConfigError, ErrorProbe, RunReport, TrackerRunner,
};
pub use shard::{ShardReport, StateFrame};
pub use sim::StarSim;
pub use stats::CommStats;
pub use transport::{Conn, Endpoint, Listener, TransportError, WireStats};

/// Identifier of a site, in `0..k`.
pub type SiteId = usize;

/// Discrete timestep. The first update arrives at time 1; time 0 is the
/// initial state with `f(0) = 0` (unless an algorithm overrides it).
pub type Time = u64;

/// A single stream update: at `time`, the value `delta` arrives at `site`.
///
/// The paper's upper bounds assume `delta = ±1`; larger updates are handled
/// by the expansion of Appendix C (see `dsv-core::expand`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Update {
    /// Timestep at which the update arrives (1-based).
    pub time: Time,
    /// Site that observes the update.
    pub site: SiteId,
    /// Signed change `f'(t) = f(t) - f(t-1)`.
    pub delta: i64,
}

impl Update {
    /// Convenience constructor.
    pub fn new(time: Time, site: SiteId, delta: i64) -> Self {
        Update { time, site, delta }
    }
}

/// An item-stream update for the frequency-tracking problem (§5.1): at
/// `time`, one copy of `item` is inserted (`delta = +1`) into or deleted
/// (`delta = -1`) from the dataset `D`, observed at `site`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ItemUpdate {
    /// Timestep at which the update arrives (1-based).
    pub time: Time,
    /// Site that observes the update.
    pub site: SiteId,
    /// The item `ℓ ∈ U` concerned.
    pub item: u64,
    /// `+1` for insertion, `-1` for deletion.
    pub delta: i64,
}

impl ItemUpdate {
    /// Convenience constructor.
    pub fn new(time: Time, site: SiteId, item: u64, delta: i64) -> Self {
        ItemUpdate {
            time,
            site,
            item,
            delta,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn update_constructor_roundtrips() {
        let u = Update::new(7, 3, -1);
        assert_eq!(u.time, 7);
        assert_eq!(u.site, 3);
        assert_eq!(u.delta, -1);
    }
}
