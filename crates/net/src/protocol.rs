//! Protocol traits: how algorithms plug into the star network.
//!
//! A distributed tracking algorithm is a pair of state machines:
//!
//! * a [`SiteNode`] replicated at each of the `k` sites, reacting to stream
//!   updates and to messages from the coordinator;
//! * a [`CoordinatorNode`] at the center, reacting to site messages and
//!   maintaining the estimate `f̂(n)`.
//!
//! Nodes communicate exclusively through outboxes; the simulator
//! ([`crate::sim::StarSim`]) delivers messages and charges them to the
//! communication ledger. Keeping I/O in outboxes (rather than letting nodes
//! call each other) is what makes the message accounting exact and the
//! execution deterministic.

use crate::codec::{CodecError, Dec, Enc};
use crate::message::WireSize;
use crate::{SiteId, Time};

/// Buffer of site→coordinator messages produced during one activation.
#[derive(Debug)]
pub struct Outbox<M> {
    msgs: Vec<M>,
}

impl<M> Default for Outbox<M> {
    fn default() -> Self {
        Outbox { msgs: Vec::new() }
    }
}

impl<M> Outbox<M> {
    /// Create an empty outbox.
    pub fn new() -> Self {
        Self::default()
    }

    /// Queue a message for the coordinator.
    pub fn send(&mut self, msg: M) {
        self.msgs.push(msg);
    }

    /// Number of queued messages.
    pub fn len(&self) -> usize {
        self.msgs.len()
    }

    /// Whether no messages are queued.
    pub fn is_empty(&self) -> bool {
        self.msgs.is_empty()
    }

    /// Drain all queued messages.
    pub fn drain(&mut self) -> impl Iterator<Item = M> + '_ {
        self.msgs.drain(..)
    }
}

/// A coordinator→sites message with its addressing mode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DownMsg<M> {
    /// Deliver to a single site. Charged as one message.
    Unicast(SiteId, M),
    /// Deliver to every site. Charged as `k` messages.
    Broadcast(M),
    /// Deliver to every site, flagged as a report request. Charged as `k`
    /// messages; kept distinct from `Broadcast` so experiments can report
    /// the §3.1 "k in requests + k replies" breakdown.
    Request(M),
}

/// Buffer of coordinator→site messages produced during one activation.
#[derive(Debug)]
pub struct CoordOutbox<M> {
    msgs: Vec<DownMsg<M>>,
}

impl<M> Default for CoordOutbox<M> {
    fn default() -> Self {
        CoordOutbox { msgs: Vec::new() }
    }
}

impl<M> CoordOutbox<M> {
    /// Create an empty outbox.
    pub fn new() -> Self {
        Self::default()
    }

    /// Queue a unicast to `site`.
    pub fn unicast(&mut self, site: SiteId, msg: M) {
        self.msgs.push(DownMsg::Unicast(site, msg));
    }

    /// Queue a broadcast to all sites.
    pub fn broadcast(&mut self, msg: M) {
        self.msgs.push(DownMsg::Broadcast(msg));
    }

    /// Queue a request to all sites (sites are expected to reply).
    pub fn request(&mut self, msg: M) {
        self.msgs.push(DownMsg::Request(msg));
    }

    /// Number of queued operations (a broadcast counts once here).
    pub fn len(&self) -> usize {
        self.msgs.len()
    }

    /// Whether no operations are queued.
    pub fn is_empty(&self) -> bool {
        self.msgs.is_empty()
    }

    /// Drain all queued operations.
    pub fn drain(&mut self) -> impl Iterator<Item = DownMsg<M>> + '_ {
        self.msgs.drain(..)
    }
}

/// One consolidated entry of an item-stream run: a distinct item, the net
/// delta of all its raw updates, and how many raw updates it summarizes.
///
/// Produced by sort-and-merge consolidation of a `(item, ±1)` run (entries
/// are sorted by `item`), consumed by
/// [`SiteNode::absorb_quiet_merged`]. `count` bounds the worst-case
/// excursion any counter touched by `item` can see while the run plays
/// out, which is what lets a site absorb net deltas without replaying
/// every raw update.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MergedEntry {
    /// The distinct item.
    pub item: u64,
    /// Net delta summed over all raw updates of this item.
    pub net: i64,
    /// Number of raw updates merged into this entry.
    pub count: u32,
}

/// Per-site half of a distributed tracking protocol.
pub trait SiteNode {
    /// Stream update payload: `i64` for counting problems (the increment
    /// `f'(t)`), `(u64, i64)` for item-frequency problems (item, ±1).
    /// `Copy` so batched ingestion can replay slices of inputs.
    type In: Copy;
    /// Site → coordinator payload.
    type Up: WireSize;
    /// Coordinator → site payload.
    type Down: WireSize;

    /// A stream update arrived at this site at time `t`.
    fn on_update(&mut self, t: Time, input: Self::In, out: &mut Outbox<Self::Up>);

    /// A message from the coordinator arrived. `is_request` is true when the
    /// message was sent with [`CoordOutbox::request`] addressing; replies
    /// emitted here are charged as [`crate::MsgKind::Reply`].
    fn on_down(&mut self, t: Time, msg: &Self::Down, is_request: bool, out: &mut Outbox<Self::Up>);

    /// Bulk-ingestion fast path used by [`crate::sim::StarSim::step_batch`]:
    /// absorb the longest prefix of `inputs` — consecutive stream updates
    /// all arriving at **this** site at times `t0 + 1, t0 + 2, ...` — that
    /// provably emits **no** message, and return its length.
    ///
    /// Overrides must be bit-identical to the per-update path: apply
    /// exactly the state changes the equivalent [`on_update`](Self::on_update)
    /// calls would have applied, stop *before* the first potentially
    /// message-emitting update (the simulator replays it through the
    /// ordinary per-update machinery), and consume no randomness for
    /// un-absorbed inputs. Absorbed steps advance simulated time but skip
    /// [`CoordinatorNode::on_step_end`]; protocols that rely on that hook
    /// must not override this method. The default absorbs nothing, which
    /// keeps every protocol on the exact per-update path.
    fn absorb_quiet(&mut self, _t0: Time, _inputs: &[Self::In]) -> usize {
        0
    }

    /// Run-length variant of [`absorb_quiet`](Self::absorb_quiet): absorb up
    /// to `n` consecutive copies of the same input `v` and return how many
    /// were absorbed. Consolidated ingestion compresses a same-site run into
    /// `(value, count)` segments and drives each segment through this hook,
    /// so protocols with closed-form quiet conditions (a band the running
    /// sum must stay inside) can absorb a whole segment in O(1).
    ///
    /// The same exactness contract as `absorb_quiet` applies, and the two
    /// must agree: absorbing `m ≤ n` copies here must leave the state
    /// bit-identical to `absorb_quiet` over an `m`-long slice of `v`s.
    /// Under-absorption is always safe — the simulator replays the next
    /// copy through the per-update path and retries the remainder.
    ///
    /// The default expands the run into stack-buffered chunks and feeds
    /// them to `absorb_quiet`, which is exact for every protocol (chunk
    /// splitting cannot change what a quiet-prefix scan absorbs: thresholds
    /// are constant between messages, so
    /// `absorb_quiet(a ++ b) = absorb_quiet(a); absorb_quiet(b)` whenever
    /// `a` is fully absorbed).
    fn absorb_quiet_run(&mut self, t0: Time, v: Self::In, n: u64) -> u64 {
        let mut done = 0u64;
        while done < n {
            let want = (n - done).min(64) as usize;
            let buf = [v; 64];
            let got = self.absorb_quiet(t0 + done, &buf[..want]) as u64;
            done += got;
            if (got as usize) < want {
                break;
            }
        }
        done
    }

    /// Merged-duplicates variant of [`absorb_quiet`](Self::absorb_quiet)
    /// for item streams: `raw` is the original update run and `merged` is
    /// its consolidation — one entry per distinct item, sorted by item,
    /// carrying the net delta and the number of raw updates it summarizes.
    ///
    /// An override may absorb the **whole** run by applying per-item net
    /// deltas when it can prove every raw update was quiet in order (a
    /// worst-case excursion check suffices), and must otherwise fall back
    /// to an exact path. Returning `m < raw.len()` means exactly the first
    /// `m` raw updates were absorbed with bit-identical state effects; the
    /// simulator replays the rest per-update. The default ignores `merged`
    /// and defers to `absorb_quiet` on `raw`, which is always exact.
    fn absorb_quiet_merged(
        &mut self,
        t0: Time,
        raw: &[Self::In],
        _merged: &[MergedEntry],
    ) -> usize {
        self.absorb_quiet(t0, raw)
    }

    /// Serialize this site's dynamic protocol state (drifts, counters,
    /// pending thresholds, RNG stream) into `enc` and return `true` — the
    /// snapshot/restore seam. Configuration that a fresh construction
    /// re-derives (ε, `k`, sketch shapes) is **not** serialized; restore
    /// targets a node built with the same parameters.
    ///
    /// The default returns `false` without writing, which makes
    /// [`crate::StarSim::save_state`] report the protocol as
    /// [`CodecError::UnsupportedNode`] — custom protocols opt in by
    /// overriding this and [`load_state`](Self::load_state) together.
    fn save_state(&self, enc: &mut Enc) -> bool {
        let _ = enc;
        false
    }

    /// Restore the state written by [`save_state`](Self::save_state) into
    /// this (same-configuration) node. Must consume the payload exactly
    /// and must validate every shape it depends on (vector lengths, ...)
    /// with typed [`CodecError`]s rather than panicking.
    fn load_state(&mut self, dec: &mut Dec) -> Result<(), CodecError> {
        let _ = dec;
        Err(CodecError::UnsupportedNode)
    }
}

/// Coordinator half of a distributed tracking protocol.
pub trait CoordinatorNode {
    /// Site → coordinator payload (must match the sites').
    type Up: WireSize;
    /// Coordinator → site payload (must match the sites').
    type Down: WireSize;

    /// A message from `site` arrived at time `t`.
    fn on_up(&mut self, t: Time, site: SiteId, msg: Self::Up, out: &mut CoordOutbox<Self::Down>);

    /// The timestep is about to end (all messages delivered, network
    /// quiescent). Most protocols do nothing here; it exists so protocols
    /// can assert end-of-step invariants.
    fn on_step_end(&mut self, _t: Time) {}

    /// Current estimate `f̂(n)` held at the coordinator.
    fn estimate(&self) -> i64;

    /// Serialize the coordinator's dynamic state; see
    /// [`SiteNode::save_state`] for the contract (the default opts out).
    fn save_state(&self, enc: &mut Enc) -> bool {
        let _ = enc;
        false
    }

    /// Restore the state written by [`save_state`](Self::save_state); see
    /// [`SiteNode::load_state`] for the contract.
    fn load_state(&mut self, dec: &mut Dec) -> Result<(), CodecError> {
        let _ = dec;
        Err(CodecError::UnsupportedNode)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outbox_send_and_drain() {
        let mut ob: Outbox<i64> = Outbox::new();
        assert!(ob.is_empty());
        ob.send(1);
        ob.send(2);
        assert_eq!(ob.len(), 2);
        let got: Vec<i64> = ob.drain().collect();
        assert_eq!(got, vec![1, 2]);
        assert!(ob.is_empty());
    }

    #[test]
    fn coord_outbox_addressing_modes() {
        let mut ob: CoordOutbox<u64> = CoordOutbox::new();
        ob.unicast(2, 10);
        ob.broadcast(20);
        ob.request(30);
        let got: Vec<DownMsg<u64>> = ob.drain().collect();
        assert_eq!(
            got,
            vec![
                DownMsg::Unicast(2, 10),
                DownMsg::Broadcast(20),
                DownMsg::Request(30)
            ]
        );
    }
}
