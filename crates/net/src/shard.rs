//! Shard-to-coordinator accounting for batched execution engines.
//!
//! The sharded engine (`dsv-engine`) partitions one update stream across
//! `S` shard replicas and reconciles them into a coordinator-side global
//! estimate at batch boundaries. That reconciliation is communication in
//! exactly the paper's currency: a shard whose estimate changed during the
//! batch sends its new estimate up, one word, charged as an ordinary
//! [`crate::MsgKind::Up`] message; shards whose estimate did not change
//! send nothing (the coordinator's cached copy is still exact). This
//! module defines that wire message so engine-level traffic lands in the
//! same [`crate::CommStats`] ledger as in-protocol traffic and the two can
//! be compared or summed.

use crate::message::WireSize;

/// A shard's batch-boundary report: its current local estimate.
///
/// Sent shard → coordinator only when the estimate changed since the last
/// report, so a stream whose shards are individually lazy (monotone
/// counters, low-variability walks) stays cheap at the engine layer too.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardReport {
    /// Which shard is reporting (addressing, like `SiteId` in the star
    /// network — not charged as payload).
    pub shard: usize,
    /// The shard replica's current estimate of its partial stream.
    pub estimate: i64,
}

impl WireSize for ShardReport {
    fn words(&self) -> usize {
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::CommStats;
    use crate::MsgKind;

    #[test]
    fn shard_report_is_one_word_and_charges_as_up() {
        let msg = ShardReport {
            shard: 3,
            estimate: -42,
        };
        assert_eq!(msg.words(), 1);
        let mut stats = CommStats::new();
        stats.charge(MsgKind::Up, msg.words());
        assert_eq!(stats.total_messages(), 1);
        assert_eq!(stats.total_words(), 1);
        assert_eq!(stats.upward_messages(), 1);
    }
}
