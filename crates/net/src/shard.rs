//! Shard-to-coordinator accounting for batched execution engines.
//!
//! The sharded engine (`dsv-engine`) partitions one update stream across
//! `S` shard replicas and reconciles them into a coordinator-side global
//! estimate at batch boundaries. That reconciliation is communication in
//! exactly the paper's currency: a shard whose estimate changed during the
//! batch sends its new estimate up, one word, charged as an ordinary
//! [`crate::MsgKind::Up`] message; shards whose estimate did not change
//! send nothing (the coordinator's cached copy is still exact). This
//! module defines that wire message so engine-level traffic lands in the
//! same [`crate::CommStats`] ledger as in-protocol traffic and the two can
//! be compared or summed.

use crate::message::WireSize;

/// A shard's batch-boundary report: its current local estimate.
///
/// Sent shard → coordinator only when the estimate changed since the last
/// report, so a stream whose shards are individually lazy (monotone
/// counters, low-variability walks) stays cheap at the engine layer too.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardReport {
    /// Which shard is reporting (addressing, like `SiteId` in the star
    /// network — not charged as payload).
    pub shard: usize,
    /// The shard replica's current estimate of its partial stream.
    pub estimate: i64,
}

impl WireSize for ShardReport {
    fn words(&self) -> usize {
        1
    }
}

/// A shard's serialized tracker state in flight to the coordinator (or to
/// stable storage) during an engine checkpoint.
///
/// Externalizing state is communication in the model's currency too:
/// shipping a `w`-word snapshot off a worker costs `w` words on the wire,
/// charged as one [`crate::MsgKind::Up`] message. The engine charges these
/// frames to a dedicated checkpoint ledger, **separate** from the
/// in-protocol and merge ledgers, so checkpointing never perturbs the
/// ledgers the equivalence guarantee is stated over (a resumed run must
/// reproduce an uninterrupted run's tracker and merge traffic exactly).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StateFrame {
    /// Which shard's state is being shipped.
    pub shard: usize,
    /// Snapshot payload size in words (one word = 8 payload bytes,
    /// rounded up).
    pub words: usize,
}

impl StateFrame {
    /// The frame for a `bytes`-byte snapshot payload of `shard`.
    pub fn for_payload(shard: usize, bytes: usize) -> Self {
        StateFrame {
            shard,
            words: bytes.div_ceil(8),
        }
    }
}

impl WireSize for StateFrame {
    fn words(&self) -> usize {
        self.words
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::CommStats;
    use crate::MsgKind;

    #[test]
    fn shard_report_is_one_word_and_charges_as_up() {
        let msg = ShardReport {
            shard: 3,
            estimate: -42,
        };
        assert_eq!(msg.words(), 1);
        let mut stats = CommStats::new();
        stats.charge(MsgKind::Up, msg.words());
        assert_eq!(stats.total_messages(), 1);
        assert_eq!(stats.total_words(), 1);
        assert_eq!(stats.upward_messages(), 1);
    }

    #[test]
    fn state_frame_words_round_up_payload_bytes() {
        assert_eq!(StateFrame::for_payload(0, 0).words(), 0);
        assert_eq!(StateFrame::for_payload(0, 1).words(), 1);
        assert_eq!(StateFrame::for_payload(0, 8).words(), 1);
        assert_eq!(StateFrame::for_payload(2, 17).words(), 3);
        let mut stats = CommStats::new();
        stats.charge(MsgKind::Up, StateFrame::for_payload(2, 17).words());
        assert_eq!(stats.total_words(), 3);
    }
}
