//! Feeder-to-shard accounting for pipelined ingestion.
//!
//! The pipelined engine (`dsv-engine::ingest`) decouples stream
//! production from shard execution: feeder threads push inputs into
//! bounded per-shard queues, and workers drain their own queues while the
//! coordinator reconciles the previous batch boundary. Moving inputs onto
//! a shard's queue is communication in the model's currency — a chunk of
//! `n` inputs shipped feeder → worker costs `n · w` words for `w`-word
//! inputs — and the *shape* of that traffic (how often producers stalled
//! on a full queue, how full the queues ran) is exactly what the paper's
//! asynchronous-sites story is about. This module defines the wire frame
//! for that traffic ([`FeedFrame`]) and the ledger it is charged to
//! ([`IngestStats`]), kept **separate** from [`crate::CommStats`] so
//! pipelining never perturbs the in-protocol and merge ledgers the
//! engine's equivalence guarantee is stated over.

use crate::message::WireSize;

/// A chunk of stream inputs in flight from a feeder to a shard worker's
/// queue: one `push` / `push_batch` call's payload.
///
/// Sized like every other message of the model: `items · words_per_item`
/// words (a counter input `i64` is one word, an item input `(u64, i64)`
/// two). Addressing (`feed`) is not charged, matching `SiteId` in the
/// star network and `shard` in [`crate::ShardReport`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FeedFrame {
    /// Which feed (queue) the chunk was pushed into.
    pub feed: usize,
    /// Inputs carried by this frame.
    pub items: usize,
    /// Payload size in words.
    pub words: usize,
}

impl FeedFrame {
    /// The frame for a chunk of `items` inputs of `words_per_item` words
    /// each, pushed into `feed`.
    pub fn for_chunk(feed: usize, items: usize, words_per_item: usize) -> Self {
        FeedFrame {
            feed,
            items,
            words: items * words_per_item,
        }
    }

    /// The frame for a *keyed* chunk: `items` inputs of `words_per_item`
    /// words each, where every input additionally ships its routing key
    /// as one extra word. This is the multi-tenant fleet's ingestion
    /// currency — a keyed delta is `(key, input)` on the wire, and the
    /// key is payload (the receiver needs it to route within the shard),
    /// unlike the un-charged `feed` address.
    pub fn for_keyed_chunk(feed: usize, items: usize, words_per_item: usize) -> Self {
        FeedFrame {
            feed,
            items,
            words: items * (words_per_item + 1),
        }
    }
}

impl WireSize for FeedFrame {
    fn words(&self) -> usize {
        self.words
    }
}

/// The pipelined-ingestion ledger: feeder → queue traffic, backpressure
/// stalls, and queue occupancy.
///
/// One ledger aggregates every queue of an engine run (and accumulates
/// across runs, like the engine's other ledgers). Frames, items, and
/// words are deterministic for a given push schedule; stalls, waits, and
/// occupancy are *timing-dependent* diagnostics — they measure how the
/// pipeline actually ran, and are deliberately excluded from the
/// bit-identity contract the equivalence tests enforce. Fields are plain
/// counters so execution layers can fold raw (e.g. atomic) tallies in
/// directly; [`merge`](Self::merge) folds whole ledgers.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IngestStats {
    /// Frames pushed (one per `push` / `push_batch` call).
    pub frames: u64,
    /// Inputs shipped across all frames.
    pub items: u64,
    /// Words shipped across all frames ([`FeedFrame::words`] summed).
    pub words: u64,
    /// Pushes that stalled on a full queue (once per stalled call).
    pub push_stalls: u64,
    /// Round drains that waited on an empty queue.
    pub pop_waits: u64,
    /// Sum of sampled queue occupancies (resident inputs per frame push).
    pub occupancy_sum: u64,
    /// Occupancy samples taken (= frames pushed).
    pub occupancy_samples: u64,
    /// Highest queue occupancy observed at any sample.
    pub high_water: u64,
    /// Inputs still resident in a queue when its run tore down — only
    /// possible when a feed handle was stashed past its feeder's
    /// lifetime and raced the engine's force-close. Normal runs (handles
    /// closed or dropped by the feeder) always drain to zero.
    pub dropped: u64,
}

impl IngestStats {
    /// An empty ledger.
    pub fn new() -> Self {
        IngestStats::default()
    }

    /// Charge one [`FeedFrame`] (one `push` / `push_batch` call),
    /// sampling the queue occupancy observed as the frame was pushed.
    pub fn charge_frame(&mut self, frame: &FeedFrame, occupancy: u64) {
        self.frames += 1;
        self.items += frame.items as u64;
        self.words += frame.words() as u64;
        self.occupancy_sum += occupancy;
        self.occupancy_samples += 1;
        if occupancy > self.high_water {
            self.high_water = occupancy;
        }
    }

    /// Mean queue occupancy over all samples (0 when nothing was sampled).
    pub fn mean_occupancy(&self) -> f64 {
        if self.occupancy_samples == 0 {
            0.0
        } else {
            self.occupancy_sum as f64 / self.occupancy_samples as f64
        }
    }

    /// Fold another ledger into this one (high-water is the max; the
    /// occupancy mean re-weights by sample count).
    pub fn merge(&mut self, other: &IngestStats) {
        self.frames += other.frames;
        self.items += other.items;
        self.words += other.words;
        self.push_stalls += other.push_stalls;
        self.pop_waits += other.pop_waits;
        self.occupancy_sum += other.occupancy_sum;
        self.occupancy_samples += other.occupancy_samples;
        if other.high_water > self.high_water {
            self.high_water = other.high_water;
        }
        self.dropped += other.dropped;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feed_frame_words_scale_with_item_width() {
        assert_eq!(FeedFrame::for_chunk(0, 100, 1).words(), 100);
        assert_eq!(FeedFrame::for_chunk(3, 100, 2).words(), 200);
        assert_eq!(FeedFrame::for_chunk(3, 0, 2).words(), 0);
    }

    #[test]
    fn keyed_frames_charge_one_extra_word_per_input() {
        // A keyed counter delta is (key, i64): two words on the wire.
        assert_eq!(FeedFrame::for_keyed_chunk(0, 100, 1).words(), 200);
        // A keyed item delta is (key, (item, i64)): three words.
        assert_eq!(FeedFrame::for_keyed_chunk(2, 100, 2).words(), 300);
        assert_eq!(FeedFrame::for_keyed_chunk(2, 0, 2).words(), 0);
        assert_eq!(FeedFrame::for_keyed_chunk(7, 5, 1).items, 5);
    }

    #[test]
    fn ledger_accumulates_and_merges() {
        let mut a = IngestStats::new();
        a.charge_frame(&FeedFrame::for_chunk(0, 10, 1), 4);
        a.charge_frame(&FeedFrame::for_chunk(1, 5, 2), 8);
        a.push_stalls += 1;
        assert_eq!(a.frames, 2);
        assert_eq!(a.items, 15);
        assert_eq!(a.words, 20);
        assert_eq!(a.push_stalls, 1);
        assert_eq!(a.pop_waits, 0);
        assert!((a.mean_occupancy() - 6.0).abs() < 1e-12);
        assert_eq!(a.high_water, 8);

        let mut b = IngestStats::new();
        b.charge_frame(&FeedFrame::for_chunk(2, 1, 1), 20);
        b.pop_waits += 1;
        b.merge(&a);
        assert_eq!(b.frames, 3);
        assert_eq!(b.items, 16);
        assert_eq!(b.pop_waits, 1);
        assert_eq!(b.high_water, 20);
        assert_eq!(b.occupancy_samples, 3);
        assert!(IngestStats::new().mean_occupancy() == 0.0);
    }
}
