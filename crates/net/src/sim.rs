//! Synchronous star-network simulator.
//!
//! [`StarSim`] owns `k` site nodes and one coordinator node and executes the
//! distributed monitoring model: per timestep, one update arrives at one
//! site; all messages it triggers are delivered in rounds within the same
//! timestep until the network quiesces. Every delivery is charged to the
//! [`CommStats`] ledger and optionally recorded in a transcript.

use crate::codec::{CodecError, Dec, Enc};
use crate::message::{MsgKind, MsgRecord, WireSize, ALL_SITES};
use crate::protocol::{CoordOutbox, CoordinatorNode, DownMsg, Outbox, SiteNode};
use crate::stats::CommStats;
use crate::{SiteId, Time};

/// Default cap on delivery rounds within one timestep. A correct protocol in
/// this codebase needs at most 3 rounds (update → report → request → reply →
/// broadcast); hitting the cap indicates a protocol bug, so the simulator
/// panics rather than looping forever.
pub const DEFAULT_MAX_ROUNDS: usize = 16;

/// The star-network simulator. `S` is the per-site protocol state, `C` the
/// coordinator state; their payload types must agree.
#[derive(Debug)]
pub struct StarSim<S, C>
where
    S: SiteNode,
    C: CoordinatorNode<Up = S::Up, Down = S::Down>,
{
    sites: Vec<S>,
    coord: C,
    stats: CommStats,
    transcript: Option<Vec<MsgRecord>>,
    time: Time,
    max_rounds: usize,
    // Reused buffers to keep the hot loop allocation-free.
    pending_up: Vec<(SiteId, S::Up, MsgKind)>,
    next_up: Vec<(SiteId, S::Up, MsgKind)>,
}

impl<S, C> StarSim<S, C>
where
    S: SiteNode,
    C: CoordinatorNode<Up = S::Up, Down = S::Down>,
{
    /// Build a simulator from pre-constructed site and coordinator states.
    ///
    /// Panics on an empty site vector; use [`StarSim::try_new`] for a
    /// typed error instead.
    pub fn new(sites: Vec<S>, coord: C) -> Self {
        Self::try_new(sites, coord).expect("need at least one site")
    }

    /// Checked constructor: requires at least one site.
    pub fn try_new(sites: Vec<S>, coord: C) -> Result<Self, crate::runner::ConfigError> {
        if sites.is_empty() {
            return Err(crate::runner::ConfigError::ZeroSites);
        }
        Ok(StarSim {
            sites,
            coord,
            stats: CommStats::new(),
            transcript: None,
            time: 0,
            max_rounds: DEFAULT_MAX_ROUNDS,
            pending_up: Vec::new(),
            next_up: Vec::new(),
        })
    }

    /// Build a simulator with `k` identical sites produced by `make_site`.
    pub fn with_k(k: usize, mut make_site: impl FnMut(SiteId) -> S, coord: C) -> Self {
        Self::new((0..k).map(&mut make_site).collect(), coord)
    }

    /// Number of sites `k`.
    pub fn k(&self) -> usize {
        self.sites.len()
    }

    /// Current simulated time (number of updates consumed).
    pub fn time(&self) -> Time {
        self.time
    }

    /// Communication ledger.
    pub fn stats(&self) -> &CommStats {
        &self.stats
    }

    /// Coordinator state (read-only).
    pub fn coordinator(&self) -> &C {
        &self.coord
    }

    /// Site states (read-only).
    pub fn sites(&self) -> &[S] {
        &self.sites
    }

    /// Begin recording a transcript of every charged message. Used by the
    /// tracing-problem experiments (§4 / Appendix D).
    pub fn enable_transcript(&mut self) {
        if self.transcript.is_none() {
            self.transcript = Some(Vec::new());
        }
    }

    /// The recorded transcript, if [`enable_transcript`](Self::enable_transcript)
    /// was called.
    pub fn transcript(&self) -> Option<&[MsgRecord]> {
        self.transcript.as_deref()
    }

    /// Override the per-timestep delivery round cap.
    pub fn set_max_rounds(&mut self, rounds: usize) {
        assert!(rounds >= 1);
        self.max_rounds = rounds;
    }

    /// Current coordinator estimate `f̂`.
    pub fn estimate(&self) -> i64 {
        self.coord.estimate()
    }

    /// Serialize the simulator's full dynamic state — simulated time, the
    /// [`CommStats`] ledger, and every node's protocol state (each as a
    /// length-prefixed blob) — into `enc`.
    ///
    /// Returns [`CodecError::UnsupportedNode`] if the protocol pair keeps
    /// the default [`SiteNode::save_state`] /
    /// [`CoordinatorNode::save_state`]. Transcripts are not captured; a
    /// restored simulator starts with transcript recording disabled.
    /// Snapshots are taken between timesteps, when the network is
    /// quiescent — which is the only state a caller can observe — so the
    /// in-flight message buffers are never part of the state.
    pub fn save_state(&self, enc: &mut Enc) -> Result<(), CodecError> {
        enc.usize(self.sites.len());
        enc.u64(self.time);
        self.stats.encode(enc);
        let mut sub = Enc::new();
        if !self.coord.save_state(&mut sub) {
            return Err(CodecError::UnsupportedNode);
        }
        enc.blob(sub.as_bytes());
        for site in &self.sites {
            let mut sub = Enc::new();
            if !site.save_state(&mut sub) {
                return Err(CodecError::UnsupportedNode);
            }
            enc.blob(sub.as_bytes());
        }
        Ok(())
    }

    /// Restore state written by [`save_state`](Self::save_state) into this
    /// simulator, which must have been built with the same configuration
    /// (same `k`, same protocol parameters).
    ///
    /// On error the simulator may have been partially overwritten and
    /// should be discarded; the `TrackerSpec::resume` front door in
    /// `dsv-core` always restores into a freshly built tracker, which it
    /// drops on failure.
    pub fn load_state(&mut self, dec: &mut Dec) -> Result<(), CodecError> {
        let k = dec.usize()?;
        if k != self.sites.len() {
            return Err(CodecError::Mismatch {
                what: "site count k",
                expected: self.sites.len() as u64,
                found: k as u64,
            });
        }
        let time = dec.u64()?;
        let stats = CommStats::decode(dec)?;
        let mut sub = Dec::new(dec.blob()?);
        self.coord.load_state(&mut sub)?;
        sub.finish()?;
        for site in &mut self.sites {
            let mut sub = Dec::new(dec.blob()?);
            site.load_state(&mut sub)?;
            sub.finish()?;
        }
        self.time = time;
        self.stats = stats;
        self.pending_up.clear();
        self.next_up.clear();
        Ok(())
    }

    fn record(&mut self, kind: MsgKind, site: SiteId, words: usize) {
        if let Some(tr) = self.transcript.as_mut() {
            tr.push(MsgRecord {
                time: self.time,
                kind,
                site,
                words,
            });
        }
    }

    /// Feed one stream update: `input` arrives at `site`. Runs the protocol
    /// to quiescence and returns the coordinator's estimate afterwards.
    pub fn step(&mut self, site: SiteId, input: S::In) -> i64 {
        assert!(site < self.sites.len(), "site {site} out of range");
        self.step_core(site, input);
        self.coord.estimate()
    }

    /// Feed a batch of stream updates — `(site, input)` pairs in arrival
    /// order — and return the coordinator's estimate after the whole batch.
    ///
    /// Semantically identical to calling [`step`](Self::step) once per
    /// element (bit-identical protocol state, [`CommStats`] ledger,
    /// transcript, and simulated time), but amortizes the per-update
    /// simulator overhead: the coordinator's estimate is read once at the
    /// end, and runs of same-site updates are offered to the site's
    /// [`SiteNode::absorb_quiet`] fast path, which lets hot protocols skip
    /// the delivery machinery entirely for message-free stretches.
    pub fn step_batch(&mut self, batch: &[(SiteId, S::In)]) -> i64 {
        let mut run: Vec<S::In> = Vec::new();
        let mut i = 0;
        while i < batch.len() {
            let site = batch[i].0;
            assert!(site < self.sites.len(), "site {site} out of range");
            let mut j = i + 1;
            while j < batch.len() && batch[j].0 == site {
                j += 1;
            }
            run.clear();
            run.extend(batch[i..j].iter().map(|&(_, input)| input));
            self.step_run(site, &run);
            i = j;
        }
        self.coord.estimate()
    }

    /// Feed a run of stream updates that all arrive at `site`, in order,
    /// and return the coordinator's estimate afterwards.
    ///
    /// The zero-copy core of [`step_batch`](Self::step_batch) (same
    /// bit-identity guarantee), exposed so callers that already hold
    /// contiguous per-site inputs — the site-affine sharded engine — can
    /// skip the run-splitting pass entirely.
    pub fn step_run(&mut self, site: SiteId, inputs: &[S::In]) -> i64 {
        assert!(site < self.sites.len(), "site {site} out of range");
        let mut done = 0;
        while done < inputs.len() {
            let absorbed = self.sites[site].absorb_quiet(self.time, &inputs[done..]);
            debug_assert!(
                absorbed <= inputs.len() - done,
                "absorb_quiet overran its input"
            );
            self.time += absorbed as Time;
            done += absorbed;
            if done < inputs.len() {
                self.step_core(site, inputs[done]);
                done += 1;
            }
        }
        self.coord.estimate()
    }

    /// Run-length-encoded variant of [`step_run`](Self::step_run): deliver
    /// a same-site run given as `(value, count)` segments. Each segment is
    /// driven through [`SiteNode::absorb_quiet_run`], with any un-absorbed
    /// copy replayed on the ordinary per-update path — bit-identical to
    /// `step_run` on the expanded slice (segment splitting cannot change a
    /// quiet-prefix scan: thresholds are constant between messages).
    pub fn step_run_rle(&mut self, site: SiteId, segs: &[(S::In, u32)]) -> i64 {
        assert!(site < self.sites.len(), "site {site} out of range");
        for &(v, c) in segs {
            let mut left = c as u64;
            while left > 0 {
                let absorbed = self.sites[site].absorb_quiet_run(self.time, v, left);
                debug_assert!(absorbed <= left, "absorb_quiet_run overran its segment");
                self.time += absorbed as Time;
                left -= absorbed;
                if left > 0 {
                    self.step_core(site, v);
                    left -= 1;
                }
            }
        }
        self.coord.estimate()
    }

    /// Merged-duplicates variant of [`step_run`](Self::step_run) for item
    /// streams: `raw` is the original run, `merged` its sorted per-item
    /// consolidation. Offers the whole run to
    /// [`SiteNode::absorb_quiet_merged`]; whatever is not absorbed falls
    /// back to [`step_run`](Self::step_run) on the raw remainder, so the
    /// result is bit-identical to `step_run(site, raw)`.
    pub fn step_run_merged(
        &mut self,
        site: SiteId,
        raw: &[S::In],
        merged: &[crate::MergedEntry],
    ) -> i64 {
        assert!(site < self.sites.len(), "site {site} out of range");
        let absorbed = self.sites[site].absorb_quiet_merged(self.time, raw, merged);
        debug_assert!(
            absorbed <= raw.len(),
            "absorb_quiet_merged overran its input"
        );
        self.time += absorbed as Time;
        if absorbed < raw.len() {
            // Deliver the first loud update before any further absorb
            // call: a partial absorb may have parked per-update state
            // (e.g. sampling draws) that only `on_update` consumes.
            self.step_core(site, raw[absorbed]);
            if absorbed + 1 < raw.len() {
                return self.step_run(site, &raw[absorbed + 1..]);
            }
        }
        self.coord.estimate()
    }

    /// The per-update protocol body shared by [`step`](Self::step) and
    /// [`step_batch`](Self::step_batch): deliver the update and run the
    /// network to quiescence, without reading the estimate.
    fn step_core(&mut self, site: SiteId, input: S::In) {
        self.time += 1;
        let t = self.time;

        let mut site_out: Outbox<S::Up> = Outbox::new();
        self.sites[site].on_update(t, input, &mut site_out);
        debug_assert!(self.pending_up.is_empty());
        for msg in site_out.drain() {
            self.pending_up.push((site, msg, MsgKind::Up));
        }

        let mut rounds = 0usize;
        while !self.pending_up.is_empty() {
            rounds += 1;
            assert!(
                rounds <= self.max_rounds,
                "protocol did not quiesce within {} rounds at t={t} — \
                 likely a message loop between sites and coordinator",
                self.max_rounds
            );

            // Deliver site → coordinator messages.
            let mut coord_out: CoordOutbox<S::Down> = CoordOutbox::new();
            let mut ups = std::mem::take(&mut self.pending_up);
            for (sid, msg, kind) in ups.drain(..) {
                let words = msg.words();
                self.stats.charge(kind, words);
                self.record(kind, sid, words);
                self.coord.on_up(t, sid, msg, &mut coord_out);
            }
            self.pending_up = ups; // return the (now empty) buffer

            // Deliver coordinator → site messages; collect replies.
            debug_assert!(self.next_up.is_empty());
            for down in coord_out.drain() {
                match down {
                    DownMsg::Unicast(sid, m) => {
                        let words = m.words();
                        self.stats.charge(MsgKind::Unicast, words);
                        self.record(MsgKind::Unicast, sid, words);
                        let mut out: Outbox<S::Up> = Outbox::new();
                        self.sites[sid].on_down(t, &m, false, &mut out);
                        for up in out.drain() {
                            self.next_up.push((sid, up, MsgKind::Up));
                        }
                    }
                    DownMsg::Broadcast(m) => {
                        let words = m.words();
                        let k = self.sites.len();
                        self.stats.charge_fanout(MsgKind::Broadcast, k, words);
                        self.record(MsgKind::Broadcast, ALL_SITES, words);
                        for sid in 0..k {
                            let mut out: Outbox<S::Up> = Outbox::new();
                            self.sites[sid].on_down(t, &m, false, &mut out);
                            for up in out.drain() {
                                self.next_up.push((sid, up, MsgKind::Up));
                            }
                        }
                    }
                    DownMsg::Request(m) => {
                        let words = m.words();
                        let k = self.sites.len();
                        self.stats.charge_fanout(MsgKind::Request, k, words);
                        self.record(MsgKind::Request, ALL_SITES, words);
                        for sid in 0..k {
                            let mut out: Outbox<S::Up> = Outbox::new();
                            self.sites[sid].on_down(t, &m, true, &mut out);
                            for up in out.drain() {
                                self.next_up.push((sid, up, MsgKind::Reply));
                            }
                        }
                    }
                }
            }
            std::mem::swap(&mut self.pending_up, &mut self.next_up);
        }

        self.coord.on_step_end(t);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Toy protocol: every site forwards every update; the coordinator sums
    /// them (exact tracking with n messages) and acknowledges every 4th
    /// update with a broadcast, exercising all delivery paths.
    struct EchoSite {
        acks_seen: u64,
    }
    struct EchoCoord {
        sum: i64,
        ups: u64,
    }

    impl SiteNode for EchoSite {
        type In = i64;
        type Up = i64;
        type Down = i64;
        fn on_update(&mut self, _t: Time, delta: i64, out: &mut Outbox<i64>) {
            out.send(delta);
        }
        fn on_down(&mut self, _t: Time, msg: &i64, is_request: bool, out: &mut Outbox<i64>) {
            if is_request {
                out.send(self.acks_seen as i64);
            } else {
                self.acks_seen += 1;
                let _ = msg;
            }
        }
    }

    impl CoordinatorNode for EchoCoord {
        type Up = i64;
        type Down = i64;
        fn on_up(&mut self, _t: Time, _site: SiteId, msg: i64, out: &mut CoordOutbox<i64>) {
            // Replies to our periodic request carry acks_seen >= 0 and are
            // distinguishable because they arrive after the ack broadcast;
            // for this toy protocol we just count spontaneous updates.
            self.sum += msg;
            self.ups += 1;
            if self.ups.is_multiple_of(4) {
                out.broadcast(self.sum);
            }
        }
        fn estimate(&self) -> i64 {
            self.sum
        }
    }

    fn echo_sim(k: usize) -> StarSim<EchoSite, EchoCoord> {
        StarSim::with_k(
            k,
            |_| EchoSite { acks_seen: 0 },
            EchoCoord { sum: 0, ups: 0 },
        )
    }

    #[test]
    fn echo_tracks_exactly() {
        let mut sim = echo_sim(4);
        let mut f = 0i64;
        for t in 0..100 {
            let delta = if t % 3 == 0 { -1 } else { 1 };
            f += delta;
            let est = sim.step(t % 4, delta);
            // The coordinator double-counts replies in `sum` only if a
            // request was issued; this toy protocol never requests, so the
            // estimate is exact.
            assert_eq!(est, f, "estimate must be exact at t={t}");
        }
        assert_eq!(sim.time(), 100);
    }

    #[test]
    fn echo_message_accounting() {
        let k = 4;
        let mut sim = echo_sim(k);
        for t in 0..100u64 {
            sim.step((t % k as u64) as usize, 1);
        }
        let s = sim.stats();
        assert_eq!(s.messages_of(MsgKind::Up), 100);
        // One broadcast op per 4 updates, each charged as k messages.
        assert_eq!(s.broadcast_ops(), 25);
        assert_eq!(s.messages_of(MsgKind::Broadcast), 25 * k as u64);
        assert_eq!(s.total_messages(), 100 + 25 * k as u64);
    }

    #[test]
    fn transcript_records_every_message() {
        let mut sim = echo_sim(2);
        sim.enable_transcript();
        for t in 0..8u64 {
            sim.step((t % 2) as usize, 1);
        }
        let tr = sim.transcript().unwrap();
        // 8 ups + 2 broadcast records (broadcast recorded once per op).
        assert_eq!(tr.len(), 8 + 2);
        assert!(tr.iter().filter(|r| r.kind == MsgKind::Up).count() == 8);
        assert!(tr
            .iter()
            .filter(|r| r.kind == MsgKind::Broadcast)
            .all(|r| r.site == ALL_SITES));
        // Times are non-decreasing.
        assert!(tr.windows(2).all(|w| w[0].time <= w[1].time));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn step_rejects_bad_site() {
        let mut sim = echo_sim(2);
        sim.step(5, 1);
    }

    #[test]
    fn step_batch_is_bit_identical_to_per_update_steps() {
        let batch: Vec<(SiteId, i64)> = (0..200u64)
            .map(|t| ((t % 3) as usize, if t % 5 == 0 { -1 } else { 1 }))
            .collect();
        let mut a = echo_sim(3);
        let mut last = 0;
        for &(s, d) in &batch {
            last = a.step(s, d);
        }
        let mut b = echo_sim(3);
        b.enable_transcript();
        let mut c = echo_sim(3);
        c.enable_transcript();
        for &(s, d) in &batch {
            b.step(s, d);
        }
        let est = c.step_batch(&batch);
        assert_eq!(est, last);
        assert_eq!(c.estimate(), a.estimate());
        assert_eq!(c.stats(), a.stats());
        assert_eq!(c.time(), a.time());
        assert_eq!(c.transcript(), b.transcript());
        // An empty batch is a no-op returning the current estimate.
        assert_eq!(c.step_batch(&[]), c.estimate());
        assert_eq!(c.time(), a.time());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn step_batch_rejects_bad_site() {
        let mut sim = echo_sim(2);
        sim.step_batch(&[(0, 1), (7, 1)]);
    }

    /// A site with an `absorb_quiet` override: forwards its local sum on
    /// every 4th local update, absorbing the silent ones in bulk. Verifies
    /// that the fast path stays bit-identical to per-update execution.
    struct SparseSite {
        local: i64,
        seen: u64,
    }
    impl SiteNode for SparseSite {
        type In = i64;
        type Up = i64;
        type Down = ();
        fn on_update(&mut self, _t: Time, delta: i64, out: &mut Outbox<i64>) {
            self.local += delta;
            self.seen += 1;
            if self.seen.is_multiple_of(4) {
                out.send(self.local);
            }
        }
        fn on_down(&mut self, _t: Time, _m: &(), _r: bool, _o: &mut Outbox<i64>) {}
        fn absorb_quiet(&mut self, _t0: Time, inputs: &[i64]) -> usize {
            let quiet = (3 - self.seen % 4) as usize; // updates until the next send
            let n = quiet.min(inputs.len());
            for &d in &inputs[..n] {
                self.local += d;
                self.seen += 1;
            }
            n
        }
    }
    struct LastCoord {
        last: i64,
        ups: u64,
    }
    impl CoordinatorNode for LastCoord {
        type Up = i64;
        type Down = ();
        fn on_up(&mut self, _t: Time, _s: SiteId, m: i64, _o: &mut CoordOutbox<()>) {
            self.last = m;
            self.ups += 1;
        }
        fn estimate(&self) -> i64 {
            self.last
        }
    }

    #[test]
    fn absorb_quiet_fast_path_matches_per_update_path() {
        let make = || {
            StarSim::with_k(
                2,
                |_| SparseSite { local: 0, seen: 0 },
                LastCoord { last: 0, ups: 0 },
            )
        };
        // Long same-site runs so the absorber actually gets exercised.
        let batch: Vec<(SiteId, i64)> = (0..500u64)
            .map(|t| ((t / 50 % 2) as usize, if t % 3 == 0 { -1 } else { 2 }))
            .collect();
        let mut a = make();
        for &(s, d) in &batch {
            a.step(s, d);
        }
        let mut b = make();
        let est = b.step_batch(&batch);
        assert_eq!(est, a.estimate());
        assert_eq!(b.stats(), a.stats());
        assert_eq!(b.time(), a.time());
        assert_eq!(b.coordinator().ups, a.coordinator().ups);
        // One message per 4 local updates: each site sees 250 → 62 sends.
        assert_eq!(b.stats().total_messages(), 2 * (250 / 4));
    }

    /// A protocol that ping-pongs forever must be caught by the round cap.
    struct LoopSite;
    struct LoopCoord;
    impl SiteNode for LoopSite {
        type In = i64;
        type Up = ();
        type Down = ();
        fn on_update(&mut self, _t: Time, _d: i64, out: &mut Outbox<()>) {
            out.send(());
        }
        fn on_down(&mut self, _t: Time, _m: &(), _req: bool, out: &mut Outbox<()>) {
            out.send(());
        }
    }
    impl CoordinatorNode for LoopCoord {
        type Up = ();
        type Down = ();
        fn on_up(&mut self, _t: Time, _s: SiteId, _m: (), out: &mut CoordOutbox<()>) {
            out.broadcast(());
        }
        fn estimate(&self) -> i64 {
            0
        }
    }

    #[test]
    #[should_panic(expected = "did not quiesce")]
    fn infinite_ping_pong_is_detected() {
        let mut sim = StarSim::new(vec![LoopSite], LoopCoord);
        sim.step(0, 1);
    }
}
