//! Real byte-moving transport: length-prefixed frames over TCP or Unix
//! domain sockets, with a version-tagged handshake, per-connection
//! read/write timeouts, and bounded retry-with-backoff on connect.
//!
//! Everything else in this crate *simulates* the star network and charges
//! a [`crate::CommStats`] ledger; this module is where bytes actually
//! cross a kernel boundary. The distributed engine (`dsv-engine::remote`)
//! frames its protocol messages — delta rounds, checkpoint
//! [`crate::StateFrame`]s, boundary [`crate::ShardReport`]s — through
//! [`Conn::send`] / [`Conn::recv`], and every connection keeps a
//! [`WireStats`] tally of measured frames and bytes so simulated word
//! accounting can be compared against what the wire really carried.
//!
//! The framing is deliberately minimal: each frame is a little-endian
//! `u32` payload length followed by the payload (encoded with this
//! crate's [`crate::codec`]). Length prefixes are validated against a
//! per-connection cap before any allocation, so a corrupted or hostile
//! prefix cannot trigger an out-of-memory abort. All failures — timeouts,
//! peer death, oversized frames, handshake version skew — surface as
//! typed [`TransportError`]s; nothing in this module panics on wire
//! input.

use crate::codec::{CodecError, Dec, Enc};
use std::io::{ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::time::Duration;

/// Magic bytes opening a transport handshake frame.
pub const HANDSHAKE_MAGIC: [u8; 4] = *b"DSVH";

/// Current transport handshake version. Peers speaking a newer version
/// are rejected with [`TransportError::Codec`] /
/// [`CodecError::UnsupportedVersion`] before any protocol traffic flows.
pub const HANDSHAKE_VERSION: u16 = 1;

/// Default per-connection frame size cap (64 MiB): far above any engine
/// round or checkpoint this workspace produces, far below an allocation
/// a corrupted length prefix could weaponize.
pub const DEFAULT_MAX_FRAME: usize = 64 << 20;

/// A transport operation that could not complete, as a typed error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportError {
    /// An OS-level I/O failure (connection refused, reset, broken pipe...).
    Io {
        /// The operation that failed.
        op: &'static str,
        /// The OS error category.
        kind: ErrorKind,
    },
    /// A read or write exceeded the connection's configured timeout.
    TimedOut {
        /// The operation that timed out.
        op: &'static str,
    },
    /// The peer closed the connection (EOF mid-frame or before one).
    Closed {
        /// The operation that observed the close.
        op: &'static str,
    },
    /// An incoming frame's length prefix exceeds the connection cap.
    FrameTooLarge {
        /// The advertised payload length.
        len: usize,
        /// The connection's cap.
        max: usize,
    },
    /// A handshake or payload failed to decode (bad magic, version skew,
    /// truncation, corruption).
    Codec(CodecError),
    /// Connecting failed even after the configured retries.
    ConnectFailed {
        /// Attempts made (1 + retries).
        attempts: u32,
        /// The last OS error category observed.
        kind: ErrorKind,
    },
    /// The endpoint string could not be parsed (see [`Endpoint::parse`]).
    BadEndpoint,
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, fm: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::Io { op, kind } => write!(fm, "{op}: i/o error ({kind:?})"),
            TransportError::TimedOut { op } => write!(fm, "{op}: timed out"),
            TransportError::Closed { op } => write!(fm, "{op}: connection closed by peer"),
            TransportError::FrameTooLarge { len, max } => {
                write!(
                    fm,
                    "incoming frame of {len} bytes exceeds the {max}-byte cap"
                )
            }
            TransportError::Codec(e) => write!(fm, "frame decode failed: {e}"),
            TransportError::ConnectFailed { attempts, kind } => {
                write!(fm, "connect failed after {attempts} attempts ({kind:?})")
            }
            TransportError::BadEndpoint => {
                write!(fm, "endpoint must be `tcp:<addr>:<port>` or `unix:<path>`")
            }
        }
    }
}

impl std::error::Error for TransportError {}

impl From<CodecError> for TransportError {
    fn from(e: CodecError) -> Self {
        TransportError::Codec(e)
    }
}

/// Map an I/O error observed during `op` to the typed transport error,
/// folding the two timeout spellings (`WouldBlock` from Unix socket
/// timeouts, `TimedOut` from TCP) into [`TransportError::TimedOut`] and
/// EOF into [`TransportError::Closed`].
fn io_err(op: &'static str, e: std::io::Error) -> TransportError {
    match e.kind() {
        ErrorKind::WouldBlock | ErrorKind::TimedOut => TransportError::TimedOut { op },
        ErrorKind::UnexpectedEof | ErrorKind::ConnectionReset | ErrorKind::BrokenPipe => {
            TransportError::Closed { op }
        }
        kind => TransportError::Io { op, kind },
    }
}

/// Where a transport peer listens: TCP loopback/interface address or a
/// Unix-domain socket path.
///
/// The string form (`tcp:<addr>:<port>` / `unix:<path>`, see
/// [`Endpoint::parse`] and `Display`) is how the coordinator hands the
/// rendezvous to spawned shard-server processes on their command line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Endpoint {
    /// A TCP socket address, e.g. `127.0.0.1:0` (0 = kernel-assigned).
    Tcp(String),
    /// A Unix-domain socket path.
    #[cfg(unix)]
    Unix(PathBuf),
}

impl Endpoint {
    /// Parse the string form produced by `Display`.
    pub fn parse(s: &str) -> Result<Self, TransportError> {
        if let Some(addr) = s.strip_prefix("tcp:") {
            if addr.is_empty() {
                return Err(TransportError::BadEndpoint);
            }
            return Ok(Endpoint::Tcp(addr.to_string()));
        }
        #[cfg(unix)]
        if let Some(path) = s.strip_prefix("unix:") {
            if path.is_empty() {
                return Err(TransportError::BadEndpoint);
            }
            return Ok(Endpoint::Unix(PathBuf::from(path)));
        }
        Err(TransportError::BadEndpoint)
    }
}

impl std::fmt::Display for Endpoint {
    fn fmt(&self, fm: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Endpoint::Tcp(addr) => write!(fm, "tcp:{addr}"),
            #[cfg(unix)]
            Endpoint::Unix(path) => write!(fm, "unix:{}", path.display()),
        }
    }
}

/// Measured traffic on one connection (or summed over many): frames and
/// bytes that actually crossed the socket, length prefixes included.
///
/// This is the "bytes on the wire" counterpart to the model-currency
/// ledgers ([`crate::CommStats`] counts words of charged protocol
/// traffic); comparing the two is exactly what a deployment needs to
/// validate the simulated accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WireStats {
    /// Frames written to the socket.
    pub frames_sent: u64,
    /// Frames fully read from the socket.
    pub frames_received: u64,
    /// Bytes written (payloads + 4-byte length prefixes).
    pub bytes_sent: u64,
    /// Bytes read (payloads + 4-byte length prefixes).
    pub bytes_received: u64,
}

impl WireStats {
    /// An empty tally.
    pub fn new() -> Self {
        WireStats::default()
    }

    /// Fold another tally into this one.
    pub fn merge(&mut self, other: &WireStats) {
        self.frames_sent += other.frames_sent;
        self.frames_received += other.frames_received;
        self.bytes_sent += other.bytes_sent;
        self.bytes_received += other.bytes_received;
    }
}

enum StreamImpl {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

impl StreamImpl {
    fn as_read_write(&mut self) -> &mut (dyn ReadWrite + '_) {
        match self {
            StreamImpl::Tcp(s) => s,
            #[cfg(unix)]
            StreamImpl::Unix(s) => s,
        }
    }
}

trait ReadWrite: Read + Write {}
impl<T: Read + Write> ReadWrite for T {}

/// One framed, timeout-guarded connection (either side).
pub struct Conn {
    stream: StreamImpl,
    max_frame: usize,
    stats: WireStats,
}

impl std::fmt::Debug for Conn {
    fn fmt(&self, fm: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        fm.debug_struct("Conn")
            .field("max_frame", &self.max_frame)
            .field("stats", &self.stats)
            .finish()
    }
}

impl Conn {
    fn new(stream: StreamImpl) -> Self {
        Conn {
            stream,
            max_frame: DEFAULT_MAX_FRAME,
            stats: WireStats::new(),
        }
    }

    /// Connect to `ep`, retrying up to `retries` extra times with a
    /// linearly growing backoff (`backoff`, `2·backoff`, ...) between
    /// attempts — the shard-server side of the rendezvous, which may race
    /// the coordinator's `bind`.
    pub fn connect(ep: &Endpoint, retries: u32, backoff: Duration) -> Result<Self, TransportError> {
        let attempts = retries.saturating_add(1);
        let mut last_kind = ErrorKind::Other;
        for attempt in 0..attempts {
            if attempt > 0 {
                std::thread::sleep(backoff.saturating_mul(attempt));
            }
            let connected = match ep {
                Endpoint::Tcp(addr) => TcpStream::connect(addr.as_str()).map(StreamImpl::Tcp),
                #[cfg(unix)]
                Endpoint::Unix(path) => UnixStream::connect(path).map(StreamImpl::Unix),
            };
            match connected {
                Ok(stream) => return Ok(Conn::new(stream)),
                Err(e) => last_kind = e.kind(),
            }
        }
        Err(TransportError::ConnectFailed {
            attempts,
            kind: last_kind,
        })
    }

    /// Set the read **and** write timeout for subsequent operations
    /// (`None` = block forever). A blocked `recv` past the deadline
    /// returns [`TransportError::TimedOut`] — the coordinator's dead- or
    /// stalled-worker detector.
    pub fn set_io_timeout(&self, timeout: Option<Duration>) -> Result<(), TransportError> {
        let set = |r: std::io::Result<()>| r.map_err(|e| io_err("set timeout", e));
        match &self.stream {
            StreamImpl::Tcp(s) => {
                set(s.set_read_timeout(timeout))?;
                set(s.set_write_timeout(timeout))
            }
            #[cfg(unix)]
            StreamImpl::Unix(s) => {
                set(s.set_read_timeout(timeout))?;
                set(s.set_write_timeout(timeout))
            }
        }
    }

    /// Cap accepted incoming frames at `max` payload bytes (default
    /// [`DEFAULT_MAX_FRAME`]).
    pub fn set_max_frame(&mut self, max: usize) {
        self.max_frame = max;
    }

    /// Measured traffic on this connection so far.
    pub fn stats(&self) -> &WireStats {
        &self.stats
    }

    /// Write one frame: `u32` little-endian payload length, then the
    /// payload, flushed.
    pub fn send(&mut self, payload: &[u8]) -> Result<(), TransportError> {
        let len = u32::try_from(payload.len()).map_err(|_| TransportError::FrameTooLarge {
            len: payload.len(),
            max: u32::MAX as usize,
        })?;
        let stream = self.stream.as_read_write();
        stream
            .write_all(&len.to_le_bytes())
            .and_then(|()| stream.write_all(payload))
            .and_then(|()| stream.flush())
            .map_err(|e| io_err("send frame", e))?;
        self.stats.frames_sent += 1;
        self.stats.bytes_sent += 4 + payload.len() as u64;
        Ok(())
    }

    /// Read one frame's payload. The length prefix is validated against
    /// the connection cap before the payload buffer is allocated.
    pub fn recv(&mut self) -> Result<Vec<u8>, TransportError> {
        let mut head = [0u8; 4];
        self.stream
            .as_read_write()
            .read_exact(&mut head)
            .map_err(|e| io_err("recv frame header", e))?;
        let len = u32::from_le_bytes(head) as usize;
        if len > self.max_frame {
            return Err(TransportError::FrameTooLarge {
                len,
                max: self.max_frame,
            });
        }
        let mut payload = vec![0u8; len];
        self.stream
            .as_read_write()
            .read_exact(&mut payload)
            .map_err(|e| io_err("recv frame payload", e))?;
        self.stats.frames_received += 1;
        self.stats.bytes_received += 4 + len as u64;
        Ok(payload)
    }

    /// Clone the underlying socket into an independent handle over the
    /// same connection (`dup(2)` semantics: shared kernel socket, so
    /// timeouts and shutdown affect both, but each handle reads/writes
    /// through its own descriptor).
    ///
    /// The clone starts with a **fresh** [`WireStats`] ledger and
    /// inherits `max_frame`. This is the split a pipelined coordinator
    /// needs — a writer thread streaming frames through the clone while
    /// the owning thread keeps reading replies from the original; merge
    /// the clone's stats back when the writer retires. Dropping a clone
    /// closes only its descriptor, never the shared connection.
    pub fn try_clone(&self) -> Result<Conn, TransportError> {
        let stream = match &self.stream {
            StreamImpl::Tcp(s) => s
                .try_clone()
                .map(StreamImpl::Tcp)
                .map_err(|e| io_err("clone connection", e))?,
            #[cfg(unix)]
            StreamImpl::Unix(s) => s
                .try_clone()
                .map(StreamImpl::Unix)
                .map_err(|e| io_err("clone connection", e))?,
        };
        Ok(Conn {
            stream,
            max_frame: self.max_frame,
            stats: WireStats::new(),
        })
    }

    /// Shut down both directions without consuming the connection — the
    /// peer observes EOF on its next read. Used by fault injection to
    /// sever a link while the process on the far side stays alive.
    pub fn shutdown(&self) {
        match &self.stream {
            StreamImpl::Tcp(s) => {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
            #[cfg(unix)]
            StreamImpl::Unix(s) => {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
        }
    }
}

/// A bound listener awaiting shard-server connections.
pub struct Listener {
    inner: ListenerImpl,
    /// The (resolved) endpoint peers should connect to. For `tcp:...:0`
    /// binds this carries the kernel-assigned port.
    endpoint: Endpoint,
}

enum ListenerImpl {
    Tcp(TcpListener),
    #[cfg(unix)]
    Unix(UnixListener),
}

impl std::fmt::Debug for Listener {
    fn fmt(&self, fm: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        fm.debug_struct("Listener")
            .field("endpoint", &self.endpoint)
            .finish()
    }
}

impl Listener {
    /// Bind to `ep`. A TCP endpoint with port 0 resolves to the assigned
    /// port (read it back via [`endpoint`](Self::endpoint)); a Unix
    /// endpoint removes a stale socket file left by a crashed process
    /// before binding.
    pub fn bind(ep: &Endpoint) -> Result<Self, TransportError> {
        match ep {
            Endpoint::Tcp(addr) => {
                let listener =
                    TcpListener::bind(addr.as_str()).map_err(|e| io_err("bind tcp", e))?;
                let local = listener.local_addr().map_err(|e| io_err("local addr", e))?;
                Ok(Listener {
                    inner: ListenerImpl::Tcp(listener),
                    endpoint: Endpoint::Tcp(local.to_string()),
                })
            }
            #[cfg(unix)]
            Endpoint::Unix(path) => {
                if path.exists() {
                    let _ = std::fs::remove_file(path);
                }
                let listener = UnixListener::bind(path).map_err(|e| io_err("bind unix", e))?;
                Ok(Listener {
                    inner: ListenerImpl::Unix(listener),
                    endpoint: Endpoint::Unix(path.clone()),
                })
            }
        }
    }

    /// The endpoint peers should connect to (ports resolved).
    pub fn endpoint(&self) -> &Endpoint {
        &self.endpoint
    }

    /// Accept one connection, waiting at most `timeout` (`None` = block
    /// forever). Polls in non-blocking mode so a worker that dies before
    /// connecting cannot wedge the coordinator.
    pub fn accept(&self, timeout: Option<Duration>) -> Result<Conn, TransportError> {
        let set_nonblocking = |on: bool| -> std::io::Result<()> {
            match &self.inner {
                ListenerImpl::Tcp(l) => l.set_nonblocking(on),
                #[cfg(unix)]
                ListenerImpl::Unix(l) => l.set_nonblocking(on),
            }
        };
        if timeout.is_none() {
            set_nonblocking(false).map_err(|e| io_err("accept", e))?;
        } else {
            set_nonblocking(true).map_err(|e| io_err("accept", e))?;
        }
        let deadline = timeout.map(|t| std::time::Instant::now() + t);
        loop {
            let accepted = match &self.inner {
                ListenerImpl::Tcp(l) => l.accept().map(|(s, _)| StreamImpl::Tcp(s)),
                #[cfg(unix)]
                ListenerImpl::Unix(l) => l.accept().map(|(s, _)| StreamImpl::Unix(s)),
            };
            match accepted {
                Ok(stream) => {
                    // Accepted sockets inherit non-blocking on some
                    // platforms; force blocking so frame reads honor the
                    // per-connection timeouts instead.
                    match &stream {
                        StreamImpl::Tcp(s) => {
                            s.set_nonblocking(false).map_err(|e| io_err("accept", e))?
                        }
                        #[cfg(unix)]
                        StreamImpl::Unix(s) => {
                            s.set_nonblocking(false).map_err(|e| io_err("accept", e))?
                        }
                    }
                    return Ok(Conn::new(stream));
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    if let Some(deadline) = deadline {
                        if std::time::Instant::now() >= deadline {
                            return Err(TransportError::TimedOut { op: "accept" });
                        }
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(e) => return Err(io_err("accept", e)),
            }
        }
    }
}

impl Drop for Listener {
    fn drop(&mut self) {
        #[cfg(unix)]
        if let Endpoint::Unix(path) = &self.endpoint {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// Which side of the rendezvous a handshake frame announces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// The engine coordinator (accepts connections).
    Coordinator,
    /// A shard-server worker (initiates connections).
    Worker,
}

/// A decoded handshake announcement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hello {
    /// Negotiated handshake version (currently always [`HANDSHAKE_VERSION`]).
    pub version: u16,
    /// The announcing side.
    pub role: Role,
    /// Worker slot (0 for the coordinator side).
    pub worker: u64,
    /// Spawn generation of the worker slot, so a reattaching replacement
    /// is distinguishable from the process it replaces (0 for the
    /// coordinator side).
    pub generation: u64,
}

/// Encode a handshake frame payload.
pub fn hello_bytes(role: Role, worker: u64, generation: u64) -> Vec<u8> {
    let mut enc = Enc::new();
    enc.magic(HANDSHAKE_MAGIC, HANDSHAKE_VERSION);
    enc.u8(match role {
        Role::Coordinator => 0,
        Role::Worker => 1,
    });
    enc.u64(worker);
    enc.u64(generation);
    enc.into_bytes()
}

/// Decode and validate a handshake frame payload. Bad magic, version
/// skew, truncation, and trailing bytes are all typed errors.
pub fn parse_hello(bytes: &[u8]) -> Result<Hello, TransportError> {
    let mut dec = Dec::new(bytes);
    let version = dec.magic(HANDSHAKE_MAGIC, HANDSHAKE_VERSION)?;
    let role = match dec.u8()? {
        0 => Role::Coordinator,
        1 => Role::Worker,
        tag => {
            return Err(CodecError::BadTag {
                what: "handshake role",
                tag: tag as u64,
            }
            .into())
        }
    };
    let worker = dec.u64()?;
    let generation = dec.u64()?;
    dec.finish()?;
    Ok(Hello {
        version,
        role,
        worker,
        generation,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tcp_pair() -> (Conn, Conn) {
        let listener = Listener::bind(&Endpoint::Tcp("127.0.0.1:0".into())).unwrap();
        let ep = listener.endpoint().clone();
        let client = std::thread::spawn(move || Conn::connect(&ep, 3, Duration::from_millis(5)));
        let server = listener.accept(Some(Duration::from_secs(5))).unwrap();
        (server, client.join().unwrap().unwrap())
    }

    #[test]
    fn frames_round_trip_and_are_counted_over_tcp() {
        let (mut server, mut client) = tcp_pair();
        client.send(b"hello").unwrap();
        client.send(b"").unwrap();
        assert_eq!(server.recv().unwrap(), b"hello");
        assert_eq!(server.recv().unwrap(), b"");
        server.send(&[7u8; 1000]).unwrap();
        assert_eq!(client.recv().unwrap(), vec![7u8; 1000]);

        assert_eq!(client.stats().frames_sent, 2);
        assert_eq!(client.stats().bytes_sent, 4 + 5 + 4);
        assert_eq!(client.stats().frames_received, 1);
        assert_eq!(client.stats().bytes_received, 1004);
        assert_eq!(server.stats().frames_received, 2);
        assert_eq!(server.stats().bytes_received, 4 + 5 + 4);
    }

    #[test]
    fn cloned_connections_share_the_socket_but_not_the_ledger() {
        let (mut server, mut client) = tcp_pair();
        let mut writer = client.try_clone().unwrap();
        // Frames interleave from both handles onto one byte stream, in
        // the order the sends happen.
        writer.send(b"from the clone").unwrap();
        client.send(b"from the original").unwrap();
        assert_eq!(server.recv().unwrap(), b"from the clone");
        assert_eq!(server.recv().unwrap(), b"from the original");
        // Each handle keeps its own ledger; merging reconstructs the
        // whole connection's traffic.
        assert_eq!(writer.stats().frames_sent, 1);
        assert_eq!(client.stats().frames_sent, 1);
        let mut total = *client.stats();
        total.merge(writer.stats());
        assert_eq!(total.frames_sent, server.stats().frames_received);
        assert_eq!(total.bytes_sent, server.stats().bytes_received);
        // Dropping the clone leaves the original connection usable.
        drop(writer);
        client.send(b"still open").unwrap();
        assert_eq!(server.recv().unwrap(), b"still open");
    }

    #[cfg(unix)]
    #[test]
    fn frames_round_trip_over_unix_sockets() {
        let path =
            std::env::temp_dir().join(format!("dsv-transport-test-{}.sock", std::process::id()));
        let listener = Listener::bind(&Endpoint::Unix(path.clone())).unwrap();
        let ep = listener.endpoint().clone();
        let client = std::thread::spawn(move || Conn::connect(&ep, 5, Duration::from_millis(5)));
        let mut server = listener.accept(Some(Duration::from_secs(5))).unwrap();
        let mut client = client.join().unwrap().unwrap();
        client.send(b"over unix").unwrap();
        assert_eq!(server.recv().unwrap(), b"over unix");
        drop(listener);
        assert!(!path.exists(), "listener drop removes the socket file");
    }

    #[test]
    fn recv_times_out_and_close_is_typed() {
        let (mut server, client) = tcp_pair();
        server
            .set_io_timeout(Some(Duration::from_millis(30)))
            .unwrap();
        assert_eq!(
            server.recv().unwrap_err(),
            TransportError::TimedOut {
                op: "recv frame header"
            }
        );
        drop(client);
        // After the peer is gone, the read observes EOF.
        assert!(matches!(
            server.recv().unwrap_err(),
            TransportError::Closed { .. } | TransportError::Io { .. }
        ));
    }

    #[test]
    fn severed_connection_reads_as_closed() {
        let (mut server, client) = tcp_pair();
        client.shutdown();
        assert!(matches!(
            server.recv().unwrap_err(),
            TransportError::Closed { .. }
        ));
    }

    #[test]
    fn oversized_frames_are_rejected_before_allocation() {
        let (mut server, mut client) = tcp_pair();
        server.set_max_frame(8);
        client.send(&[0u8; 64]).unwrap();
        assert_eq!(
            server.recv().unwrap_err(),
            TransportError::FrameTooLarge { len: 64, max: 8 }
        );
    }

    #[test]
    fn connect_retries_are_bounded_and_typed() {
        // Nothing listens on this port (bind + drop to claim then free it).
        let ep = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            Endpoint::Tcp(l.local_addr().unwrap().to_string())
        };
        let err = Conn::connect(&ep, 2, Duration::from_millis(1)).unwrap_err();
        assert!(matches!(
            err,
            TransportError::ConnectFailed { attempts: 3, .. }
        ));
    }

    #[test]
    fn endpoint_strings_round_trip() {
        for s in ["tcp:127.0.0.1:4500", "unix:/tmp/x.sock"] {
            #[cfg(not(unix))]
            if s.starts_with("unix:") {
                continue;
            }
            let ep = Endpoint::parse(s).unwrap();
            assert_eq!(ep.to_string(), s);
        }
        for bad in ["", "tcp:", "unix:", "udp:127.0.0.1:1", "garbage"] {
            assert_eq!(
                Endpoint::parse(bad).unwrap_err(),
                TransportError::BadEndpoint
            );
        }
    }

    #[test]
    fn handshake_round_trips_and_rejects_skew() {
        let bytes = hello_bytes(Role::Worker, 3, 2);
        let hello = parse_hello(&bytes).unwrap();
        assert_eq!(
            hello,
            Hello {
                version: HANDSHAKE_VERSION,
                role: Role::Worker,
                worker: 3,
                generation: 2
            }
        );

        // Every truncation is a typed error.
        for cut in 0..bytes.len() {
            assert!(parse_hello(&bytes[..cut]).is_err(), "cut at {cut}");
        }
        // Version skew is the specific version error.
        let mut future = bytes.clone();
        future[4] = (HANDSHAKE_VERSION + 1) as u8;
        assert_eq!(
            parse_hello(&future).unwrap_err(),
            TransportError::Codec(CodecError::UnsupportedVersion {
                found: HANDSHAKE_VERSION + 1,
                supported: HANDSHAKE_VERSION
            })
        );
        // Wrong magic, wrong role tag, trailing garbage: all typed.
        let mut alien = bytes.clone();
        alien[0] = b'X';
        assert!(matches!(
            parse_hello(&alien).unwrap_err(),
            TransportError::Codec(CodecError::BadMagic { .. })
        ));
        let mut bad_role = bytes.clone();
        bad_role[6] = 9;
        assert!(matches!(
            parse_hello(&bad_role).unwrap_err(),
            TransportError::Codec(CodecError::BadTag { .. })
        ));
        let mut trailing = bytes;
        trailing.push(0);
        assert!(matches!(
            parse_hello(&trailing).unwrap_err(),
            TransportError::Codec(CodecError::Trailing { left: 1 })
        ));
    }

    #[test]
    fn errors_display() {
        for e in [
            TransportError::Io {
                op: "x",
                kind: ErrorKind::Other,
            },
            TransportError::TimedOut { op: "x" },
            TransportError::Closed { op: "x" },
            TransportError::FrameTooLarge { len: 9, max: 8 },
            TransportError::Codec(CodecError::Eof),
            TransportError::ConnectFailed {
                attempts: 3,
                kind: ErrorKind::ConnectionRefused,
            },
            TransportError::BadEndpoint,
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
