//! `DSVD` — section-aware binary deltas between state snapshots.
//!
//! The checkpoint formats built on [`crate::codec`] serialize each shard's
//! full `TrackerState` at every boundary, but the paper's protocols
//! guarantee most of that state is *quiet* between boundaries: counters
//! drift inside their bands and only threshold crossings mutate
//! coordinator-visible state. A [`StateDelta`] captures exactly the bytes
//! that moved: the new snapshot is cut into fixed
//! [`DELTA_SECTION`]-byte sections, each section either references the
//! base snapshot unchanged (`Same`) or carries its XOR against the
//! base, zero-run-length encoded (`Diff`). A
//! quiet shard whose snapshot bytes did not move at all encodes to an
//! [identity](StateDelta::is_identity) delta a few bytes long.
//!
//! Deltas chain: `base → d₁ → d₂ → …`, each delta diffed against the
//! *previous* snapshot. Every delta records the byte length and FNV-1a
//! fingerprint of both its base and its result, so applying a delta to
//! the wrong base (a broken or reordered chain link) is a typed
//! [`CodecError::Mismatch`], never silent corruption — and a verified
//! [`apply`](StateDelta::apply) is **bit-identical** by construction: it
//! rebuilds the exact new snapshot bytes, or fails.
//!
//! The wire form is a versioned envelope (`b"DSVD"`, [`DELTA_VERSION`])
//! through the same [`Enc`]/[`Dec`] discipline as every other format in
//! this crate: truncation, corruption, version skew, and inconsistent
//! shapes all decode to typed [`CodecError`]s; nothing panics, and a
//! corrupted length cannot demand more than [`DELTA_SECTION`]× the
//! payload's own size in allocation.

use crate::codec::{CodecError, Dec, Enc};

/// Magic bytes opening a serialized [`StateDelta`].
pub const DELTA_MAGIC: [u8; 4] = *b"DSVD";

/// Current delta format version. Bump on **any** layout change (and see
/// `MIGRATION.md`).
pub const DELTA_VERSION: u16 = 1;

/// Section width of the diff, in bytes. Snapshot payloads are compared
/// in fixed windows this wide; a window with any changed byte ships its
/// XOR, an untouched window ships one tag byte.
pub const DELTA_SECTION: usize = 64;

/// FNV-1a offset basis (64-bit).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime (64-bit).
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// The 64-bit FNV-1a fingerprint of `bytes` — the chain-integrity hash
/// [`StateDelta`] records for its base and its result.
pub fn fingerprint(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// One section's fate in a delta.
#[derive(Debug, Clone, PartialEq, Eq)]
enum SectionOp {
    /// The section's bytes equal the base's bytes at the same offset
    /// (base shorter than the section ⇒ compared as zero-extended).
    Same,
    /// The section changed: its XOR against the (zero-extended) base,
    /// zero-run-length encoded.
    Diff(Vec<u8>),
}

/// A section-aware binary delta from one snapshot to the next.
///
/// Produced by [`diff`](StateDelta::diff), applied by
/// [`apply`](StateDelta::apply) (which verifies the base *and* the
/// result against recorded lengths and fingerprints), serialized by
/// [`to_bytes`](StateDelta::to_bytes) / [`from_bytes`](StateDelta::from_bytes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StateDelta {
    base_len: u64,
    base_hash: u64,
    new_len: u64,
    new_hash: u64,
    ops: Vec<SectionOp>,
}

/// Zero-run-length encode `xor` (at most [`DELTA_SECTION`] bytes): a
/// sequence of `(zero_run, literal_len, literal bytes…)` groups covering
/// the input exactly. Both counts fit a `u8` because sections are short.
fn rle_encode(xor: &[u8], out: &mut Vec<u8>) {
    debug_assert!(xor.len() <= DELTA_SECTION);
    let mut i = 0;
    while i < xor.len() {
        let zero_start = i;
        while i < xor.len() && xor[i] == 0 {
            i += 1;
        }
        let lit_start = i;
        while i < xor.len() && xor[i] != 0 {
            i += 1;
        }
        out.push((lit_start - zero_start) as u8);
        out.push((i - lit_start) as u8);
        out.extend_from_slice(&xor[lit_start..i]);
    }
}

/// Decode a zero-run-length group sequence into exactly `len` XOR bytes.
fn rle_decode(rle: &[u8], len: usize, out: &mut Vec<u8>) -> Result<(), CodecError> {
    let start = out.len();
    let mut i = 0;
    while i < rle.len() {
        if rle.len() - i < 2 {
            return Err(CodecError::BadValue {
                what: "delta section run group",
            });
        }
        let zeros = rle[i] as usize;
        let lits = rle[i + 1] as usize;
        i += 2;
        if rle.len() - i < lits {
            return Err(CodecError::BadLength {
                what: "delta section literal run",
            });
        }
        out.resize(out.len() + zeros, 0);
        out.extend_from_slice(&rle[i..i + lits]);
        i += lits;
        if out.len() - start > len {
            return Err(CodecError::Mismatch {
                what: "delta section length",
                expected: len as u64,
                found: (out.len() - start) as u64,
            });
        }
    }
    if out.len() - start != len {
        return Err(CodecError::Mismatch {
            what: "delta section length",
            expected: len as u64,
            found: (out.len() - start) as u64,
        });
    }
    Ok(())
}

/// Sections needed to cover `len` bytes.
fn section_count(len: u64) -> u64 {
    len.div_ceil(DELTA_SECTION as u64)
}

impl StateDelta {
    /// Diff `new` against `base`: one pass over `new` in
    /// [`DELTA_SECTION`]-byte windows, comparing each against the base's
    /// bytes at the same offsets (zero-extended where the base is
    /// shorter). Identical inputs yield an [identity](Self::is_identity)
    /// delta.
    pub fn diff(base: &[u8], new: &[u8]) -> Self {
        let sections = section_count(new.len() as u64) as usize;
        let mut ops = Vec::with_capacity(sections);
        let mut xor = Vec::with_capacity(DELTA_SECTION);
        for s in 0..sections {
            let lo = s * DELTA_SECTION;
            let hi = (lo + DELTA_SECTION).min(new.len());
            let section = &new[lo..hi];
            let base_part = &base[lo.min(base.len())..hi.min(base.len())];
            let same = section.len() == base_part.len() && section == base_part
                || base_part.len() < section.len()
                    && section[..base_part.len()] == *base_part
                    && section[base_part.len()..].iter().all(|&b| b == 0);
            if same {
                ops.push(SectionOp::Same);
                continue;
            }
            xor.clear();
            for (i, &b) in section.iter().enumerate() {
                let base_b = base_part.get(i).copied().unwrap_or(0);
                xor.push(b ^ base_b);
            }
            let mut rle = Vec::new();
            rle_encode(&xor, &mut rle);
            ops.push(SectionOp::Diff(rle));
        }
        StateDelta {
            base_len: base.len() as u64,
            base_hash: fingerprint(base),
            new_len: new.len() as u64,
            new_hash: fingerprint(new),
            ops,
        }
    }

    /// Apply this delta to `base`, reconstructing the exact new snapshot
    /// bytes. The base is verified against the recorded length and
    /// fingerprint **before** any work (a wrong or out-of-order base is a
    /// typed [`CodecError::Mismatch`]), and the result is verified after
    /// (a chain whose links were tampered with cannot produce silently
    /// wrong bytes).
    pub fn apply(&self, base: &[u8]) -> Result<Vec<u8>, CodecError> {
        if base.len() as u64 != self.base_len {
            return Err(CodecError::Mismatch {
                what: "delta base length",
                expected: self.base_len,
                found: base.len() as u64,
            });
        }
        let found = fingerprint(base);
        if found != self.base_hash {
            return Err(CodecError::Mismatch {
                what: "delta base fingerprint",
                expected: self.base_hash,
                found,
            });
        }
        let new_len = self.new_len as usize;
        let mut out = Vec::with_capacity(new_len);
        let mut xor = Vec::with_capacity(DELTA_SECTION);
        for (s, op) in self.ops.iter().enumerate() {
            let lo = s * DELTA_SECTION;
            let hi = (lo + DELTA_SECTION).min(new_len);
            let base_part = &base[lo.min(base.len())..hi.min(base.len())];
            match op {
                SectionOp::Same => {
                    out.extend_from_slice(base_part);
                    out.resize(hi, 0);
                }
                SectionOp::Diff(rle) => {
                    xor.clear();
                    rle_decode(rle, hi - lo, &mut xor)?;
                    for (i, x) in xor.iter().enumerate() {
                        out.push(x ^ base_part.get(i).copied().unwrap_or(0));
                    }
                }
            }
        }
        let found = fingerprint(&out);
        if found != self.new_hash {
            return Err(CodecError::Mismatch {
                what: "delta result fingerprint",
                expected: self.new_hash,
                found,
            });
        }
        Ok(out)
    }

    /// Byte length of the snapshot this delta reconstructs.
    pub fn new_len(&self) -> u64 {
        self.new_len
    }

    /// Fingerprint of the snapshot this delta reconstructs.
    pub fn new_hash(&self) -> u64 {
        self.new_hash
    }

    /// Byte length of the base this delta applies to.
    pub fn base_len(&self) -> u64 {
        self.base_len
    }

    /// Fingerprint of the base this delta applies to.
    pub fn base_hash(&self) -> u64 {
        self.base_hash
    }

    /// True when the delta carries no change at all: the new snapshot is
    /// byte-identical to the base (every section `Same`,
    /// same length, same fingerprint) — the quiet-shard chain link.
    pub fn is_identity(&self) -> bool {
        self.base_len == self.new_len
            && self.base_hash == self.new_hash
            && self.ops.iter().all(|op| matches!(op, SectionOp::Same))
    }

    /// Exact length of [`to_bytes`](Self::to_bytes)' output, without
    /// encoding — the bench's bytes-per-boundary accounting.
    pub fn encoded_len(&self) -> usize {
        let mut n = 4 + 2 + 4 * 8 + 8; // envelope + header + section count
        for op in &self.ops {
            n += match op {
                SectionOp::Same => 1,
                SectionOp::Diff(rle) => 1 + 1 + rle.len(),
            };
        }
        n
    }

    /// Append the versioned wire form to an encoder (for embedding in a
    /// larger payload; see [`to_bytes`](Self::to_bytes) for standalone use).
    pub fn encode(&self, enc: &mut Enc) {
        enc.magic(DELTA_MAGIC, DELTA_VERSION);
        enc.u64(self.base_len);
        enc.u64(self.base_hash);
        enc.u64(self.new_len);
        enc.u64(self.new_hash);
        enc.seq_len(self.ops.len());
        for op in &self.ops {
            match op {
                SectionOp::Same => enc.u8(0),
                SectionOp::Diff(rle) => {
                    enc.u8(1);
                    enc.u8(rle.len() as u8);
                    for &b in rle {
                        enc.u8(b);
                    }
                }
            }
        }
    }

    /// Decode one delta from a decoder positioned at its envelope,
    /// validating the section count against the recorded new length and
    /// every run group against its section. Pair with [`Dec::finish`]
    /// when the delta is the whole payload ([`from_bytes`](Self::from_bytes)
    /// does both).
    pub fn decode(dec: &mut Dec<'_>) -> Result<Self, CodecError> {
        dec.magic(DELTA_MAGIC, DELTA_VERSION)?;
        let base_len = dec.u64()?;
        let base_hash = dec.u64()?;
        let new_len = dec.u64()?;
        let new_hash = dec.u64()?;
        let n_ops = dec.seq_len("delta sections", 1)?;
        if n_ops as u64 != section_count(new_len) {
            return Err(CodecError::Mismatch {
                what: "delta section count vs new length",
                expected: section_count(new_len),
                found: n_ops as u64,
            });
        }
        let mut ops = Vec::with_capacity(n_ops);
        for s in 0..n_ops {
            match dec.u8()? {
                0 => ops.push(SectionOp::Same),
                1 => {
                    let rle_len = dec.u8()? as usize;
                    let mut rle = Vec::with_capacity(rle_len);
                    for _ in 0..rle_len {
                        rle.push(dec.u8()?);
                    }
                    // Validate the run groups now, so a decoded delta can
                    // only fail `apply` on a wrong base, never on its own
                    // shape.
                    let lo = s * DELTA_SECTION;
                    let hi = ((s + 1) * DELTA_SECTION).min(new_len as usize);
                    let mut scratch = Vec::with_capacity(hi - lo);
                    rle_decode(&rle, hi - lo, &mut scratch)?;
                    ops.push(SectionOp::Diff(rle));
                }
                tag => {
                    return Err(CodecError::BadTag {
                        what: "delta section op",
                        tag: tag as u64,
                    })
                }
            }
        }
        Ok(StateDelta {
            base_len,
            base_hash,
            new_len,
            new_hash,
            ops,
        })
    }

    /// Serialize to the versioned standalone wire form.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut enc = Enc::new();
        self.encode(&mut enc);
        enc.into_bytes()
    }

    /// Decode the standalone wire form, requiring exact consumption.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CodecError> {
        let mut dec = Dec::new(bytes);
        let delta = Self::decode(&mut dec)?;
        dec.finish()?;
        Ok(delta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn apply_round_trip(base: &[u8], new: &[u8]) {
        let delta = StateDelta::diff(base, new);
        assert_eq!(delta.apply(base).unwrap(), new, "apply rebuilds new");
        let rebuilt = StateDelta::from_bytes(&delta.to_bytes()).unwrap();
        assert_eq!(rebuilt, delta, "wire round trip");
        assert_eq!(rebuilt.apply(base).unwrap(), new, "decoded apply");
        assert_eq!(delta.to_bytes().len(), delta.encoded_len());
    }

    #[test]
    fn diff_apply_round_trips_across_shapes() {
        let base: Vec<u8> = (0..300u32).map(|i| (i * 7) as u8).collect();
        let mut one_byte = base.clone();
        one_byte[150] ^= 0xFF;
        let mut tail = base.clone();
        tail.extend_from_slice(&[1, 2, 3, 4, 5]);
        let shrunk = base[..100].to_vec();
        let mut sparse = base.clone();
        sparse[0] = 0xAA;
        sparse[299] = 0xBB;
        for new in [
            base.clone(),
            one_byte,
            tail,
            shrunk,
            sparse,
            Vec::new(),
            vec![9u8; 64],
            vec![9u8; 65],
        ] {
            apply_round_trip(&base, &new);
        }
        apply_round_trip(&[], &base);
        apply_round_trip(&[], &[]);
    }

    #[test]
    fn identity_deltas_are_tiny_and_flagged() {
        let base: Vec<u8> = (0..100_000u32).map(|i| (i % 251) as u8).collect();
        let delta = StateDelta::diff(&base, &base);
        assert!(delta.is_identity());
        // One byte per untouched 64-byte section plus a fixed header.
        assert!(
            delta.encoded_len() < base.len() / DELTA_SECTION + 64,
            "identity delta of {} bytes for a {}-byte state",
            delta.encoded_len(),
            base.len()
        );
        let changed = StateDelta::diff(&base, &base[..99_999]);
        assert!(!changed.is_identity(), "length change is not identity");
    }

    #[test]
    fn localized_change_costs_a_section_not_the_state() {
        let base = vec![3u8; 64 * 1024];
        let mut new = base.clone();
        new[1000] = 42;
        let delta = StateDelta::diff(&base, &new);
        assert!(!delta.is_identity());
        assert!(
            delta.encoded_len() < base.len() / DELTA_SECTION + 128,
            "one flipped byte must not re-ship the state ({} bytes)",
            delta.encoded_len()
        );
        assert_eq!(delta.apply(&base).unwrap(), new);
    }

    #[test]
    fn wrong_base_is_a_typed_mismatch() {
        let base = vec![1u8; 200];
        let new = vec![2u8; 200];
        let delta = StateDelta::diff(&base, &new);
        // Wrong length.
        assert!(matches!(
            delta.apply(&base[..199]).unwrap_err(),
            CodecError::Mismatch {
                what: "delta base length",
                ..
            }
        ));
        // Right length, wrong bytes.
        assert!(matches!(
            delta.apply(&[7u8; 200]).unwrap_err(),
            CodecError::Mismatch {
                what: "delta base fingerprint",
                ..
            }
        ));
        // The right base applies.
        assert_eq!(delta.apply(&base).unwrap(), new);
    }

    #[test]
    fn chains_compose_and_reordered_links_fail() {
        let v1: Vec<u8> = (0..500u32).map(|i| i as u8).collect();
        let mut v2 = v1.clone();
        v2[100] = 0xEE;
        let mut v3 = v2.clone();
        v3.truncate(400);
        v3[7] = 0x33;
        let d12 = StateDelta::diff(&v1, &v2);
        let d23 = StateDelta::diff(&v2, &v3);
        let r2 = d12.apply(&v1).unwrap();
        let r3 = d23.apply(&r2).unwrap();
        assert_eq!(r3, v3, "chain replay is bit-identical");
        // Applying the links out of order is typed, not silent.
        assert!(matches!(
            d23.apply(&v1).unwrap_err(),
            CodecError::Mismatch { .. }
        ));
    }

    #[test]
    fn tampered_delta_cannot_produce_wrong_bytes_silently() {
        let base = vec![0u8; 128];
        let mut new = base.clone();
        new[0] = 1;
        let mut delta = StateDelta::diff(&base, &new);
        // Corrupt the recorded result hash: apply must notice.
        delta.new_hash ^= 1;
        assert!(matches!(
            delta.apply(&base).unwrap_err(),
            CodecError::Mismatch {
                what: "delta result fingerprint",
                ..
            }
        ));
    }

    #[test]
    fn every_truncation_and_corruption_is_typed() {
        let base: Vec<u8> = (0..200u32).map(|i| (i * 3) as u8).collect();
        let mut new = base.clone();
        new[5] = 0xFF;
        new.push(77);
        let bytes = StateDelta::diff(&base, &new).to_bytes();
        for cut in 0..bytes.len() {
            assert!(
                StateDelta::from_bytes(&bytes[..cut]).is_err(),
                "cut at {cut}"
            );
        }
        for i in 0..bytes.len() {
            let mut dirty = bytes.clone();
            dirty[i] ^= 0xA5;
            // Must never panic; decoding may succeed, in which case apply
            // still cannot silently fabricate state.
            if let Ok(delta) = StateDelta::from_bytes(&dirty) {
                if let Ok(out) = delta.apply(&base) {
                    assert_eq!(out, new, "byte {i}");
                }
            }
        }
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert_eq!(
            StateDelta::from_bytes(&trailing).unwrap_err(),
            CodecError::Trailing { left: 1 }
        );
        let mut skew = bytes;
        skew[4] = (DELTA_VERSION + 1) as u8;
        assert_eq!(
            StateDelta::from_bytes(&skew).unwrap_err(),
            CodecError::UnsupportedVersion {
                found: DELTA_VERSION + 1,
                supported: DELTA_VERSION
            }
        );
    }

    #[test]
    fn fingerprint_is_stable_and_sensitive() {
        assert_eq!(fingerprint(b""), FNV_OFFSET);
        assert_ne!(fingerprint(b"a"), fingerprint(b"b"));
        assert_ne!(fingerprint(b"ab"), fingerprint(b"ba"));
    }
}
