//! Message metadata: kinds, wire sizes, and transcript records.
//!
//! The network layer treats protocol payloads as opaque; all it needs is a
//! *size in words* for accounting. The paper states all messages are
//! `O(log n)` bits; we account in 64-bit words (1 word per scalar value) and
//! provide [`bits_per_word`] to convert a word budget into a bit budget for
//! a given stream length when comparing against bit-level lower bounds.

use crate::{SiteId, Time};

/// Direction/kind of a charged message, for per-kind accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MsgKind {
    /// Site → coordinator, spontaneous (e.g. a threshold fired).
    Up,
    /// Site → coordinator, in reply to a coordinator request.
    Reply,
    /// Coordinator → single site.
    Unicast,
    /// Coordinator → all sites. Charged as `k` messages.
    Broadcast,
    /// Coordinator → all sites asking them to report. Charged as `k`
    /// messages (the "k in requests from the coordinator" of §3.1).
    Request,
}

impl MsgKind {
    /// All kinds, for iteration in reports.
    pub const ALL: [MsgKind; 5] = [
        MsgKind::Up,
        MsgKind::Reply,
        MsgKind::Unicast,
        MsgKind::Broadcast,
        MsgKind::Request,
    ];

    /// Short label used by experiment tables.
    pub fn label(self) -> &'static str {
        match self {
            MsgKind::Up => "up",
            MsgKind::Reply => "reply",
            MsgKind::Unicast => "unicast",
            MsgKind::Broadcast => "broadcast",
            MsgKind::Request => "request",
        }
    }
}

/// The wire size of a payload, in 64-bit words.
///
/// Implemented by every protocol message type in `dsv-core`. The default of
/// one word models a single counter value, the common case in the paper's
/// algorithms ("Message: the new value of d_i").
pub trait WireSize {
    /// Number of 64-bit words this message occupies on the wire.
    fn words(&self) -> usize {
        1
    }
}

impl WireSize for () {}
impl WireSize for i64 {}
impl WireSize for u64 {}
impl WireSize for u32 {}

impl<A: WireSize, B: WireSize> WireSize for (A, B) {
    fn words(&self) -> usize {
        self.0.words() + self.1.words()
    }
}

impl<T: WireSize> WireSize for Vec<T> {
    fn words(&self) -> usize {
        // One word of framing (the length) plus the payload.
        1 + self.iter().map(WireSize::words).sum::<usize>()
    }
}

impl<T: WireSize> WireSize for Option<T> {
    fn words(&self) -> usize {
        match self {
            Some(t) => t.words(),
            None => 0,
        }
    }
}

/// A transcript entry: one charged message.
///
/// Transcripts are optional (they cost memory proportional to the number of
/// messages) and are used by the tracing-problem experiments of §4, where
/// the summary of a distributed algorithm is exactly its recorded
/// communication (Appendix D).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MsgRecord {
    /// Timestep during which the message was sent.
    pub time: Time,
    /// Kind of message.
    pub kind: MsgKind,
    /// The site concerned (sender for Up/Reply, receiver for Unicast; for
    /// Broadcast/Request this is `usize::MAX` as all sites are concerned).
    pub site: SiteId,
    /// Payload size in words (for broadcasts: per-recipient size).
    pub words: usize,
}

/// Marker site id used in [`MsgRecord`] for broadcast/request records.
pub const ALL_SITES: SiteId = usize::MAX;

/// Number of bits a single word-message costs for a stream of length `n`
/// over a universe of values bounded by `n` — the paper's `O(log n)` bits
/// per message. We charge `ceil(log2(n+1)) + 2` bits (value + sign + tag).
pub fn bits_per_word(n: u64) -> u64 {
    (u64::BITS - n.leading_zeros()) as u64 + 2
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_size_defaults_to_one_word() {
        assert_eq!(0i64.words(), 1);
        assert_eq!(().words(), 1);
        assert_eq!((1i64, 2i64).words(), 2);
    }

    #[test]
    fn vec_wire_size_counts_framing() {
        let v: Vec<i64> = vec![1, 2, 3];
        assert_eq!(v.words(), 4);
        let empty: Vec<i64> = vec![];
        assert_eq!(empty.words(), 1);
    }

    #[test]
    fn option_wire_size() {
        assert_eq!(Some(3i64).words(), 1);
        assert_eq!(None::<i64>.words(), 0);
    }

    #[test]
    fn bits_per_word_grows_logarithmically() {
        assert_eq!(bits_per_word(0), 2);
        assert_eq!(bits_per_word(1), 3);
        assert_eq!(bits_per_word(1023), 12);
        assert_eq!(bits_per_word(1024), 13);
        // Doubling n adds one bit.
        for n in [10u64, 100, 1000, 123_456] {
            assert_eq!(bits_per_word(2 * n), bits_per_word(n) + 1);
        }
    }

    #[test]
    fn msg_kind_labels_are_distinct() {
        let mut labels: Vec<&str> = MsgKind::ALL.iter().map(|k| k.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), MsgKind::ALL.len());
    }
}
