//! Hand-rolled length-prefixed binary codec for protocol state.
//!
//! The snapshot/restore seam externalizes running tracker state — per-site
//! protocol scalars, coordinator vectors, RNG streams, the [`crate::CommStats`]
//! ledger — so long-lived monitors can be checkpointed, migrated, and
//! resumed without replaying the stream. This workspace builds hermetically
//! with no registry access, so there is no serde; the format here is the
//! whole wire contract:
//!
//! * fixed-width little-endian integers (`u8`/`u16`/`u32`/`u64`/`i64`);
//! * `f64` as IEEE-754 bit patterns (`to_bits`/`from_bits` — exact, so
//!   restored probabilities and HYZ estimates are bit-identical);
//! * sequences as a `u64` length prefix followed by the elements;
//! * nested node payloads as length-prefixed blobs ([`Enc::blob`] /
//!   [`Dec::blob`]), each of which must be consumed exactly
//!   ([`Dec::finish`]).
//!
//! Decoding never panics: truncated, corrupted, or wrong-version payloads
//! surface as typed [`CodecError`]s, and sequence lengths are validated
//! against the remaining input before any allocation, so a corrupted
//! length prefix cannot trigger an out-of-memory abort.
//!
//! Versioned envelopes (magic + `u16` version) are written by the layers
//! that own a format — `dsv-core::codec` for single-tracker snapshots,
//! `dsv-engine` for whole-engine checkpoints — through
//! [`Enc::magic`] / [`Dec::magic`].

/// A state payload that cannot be decoded (or produced), as a typed error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodecError {
    /// The payload ended before the expected field.
    Eof,
    /// The payload does not start with the expected magic bytes.
    BadMagic {
        /// The magic the decoder expected.
        expected: [u8; 4],
        /// The bytes found instead.
        found: [u8; 4],
    },
    /// The payload was written by an unsupported format version.
    UnsupportedVersion {
        /// The version found in the payload.
        found: u16,
        /// The newest version this build understands.
        supported: u16,
    },
    /// Bytes remained after the payload was fully decoded.
    Trailing {
        /// Number of unread bytes.
        left: usize,
    },
    /// A tag byte does not name a known variant.
    BadTag {
        /// What was being decoded.
        what: &'static str,
        /// The offending tag.
        tag: u64,
    },
    /// A decoded quantity disagrees with the state being restored into
    /// (wrong site count, wrong counter-vector shape, wrong kind, ...).
    Mismatch {
        /// What disagreed.
        what: &'static str,
        /// The value the restoring state requires.
        expected: u64,
        /// The value found in the payload.
        found: u64,
    },
    /// A sequence length prefix exceeds the remaining payload.
    BadLength {
        /// What was being decoded.
        what: &'static str,
    },
    /// A field holds a value outside its domain (e.g. a bool byte that is
    /// neither 0 nor 1).
    BadValue {
        /// What was being decoded.
        what: &'static str,
    },
    /// The node does not implement the state seam (custom protocols that
    /// keep the default [`crate::SiteNode::save_state`]).
    UnsupportedNode,
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, fm: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Eof => write!(fm, "state payload truncated"),
            CodecError::BadMagic { expected, found } => write!(
                fm,
                "bad magic: expected {expected:?}, found {found:?} — not a state payload"
            ),
            CodecError::UnsupportedVersion { found, supported } => write!(
                fm,
                "state version {found} not supported (this build reads up to {supported})"
            ),
            CodecError::Trailing { left } => {
                write!(fm, "{left} trailing bytes after a complete state payload")
            }
            CodecError::BadTag { what, tag } => write!(fm, "unknown {what} tag {tag}"),
            CodecError::Mismatch {
                what,
                expected,
                found,
            } => write!(
                fm,
                "state mismatch: {what} is {found} in the payload but {expected} in the target"
            ),
            CodecError::BadLength { what } => {
                write!(fm, "{what} length prefix exceeds the payload")
            }
            CodecError::BadValue { what } => write!(fm, "invalid {what} value"),
            CodecError::UnsupportedNode => {
                write!(fm, "this protocol does not implement the state seam")
            }
        }
    }
}

impl std::error::Error for CodecError {}

/// Binary state encoder: an append-only byte buffer with typed writers.
#[derive(Debug, Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// Fresh, empty encoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// The encoded bytes so far.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Consume the encoder, yielding the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Write a 4-byte magic plus a `u16` format version.
    pub fn magic(&mut self, magic: [u8; 4], version: u16) {
        self.buf.extend_from_slice(&magic);
        self.u16(version);
    }

    /// Write one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Write a little-endian `u16`.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a little-endian `i64`.
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write an `f64` as its exact IEEE-754 bit pattern.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Write a bool as one byte (0 or 1).
    pub fn bool(&mut self, v: bool) {
        self.u8(v as u8);
    }

    /// Write a `usize` as a `u64`.
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Write a sequence length prefix (pair with per-element writers).
    pub fn seq_len(&mut self, n: usize) {
        self.u64(n as u64);
    }

    /// Write a `u64` slice as a length-prefixed sequence.
    pub fn seq_u64(&mut self, vs: &[u64]) {
        self.seq_len(vs.len());
        for &v in vs {
            self.u64(v);
        }
    }

    /// Write an `i64` slice as a length-prefixed sequence.
    pub fn seq_i64(&mut self, vs: &[i64]) {
        self.seq_len(vs.len());
        for &v in vs {
            self.i64(v);
        }
    }

    /// Write an `f64` slice as a length-prefixed sequence of bit patterns.
    pub fn seq_f64(&mut self, vs: &[f64]) {
        self.seq_len(vs.len());
        for &v in vs {
            self.f64(v);
        }
    }

    /// Write a bool slice as a length-prefixed sequence of bytes.
    pub fn seq_bool(&mut self, vs: &[bool]) {
        self.seq_len(vs.len());
        for &v in vs {
            self.bool(v);
        }
    }

    /// Write a length-prefixed blob (a nested payload).
    pub fn blob(&mut self, bytes: &[u8]) {
        self.u64(bytes.len() as u64);
        self.buf.extend_from_slice(bytes);
    }
}

/// Binary state decoder over a byte slice. Every reader returns a typed
/// [`CodecError`] on truncation or malformed input; nothing panics.
#[derive(Debug)]
pub struct Dec<'a> {
    bytes: &'a [u8],
}

impl<'a> Dec<'a> {
    /// Decode from `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        Dec { bytes }
    }

    /// Number of unread bytes.
    pub fn remaining(&self) -> usize {
        self.bytes.len()
    }

    /// Succeed only if the payload was consumed exactly.
    pub fn finish(&self) -> Result<(), CodecError> {
        if self.bytes.is_empty() {
            Ok(())
        } else {
            Err(CodecError::Trailing {
                left: self.bytes.len(),
            })
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.bytes.len() < n {
            return Err(CodecError::Eof);
        }
        let (head, tail) = self.bytes.split_at(n);
        self.bytes = tail;
        Ok(head)
    }

    /// Read and check a 4-byte magic plus a `u16` version; the version must
    /// be in `1..=supported`.
    pub fn magic(&mut self, expected: [u8; 4], supported: u16) -> Result<u16, CodecError> {
        let found: [u8; 4] = self.take(4)?.try_into().expect("took 4 bytes");
        if found != expected {
            return Err(CodecError::BadMagic { expected, found });
        }
        let version = self.u16()?;
        if version == 0 || version > supported {
            return Err(CodecError::UnsupportedVersion {
                found: version,
                supported,
            });
        }
        Ok(version)
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, CodecError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read a little-endian `i64`.
    pub fn i64(&mut self) -> Result<i64, CodecError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read an `f64` from its IEEE-754 bit pattern.
    pub fn f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Read a bool byte (must be 0 or 1).
    pub fn bool(&mut self) -> Result<bool, CodecError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(CodecError::BadValue { what: "bool" }),
        }
    }

    /// Read a `usize` stored as a `u64`.
    pub fn usize(&mut self) -> Result<usize, CodecError> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| CodecError::BadValue { what: "usize" })
    }

    /// Read a sequence length prefix, validating that `len * elem_bytes`
    /// elements can still fit in the remaining payload (so corrupted
    /// prefixes cannot trigger huge allocations).
    pub fn seq_len(&mut self, what: &'static str, elem_bytes: usize) -> Result<usize, CodecError> {
        let n = self.u64()?;
        let need = (n as u128) * (elem_bytes.max(1) as u128);
        if need > self.bytes.len() as u128 {
            return Err(CodecError::BadLength { what });
        }
        Ok(n as usize)
    }

    /// Read a length-prefixed `u64` sequence.
    pub fn seq_u64(&mut self, what: &'static str) -> Result<Vec<u64>, CodecError> {
        let n = self.seq_len(what, 8)?;
        (0..n).map(|_| self.u64()).collect()
    }

    /// Read a length-prefixed `i64` sequence.
    pub fn seq_i64(&mut self, what: &'static str) -> Result<Vec<i64>, CodecError> {
        let n = self.seq_len(what, 8)?;
        (0..n).map(|_| self.i64()).collect()
    }

    /// Read a length-prefixed `f64` sequence.
    pub fn seq_f64(&mut self, what: &'static str) -> Result<Vec<f64>, CodecError> {
        let n = self.seq_len(what, 8)?;
        (0..n).map(|_| self.f64()).collect()
    }

    /// Read a length-prefixed bool sequence.
    pub fn seq_bool(&mut self, what: &'static str) -> Result<Vec<bool>, CodecError> {
        let n = self.seq_len(what, 1)?;
        (0..n).map(|_| self.bool()).collect()
    }

    /// Read a length-prefixed blob (a nested payload). Decode it with a
    /// fresh [`Dec`] and close with [`Dec::finish`].
    pub fn blob(&mut self) -> Result<&'a [u8], CodecError> {
        let n = self.seq_len("blob", 1)?;
        self.take(n)
    }
}

/// Copy a decoded sequence into an existing slice of the same length (the
/// shape check that ties a payload to the state being restored into).
pub fn restore_seq<T: Copy>(
    what: &'static str,
    target: &mut [T],
    decoded: &[T],
) -> Result<(), CodecError> {
    if target.len() != decoded.len() {
        return Err(CodecError::Mismatch {
            what,
            expected: target.len() as u64,
            found: decoded.len() as u64,
        });
    }
    target.copy_from_slice(decoded);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        let mut enc = Enc::new();
        enc.magic(*b"TEST", 3);
        enc.u8(7);
        enc.u16(300);
        enc.u32(70_000);
        enc.u64(u64::MAX);
        enc.i64(-42);
        enc.f64(0.1);
        enc.bool(true);
        enc.usize(99);
        let bytes = enc.into_bytes();

        let mut dec = Dec::new(&bytes);
        assert_eq!(dec.magic(*b"TEST", 3).unwrap(), 3);
        assert_eq!(dec.u8().unwrap(), 7);
        assert_eq!(dec.u16().unwrap(), 300);
        assert_eq!(dec.u32().unwrap(), 70_000);
        assert_eq!(dec.u64().unwrap(), u64::MAX);
        assert_eq!(dec.i64().unwrap(), -42);
        assert_eq!(dec.f64().unwrap().to_bits(), (0.1f64).to_bits());
        assert!(dec.bool().unwrap());
        assert_eq!(dec.usize().unwrap(), 99);
        dec.finish().unwrap();
    }

    #[test]
    fn sequences_and_blobs_round_trip() {
        let mut enc = Enc::new();
        enc.seq_u64(&[1, 2, 3]);
        enc.seq_i64(&[-1, 0, 1]);
        enc.seq_f64(&[0.5, -2.25]);
        enc.seq_bool(&[true, false]);
        enc.blob(b"nested");
        let bytes = enc.into_bytes();

        let mut dec = Dec::new(&bytes);
        assert_eq!(dec.seq_u64("a").unwrap(), vec![1, 2, 3]);
        assert_eq!(dec.seq_i64("b").unwrap(), vec![-1, 0, 1]);
        assert_eq!(dec.seq_f64("c").unwrap(), vec![0.5, -2.25]);
        assert_eq!(dec.seq_bool("d").unwrap(), vec![true, false]);
        assert_eq!(dec.blob().unwrap(), b"nested");
        dec.finish().unwrap();
    }

    #[test]
    fn truncation_at_every_length_is_a_typed_error() {
        let mut enc = Enc::new();
        enc.magic(*b"TEST", 1);
        enc.seq_u64(&[5, 6]);
        enc.blob(b"xyz");
        let bytes = enc.into_bytes();
        for cut in 0..bytes.len() {
            let mut dec = Dec::new(&bytes[..cut]);
            let r = (|| -> Result<(), CodecError> {
                dec.magic(*b"TEST", 1)?;
                dec.seq_u64("s")?;
                dec.blob()?;
                dec.finish()
            })();
            assert!(r.is_err(), "cut at {cut} must fail");
        }
        // The full payload decodes.
        let mut dec = Dec::new(&bytes);
        dec.magic(*b"TEST", 1).unwrap();
        dec.seq_u64("s").unwrap();
        dec.blob().unwrap();
        dec.finish().unwrap();
    }

    #[test]
    fn corrupted_envelopes_are_typed_errors() {
        let mut enc = Enc::new();
        enc.magic(*b"TEST", 1);
        let mut bytes = enc.into_bytes();

        let mut wrong_magic = bytes.clone();
        wrong_magic[0] = b'X';
        assert!(matches!(
            Dec::new(&wrong_magic).magic(*b"TEST", 1),
            Err(CodecError::BadMagic { .. })
        ));

        bytes[4] = 9; // version 9 in a build that supports 1
        assert!(matches!(
            Dec::new(&bytes).magic(*b"TEST", 1),
            Err(CodecError::UnsupportedVersion {
                found: 9,
                supported: 1
            })
        ));
    }

    #[test]
    fn oversized_length_prefix_is_rejected_before_allocation() {
        let mut enc = Enc::new();
        enc.u64(u64::MAX); // claims ~2^64 elements
        let bytes = enc.into_bytes();
        assert_eq!(
            Dec::new(&bytes).seq_u64("huge"),
            Err(CodecError::BadLength { what: "huge" })
        );
        assert_eq!(
            Dec::new(&bytes).blob().unwrap_err(),
            CodecError::BadLength { what: "blob" }
        );
    }

    #[test]
    fn trailing_bytes_are_reported() {
        let mut enc = Enc::new();
        enc.u64(1);
        enc.u8(0xFF);
        let bytes = enc.into_bytes();
        let mut dec = Dec::new(&bytes);
        dec.u64().unwrap();
        assert_eq!(dec.finish(), Err(CodecError::Trailing { left: 1 }));
    }

    #[test]
    fn restore_seq_checks_shape() {
        let mut target = [0i64; 3];
        restore_seq("v", &mut target, &[1, 2, 3]).unwrap();
        assert_eq!(target, [1, 2, 3]);
        assert_eq!(
            restore_seq("v", &mut target, &[1, 2]),
            Err(CodecError::Mismatch {
                what: "v",
                expected: 3,
                found: 2
            })
        );
    }

    #[test]
    fn errors_display() {
        for e in [
            CodecError::Eof,
            CodecError::Trailing { left: 3 },
            CodecError::BadTag {
                what: "kind",
                tag: 99,
            },
            CodecError::BadValue { what: "bool" },
            CodecError::UnsupportedNode,
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
