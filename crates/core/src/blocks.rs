//! Partitioning time into constant-variability blocks — Section 3.1.
//!
//! The coordinator divides time into blocks `B_j = [n_j + 1, n_{j+1}]` such
//! that at each block end it knows `n` and `f(n)` **exactly**, and each
//! block increases the variability by at least 1/5. The machinery:
//!
//! * each site keeps `c_i` (updates since it last sent `c_i`) and `f_i`
//!   (change in `f` since the last broadcast); whenever `c_i = ⌈2^{r−1}⌉`
//!   the site sends `c_i`;
//! * the coordinator accumulates `t̂ += c_i`; when `t̂ ≥ t_j` it requests
//!   all `(c_i, f_i)`, recomputes `f(n_j)` exactly, picks the new radius
//!   `r` (`2^r·2k ≤ |f(n_j)| < 2^r·4k`, or `r = 0` if `|f(n_j)| < 4k`),
//!   sets `t_{j+1} = ⌈2^{r−1}⌉·k`, and broadcasts `r`.
//!
//! Consequences proved in the paper and asserted by our tests/experiments:
//!
//! * `⌈2^{r−1}⌉·k ≤ n_{j+1} − n_j ≤ 2^r·k`;
//! * `r = 0` blocks: `|f(n) − f(n_j)| ≤ k` and `|f(n)| ≤ 5k` inside;
//! * `r ≥ 1` blocks: `|f(n) − f(n_j)| ≤ 2^r·k` and
//!   `2^r·k ≤ |f(n)| ≤ 2^r·5k` inside;
//! * at most `5k` partition messages per block, and every block raises the
//!   variability by a constant. (The paper states `Δv ≥ 1/5` using a block
//!   length of `2^r·k`; its own length lower bound is `⌈2^{r−1}⌉·k`, which
//!   yields the safe constant `Δv ≥ 1/10` — each of the ≥ `2^{r−1}·k`
//!   steps contributes ≥ `1/(2^r·5k)`. We assert `1/10` and report the
//!   measured per-block gains, which land between the two, in E4.)

use dsv_net::codec::{CodecError, Dec, Enc};
use dsv_net::{CoordOutbox, CoordinatorNode, Outbox, SiteNode, Time, WireSize};

/// `⌈2^{r−1}⌉`: the per-site count threshold and the unit of the block
/// quota.
#[inline]
pub fn threshold_for(r: u32) -> u64 {
    if r == 0 {
        1
    } else {
        1u64 << (r - 1)
    }
}

/// The radius for a block starting at `|f| = f_abs` with `k` sites:
/// `r = 0` if `f_abs < 4k`, else the unique `r ≥ 1` with
/// `2^r·2k ≤ f_abs < 2^r·4k`.
#[inline]
pub fn radius_for(f_abs: u64, k: usize) -> u32 {
    let k = k as u64;
    if f_abs < 4 * k {
        0
    } else {
        (f_abs / (2 * k)).ilog2()
    }
}

/// Static configuration of the partitioner.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockConfig {
    /// Number of sites `k`.
    pub k: usize,
}

impl BlockConfig {
    /// Configuration for `k ≥ 1` sites.
    pub fn new(k: usize) -> Self {
        assert!(k >= 1);
        BlockConfig { k }
    }
}

/// Site-side partitioner state (embedded by every tracker's site node).
#[derive(Debug, Clone)]
pub struct BlockSite {
    c: u64,
    f_i: i64,
    threshold: u64,
}

impl Default for BlockSite {
    fn default() -> Self {
        Self::new()
    }
}

impl BlockSite {
    /// Fresh site state for the initial `r = 0` block.
    pub fn new() -> Self {
        BlockSite {
            c: 0,
            f_i: 0,
            threshold: threshold_for(0),
        }
    }

    /// Count one update. Returns `Some(c)` when the count threshold fires
    /// (the site must send `c` to the coordinator; the counter resets).
    pub fn on_update(&mut self, delta: i64) -> Option<u64> {
        self.c += 1;
        self.f_i += delta;
        if self.c == self.threshold {
            let sent = self.c;
            self.c = 0;
            Some(sent)
        } else {
            None
        }
    }

    /// Number of further counted updates guaranteed **not** to fire the
    /// count threshold — the headroom the batched fast path may absorb
    /// before [`on_update`](Self::on_update) must run again.
    pub fn until_fire(&self) -> u64 {
        self.threshold - self.c - 1
    }

    /// Bulk fast path: count `n` updates summing to `sum`, none of which
    /// fires (caller must stay within [`until_fire`](Self::until_fire)).
    /// State change is bit-identical to `n` non-firing
    /// [`on_update`](Self::on_update) calls.
    pub fn absorb_run(&mut self, n: u64, sum: i64) {
        debug_assert!(self.c + n < self.threshold, "absorb_run past headroom");
        self.c += n;
        self.f_i += sum;
    }

    /// Answer a coordinator report request with `(c_i, f_i)`. Sending `c_i`
    /// resets it (it has now been "sent to the coordinator"); `f_i` resets
    /// only at the next block broadcast.
    pub fn report(&mut self) -> (u64, i64) {
        let c = std::mem::take(&mut self.c);
        (c, self.f_i)
    }

    /// Handle the new-block broadcast carrying radius `r`.
    pub fn start_block(&mut self, r: u32) {
        self.f_i = 0;
        self.threshold = threshold_for(r);
    }

    /// Serialize the partitioner's site-side state (snapshot seam).
    pub fn save_state(&self, enc: &mut Enc) {
        enc.u64(self.c);
        enc.i64(self.f_i);
        enc.u64(self.threshold);
    }

    /// Restore state written by [`save_state`](Self::save_state).
    pub fn load_state(&mut self, dec: &mut Dec) -> Result<(), CodecError> {
        self.c = dec.u64()?;
        self.f_i = dec.i64()?;
        self.threshold = dec.u64()?;
        Ok(())
    }

    /// Current unsent update count (diagnostics).
    pub fn pending(&self) -> u64 {
        self.c
    }

    /// Change in `f` at this site since the last broadcast (diagnostics).
    pub fn drift_since_broadcast(&self) -> i64 {
        self.f_i
    }
}

/// Completed-block record, for the E4 experiments and invariant tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockInfo {
    /// Block index `j` (0-based).
    pub index: u64,
    /// Radius `r` in force *during* the block.
    pub r: u32,
    /// `n_j`: the timestep at which the block started (exclusive).
    pub start: Time,
    /// `n_{j+1}`: the timestep at which the block ended (inclusive).
    pub end: Time,
    /// `f(n_j)`.
    pub f_start: i64,
    /// `f(n_{j+1})`.
    pub f_end: i64,
}

impl BlockInfo {
    /// `n_{j+1} − n_j`, the number of updates in the block.
    pub fn len(&self) -> u64 {
        self.end - self.start
    }

    /// Whether the block is degenerate (cannot happen; for clippy's sake).
    pub fn is_empty(&self) -> bool {
        self.end == self.start
    }
}

/// Coordinator-side partitioner state (embedded by every tracker's
/// coordinator node).
#[derive(Debug, Clone)]
pub struct BlockCoordinator {
    k: usize,
    r: u32,
    t_hat: u64,
    quota: u64,
    f_sync: i64,
    collecting: bool,
    replies: usize,
    reply_f_sum: i64,
    block_index: u64,
    block_start: Time,
    log: Option<Vec<BlockInfo>>,
}

impl BlockCoordinator {
    /// Fresh coordinator state: block 0 starts at time 0 with `f(0) = 0`,
    /// `r = 0`, quota `t_1 = k`.
    pub fn new(cfg: BlockConfig) -> Self {
        BlockCoordinator {
            k: cfg.k,
            r: 0,
            t_hat: 0,
            quota: threshold_for(0) * cfg.k as u64,
            f_sync: 0,
            collecting: false,
            replies: 0,
            reply_f_sum: 0,
            block_index: 0,
            block_start: 0,
            log: None,
        }
    }

    /// Record a [`BlockInfo`] per completed block (costs memory; used by
    /// experiments).
    pub fn enable_log(&mut self) {
        if self.log.is_none() {
            self.log = Some(Vec::new());
        }
    }

    /// The completed-block log, if enabled.
    pub fn log(&self) -> Option<&[BlockInfo]> {
        self.log.as_deref()
    }

    /// Radius `r` of the current block.
    pub fn r(&self) -> u32 {
        self.r
    }

    /// `f(n_j)`: the exact value at the last block boundary.
    pub fn f_sync(&self) -> i64 {
        self.f_sync
    }

    /// Index of the current (incomplete) block.
    pub fn block_index(&self) -> u64 {
        self.block_index
    }

    /// Whether a report collection is in flight.
    pub fn collecting(&self) -> bool {
        self.collecting
    }

    /// Number of sites.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Serialize the partitioner's coordinator-side state, including the
    /// completed-block log if enabled (snapshot seam).
    pub fn save_state(&self, enc: &mut Enc) {
        enc.usize(self.k);
        enc.u32(self.r);
        enc.u64(self.t_hat);
        enc.u64(self.quota);
        enc.i64(self.f_sync);
        enc.bool(self.collecting);
        enc.usize(self.replies);
        enc.i64(self.reply_f_sum);
        enc.u64(self.block_index);
        enc.u64(self.block_start);
        match &self.log {
            None => enc.bool(false),
            Some(log) => {
                enc.bool(true);
                enc.seq_len(log.len());
                for b in log {
                    enc.u64(b.index);
                    enc.u32(b.r);
                    enc.u64(b.start);
                    enc.u64(b.end);
                    enc.i64(b.f_start);
                    enc.i64(b.f_end);
                }
            }
        }
    }

    /// Restore state written by [`save_state`](Self::save_state); the
    /// serialized site count must match this coordinator's.
    pub fn load_state(&mut self, dec: &mut Dec) -> Result<(), CodecError> {
        let k = dec.usize()?;
        if k != self.k {
            return Err(CodecError::Mismatch {
                what: "partitioner site count",
                expected: self.k as u64,
                found: k as u64,
            });
        }
        self.r = dec.u32()?;
        self.t_hat = dec.u64()?;
        self.quota = dec.u64()?;
        self.f_sync = dec.i64()?;
        self.collecting = dec.bool()?;
        self.replies = dec.usize()?;
        self.reply_f_sum = dec.i64()?;
        self.block_index = dec.u64()?;
        self.block_start = dec.u64()?;
        self.log = if dec.bool()? {
            let n = dec.seq_len("block log", 44)?;
            let mut log = Vec::with_capacity(n);
            for _ in 0..n {
                log.push(BlockInfo {
                    index: dec.u64()?,
                    r: dec.u32()?,
                    start: dec.u64()?,
                    end: dec.u64()?,
                    f_start: dec.i64()?,
                    f_end: dec.i64()?,
                });
            }
            Some(log)
        } else {
            None
        };
        Ok(())
    }

    /// Process a count message `c_i`. Returns `true` when the block quota
    /// is reached and the caller must issue a report request to all sites.
    pub fn on_count(&mut self, c: u64) -> bool {
        self.t_hat += c;
        if !self.collecting && self.t_hat >= self.quota {
            self.collecting = true;
            true
        } else {
            false
        }
    }

    /// Process one report reply `(c_i, f_i)` at time `t`. When the `k`-th
    /// reply arrives the block is finalized: returns `Some(new_r)` and the
    /// caller must broadcast the new radius.
    pub fn on_report(&mut self, t: Time, c: u64, f_i: i64) -> Option<u32> {
        assert!(self.collecting, "report outside a collection");
        self.t_hat += c;
        self.reply_f_sum += f_i;
        self.replies += 1;
        if self.replies < self.k {
            return None;
        }
        // Block j ends at time t: f(n_{j+1}) = f(n_j) + Σ_i f_i, exactly.
        let f_start = self.f_sync;
        self.f_sync += self.reply_f_sum;
        let new_r = radius_for(self.f_sync.unsigned_abs(), self.k);
        if let Some(log) = self.log.as_mut() {
            log.push(BlockInfo {
                index: self.block_index,
                r: self.r,
                start: self.block_start,
                end: t,
                f_start,
                f_end: self.f_sync,
            });
        }
        self.block_index += 1;
        self.block_start = t;
        self.r = new_r;
        self.t_hat = 0;
        self.quota = threshold_for(new_r) * self.k as u64;
        self.collecting = false;
        self.replies = 0;
        self.reply_f_sum = 0;
        Some(new_r)
    }
}

// ---------------------------------------------------------------------------
// A standalone "blocks only" protocol: runs just the partitioner, with the
// coordinator estimating f by its last sync point. Used by experiment E4 to
// validate the §3.1 facts in isolation.
// ---------------------------------------------------------------------------

/// Site → coordinator messages of the partitioner.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockUp {
    /// `c_i` reached the threshold.
    Count(u64),
    /// Reply to a report request: `(c_i, f_i)`.
    Report {
        /// `c_i`: unsent update count at the site.
        c: u64,
        /// `f_i`: the site's drift in `f` since the last broadcast.
        f: i64,
    },
}

impl WireSize for BlockUp {
    fn words(&self) -> usize {
        match self {
            BlockUp::Count(_) => 1,
            BlockUp::Report { .. } => 2,
        }
    }
}

/// Coordinator → site messages of the partitioner.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockDown {
    /// Request `(c_i, f_i)` from every site.
    Request,
    /// New block with radius `r`.
    NewBlock {
        /// The new block's radius.
        r: u32,
    },
}

impl WireSize for BlockDown {
    fn words(&self) -> usize {
        1
    }
}

/// Site node running only the partitioner.
#[derive(Debug, Clone, Default)]
pub struct BlockOnlySite {
    inner: BlockSite,
}

impl BlockOnlySite {
    /// Fresh site.
    pub fn new() -> Self {
        Self::default()
    }
}

impl SiteNode for BlockOnlySite {
    type In = i64;
    type Up = BlockUp;
    type Down = BlockDown;

    fn on_update(&mut self, _t: Time, delta: i64, out: &mut Outbox<BlockUp>) {
        if let Some(c) = self.inner.on_update(delta) {
            out.send(BlockUp::Count(c));
        }
    }

    fn on_down(&mut self, _t: Time, msg: &BlockDown, _is_request: bool, out: &mut Outbox<BlockUp>) {
        match msg {
            BlockDown::Request => {
                let (c, f) = self.inner.report();
                out.send(BlockUp::Report { c, f });
            }
            BlockDown::NewBlock { r } => self.inner.start_block(*r),
        }
    }
}

/// Coordinator node running only the partitioner; estimates `f` by the
/// last block-end sync (no in-block guarantee — trackers add that).
#[derive(Debug, Clone)]
pub struct BlockOnlyCoord {
    inner: BlockCoordinator,
}

impl BlockOnlyCoord {
    /// Fresh coordinator for `k` sites, with block logging enabled.
    pub fn new(k: usize) -> Self {
        let mut inner = BlockCoordinator::new(BlockConfig::new(k));
        inner.enable_log();
        BlockOnlyCoord { inner }
    }

    /// Access the partitioner state (block log, radius, ...).
    pub fn blocks(&self) -> &BlockCoordinator {
        &self.inner
    }
}

impl CoordinatorNode for BlockOnlyCoord {
    type Up = BlockUp;
    type Down = BlockDown;

    fn on_up(&mut self, t: Time, _site: usize, msg: BlockUp, out: &mut CoordOutbox<BlockDown>) {
        match msg {
            BlockUp::Count(c) => {
                if self.inner.on_count(c) {
                    out.request(BlockDown::Request);
                }
            }
            BlockUp::Report { c, f } => {
                if let Some(r) = self.inner.on_report(t, c, f) {
                    out.broadcast(BlockDown::NewBlock { r });
                }
            }
        }
    }

    fn estimate(&self) -> i64 {
        self.inner.f_sync()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsv_net::StarSim;

    #[test]
    fn threshold_and_radius_formulas() {
        assert_eq!(threshold_for(0), 1);
        assert_eq!(threshold_for(1), 1);
        assert_eq!(threshold_for(2), 2);
        assert_eq!(threshold_for(5), 16);
        // r = 0 below 4k.
        assert_eq!(radius_for(0, 4), 0);
        assert_eq!(radius_for(15, 4), 0);
        // 2^r·2k ≤ f < 2^r·4k with k = 4.
        assert_eq!(radius_for(16, 4), 1); // 16 ∈ [16, 32)
        assert_eq!(radius_for(31, 4), 1);
        assert_eq!(radius_for(32, 4), 2); // 32 ∈ [32, 64)
        assert_eq!(radius_for(1 << 20, 4), 17); // 2^20 / 8 = 2^17
    }

    #[test]
    fn radius_invariant_holds_for_all_f() {
        for k in [1usize, 3, 8] {
            for f in 0u64..10_000 {
                let r = radius_for(f, k);
                if f < 4 * k as u64 {
                    assert_eq!(r, 0);
                } else {
                    assert!(r >= 1);
                    let lo = (1u64 << r) * 2 * k as u64;
                    let hi = (1u64 << r) * 4 * k as u64;
                    assert!(
                        (lo..hi).contains(&f),
                        "k={k}, f={f}: r={r} gives [{lo},{hi})"
                    );
                }
            }
        }
    }

    #[test]
    fn site_threshold_fires_every_threshold_updates() {
        let mut s = BlockSite::new();
        s.start_block(3); // threshold 4
        let mut fired = 0;
        for i in 0..16 {
            if s.on_update(1).is_some() {
                fired += 1;
                assert_eq!((i + 1) % 4, 0);
            }
        }
        assert_eq!(fired, 4);
        assert_eq!(s.pending(), 0);
        assert_eq!(s.drift_since_broadcast(), 16);
    }

    #[test]
    fn site_report_resets_count_not_drift() {
        let mut s = BlockSite::new();
        s.start_block(4); // threshold 8
        for _ in 0..5 {
            s.on_update(-1);
        }
        let (c, f) = s.report();
        assert_eq!((c, f), (5, -5));
        assert_eq!(s.pending(), 0);
        assert_eq!(s.drift_since_broadcast(), -5);
        s.start_block(0);
        assert_eq!(s.drift_since_broadcast(), 0);
    }

    fn run_blocks(k: usize, deltas: &[i64]) -> (StarSim<BlockOnlySite, BlockOnlyCoord>, Vec<i64>) {
        let mut sim = StarSim::with_k(k, |_| BlockOnlySite::new(), BlockOnlyCoord::new(k));
        let mut values = Vec::with_capacity(deltas.len());
        let mut f = 0i64;
        for (i, &d) in deltas.iter().enumerate() {
            f += d;
            values.push(f);
            sim.step(i % k, d);
        }
        (sim, values)
    }

    #[test]
    fn block_boundaries_are_exact_syncs() {
        let k = 4;
        let deltas: Vec<i64> = (0..5_000)
            .map(|i| if i % 7 == 3 { -1 } else { 1 })
            .collect();
        let (sim, values) = run_blocks(k, &deltas);
        let log = sim.coordinator().blocks().log().unwrap();
        assert!(!log.is_empty());
        for b in log {
            assert_eq!(
                b.f_end,
                values[(b.end - 1) as usize],
                "block {} must sync exactly at its end",
                b.index
            );
        }
    }

    #[test]
    fn block_length_bounds_hold() {
        let k = 4;
        let deltas: Vec<i64> = (0..20_000).map(|_| 1).collect(); // monotone
        let (sim, _) = run_blocks(k, &deltas);
        let log = sim.coordinator().blocks().log().unwrap();
        assert!(log.len() > 5);
        for b in log {
            let th = threshold_for(b.r);
            assert!(
                b.len() >= th * k as u64 && b.len() <= (1u64 << b.r) * k as u64,
                "block {}: len {} outside [{}k, 2^r k] for r={}",
                b.index,
                b.len(),
                th,
                b.r
            );
        }
    }

    #[test]
    fn f_range_inside_blocks() {
        let k = 2;
        // A walk that grows then shrinks, to exercise several radii.
        let mut deltas: Vec<i64> = vec![1; 3_000];
        deltas.extend(std::iter::repeat_n(-1, 2_500));
        let (sim, values) = run_blocks(k, &deltas);
        let log = sim.coordinator().blocks().log().unwrap();
        for b in log {
            let bound = (1u64 << b.r) * k as u64;
            // The paper's in-block facts: |f(n) − f(n_j)| ≤ 2^r·k, and |f|
            // confined to [2^r·k, 2^r·5k] for r ≥ 1 (≤ 5k for r = 0).
            for t in b.start..b.end {
                let f_n = values[t as usize];
                assert!(
                    (f_n - b.f_start).unsigned_abs() <= bound,
                    "block {}: drift exceeded at t={}",
                    b.index,
                    t + 1
                );
                let abs = f_n.unsigned_abs();
                if b.r >= 1 {
                    assert!(abs >= (1u64 << b.r) * k as u64);
                    assert!(abs <= (1u64 << b.r) * 5 * k as u64);
                } else {
                    assert!(abs <= 5 * k as u64);
                }
            }
        }
    }

    #[test]
    fn per_block_message_cost_at_most_5k() {
        let k = 8;
        let deltas: Vec<i64> = (0..30_000)
            .map(|i| if i % 5 == 4 { -1 } else { 1 })
            .collect();
        let mut sim = StarSim::with_k(k, |_| BlockOnlySite::new(), BlockOnlyCoord::new(k));
        let mut prev = sim.stats().clone();
        let mut prev_blocks = 0usize;
        let mut per_block_msgs: Vec<u64> = Vec::new();
        for (i, &d) in deltas.iter().enumerate() {
            sim.step(i % k, d);
            let nblocks = sim.coordinator().blocks().log().unwrap().len();
            if nblocks > prev_blocks {
                let now = sim.stats().clone();
                per_block_msgs.push(now.since(&prev).total_messages());
                prev = now;
                prev_blocks = nblocks;
            }
        }
        assert!(per_block_msgs.len() > 10);
        for (j, &m) in per_block_msgs.iter().enumerate() {
            assert!(m <= 5 * k as u64, "block {j} used {m} messages > 5k");
        }
    }

    #[test]
    fn per_block_variability_gain_at_least_one_tenth() {
        use crate::variability::VariabilityMeter;
        let k = 4;
        let deltas: Vec<i64> = (0..20_000)
            .map(|i| if i % 3 == 2 { -1 } else { 1 })
            .collect();
        let mut sim = StarSim::with_k(k, |_| BlockOnlySite::new(), BlockOnlyCoord::new(k));
        let mut meter = VariabilityMeter::new();
        let mut v_series = Vec::with_capacity(deltas.len());
        for (i, &d) in deltas.iter().enumerate() {
            meter.observe(d);
            v_series.push(meter.value());
            sim.step(i % k, d);
        }
        let log = sim.coordinator().blocks().log().unwrap();
        assert!(log.len() > 5);
        for b in log {
            let v_start = if b.start == 0 {
                0.0
            } else {
                v_series[(b.start - 1) as usize]
            };
            let v_end = v_series[(b.end - 1) as usize];
            assert!(
                v_end - v_start >= 0.1 - 1e-9,
                "block {}: Δv = {} < 1/10",
                b.index,
                v_end - v_start
            );
        }
    }

    #[test]
    fn k_equals_one_works() {
        let (sim, values) = run_blocks(1, &vec![1i64; 100]);
        let log = sim.coordinator().blocks().log().unwrap();
        assert!(!log.is_empty());
        // Coordinator's estimate equals f at the last sync.
        let last = log.last().unwrap();
        assert_eq!(sim.estimate(), values[(last.end - 1) as usize]);
    }
}
