//! Columnar quiet-prefix kernels shared by the `absorb_quiet` rewrites.
//!
//! Every counter-kind quiet condition in this crate is (or contains) a
//! *band* check: a running sum must stay inside a fixed interval
//! `[lo, hi]` for the update to be provably message-free. The helpers here
//! evaluate that check over whole slices and whole `(value, count)` runs
//! instead of one update at a time:
//!
//! * [`in_band_prefix`] — chunked prefix-sum with running min/max, so the
//!   in-band check compiles to straight-line arithmetic over 64-element
//!   chunks (autovectorizable) and only the chunk that leaves the band is
//!   rescanned scalar to find the exact stop index;
//! * [`run_in_band`] — the run-length special case: for a run of `n`
//!   copies of `v` the partial sums are an arithmetic progression, so the
//!   longest in-band prefix has a closed form and costs O(1).
//!
//! Both are *exact*: they absorb precisely the updates the per-update
//! scalar loop would have absorbed, never more — which is what keeps the
//! columnar path bit-identical to the oracle.

/// Chunk width for the vector-friendly prefix scan. 64 × i64 = one page of
/// registers on AVX-512, four unrolled iterations on 128-bit NEON/SSE —
/// small enough to keep the out-of-band rescans cheap, large enough that
/// the in-band fast path dominates.
const CHUNK: usize = 64;

/// Longest prefix of `deltas` whose running sum (seeded with `start`)
/// stays inside `[lo, hi]` **at every step**, returned as
/// `(len, final_sum)` where `final_sum` is the running sum after `len`
/// steps (`start` if `len == 0`).
///
/// Exactly equivalent to the scalar loop
/// `while acc + d in [lo, hi] { acc += d }` — including on overflow, where
/// both paths wrap in release builds and panic in debug builds — but scans
/// in 64-wide blocks: a block whose running min/max stay in band is
/// absorbed wholesale; the first block that leaves the band is rescanned
/// scalar to the exact stop index.
///
/// `start` itself is not checked against the band (the caller's state is
/// presumed valid); only post-update sums are.
pub fn in_band_prefix(start: i64, deltas: &[i64], lo: i64, hi: i64) -> (usize, i64) {
    debug_assert!(lo <= hi);
    let mut acc = start;
    let mut n = 0usize;
    for chunk in deltas.chunks(CHUNK) {
        // Straight-line pass: prefix sums + running min/max. No branches
        // inside the loop body, so the compiler can vectorize it.
        let mut sum = acc;
        let mut min = i64::MAX;
        let mut max = i64::MIN;
        for &d in chunk {
            sum = sum.wrapping_add(d);
            min = min.min(sum);
            max = max.max(sum);
        }
        if min >= lo && max <= hi {
            acc = sum;
            n += chunk.len();
            continue;
        }
        // This chunk leaves the band somewhere: rescan it scalar for the
        // exact stop index, matching the per-update loop step for step.
        for &d in chunk {
            let next = acc.wrapping_add(d);
            if next < lo || next > hi {
                return (n, acc);
            }
            acc = next;
            n += 1;
        }
        // Unreachable when min/max said the chunk leaves the band, but a
        // wrapping_add overflow can make them disagree with the scalar
        // walk; falling through and stopping here is the safe answer.
        return (n, acc);
    }
    (n, acc)
}

/// Longest prefix of a run of `n` copies of `v` whose running sum (seeded
/// with `start`) stays inside `[lo, hi]` at every step, returned as
/// `(len, final_sum)`.
///
/// The partial sums `start + i·v` are monotone in `i`, so the answer is a
/// single division: O(1) per run segment regardless of `n`. All interior
/// arithmetic is `i128`, so there is no overflow for any `i64` inputs.
pub fn run_in_band(start: i64, v: i64, n: u64, lo: i64, hi: i64) -> (u64, i64) {
    debug_assert!(lo <= hi);
    if n == 0 {
        return (0, start);
    }
    if v == 0 {
        // Every step re-lands on `start`; quiet iff `start` is in band.
        return if start >= lo && start <= hi {
            (n, start)
        } else {
            (0, start)
        };
    }
    let (start, v, lo, hi) = (start as i128, v as i128, lo as i128, hi as i128);
    let j = if v > 0 {
        if start + v > hi {
            0
        } else {
            // Largest j with start + j·v ≤ hi (the minimum over the
            // prefix is start + v ≥ lo is implied for j ≥ 1 only if
            // start + v ≥ lo; check it explicitly).
            if start + v < lo {
                0
            } else {
                (((hi - start) / v) as u64).min(n)
            }
        }
    } else {
        // v < 0: sums decrease; the binding constraint is `lo`.
        if start + v < lo || start + v > hi {
            0
        } else {
            (((start - lo) / (-v)) as u64).min(n)
        }
    };
    (j, (start + j as i128 * v) as i64)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The per-update oracle both kernels must match exactly.
    fn scalar(start: i64, deltas: &[i64], lo: i64, hi: i64) -> (usize, i64) {
        let mut acc = start;
        let mut n = 0;
        for &d in deltas {
            let next = acc.wrapping_add(d);
            if next < lo || next > hi {
                break;
            }
            acc = next;
            n += 1;
        }
        (n, acc)
    }

    #[test]
    fn prefix_matches_scalar_on_band_hugging_streams() {
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for &(lo, hi) in &[(-5i64, 5i64), (0, 0), (-1, 3), (-1000, 1000), (3, 9)] {
            for len in [0usize, 1, 63, 64, 65, 130, 1000] {
                let start = (lo + hi) / 2;
                let deltas: Vec<i64> = (0..len).map(|_| (rng() % 7) as i64 - 3).collect();
                assert_eq!(
                    in_band_prefix(start, &deltas, lo, hi),
                    scalar(start, &deltas, lo, hi),
                    "lo={lo} hi={hi} len={len}"
                );
            }
        }
    }

    #[test]
    fn prefix_stops_mid_chunk_exactly() {
        // 100 ones into a band of width 70: stops at exactly 70 - start.
        let deltas = vec![1i64; 100];
        assert_eq!(in_band_prefix(0, &deltas, -70, 70), (70, 70));
        assert_eq!(in_band_prefix(5, &deltas, -70, 70), (65, 70));
        // Alternating ±1 never leaves a width-1 band.
        let alt: Vec<i64> = (0..257).map(|i| if i % 2 == 0 { 1 } else { -1 }).collect();
        assert_eq!(in_band_prefix(0, &alt, 0, 1), (257, 1));
        assert_eq!(in_band_prefix(0, &alt, -1, 0), (0, 0));
    }

    #[test]
    fn run_matches_expansion() {
        for &(start, v, n, lo, hi) in &[
            (0i64, 1i64, 100u64, -70i64, 70i64),
            (0, -1, 100, -70, 70),
            (5, 0, 42, -70, 70),
            (80, 0, 42, -70, 70),
            (0, 3, 1000, -10, 10),
            (0, -3, 1000, -10, 10),
            (10, 1, 0, -70, 70),
            (-70, -1, 5, -70, 70),
            (70, 1, 5, -70, 70),
            (i64::MAX - 5, 1, 3, i64::MIN, i64::MAX),
            (i64::MIN + 5, -1, 3, i64::MIN, i64::MAX),
        ] {
            let expanded: Vec<i64> = std::iter::repeat_n(v, n as usize).collect();
            let (sn, sacc) = scalar(start, &expanded, lo, hi);
            let (rn, racc) = run_in_band(start, v, n, lo, hi);
            assert_eq!((rn, racc), (sn as u64, sacc), "start={start} v={v} n={n}");
        }
    }

    #[test]
    fn run_extremes_do_not_overflow() {
        // Would overflow i64 intermediates without the i128 widening.
        let (j, end) = run_in_band(0, i64::MAX, 3, i64::MIN, i64::MAX);
        assert_eq!((j, end), (1, i64::MAX));
        let (j, _) = run_in_band(i64::MAX, i64::MAX, 3, i64::MIN, i64::MAX);
        assert_eq!(j, 0);
    }
}
