//! **Deprecated** front door over the counter trackers.
//!
//! [`Monitor`]/[`MonitorKind`] predate the [`crate::api`] layer: a
//! hand-rolled six-arm enum with match dispatch, counters only, and a
//! panic on `SingleSite` with `k ≠ 1`. The replacement is
//! [`crate::api::TrackerSpec`] (a fallible builder over all ten kinds,
//! frequency trackers included) producing `Box<dyn `[`crate::api::Tracker`]`>`;
//! see the workspace `MIGRATION.md`. This shim is kept for one release and
//! then removed.

#![allow(deprecated)]

use crate::baselines::{CmyCoord, CmySite, HyzCoord, HyzSite, NaiveCoord, NaiveSite};
use crate::deterministic::{DetCoord, DetSite};
use crate::randomized::{RandCoord, RandSite};
use crate::single_site::{SsCoord, SsSite};
use dsv_net::{CommStats, SiteId, StarSim};

/// The counting algorithms available behind [`Monitor`].
#[deprecated(
    since = "0.2.0",
    note = "use dsv_core::api::TrackerKind, which also names the frequency trackers"
)]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MonitorKind {
    /// §3.3 deterministic tracker: unconditional ε-guarantee,
    /// `O((k/ε)·v)` messages.
    Deterministic,
    /// §3.4 randomized tracker: per-timestep 2/3 guarantee,
    /// `O((k+√k/ε)·v)` expected messages.
    Randomized,
    /// §5.2 single-site tracker (requires `k = 1`; arbitrary deltas).
    SingleSite,
    /// Forward-everything baseline: exact, `n` messages.
    Naive,
    /// CMY-style deterministic monotone counter (insert-only streams).
    CmyMonotone,
    /// HYZ-style randomized monotone counter (insert-only streams).
    HyzMonotone,
}

impl MonitorKind {
    /// All kinds, for sweeps.
    pub const ALL: [MonitorKind; 6] = [
        MonitorKind::Deterministic,
        MonitorKind::Randomized,
        MonitorKind::SingleSite,
        MonitorKind::Naive,
        MonitorKind::CmyMonotone,
        MonitorKind::HyzMonotone,
    ];

    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            MonitorKind::Deterministic => "deterministic",
            MonitorKind::Randomized => "randomized",
            MonitorKind::SingleSite => "single-site",
            MonitorKind::Naive => "naive",
            MonitorKind::CmyMonotone => "cmy-monotone",
            MonitorKind::HyzMonotone => "hyz-monotone",
        }
    }

    /// Whether the algorithm accepts deletions (negative deltas).
    pub fn supports_deletions(self) -> bool {
        !matches!(self, MonitorKind::CmyMonotone | MonitorKind::HyzMonotone)
    }
}

/// A running tracker of any [`MonitorKind`] with a uniform interface.
#[deprecated(
    since = "0.2.0",
    note = "use dsv_core::api::TrackerSpec to build a Box<dyn Tracker> instead"
)]
#[derive(Debug)]
pub enum Monitor {
    /// §3.3 deterministic tracker.
    Deterministic(StarSim<DetSite, DetCoord>),
    /// §3.4 randomized tracker.
    Randomized(StarSim<RandSite, RandCoord>),
    /// §5.2 single-site tracker.
    SingleSite(StarSim<SsSite, SsCoord>),
    /// Naive exact baseline.
    Naive(StarSim<NaiveSite, NaiveCoord>),
    /// CMY-style monotone counter.
    Cmy(StarSim<CmySite, CmyCoord>),
    /// HYZ-style monotone counter.
    Hyz(StarSim<HyzSite, HyzCoord>),
}

impl Monitor {
    /// Construct a tracker of the given kind. `seed` is used only by the
    /// randomized kinds. Panics if `kind == SingleSite` and `k != 1`.
    pub fn new(kind: MonitorKind, k: usize, eps: f64, seed: u64) -> Self {
        match kind {
            MonitorKind::Deterministic => {
                Monitor::Deterministic(crate::deterministic::DeterministicTracker::sim(k, eps))
            }
            MonitorKind::Randomized => {
                Monitor::Randomized(crate::randomized::RandomizedTracker::sim(k, eps, seed))
            }
            MonitorKind::SingleSite => {
                assert_eq!(k, 1, "the single-site tracker requires k = 1");
                Monitor::SingleSite(crate::single_site::SingleSiteTracker::sim(eps))
            }
            MonitorKind::Naive => Monitor::Naive(crate::baselines::NaiveTracker::sim(k)),
            MonitorKind::CmyMonotone => Monitor::Cmy(crate::baselines::CmyCounter::sim(k, eps)),
            MonitorKind::HyzMonotone => {
                Monitor::Hyz(crate::baselines::HyzCounter::sim(k, eps, seed))
            }
        }
    }

    /// The kind of this monitor.
    pub fn kind(&self) -> MonitorKind {
        match self {
            Monitor::Deterministic(_) => MonitorKind::Deterministic,
            Monitor::Randomized(_) => MonitorKind::Randomized,
            Monitor::SingleSite(_) => MonitorKind::SingleSite,
            Monitor::Naive(_) => MonitorKind::Naive,
            Monitor::Cmy(_) => MonitorKind::CmyMonotone,
            Monitor::Hyz(_) => MonitorKind::HyzMonotone,
        }
    }

    /// Feed one update; returns the coordinator's estimate.
    pub fn step(&mut self, site: SiteId, delta: i64) -> i64 {
        match self {
            Monitor::Deterministic(s) => s.step(site, delta),
            Monitor::Randomized(s) => s.step(site, delta),
            Monitor::SingleSite(s) => s.step(site, delta),
            Monitor::Naive(s) => s.step(site, delta),
            Monitor::Cmy(s) => s.step(site, delta),
            Monitor::Hyz(s) => s.step(site, delta),
        }
    }

    /// Current estimate `f̂(n)`.
    pub fn estimate(&self) -> i64 {
        match self {
            Monitor::Deterministic(s) => s.estimate(),
            Monitor::Randomized(s) => s.estimate(),
            Monitor::SingleSite(s) => s.estimate(),
            Monitor::Naive(s) => s.estimate(),
            Monitor::Cmy(s) => s.estimate(),
            Monitor::Hyz(s) => s.estimate(),
        }
    }

    /// Communication ledger.
    pub fn stats(&self) -> &CommStats {
        match self {
            Monitor::Deterministic(s) => s.stats(),
            Monitor::Randomized(s) => s.stats(),
            Monitor::SingleSite(s) => s.stats(),
            Monitor::Naive(s) => s.stats(),
            Monitor::Cmy(s) => s.stats(),
            Monitor::Hyz(s) => s.stats(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsv_gen::{DeltaGen, MonotoneGen, WalkGen};
    use dsv_net::relative_error;

    #[test]
    fn all_kinds_construct_and_track_monotone() {
        let k = 4;
        let eps = 0.2;
        let deltas = MonotoneGen::ones().deltas(5_000);
        for kind in MonitorKind::ALL {
            let k_eff = if kind == MonitorKind::SingleSite {
                1
            } else {
                k
            };
            let mut mon = Monitor::new(kind, k_eff, eps, 7);
            assert_eq!(mon.kind(), kind);
            let mut f = 0i64;
            for (i, &d) in deltas.iter().enumerate() {
                f += d;
                mon.step(i % k_eff, d);
            }
            // All kinds are ε-accurate on monotone input at the end
            // (randomized kinds: with margin at this scale).
            let err = relative_error(f, mon.estimate());
            assert!(err <= eps, "{}: err {err}", kind.label());
            assert!(mon.stats().total_messages() > 0);
        }
    }

    #[test]
    fn deletion_support_flags_are_enforced_by_baselines() {
        assert!(MonitorKind::Deterministic.supports_deletions());
        assert!(!MonitorKind::CmyMonotone.supports_deletions());
        // Feeding a deletion to a non-supporting kind panics (site assert).
        let result = std::panic::catch_unwind(|| {
            let mut mon = Monitor::new(MonitorKind::CmyMonotone, 2, 0.1, 0);
            mon.step(0, 1);
            mon.step(1, -1);
        });
        assert!(result.is_err());
    }

    #[test]
    fn deterministic_and_naive_agree_through_facade() {
        let deltas = WalkGen::fair(5).deltas(3_000);
        let mut det = Monitor::new(MonitorKind::Deterministic, 2, 0.1, 0);
        let mut naive = Monitor::new(MonitorKind::Naive, 2, 0.1, 0);
        for (i, &d) in deltas.iter().enumerate() {
            det.step(i % 2, d);
            naive.step(i % 2, d);
        }
        let truth = naive.estimate();
        let err = relative_error(truth, det.estimate());
        assert!(err <= 0.1);
        assert!(det.stats().total_messages() <= naive.stats().total_messages() * 6);
    }

    #[test]
    fn labels_are_unique() {
        let mut labels: Vec<&str> = MonitorKind::ALL.iter().map(|k| k.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), MonitorKind::ALL.len());
    }
}
