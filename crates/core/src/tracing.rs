//! The tracing problem — Section 4 and Appendix D.
//!
//! A *tracing* summary `S(f)` supports historical queries: given any `t ≤
//! n`, return `f̂(t)` with `|f(t) − f̂(t)| ≤ ε·f(t)` (deterministically or
//! w.p. ≥ 2/3). Appendix D's reduction shows any distributed tracking
//! algorithm yields a tracing summary of size `communication + space`:
//! *"simulate A, recording all communication, and on a query t, play back
//! the communication that occurred through time t"*.
//!
//! We realize the reduction literally: [`TracingRecorder`] observes the
//! coordinator's estimate after every timestep and stores its
//! *changepoints*; the resulting [`HistorySummary`] answers `query(t)` by
//! binary search. The number of changepoints is at most the number of
//! messages the tracker received, so the summary's size is bounded by the
//! tracker's communication — giving the experiments of E8 a concrete
//! object whose size can be compared against the `Ω((log n/ε)·v)` and
//! `Ω(v/ε)` lower bounds.

use dsv_net::message::bits_per_word;
use dsv_net::Time;

/// A queryable history of estimates: the tracing summary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistorySummary {
    /// `(t, estimate)` pairs: the estimate took this value from time `t`
    /// (inclusive) until the next changepoint. Sorted by `t`.
    changes: Vec<(Time, i64)>,
    /// Total timesteps recorded.
    n: Time,
}

impl HistorySummary {
    /// The estimate in force at time `t` (1-based; `t = 0` returns the
    /// initial value 0).
    pub fn query(&self, t: Time) -> i64 {
        let idx = self.changes.partition_point(|&(ct, _)| ct <= t);
        if idx == 0 {
            0
        } else {
            self.changes[idx - 1].1
        }
    }

    /// Number of changepoints stored.
    pub fn changepoints(&self) -> usize {
        self.changes.len()
    }

    /// Stream length covered.
    pub fn n(&self) -> Time {
        self.n
    }

    /// Size in 64-bit words: two per changepoint (time, value).
    pub fn words(&self) -> usize {
        2 * self.changes.len()
    }

    /// Size in bits when each word costs `O(log n)` bits.
    pub fn bits(&self) -> u64 {
        self.words() as u64 * bits_per_word(self.n)
    }
}

/// Builds a [`HistorySummary`] by observing a tracker's estimate after
/// every timestep.
#[derive(Debug, Clone, Default)]
pub struct TracingRecorder {
    changes: Vec<(Time, i64)>,
    last: i64,
    n: Time,
}

impl TracingRecorder {
    /// Fresh recorder (initial estimate 0 at time 0).
    pub fn new() -> Self {
        Self::default()
    }

    /// Record the estimate after timestep `t`. Estimates must be fed for
    /// `t = 1, 2, 3, ...` in order.
    pub fn observe(&mut self, t: Time, estimate: i64) {
        debug_assert_eq!(t, self.n + 1, "observe timesteps in order");
        self.n = t;
        if estimate != self.last {
            self.changes.push((t, estimate));
            self.last = estimate;
        }
    }

    /// Finish and return the summary.
    pub fn finish(self) -> HistorySummary {
        HistorySummary {
            changes: self.changes,
            n: self.n,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deterministic::DeterministicTracker;
    use dsv_gen::{DeltaGen, RoundRobin, WalkGen};
    use dsv_net::relative_error;

    #[test]
    fn query_returns_piecewise_constant_history() {
        let mut rec = TracingRecorder::new();
        for (t, est) in [(1, 0), (2, 5), (3, 5), (4, -2), (5, -2)] {
            rec.observe(t, est);
        }
        let s = rec.finish();
        assert_eq!(s.changepoints(), 2); // 0→5 at t=2, 5→−2 at t=4
        assert_eq!(s.query(0), 0);
        assert_eq!(s.query(1), 0);
        assert_eq!(s.query(2), 5);
        assert_eq!(s.query(3), 5);
        assert_eq!(s.query(4), -2);
        assert_eq!(s.query(100), -2);
        assert_eq!(s.words(), 4);
    }

    #[test]
    fn recorded_deterministic_tracker_answers_all_historical_queries() {
        // Appendix D's reduction: record the deterministic tracker, then
        // every historical query must satisfy the ε-guarantee.
        let k = 4;
        let eps = 0.1;
        let updates = WalkGen::fair(12).updates(10_000, RoundRobin::new(k));
        let mut sim = DeterministicTracker::sim(k, eps);
        let mut rec = TracingRecorder::new();
        let mut truth = Vec::with_capacity(updates.len());
        let mut f = 0i64;
        for u in &updates {
            f += u.delta;
            truth.push(f);
            let est = sim.step(u.site, u.delta);
            rec.observe(u.time, est);
        }
        let summary = rec.finish();
        for (i, &ft) in truth.iter().enumerate() {
            let t = (i + 1) as Time;
            let err = relative_error(ft, summary.query(t));
            assert!(
                err <= eps * (1.0 + 1e-12),
                "historical query at t={t}: err {err}"
            );
        }
        // Summary size is bounded by the communication (changepoints can
        // only occur when a message arrives at the coordinator).
        assert!(
            summary.changepoints() as u64 <= sim.stats().total_messages(),
            "{} changepoints > {} messages",
            summary.changepoints(),
            sim.stats().total_messages()
        );
    }

    #[test]
    fn bits_accounting_uses_log_n_words() {
        let mut rec = TracingRecorder::new();
        for t in 1..=1000u64 {
            rec.observe(t, (t / 100) as i64);
        }
        let s = rec.finish();
        assert_eq!(s.n(), 1000);
        assert_eq!(s.bits(), s.words() as u64 * bits_per_word(1000));
    }
}
