//! **Extension (open problem)** — randomized frequency tracking.
//!
//! Appendix H closes with: *"Whether it is also possible to
//! probabilistically track item frequencies over general update streams in
//! `O((√k/ε)·v(n))` messages remains open."* The obstacle it identifies:
//! HYZ's variance argument needs monotone drifts, and "deterministically
//! updating all of the large `f̂_iℓ` at the end of each block could incur
//! `O(1/ε)` messages" per block.
//!
//! This module implements the natural candidate the paper's own machinery
//! suggests — run the §3.4 `A⁺`/`A⁻` split *per counter* inside each block
//! (making both drifts monotone, so Fact 3.1 applies), keep the
//! deterministic block-end heavy reports for re-synchronization — and
//! instruments the message breakdown so experiment E14 can quantify the
//! open problem empirically: the sampled in-block traffic indeed scales
//! like `√k/ε`, while the block-end reporting term scales like `1/ε` per
//! block and dominates, exactly as the paper predicts.
//!
//! Guarantee (per item, per timestep, inside `r ≥ 1` blocks): block-start
//! bases are exact for reported counters and `< ε·2^r/3` per site
//! otherwise; the sampled drift estimate is unbiased with per-(site,
//! counter, sign) variance ≤ `1/p²`, so with
//! `p = min{1, c/(ε·2^r·√k)}` Chebyshev bounds the per-row drift error by
//! `ε·2^r·k/3` with probability `1 − 18/c²`. The default `c = 9` targets
//! failure ≤ 2/9 per row per timestep; `r = 0` blocks are exact.

use crate::blocks::{BlockConfig, BlockCoordinator, BlockSite};
use crate::randomized::{load_rng, sampling_probability_with, save_rng};
use dsv_net::codec::{restore_seq, CodecError, Dec, Enc};
use dsv_net::{CoordOutbox, CoordinatorNode, Outbox, SiteNode, StarSim, Time, WireSize};
use dsv_sketch::{CountMinMap, CounterMap, IdentityMap};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Default sampling constant `c` in `p = min{1, c/(ε·2^r·√k)}`, chosen so
/// Chebyshev's per-row failure bound `18/c²` is 2/9.
pub const DEFAULT_SAMPLE_CONST: f64 = 9.0;

/// Site → coordinator messages of the randomized frequency tracker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RFreqUp {
    /// Partition: `c_i` reached the threshold.
    Count(u64),
    /// Partition: reply to a report request (`c_i`, F1-drift `f_i`).
    Report {
        /// `c_i`: unsent update count at the site.
        c: u64,
        /// `f_i`: the site's drift in `f` since the last broadcast.
        f: i64,
    },
    /// §3.3 drift message for F1 itself.
    F1Drift(i64),
    /// Block-start report of one heavy total counter (deterministic).
    Heavy {
        /// Counter index.
        idx: u32,
        /// Exact total `f_ic` at the reporting site.
        value: i64,
    },
    /// Sampled `A⁺` report for one counter: the new `d⁺_ic`.
    SamplePlus {
        /// Counter index.
        idx: u32,
        /// The new monotone drift `d⁺_ic`.
        d: u64,
    },
    /// Sampled `A⁻` report for one counter: the new `d⁻_ic`.
    SampleMinus {
        /// Counter index.
        idx: u32,
        /// The new monotone drift `d⁻_ic`.
        d: u64,
    },
}

impl WireSize for RFreqUp {
    fn words(&self) -> usize {
        match self {
            RFreqUp::Count(_) | RFreqUp::F1Drift(_) => 1,
            RFreqUp::Report { .. }
            | RFreqUp::Heavy { .. }
            | RFreqUp::SamplePlus { .. }
            | RFreqUp::SampleMinus { .. } => 2,
        }
    }
}

/// Coordinator → site messages (same shape as the deterministic variant).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RFreqDown {
    /// Partition: request `(c_i, f_i)`.
    Request,
    /// Partition: new block with radius `r`.
    NewBlock {
        /// The new block's radius.
        r: u32,
    },
}

impl WireSize for RFreqDown {
    fn words(&self) -> usize {
        1
    }
}

/// Per-site state of the randomized frequency tracker.
#[derive(Debug, Clone)]
pub struct RFreqSite<M: CounterMap> {
    blocks: BlockSite,
    map: M,
    /// All-time totals per counter (for block-end heavy reports).
    totals: Vec<i64>,
    /// In-block monotone drifts per counter.
    d_plus: Vec<u64>,
    d_minus: Vec<u64>,
    f1_d: i64,
    f1_delta: i64,
    r: u32,
    p: f64,
    eps: f64,
    k: usize,
    sample_const: f64,
    rng: SmallRng,
    scratch: Vec<u32>,
    /// Sampling decisions pre-drawn by `absorb_quiet` for the first
    /// un-absorbed update, consumed (in row order) by the `on_update`
    /// replay of that same update so the RNG stream stays bit-identical
    /// to pure per-update execution. Empty except inside a `step_run`.
    carry: Vec<bool>,
    carry_at: usize,
}

impl<M: CounterMap> RFreqSite<M> {
    /// Fresh site with reduction `map`, error `eps`, sampling constant `c`.
    pub fn new(map: M, eps: f64, k: usize, c: f64, seed: u64) -> Self {
        assert!(eps > 0.0 && eps < 1.0);
        let n = map.counters();
        RFreqSite {
            blocks: BlockSite::new(),
            map,
            totals: vec![0; n],
            d_plus: vec![0; n],
            d_minus: vec![0; n],
            f1_d: 0,
            f1_delta: 0,
            r: 0,
            p: sampling_probability_with(c, eps, 0, k),
            eps,
            k,
            sample_const: c,
            rng: SmallRng::seed_from_u64(seed),
            scratch: Vec::new(),
            carry: Vec::new(),
            carry_at: 0,
        }
    }

    /// The sampling decision for the next counter row: a pre-drawn carry
    /// value if `absorb_quiet` already consumed the randomness for this
    /// update, a fresh draw otherwise.
    fn draw_send(&mut self) -> bool {
        if self.carry_at < self.carry.len() {
            let v = self.carry[self.carry_at];
            self.carry_at += 1;
            if self.carry_at == self.carry.len() {
                self.carry.clear();
                self.carry_at = 0;
            }
            v
        } else {
            self.rng.gen_bool(self.p)
        }
    }
}

impl<M: CounterMap> SiteNode for RFreqSite<M> {
    type In = (u64, i64);
    type Up = RFreqUp;
    type Down = RFreqDown;

    fn on_update(&mut self, _t: Time, (item, delta): (u64, i64), out: &mut Outbox<RFreqUp>) {
        debug_assert!(delta == 1 || delta == -1);
        if let Some(c) = self.blocks.on_update(delta) {
            out.send(RFreqUp::Count(c));
        }
        // F1 drift (§3.3, deterministic — cheap and keeps F1 ε-tracked).
        self.f1_d += delta;
        self.f1_delta += delta;
        let f1_fire = if self.r == 0 {
            self.f1_delta != 0
        } else {
            self.f1_delta.unsigned_abs() as f64 >= self.eps * (1u64 << self.r) as f64
        };
        if f1_fire {
            out.send(RFreqUp::F1Drift(self.f1_d));
            self.f1_delta = 0;
        }
        // Per-counter A± sampling.
        self.scratch.clear();
        self.map.map(item, &mut self.scratch);
        for i in 0..self.scratch.len() {
            let c = self.scratch[i] as usize;
            self.totals[c] += delta;
            let send = self.r == 0 || self.p >= 1.0 || self.draw_send();
            if delta > 0 {
                self.d_plus[c] += 1;
                if send {
                    out.send(RFreqUp::SamplePlus {
                        idx: c as u32,
                        d: self.d_plus[c],
                    });
                }
            } else {
                self.d_minus[c] += 1;
                if send {
                    out.send(RFreqUp::SampleMinus {
                        idx: c as u32,
                        d: self.d_minus[c],
                    });
                }
            }
        }
    }

    fn on_down(&mut self, _t: Time, msg: &RFreqDown, _is_request: bool, out: &mut Outbox<RFreqUp>) {
        match msg {
            RFreqDown::Request => {
                let (c, f) = self.blocks.report();
                out.send(RFreqUp::Report { c, f });
            }
            RFreqDown::NewBlock { r } => {
                self.blocks.start_block(*r);
                self.r = *r;
                self.p = sampling_probability_with(self.sample_const, self.eps, *r, self.k);
                self.f1_d = 0;
                self.f1_delta = 0;
                self.d_plus.fill(0);
                self.d_minus.fill(0);
                // Deterministic heavy reports under the new radius — the
                // term the open problem is about; E14 measures its share.
                let thresh = self.eps * (1u64 << *r) as f64 / 3.0;
                for (idx, &total) in self.totals.iter().enumerate() {
                    if total != 0 && total.unsigned_abs() as f64 >= thresh {
                        out.send(RFreqUp::Heavy {
                            idx: idx as u32,
                            value: total,
                        });
                    }
                }
            }
        }
    }

    fn absorb_quiet(&mut self, _t0: Time, inputs: &[(u64, i64)]) -> usize {
        // In `r ≥ 1` blocks with `p < 1` an update is quiet iff it fires
        // neither the partition counter, nor the F1 drift condition, nor
        // any of its rows' sampling draws. The thresholds are constant
        // between messages and hoisted; the sampling draws must come from
        // the same RNG stream the per-update path would consume, so the
        // draws for the first *loud* update are parked in `carry` for its
        // `on_update` replay. `r = 0` and `p ≥ 1` forward every update —
        // nothing to absorb.
        if self.r == 0 || self.p >= 1.0 {
            return 0;
        }
        debug_assert!(
            self.carry.is_empty(),
            "carry must be consumed before the next absorb"
        );
        let cap = (self.blocks.until_fire() as usize).min(inputs.len());
        let f1_band = self.eps * (1u64 << self.r) as f64;
        let mut f1_acc = self.f1_delta;
        let mut run_sum = 0i64;
        let mut n = 0;
        'outer: while n < cap {
            let (item, delta) = inputs[n];
            debug_assert!(delta == 1 || delta == -1);
            let f1_next = f1_acc + delta;
            if f1_next.unsigned_abs() as f64 >= f1_band {
                break;
            }
            self.scratch.clear();
            self.map.map(item, &mut self.scratch);
            for row in 0..self.scratch.len() {
                let send = self.rng.gen_bool(self.p);
                if send {
                    // Park every draw made for this update; its replay
                    // consumes them in the same row order.
                    self.carry.clear();
                    self.carry_at = 0;
                    self.carry.extend(std::iter::repeat_n(false, row));
                    self.carry.push(true);
                    break 'outer;
                }
            }
            for &c in &self.scratch {
                self.totals[c as usize] += delta;
                if delta > 0 {
                    self.d_plus[c as usize] += 1;
                } else {
                    self.d_minus[c as usize] += 1;
                }
            }
            self.f1_d += delta;
            f1_acc = f1_next;
            run_sum += delta;
            n += 1;
        }
        self.blocks.absorb_run(n as u64, run_sum);
        self.f1_delta = f1_acc;
        n
    }

    fn save_state(&self, enc: &mut Enc) -> bool {
        self.blocks.save_state(enc);
        enc.seq_i64(&self.totals);
        enc.seq_u64(&self.d_plus);
        enc.seq_u64(&self.d_minus);
        enc.i64(self.f1_d);
        enc.i64(self.f1_delta);
        enc.u32(self.r);
        enc.f64(self.p);
        save_rng(&self.rng, enc);
        // The carry is empty at every observable boundary (it only lives
        // inside a `step_run`), but serialize it anyway so the format
        // cannot silently drop state if that invariant ever changes.
        enc.seq_bool(&self.carry);
        enc.usize(self.carry_at);
        true
    }

    fn load_state(&mut self, dec: &mut Dec) -> Result<(), CodecError> {
        self.blocks.load_state(dec)?;
        restore_seq("counter totals", &mut self.totals, &dec.seq_i64("totals")?)?;
        restore_seq("A+ drifts", &mut self.d_plus, &dec.seq_u64("d_plus")?)?;
        restore_seq("A- drifts", &mut self.d_minus, &dec.seq_u64("d_minus")?)?;
        self.f1_d = dec.i64()?;
        self.f1_delta = dec.i64()?;
        self.r = dec.u32()?;
        self.p = dec.f64()?;
        self.rng = load_rng(dec)?;
        self.carry = dec.seq_bool("sampling carry")?;
        self.carry_at = dec.usize()?;
        if self.carry_at > self.carry.len() {
            return Err(CodecError::BadValue {
                what: "sampling carry cursor",
            });
        }
        Ok(())
    }
}

/// Message-breakdown counters kept by the coordinator, for E14.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RFreqBreakdown {
    /// Sampled in-block A± messages received.
    pub sampled: u64,
    /// Block-end deterministic heavy reports received.
    pub heavy: u64,
    /// F1 drift messages received.
    pub f1_drift: u64,
    /// Partition messages received (counts + report replies).
    pub partition: u64,
}

/// Coordinator state of the randomized frequency tracker.
#[derive(Debug, Clone)]
pub struct RFreqCoord<M: CounterMap> {
    blocks: BlockCoordinator,
    map: M,
    /// Block-start bases per counter (from heavy reports).
    base: Vec<i64>,
    /// Per-site × per-counter drift estimates, A⁺ then A⁻, row-major by
    /// site: index = site·C + c.
    dhat_plus: Vec<f64>,
    dhat_minus: Vec<f64>,
    /// Σ_i (d̂⁺_ic − d̂⁻_ic), maintained incrementally.
    drift: Vec<f64>,
    /// `base[c] + round(drift[c])` — the combined estimate vector handed
    /// to the counter-map assembler.
    combined: Vec<i64>,
    f1_dhat: Vec<i64>,
    f1_dhat_sum: i64,
    p: f64,
    eps: f64,
    k: usize,
    sample_const: f64,
    r: u32,
    breakdown: RFreqBreakdown,
}

impl<M: CounterMap> RFreqCoord<M> {
    /// Fresh coordinator (reduction must match the sites').
    pub fn new(k: usize, map: M, eps: f64, c: f64) -> Self {
        let mut blocks = BlockCoordinator::new(BlockConfig::new(k));
        blocks.enable_log();
        let n = map.counters();
        RFreqCoord {
            blocks,
            map,
            base: vec![0; n],
            dhat_plus: vec![0.0; n * k],
            dhat_minus: vec![0.0; n * k],
            drift: vec![0.0; n],
            combined: vec![0; n],
            f1_dhat: vec![0; k],
            f1_dhat_sum: 0,
            p: sampling_probability_with(c, eps, 0, k),
            eps,
            k,
            sample_const: c,
            r: 0,
            breakdown: RFreqBreakdown::default(),
        }
    }

    /// Access the partitioner.
    pub fn blocks(&self) -> &BlockCoordinator {
        &self.blocks
    }

    /// Estimate of item `ℓ`'s frequency.
    pub fn estimate_item(&self, item: u64) -> i64 {
        self.map.assemble(item, &self.combined)
    }

    /// Estimated `F1(n)`.
    pub fn estimated_f1(&self) -> i64 {
        self.blocks.f_sync() + self.f1_dhat_sum
    }

    /// Message breakdown (received at the coordinator) for E14.
    pub fn breakdown(&self) -> RFreqBreakdown {
        self.breakdown
    }

    /// Coordinator-side space in words: block-start bases, per-site drift
    /// estimates (A⁺ and A⁻), combined estimates, reduction setup, and
    /// per-site F1 drifts.
    pub fn space_words(&self) -> usize {
        self.base.len()
            + self.dhat_plus.len()
            + self.dhat_minus.len()
            + self.drift.len()
            + self.combined.len()
            + self.map.setup_words()
            + self.f1_dhat.len()
    }

    fn apply_sample(&mut self, site: usize, idx: u32, d: u64, plus: bool) {
        let c = idx as usize;
        let est = if self.r == 0 {
            d as f64
        } else {
            d as f64 - 1.0 + 1.0 / self.p
        };
        let slot = site * self.base.len() + c;
        let (store, sign) = if plus {
            (&mut self.dhat_plus[slot], 1.0)
        } else {
            (&mut self.dhat_minus[slot], -1.0)
        };
        self.drift[c] += sign * (est - *store);
        *store = est;
        self.combined[c] = self.base[c] + self.drift[c].round() as i64;
    }
}

impl<M: CounterMap> CoordinatorNode for RFreqCoord<M> {
    type Up = RFreqUp;
    type Down = RFreqDown;

    fn on_up(&mut self, t: Time, site: usize, msg: RFreqUp, out: &mut CoordOutbox<RFreqDown>) {
        match msg {
            RFreqUp::Count(c) => {
                self.breakdown.partition += 1;
                if self.blocks.on_count(c) {
                    out.request(RFreqDown::Request);
                }
            }
            RFreqUp::Report { c, f } => {
                self.breakdown.partition += 1;
                if let Some(r) = self.blocks.on_report(t, c, f) {
                    self.base.fill(0);
                    self.dhat_plus.fill(0.0);
                    self.dhat_minus.fill(0.0);
                    self.drift.fill(0.0);
                    self.combined.fill(0);
                    self.f1_dhat.fill(0);
                    self.f1_dhat_sum = 0;
                    self.r = r;
                    self.p = sampling_probability_with(self.sample_const, self.eps, r, self.k);
                    out.broadcast(RFreqDown::NewBlock { r });
                }
            }
            RFreqUp::F1Drift(d) => {
                self.breakdown.f1_drift += 1;
                self.f1_dhat_sum += d - self.f1_dhat[site];
                self.f1_dhat[site] = d;
            }
            RFreqUp::Heavy { idx, value } => {
                self.breakdown.heavy += 1;
                let c = idx as usize;
                self.base[c] += value;
                self.combined[c] = self.base[c] + self.drift[c].round() as i64;
            }
            RFreqUp::SamplePlus { idx, d } => {
                self.breakdown.sampled += 1;
                self.apply_sample(site, idx, d, true);
            }
            RFreqUp::SampleMinus { idx, d } => {
                self.breakdown.sampled += 1;
                self.apply_sample(site, idx, d, false);
            }
        }
    }

    fn estimate(&self) -> i64 {
        self.estimated_f1()
    }

    fn save_state(&self, enc: &mut Enc) -> bool {
        self.blocks.save_state(enc);
        enc.seq_i64(&self.base);
        enc.seq_f64(&self.dhat_plus);
        enc.seq_f64(&self.dhat_minus);
        enc.seq_f64(&self.drift);
        enc.seq_i64(&self.combined);
        enc.seq_i64(&self.f1_dhat);
        enc.i64(self.f1_dhat_sum);
        enc.f64(self.p);
        enc.u32(self.r);
        enc.u64(self.breakdown.sampled);
        enc.u64(self.breakdown.heavy);
        enc.u64(self.breakdown.f1_drift);
        enc.u64(self.breakdown.partition);
        true
    }

    fn load_state(&mut self, dec: &mut Dec) -> Result<(), CodecError> {
        self.blocks.load_state(dec)?;
        restore_seq("block-start bases", &mut self.base, &dec.seq_i64("base")?)?;
        restore_seq("A+ estimates", &mut self.dhat_plus, &dec.seq_f64("dhat+")?)?;
        restore_seq("A- estimates", &mut self.dhat_minus, &dec.seq_f64("dhat-")?)?;
        restore_seq("drift sums", &mut self.drift, &dec.seq_f64("drift")?)?;
        restore_seq(
            "combined estimates",
            &mut self.combined,
            &dec.seq_i64("combined")?,
        )?;
        restore_seq("F1 drifts", &mut self.f1_dhat, &dec.seq_i64("f1_dhat")?)?;
        self.f1_dhat_sum = dec.i64()?;
        self.p = dec.f64()?;
        self.r = dec.u32()?;
        self.breakdown = RFreqBreakdown {
            sampled: dec.u64()?,
            heavy: dec.u64()?,
            f1_drift: dec.u64()?,
            partition: dec.u64()?,
        };
        Ok(())
    }
}

/// Named constructors for the randomized frequency tracker.
#[derive(Debug, Clone, Copy)]
pub struct RandFreqTracker;

impl RandFreqTracker {
    /// Exact per-item counters, sampled drift (`c = 9` default).
    pub fn sim_exact(
        k: usize,
        eps: f64,
        universe: usize,
        seed: u64,
    ) -> StarSim<RFreqSite<IdentityMap>, RFreqCoord<IdentityMap>> {
        Self::sim_exact_with(k, eps, universe, seed, DEFAULT_SAMPLE_CONST)
    }

    /// Exact per-item counters with an explicit sampling constant.
    pub fn sim_exact_with(
        k: usize,
        eps: f64,
        universe: usize,
        seed: u64,
        c: f64,
    ) -> StarSim<RFreqSite<IdentityMap>, RFreqCoord<IdentityMap>> {
        StarSim::with_k(
            k,
            |i| {
                RFreqSite::new(
                    IdentityMap::new(universe),
                    eps,
                    k,
                    c,
                    seed.wrapping_add(i as u64),
                )
            },
            RFreqCoord::new(k, IdentityMap::new(universe), eps, c),
        )
    }

    /// Count-Min reduction, sampled drift.
    pub fn sim_countmin(
        k: usize,
        eps: f64,
        seed: u64,
    ) -> StarSim<RFreqSite<CountMinMap>, RFreqCoord<CountMinMap>> {
        let c = DEFAULT_SAMPLE_CONST;
        StarSim::with_k(
            k,
            |i| {
                RFreqSite::new(
                    CountMinMap::appendix_h(eps / 3.0, seed),
                    eps,
                    k,
                    c,
                    seed.wrapping_add(1 + i as u64),
                )
            },
            RFreqCoord::new(k, CountMinMap::appendix_h(eps / 3.0, seed), eps, c),
        )
    }
}

#[cfg(test)]
#[allow(deprecated)] // compares against the FreqRunner shim until its removal
mod tests {
    use super::*;
    use crate::frequencies::{ExactFreqTracker, FreqRunner};
    use dsv_gen::{ItemStreamGen, RoundRobin};
    use dsv_net::ItemUpdate;
    use dsv_sketch::{ExactCounts, FreqSketch};

    fn stream(n: u64, k: usize, universe: usize, seed: u64) -> Vec<ItemUpdate> {
        ItemStreamGen::new(seed, universe, 1.1, 0.35, 1).updates(n, RoundRobin::new(k))
    }

    #[test]
    fn item_estimates_are_usually_within_budget() {
        let (k, eps, universe) = (4usize, 0.2f64, 300usize);
        let updates = stream(15_000, k, universe, 7);
        let mut truth = ExactCounts::new();
        let mut sim = RandFreqTracker::sim_exact(k, eps, universe, 11);
        let mut audits = 0u64;
        let mut violations = 0u64;
        for u in &updates {
            truth.update(u.item, u.delta);
            sim.step(u.site, (u.item, u.delta));
            if u.time % 500 == 0 {
                let budget = eps * truth.f1() as f64;
                for item in 0..universe as u64 {
                    audits += 1;
                    let err = (sim.coordinator().estimate_item(item) - truth.estimate(item)).abs();
                    if err as f64 > budget {
                        violations += 1;
                    }
                }
            }
        }
        let rate = violations as f64 / audits as f64;
        assert!(rate < 2.0 / 9.0, "violation rate {rate}");
    }

    #[test]
    fn f1_is_tracked_deterministically() {
        let (k, eps, universe) = (4usize, 0.15f64, 200usize);
        let updates = stream(10_000, k, universe, 13);
        let mut sim = RandFreqTracker::sim_exact(k, eps, universe, 3);
        let mut f1 = 0i64;
        for u in &updates {
            f1 += u.delta;
            let est = sim.step(u.site, (u.item, u.delta));
            assert!((f1 - est).abs() as f64 <= eps * f1 as f64 + 1e-9);
        }
    }

    #[test]
    fn block_ends_resync_exactly() {
        let (k, eps, universe) = (4usize, 0.2f64, 150usize);
        let updates = stream(12_000, k, universe, 17);
        let mut truth = ExactCounts::new();
        let mut sim = RandFreqTracker::sim_exact(k, eps, universe, 19);
        let mut blocks_seen = 0usize;
        for u in &updates {
            truth.update(u.item, u.delta);
            sim.step(u.site, (u.item, u.delta));
            let nblocks = sim.coordinator().blocks().log().unwrap().len();
            if nblocks > blocks_seen {
                blocks_seen = nblocks;
                // Immediately after a block end, heavy counters were just
                // reported exactly; light ones are ≤ ε·2^r/3 per site.
                let r = sim.coordinator().blocks().r();
                let slack = k as f64 * eps * (1u64 << r) as f64 / 3.0;
                for item in 0..universe as u64 {
                    let err = (sim.coordinator().estimate_item(item) - truth.estimate(item)).abs();
                    assert!(
                        err as f64 <= slack + 1e-9,
                        "post-sync error {err} > {slack} for item {item}"
                    );
                }
            }
        }
        assert!(blocks_seen > 3);
    }

    #[test]
    fn sampled_messages_shrink_with_larger_k_per_site() {
        // The sampled (per-site) traffic rate should scale like 1/√k.
        let (eps, universe, n) = (0.1f64, 100usize, 40_000u64);
        let mut rates = Vec::new();
        for k in [4usize, 16, 64] {
            let updates = stream(n, k, universe, 23);
            let mut sim = RandFreqTracker::sim_exact(k, eps, universe, 29);
            for u in &updates {
                sim.step(u.site, (u.item, u.delta));
            }
            let b = sim.coordinator().breakdown();
            rates.push(b.sampled as f64);
        }
        // Not strictly monotone in theory (partition boundaries shift),
        // but ×16 in k should not ×16 the sampled traffic.
        assert!(
            rates[2] < rates[0] * 8.0,
            "sampled traffic grew too fast with k: {rates:?}"
        );
    }

    #[test]
    fn breakdown_accounts_received_messages() {
        let (k, eps, universe) = (4usize, 0.2f64, 100usize);
        let updates = stream(8_000, k, universe, 31);
        let mut sim = RandFreqTracker::sim_exact(k, eps, universe, 37);
        for u in &updates {
            sim.step(u.site, (u.item, u.delta));
        }
        let b = sim.coordinator().breakdown();
        let total = b.sampled + b.heavy + b.f1_drift + b.partition;
        // Upward messages only (the stats ledger also counts downward).
        assert_eq!(total, sim.stats().upward_messages());
        assert!(b.heavy > 0 && b.sampled > 0 && b.partition > 0);
    }

    #[test]
    fn comparable_accuracy_to_deterministic_variant_on_same_stream() {
        let (k, eps, universe) = (4usize, 0.2f64, 250usize);
        let updates = stream(12_000, k, universe, 41);
        let mut det = ExactFreqTracker::sim(k, eps, universe);
        let det_report = FreqRunner::new(eps, 1_000).run(&mut det, &updates);
        assert_eq!(det_report.item_violations, 0);
        // The randomized variant is allowed failures but must stay far
        // from always-wrong.
        let mut truth = ExactCounts::new();
        let mut sim = RandFreqTracker::sim_exact(k, eps, universe, 43);
        let mut worst = 0.0f64;
        for u in &updates {
            truth.update(u.item, u.delta);
            sim.step(u.site, (u.item, u.delta));
        }
        let f1 = truth.f1();
        for item in 0..universe as u64 {
            let err = (sim.coordinator().estimate_item(item) - truth.estimate(item)).abs();
            worst = worst.max(err as f64 / f1 as f64);
        }
        assert!(worst <= 2.0 * eps, "worst end-of-run error {worst}");
    }
}
