//! Lower-bound hard families — Sections 4.1–4.2 and Appendices E–G.
//!
//! The paper's lower bounds rest on explicit families of sequences taking
//! only the values `m = 1/ε` and `m + 3` (no value within `ε·m` of `m` is
//! also within `ε·(m+3)` of `m+3`, so a valid summary must distinguish the
//! two levels at every timestep):
//!
//! * **Theorem 4.1 (deterministic).** Fix `r` flip times out of `n`; each
//!   choice yields a distinct sequence with *exactly* the same variability
//!   `v = (6m+9)/(2m+6) · ε·r`. There are `C(n, r) ≥ (n/r)^r` members, so
//!   distinguishing them takes `Ω(r·log n) = Ω((log n/ε)·v)` bits.
//! * **Lemma 4.4 (randomized).** Switch between the two levels
//!   independently with probability `p = v/(6εn)` per step. A Markov-chain
//!   Chernoff bound (Chung–Lam–Liu–Mitzenmacher) shows two independent
//!   samples *match* (overlap in ≥ 6n/10 positions) with probability
//!   `≤ C·e^{−v/32400ε}`, while most samples keep variability ≤ v — giving
//!   a family of size `e^{Ω(v/ε)}` for the `Ω(v/ε)`-bit bound of Thm 4.2.
//!
//! This module constructs both families, computes their exact properties
//! (variability, family size, overlap statistics), and provides the
//! `match` predicate of Lemma 4.3 so experiments can verify the proofs'
//! premises empirically.

use dsv_net::Time;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A two-level sequence: `f(0) = m` (or `m+3`), flipping level at the
/// given times. Defined for `t ∈ 0..=n`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlipSequence {
    m: i64,
    n: u64,
    /// Sorted distinct flip times in `1..=n`.
    flips: Vec<Time>,
    /// Whether `f(0) = m + 3` instead of `m`.
    start_high: bool,
}

impl FlipSequence {
    /// Build from level `m ≥ 2`, length `n`, sorted flip times.
    pub fn new(m: i64, n: u64, flips: Vec<Time>, start_high: bool) -> Self {
        assert!(m >= 2);
        assert!(
            flips.windows(2).all(|w| w[0] < w[1]),
            "flips must be sorted and distinct"
        );
        assert!(flips.iter().all(|&t| t >= 1 && t <= n));
        FlipSequence {
            m,
            n,
            flips,
            start_high,
        }
    }

    /// Level `m`.
    pub fn m(&self) -> i64 {
        self.m
    }

    /// Sequence length `n`.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// The flip times.
    pub fn flips(&self) -> &[Time] {
        &self.flips
    }

    /// `f(t)` for `t ∈ 0..=n`.
    pub fn value_at(&self, t: Time) -> i64 {
        let nflips = self.flips.partition_point(|&ft| ft <= t);
        let high = (nflips % 2 == 1) ^ self.start_high;
        if high {
            self.m + 3
        } else {
            self.m
        }
    }

    /// The full trajectory `f(1), ..., f(n)`.
    pub fn values(&self) -> Vec<i64> {
        (1..=self.n).map(|t| self.value_at(t)).collect()
    }

    /// Exact variability `Σ_t |f'(t)/f(t)|` (no `min{1,·}` clamp needed:
    /// all terms are `3/m ≤ 1` or `3/(m+3) < 1` for `m ≥ 3`; for `m = 2`
    /// the down-flip terms clamp at 1, which we honor).
    pub fn variability(&self) -> f64 {
        let mut v = 0.0;
        let mut high = self.start_high;
        for _ in &self.flips {
            v += if high {
                // flipping m+3 → m: |f'/f| = 3/m
                (3.0 / self.m as f64).min(1.0)
            } else {
                // flipping m → m+3: |f'/f| = 3/(m+3)
                3.0 / (self.m + 3) as f64
            };
            high = !high;
        }
        v
    }

    /// Number of *overlaps* with `other` (Lemma 4.3): positions `1 ≤ t ≤ n`
    /// where `|f(t) − g(t)| ≤ ε·max(f(t), g(t))`.
    pub fn overlaps(&self, other: &FlipSequence, eps: f64) -> u64 {
        assert_eq!(self.n, other.n, "sequences must have equal length");
        // Walk both flip lists in order instead of evaluating value_at per
        // step: O(n) with O(1) per step.
        let mut count = 0u64;
        let mut hi_a = self.start_high;
        let mut hi_b = other.start_high;
        let mut ia = 0usize;
        let mut ib = 0usize;
        for t in 1..=self.n {
            while ia < self.flips.len() && self.flips[ia] == t {
                hi_a = !hi_a;
                ia += 1;
            }
            while ib < other.flips.len() && other.flips[ib] == t {
                hi_b = !hi_b;
                ib += 1;
            }
            let (fa, fb) = (
                if hi_a { self.m + 3 } else { self.m },
                if hi_b { other.m + 3 } else { other.m },
            );
            if (fa - fb).unsigned_abs() as f64 <= eps * fa.max(fb) as f64 {
                count += 1;
            }
        }
        count
    }

    /// Lemma 4.3's *match* predicate: at least `6n/10` overlaps.
    pub fn matches(&self, other: &FlipSequence, eps: f64) -> bool {
        self.overlaps(other, eps) as f64 >= 0.6 * self.n as f64
    }
}

/// The Theorem 4.1 deterministic family with parameters `(m, n, r)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DetFlipFamily {
    /// `m = 1/ε ≥ 2`.
    pub m: i64,
    /// Sequence length; the theorem takes `n ≥ 2m` and `r ≤ n^c`.
    pub n: u64,
    /// Number of flips per member (even in the theorem statement).
    pub r: usize,
}

impl DetFlipFamily {
    /// Create the family; asserts the theorem's parameter constraints
    /// (except `r` even, which only matters for the exact-`v` statement —
    /// we allow odd `r` and compute `v` exactly anyway).
    pub fn new(m: i64, n: u64, r: usize) -> Self {
        assert!(m >= 2, "ε = 1/m needs m ≥ 2");
        assert!(n >= 2 * m as u64, "theorem requires n ≥ 2m");
        assert!((r as u64) <= n);
        DetFlipFamily { m, n, r }
    }

    /// The error parameter `ε = 1/m`.
    pub fn eps(&self) -> f64 {
        1.0 / self.m as f64
    }

    /// The member determined by a sorted set of exactly `r` flip times.
    pub fn member(&self, flips: Vec<Time>) -> FlipSequence {
        assert_eq!(flips.len(), self.r);
        FlipSequence::new(self.m, self.n, flips, false)
    }

    /// A uniformly random member (Floyd's r-subset sampling).
    pub fn random_member(&self, seed: u64) -> FlipSequence {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut chosen = std::collections::BTreeSet::new();
        let r = self.r as u64;
        for j in (self.n - r + 1)..=self.n {
            let x = rng.gen_range(1..=j);
            if !chosen.insert(x) {
                chosen.insert(j);
            }
        }
        self.member(chosen.into_iter().collect())
    }

    /// The first `count` members in lexicographic flip-set order.
    pub fn enumerate(&self, count: usize) -> Vec<FlipSequence> {
        let mut out = Vec::with_capacity(count);
        let mut flips: Vec<Time> = (1..=self.r as u64).collect();
        loop {
            if out.len() >= count {
                break;
            }
            out.push(self.member(flips.clone()));
            // Next r-combination of {1..n} in lexicographic order.
            let mut i = self.r;
            loop {
                if i == 0 {
                    return out;
                }
                i -= 1;
                if flips[i] < self.n - (self.r - 1 - i) as u64 {
                    flips[i] += 1;
                    for j in i + 1..self.r {
                        flips[j] = flips[j - 1] + 1;
                    }
                    break;
                }
            }
        }
        out
    }

    /// Appendix E's exact per-member variability
    /// `v = r/2 · (6m+9)/(m(m+3)) = (6m+9)/(2m+6)·ε·r` (for even `r`).
    pub fn exact_variability(&self) -> f64 {
        let m = self.m as f64;
        (self.r as f64 / 2.0) * (6.0 * m + 9.0) / (m * (m + 3.0))
    }

    /// `log₂ C(n, r)`: the information content of the family.
    pub fn log2_family_size(&self) -> f64 {
        let n = self.n as f64;
        let r = self.r as f64;
        // Σ_{i=1..r} log2((n − r + i)/i), numerically stable.
        (1..=self.r)
            .map(|i| ((n - r + i as f64) / i as f64).log2())
            .sum()
    }

    /// The theorem's stated bit bound `Ω(r·log n)`; we return the concrete
    /// witness `r·log₂(n/r) ≤ log₂ C(n,r)`.
    pub fn bits_lower_bound(&self) -> f64 {
        self.r as f64 * (self.n as f64 / self.r as f64).log2()
    }

    /// Whether a summary with ε-relative-error must distinguish levels:
    /// true iff no value is within `ε·m` of `m` and within `ε(m+3)` of
    /// `m+3` simultaneously — i.e. the levels' ε-balls are disjoint.
    ///
    /// Note: this requires `m ≥ 4`. The paper states the construction for
    /// `m ≥ 2`, but at `m = 3` the balls touch at the value 4
    /// (`3(1+1/3) = 4 = 6(1−1/3)`) and at `m = 2` they overlap; we report
    /// the geometric truth.
    pub fn levels_distinguishable(&self) -> bool {
        let eps = self.eps();
        let m = self.m as f64;
        (m + eps * m) < (m + 3.0) - eps * (m + 3.0)
    }
}

/// The Lemma 4.4 randomized family generator with parameters `(ε, v, n)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RandSwitchFamily {
    /// Error parameter `ε ≤ 1/2`.
    pub eps: f64,
    /// Variability budget `v`.
    pub v: f64,
    /// Sequence length `n > 3v/ε`.
    pub n: u64,
}

impl RandSwitchFamily {
    /// Create the generator; asserts the lemma's parameter constraints
    /// that matter operationally (`ε ≤ 1/2`, `n > 3v/ε`, `p ≤ 1`).
    pub fn new(eps: f64, v: f64, n: u64) -> Self {
        assert!(eps > 0.0 && eps <= 0.5);
        assert!(v > 0.0);
        assert!((n as f64) > 3.0 * v / eps, "lemma requires n > 3v/ε");
        RandSwitchFamily { eps, v, n }
    }

    /// The level `m = 1/ε` (rounded to the nearest integer ≥ 2).
    pub fn m(&self) -> i64 {
        ((1.0 / self.eps).round() as i64).max(2)
    }

    /// The per-step switch probability `p = v/(6εn)`.
    pub fn switch_prob(&self) -> f64 {
        self.v / (6.0 * self.eps * self.n as f64)
    }

    /// Appendix G's bound on the (1/8)-mixing time: `T ≤ 3/(2p) = 9εn/v`.
    pub fn mixing_time_bound(&self) -> f64 {
        9.0 * self.eps * self.n as f64 / self.v
    }

    /// Expected number of switches `p·n = v/(6ε)`.
    pub fn expected_switches(&self) -> f64 {
        self.v / (6.0 * self.eps)
    }

    /// The exponent `v/(32400·ε)` in the match-probability bound
    /// `P(match) ≤ C·exp(−v/32400ε)`.
    pub fn match_prob_exponent(&self) -> f64 {
        self.v / (32_400.0 * self.eps)
    }

    /// `ln` of the family size target `|F| = (1/10)·e^{v/(2·32400·ε)}`.
    pub fn ln_family_size(&self) -> f64 {
        self.v / (2.0 * 32_400.0 * self.eps) - (10.0f64).ln()
    }

    /// Sample one member: `f(0)` uniform over `{m, m+3}`, then switch with
    /// probability `p` at each step.
    pub fn sample(&self, seed: u64) -> FlipSequence {
        let mut rng = SmallRng::seed_from_u64(seed);
        let start_high = rng.gen_bool(0.5);
        let p = self.switch_prob();
        let mut flips = Vec::new();
        for t in 1..=self.n {
            if rng.gen_bool(p) {
                flips.push(t);
            }
        }
        FlipSequence::new(self.m(), self.n, flips, start_high)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_trajectory_flips_between_levels() {
        let s = FlipSequence::new(4, 10, vec![3, 7], false);
        let vals = s.values();
        assert_eq!(vals, vec![4, 4, 7, 7, 7, 7, 4, 4, 4, 4]);
        assert_eq!(s.value_at(0), 4);
    }

    #[test]
    fn start_high_inverts_levels() {
        let s = FlipSequence::new(4, 5, vec![2], true);
        assert_eq!(s.values(), vec![7, 4, 4, 4, 4]);
    }

    #[test]
    fn exact_variability_formula_matches_construction() {
        // Appendix E: v = (6m+9)/(2m+6)·ε·r for even r. (For m = 2 the
        // paper's formula uses the unclamped |f'/f| = 3/2 per down-flip,
        // which exceeds the min{1,·} in v's definition; we therefore test
        // the exact match on m ≥ 3 and the clamped inequality on m = 2.)
        for (m, n, r) in [(4i64, 100u64, 10usize), (8, 200, 20), (3, 50, 6)] {
            let fam = DetFlipFamily::new(m, n, r);
            let member = fam.random_member(33);
            let measured = member.variability();
            let formula = fam.exact_variability();
            assert!(
                (measured - formula).abs() < 1e-9,
                "m={m}, r={r}: measured {measured} vs formula {formula}"
            );
            // And the paper's alternative form (6m+9)/(2m+6)·ε·r.
            let alt = (6.0 * m as f64 + 9.0) / (2.0 * m as f64 + 6.0) * fam.eps() * r as f64;
            assert!((formula - alt).abs() < 1e-9);
        }
        // m = 2 edge case: clamping makes the measured v smaller.
        let fam2 = DetFlipFamily::new(2, 50, 6);
        let measured = fam2.random_member(1).variability();
        assert!(measured <= fam2.exact_variability() + 1e-9);
        assert!(measured > 0.0);
    }

    #[test]
    fn distinct_flip_sets_give_distinct_sequences() {
        let fam = DetFlipFamily::new(4, 30, 3);
        let members = fam.enumerate(200);
        for i in 0..members.len() {
            for j in (i + 1)..members.len() {
                assert_ne!(
                    members[i].values(),
                    members[j].values(),
                    "members {i} and {j} coincide"
                );
            }
        }
    }

    #[test]
    fn family_members_never_match() {
        // Distinct members of the deterministic family overlap exactly
        // where their level sequences agree; with disjoint ε-balls a match
        // would need ≥ 60% agreement — we verify far less on random pairs
        // with well-separated flips... but at minimum, distinctness of the
        // *first-divergence* argument (Appendix E) must hold.
        let fam = DetFlipFamily::new(4, 60, 6);
        assert!(fam.levels_distinguishable());
        let a = fam.random_member(1);
        let b = fam.random_member(2);
        assert_ne!(a.values(), b.values());
        // Overlap count equals agreement count for eps = 1/m.
        let eps = fam.eps();
        let agree = a
            .values()
            .iter()
            .zip(b.values())
            .filter(|&(&x, y)| x == y)
            .count() as u64;
        assert_eq!(a.overlaps(&b, eps), agree);
    }

    #[test]
    fn log2_family_size_matches_known_binomials() {
        let fam = DetFlipFamily::new(2, 10, 4);
        // C(10, 4) = 210.
        assert!((fam.log2_family_size() - (210f64).log2()).abs() < 1e-9);
        // Lower-bound witness ≤ true size.
        assert!(fam.bits_lower_bound() <= fam.log2_family_size() + 1e-9);
    }

    #[test]
    fn enumerate_yields_lexicographic_distinct_flip_sets() {
        let fam = DetFlipFamily::new(2, 6, 2);
        let all = fam.enumerate(100);
        // C(6,2) = 15 members in total.
        assert_eq!(all.len(), 15);
        let sets: Vec<Vec<Time>> = all.iter().map(|s| s.flips().to_vec()).collect();
        assert_eq!(sets[0], vec![1, 2]);
        assert_eq!(sets[1], vec![1, 3]);
        assert_eq!(*sets.last().unwrap(), vec![5, 6]);
        let mut dedup = sets.clone();
        dedup.dedup();
        assert_eq!(dedup.len(), 15);
    }

    #[test]
    fn rand_family_parameters() {
        let fam = RandSwitchFamily::new(0.25, 60.0, 10_000);
        assert_eq!(fam.m(), 4);
        assert!((fam.switch_prob() - 60.0 / (6.0 * 0.25 * 10_000.0)).abs() < 1e-12);
        assert!((fam.expected_switches() - 40.0).abs() < 1e-9);
        assert!(fam.mixing_time_bound() > 0.0);
    }

    #[test]
    fn rand_samples_have_expected_switch_count() {
        let fam = RandSwitchFamily::new(0.25, 120.0, 20_000);
        let expect = fam.expected_switches();
        let mut total = 0usize;
        let trials = 50;
        for seed in 0..trials {
            total += fam.sample(seed).flips().len();
        }
        let avg = total as f64 / trials as f64;
        assert!(
            (avg - expect).abs() < 0.25 * expect,
            "avg switches {avg} vs expected {expect}"
        );
    }

    #[test]
    fn independent_samples_rarely_match() {
        // Two independent samples agree at ≈ 50% of positions in the long
        // run; the match threshold is 60%, so matches should be rare.
        let fam = RandSwitchFamily::new(0.25, 200.0, 20_000);
        let mut matches = 0;
        let pairs = 30;
        for i in 0..pairs {
            let a = fam.sample(2 * i);
            let b = fam.sample(2 * i + 1);
            if a.matches(&b, fam.eps) {
                matches += 1;
            }
        }
        assert!(matches <= 2, "{matches}/{pairs} pairs matched");
    }

    #[test]
    fn identical_sequences_match_themselves() {
        let fam = RandSwitchFamily::new(0.25, 100.0, 5_000);
        let a = fam.sample(7);
        assert!(a.matches(&a.clone(), 0.25));
        assert_eq!(a.overlaps(&a, 0.25), 5_000);
    }

    #[test]
    #[should_panic(expected = "n > 3v/ε")]
    fn rand_family_validates_length() {
        RandSwitchFamily::new(0.1, 100.0, 500);
    }
}
