//! The variability parameter `v(n)` — Section 2 of the paper.
//!
//! For a stream of increments `f'(t) = f(t) − f(t−1)` with `f(0) = 0`
//! (unless overridden), the **f-variability** is
//!
//! ```text
//! v(n) = Σ_{t=1..n} v'(t),   v'(t) = min{ 1, |f'(t) / f(t)| }
//! ```
//!
//! with the special case `|f'(t)/f(t)| := 1` whenever `f(t) = 0` (the paper
//! handles `f = 0` "by communicating at each timestep that case occurs").
//!
//! This module provides an online meter ([`VariabilityMeter`]), batch
//! helpers ([`Variability`]), and the analytic bounds of Theorems 2.1, 2.2
//! and 2.4 so experiments can print paper-vs-measured columns.

/// Online accumulator of `v(n)` alongside `f(n)`.
#[derive(Debug, Clone, PartialEq)]
pub struct VariabilityMeter {
    f: i64,
    v: f64,
    steps: u64,
}

impl Default for VariabilityMeter {
    fn default() -> Self {
        Self::new()
    }
}

impl VariabilityMeter {
    /// Start at `f(0) = 0` (the paper's default).
    pub fn new() -> Self {
        VariabilityMeter {
            f: 0,
            v: 0.0,
            steps: 0,
        }
    }

    /// Start at a non-zero `f(0)` ("unless stated otherwise" — used by the
    /// §4 lower-bound sequences which begin at `f(0) = m`).
    pub fn with_initial(f0: i64) -> Self {
        VariabilityMeter {
            f: f0,
            v: 0.0,
            steps: 0,
        }
    }

    /// Consume one increment `f'(t)`; returns the step's contribution
    /// `v'(t)`.
    pub fn observe(&mut self, delta: i64) -> f64 {
        self.f += delta;
        self.steps += 1;
        let vp = Self::step_contribution(self.f, delta);
        self.v += vp;
        vp
    }

    /// `v'(t)` for a step ending at value `f` with increment `delta`.
    #[inline]
    pub fn step_contribution(f: i64, delta: i64) -> f64 {
        if f == 0 {
            // Paper: |f'(t)/f(t)| := 1 when f(t) = 0.
            1.0
        } else {
            let ratio = delta.unsigned_abs() as f64 / f.unsigned_abs() as f64;
            ratio.min(1.0)
        }
    }

    /// The accumulated variability `v(n)`.
    pub fn value(&self) -> f64 {
        self.v
    }

    /// Current `f(n)`.
    pub fn f(&self) -> i64 {
        self.f
    }

    /// Number of increments consumed.
    pub fn steps(&self) -> u64 {
        self.steps
    }
}

/// Batch helpers and the paper's analytic variability bounds.
#[derive(Debug, Clone, Copy)]
pub struct Variability;

impl Variability {
    /// `v(n)` of a delta stream starting at `f(0) = 0`.
    pub fn of_stream<I: IntoIterator<Item = i64>>(deltas: I) -> f64 {
        let mut m = VariabilityMeter::new();
        for d in deltas {
            m.observe(d);
        }
        m.value()
    }

    /// `v(n)` of a value trajectory `f(1), ..., f(n)` with `f(0) = f0`.
    pub fn of_values(f0: i64, values: &[i64]) -> f64 {
        let mut m = VariabilityMeter::with_initial(f0);
        let mut prev = f0;
        for &v in values {
            m.observe(v - prev);
            prev = v;
        }
        m.value()
    }

    /// Running prefix `v(1), v(2), ..., v(n)` of a delta stream.
    pub fn prefix_series(deltas: &[i64]) -> Vec<f64> {
        let mut m = VariabilityMeter::new();
        deltas
            .iter()
            .map(|&d| {
                m.observe(d);
                m.value()
            })
            .collect()
    }

    /// Harmonic number `H(x)`.
    pub fn harmonic(x: u64) -> f64 {
        if x < 100 {
            (1..=x).map(|i| 1.0 / i as f64).sum()
        } else {
            // H(x) ≈ ln x + γ + 1/(2x); error < 1e-4 for x ≥ 100.
            (x as f64).ln() + 0.577_215_664_901_532_9 + 1.0 / (2.0 * x as f64)
        }
    }

    /// Exact variability of the unit counter `f(t) = t`: `v(n) = H(n)`,
    /// the tightest instance of the monotone `O(log f(n))` claim.
    pub fn unit_counter_exact(n: u64) -> f64 {
        Self::harmonic(n)
    }

    /// Theorem 2.1 bound: a stream with `f⁻(n) ≤ β(n)·f(n)` for `n ≥ t₀`
    /// has `v(n) ≤ 4(1+β)(1 + log₂(2(1+β)·f(n)))` (plus an O(1) prefix
    /// cost). Monotone streams are the β-free case via `β = 1`.
    pub fn thm21_bound(beta: f64, f_n: i64) -> f64 {
        assert!(beta >= 1.0);
        let f = (f_n.max(1)) as f64;
        4.0 * (1.0 + beta) * (1.0 + (2.0 * (1.0 + beta) * f).log2())
    }

    /// Theorem 2.2 shape: `E[v(n)] = O(√n · log n)` for the fair ±1 walk.
    /// Returns `√n · ln n` (constant-free; experiments fit the constant).
    pub fn thm22_shape(n: u64) -> f64 {
        let nf = n as f64;
        nf.sqrt() * nf.ln().max(1.0)
    }

    /// Theorem 2.4 shape: `E[v(n)] = O(log(n)/μ)` for drift-μ biased
    /// walks. Returns `ln(n)/μ`.
    pub fn thm24_shape(n: u64, mu: f64) -> f64 {
        assert!(mu > 0.0);
        (n as f64).ln().max(1.0) / mu
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_counter_variability_is_harmonic() {
        // f(t) = t: v(n) = Σ 1/t = H(n).
        let deltas = vec![1i64; 1000];
        let v = Variability::of_stream(deltas);
        let h = Variability::harmonic(1000);
        assert!((v - h).abs() < 1e-6, "v = {v}, H = {h}");
    }

    #[test]
    fn zero_crossings_contribute_one() {
        // f: 0 → 1 → 0 → -1 → 0: contributions 1, 1, 1, 1.
        let v = Variability::of_stream(vec![1, -1, -1, 1]);
        // t1: f=1, |1/1|=1 → 1; t2: f=0 → 1; t3: f=-1 → 1; t4: f=0 → 1.
        assert_eq!(v, 4.0);
    }

    #[test]
    fn zero_delta_at_zero_value_still_counts() {
        // Paper's literal convention: f(t) = 0 ⇒ v'(t) = 1 even if f' = 0.
        let v = Variability::of_stream(vec![0, 0]);
        assert_eq!(v, 2.0);
    }

    #[test]
    fn zero_delta_at_nonzero_value_is_free() {
        let v = Variability::of_stream(vec![5, 0, 0, 0]);
        assert_eq!(v, 1.0); // only the first jump (|5/5| = 1) contributes
    }

    #[test]
    fn contributions_are_capped_at_one() {
        // A huge jump from 1 to 1001 contributes min(1, 1000/1001) < 1.
        let mut m = VariabilityMeter::new();
        m.observe(1);
        let vp = m.observe(1000);
        assert!(vp < 1.0 && vp > 0.99);
    }

    #[test]
    fn of_values_matches_of_stream() {
        let deltas = vec![1, 1, -1, 2, -3, 1, 1];
        let mut f = 0i64;
        let values: Vec<i64> = deltas
            .iter()
            .map(|&d| {
                f += d;
                f
            })
            .collect();
        let a = Variability::of_stream(deltas.clone());
        let b = Variability::of_values(0, &values);
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn with_initial_changes_denominators() {
        // Starting at f(0) = 10, a +1 step contributes 1/11.
        let mut m = VariabilityMeter::with_initial(10);
        let vp = m.observe(1);
        assert!((vp - 1.0 / 11.0).abs() < 1e-12);
        assert_eq!(m.f(), 11);
    }

    #[test]
    fn prefix_series_is_monotone_nondecreasing() {
        let deltas = vec![1, -1, 1, 1, -1, 1, -2, 3];
        let series = Variability::prefix_series(&deltas);
        assert_eq!(series.len(), deltas.len());
        assert!(series.windows(2).all(|w| w[0] <= w[1] + 1e-12));
    }

    #[test]
    fn harmonic_number_values() {
        assert!((Variability::harmonic(1) - 1.0).abs() < 1e-12);
        assert!((Variability::harmonic(2) - 1.5).abs() < 1e-12);
        // H(10^6) ≈ ln(10^6) + γ ≈ 14.392726...
        let h = Variability::harmonic(1_000_000);
        assert!((h - 14.392_726_7).abs() < 1e-3, "H = {h}");
    }

    #[test]
    fn thm21_bound_dominates_monotone_unit_counter() {
        for n in [10u64, 1_000, 100_000] {
            let v = Variability::unit_counter_exact(n);
            let bound = Variability::thm21_bound(1.0, n as i64);
            assert!(v <= bound, "n = {n}: v = {v} > bound = {bound}");
        }
    }

    #[test]
    fn shapes_are_monotone_in_n() {
        assert!(Variability::thm22_shape(10_000) > Variability::thm22_shape(100));
        assert!(Variability::thm24_shape(10_000, 0.1) > Variability::thm24_shape(100, 0.1));
        // Smaller drift ⇒ larger bound.
        assert!(Variability::thm24_shape(1000, 0.05) > Variability::thm24_shape(1000, 0.5));
    }
}
