//! Simulating large updates with ±1 arrivals — Appendix C.
//!
//! The upper bounds of §3 assume `f'(n) = ±1`. A larger update `|f'(n)| > 1`
//! is simulated by `|f'(n)|` arrivals of `±1`, and Theorem C.1 bounds the
//! variability overhead of doing so:
//!
//! * for `f'(n) > 1`:  `Σ_{t=1..f'} 1/(f(n−1)+t) ≤ (f'/f)·(1 + H(f'))`,
//! * for `f'(n) < −1`: the expanded cost is at most `3·|f'|/f` (plus the
//!   `f = 0` special case),
//!
//! i.e. an `O(log max f'(n))` multiplicative overhead.

use crate::variability::Variability;

/// Expand one update into the equivalent sequence of ±1 (or a single 0)
/// arrivals.
pub fn expand_update(delta: i64) -> Vec<i64> {
    if delta == 0 {
        vec![0]
    } else {
        vec![delta.signum(); delta.unsigned_abs() as usize]
    }
}

/// Expand a whole delta stream. Zero deltas are preserved (they represent
/// explicit no-op timesteps in lazy streams).
pub fn expand_stream(deltas: &[i64]) -> Vec<i64> {
    let total: usize = deltas
        .iter()
        .map(|d| d.unsigned_abs().max(1) as usize)
        .sum();
    let mut out = Vec::with_capacity(total);
    for &d in deltas {
        if d == 0 {
            out.push(0);
        } else {
            let s = d.signum();
            for _ in 0..d.unsigned_abs() {
                out.push(s);
            }
        }
    }
    out
}

/// The Theorem C.1 per-update bound on the *expanded* variability of one
/// update `delta` landing on previous value `f_prev` (so `f = f_prev +
/// delta`).
///
/// The paper states its two inequalities under the assumption `f(n) ≥ 0`
/// always; we generalize to signed trajectories by case analysis on `|f|`
/// (the theorem's formulas apply by symmetry within each sign region):
///
/// * `|f|` moves **away** from zero (the paper's `f' > 1` case):
///   `(|f'|/|f|)·(1 + H(|f'|))`;
/// * `|f|` moves **toward** zero without reaching it (the `f' < −1`
///   case): `3·|f'|/|f|`;
/// * the jump **lands on** zero: the arrivals contribute exactly
///   `H(|f_prev|) + 1` (harmonic descent plus the `f = 0` step);
/// * the jump **crosses** zero: descent + crossing + ascent give
///   `H(|f_prev|) + 1 + H(|f|)`.
pub fn expansion_bound(f_prev: i64, delta: i64) -> f64 {
    let f_new = f_prev + delta;
    let d = delta.unsigned_abs();
    if d <= 1 {
        // No expansion: the original v' (≤ 1) is its own bound.
        return 1.0;
    }
    let a_prev = f_prev.unsigned_abs();
    let a_new = f_new.unsigned_abs();
    let crosses = (f_prev > 0 && f_new < 0) || (f_prev < 0 && f_new > 0);
    if crosses {
        return Variability::harmonic(a_prev) + 1.0 + Variability::harmonic(a_new);
    }
    if a_new == 0 {
        return Variability::harmonic(a_prev) + 1.0;
    }
    let ratio = d as f64 / a_new as f64;
    if a_new > a_prev {
        // |f| grows: Theorem C.1's positive-jump inequality.
        ratio * (1.0 + Variability::harmonic(d))
    } else {
        // |f| shrinks toward (but not to) zero: the negative-jump case.
        3.0 * ratio
    }
}

/// Measured expanded variability of one update: the sum of `v'` over the
/// ±1 arrivals of [`expand_update`], starting from `f_prev`.
pub fn expanded_step_variability(f_prev: i64, delta: i64) -> f64 {
    let mut m = crate::variability::VariabilityMeter::with_initial(f_prev);
    for d in expand_update(delta) {
        m.observe(d);
    }
    m.value()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::variability::VariabilityMeter;

    #[test]
    fn expansion_preserves_total() {
        let deltas = vec![5, -3, 0, 1, -1, 7];
        let expanded = expand_stream(&deltas);
        assert_eq!(expanded.iter().sum::<i64>(), deltas.iter().sum::<i64>());
        assert!(expanded.iter().all(|&d| (-1..=1).contains(&d)));
        assert_eq!(expanded.len(), 5 + 3 + 1 + 1 + 1 + 7);
    }

    #[test]
    fn expand_update_shapes() {
        assert_eq!(expand_update(3), vec![1, 1, 1]);
        assert_eq!(expand_update(-2), vec![-1, -1]);
        assert_eq!(expand_update(0), vec![0]);
        assert_eq!(expand_update(1), vec![1]);
    }

    #[test]
    fn positive_jump_bound_holds() {
        // Theorem C.1, f' > 1: expanded variability ≤ (f'/f)(1 + H(f')).
        for (f_prev, delta) in [(0i64, 10i64), (5, 3), (100, 50), (1, 1000), (7, 2)] {
            let measured = expanded_step_variability(f_prev, delta);
            let bound = expansion_bound(f_prev, delta);
            assert!(
                measured <= bound + 1e-9,
                "f_prev={f_prev}, delta={delta}: {measured} > {bound}"
            );
        }
    }

    #[test]
    fn negative_jump_bound_holds() {
        // Theorem C.1, f' < −1 with f(n) ≥ 1 after the drop.
        for (f_prev, delta) in [(10i64, -3i64), (100, -50), (20, -19), (1000, -2)] {
            assert!(f_prev + delta >= 1);
            let measured = expanded_step_variability(f_prev, delta);
            let bound = expansion_bound(f_prev, delta);
            assert!(
                measured <= bound + 1e-9,
                "f_prev={f_prev}, delta={delta}: {measured} > {bound}"
            );
        }
    }

    #[test]
    fn expanded_stream_variability_close_to_original_for_small_jumps() {
        // With ±1 updates only, expansion is the identity.
        let deltas = vec![1, -1, 1, 1, -1];
        assert_eq!(expand_stream(&deltas), deltas);
    }

    #[test]
    fn overhead_is_logarithmic_in_jump_size() {
        // Ratio (expanded v) / (original v') should grow like H(f') for
        // jumps landing far from zero.
        let f_prev = 1_000i64;
        let mut last_ratio = 0.0;
        for exp in [2u32, 4, 6, 8] {
            let delta = 2i64.pow(exp);
            let expanded = expanded_step_variability(f_prev, delta);
            let mut m = VariabilityMeter::with_initial(f_prev);
            let original = m.observe(delta).max(1e-12);
            let ratio = expanded / original;
            assert!(ratio >= last_ratio - 1e-9, "ratio not growing");
            last_ratio = ratio;
            let h = Variability::harmonic(delta as u64);
            assert!(
                ratio <= 1.0 + h + 1e-9,
                "ratio {ratio} > 1 + H = {}",
                1.0 + h
            );
        }
    }
}
